file(REMOVE_RECURSE
  "CMakeFiles/sc_netcalc.dir/bounds.cpp.o"
  "CMakeFiles/sc_netcalc.dir/bounds.cpp.o.d"
  "CMakeFiles/sc_netcalc.dir/dag.cpp.o"
  "CMakeFiles/sc_netcalc.dir/dag.cpp.o.d"
  "CMakeFiles/sc_netcalc.dir/node.cpp.o"
  "CMakeFiles/sc_netcalc.dir/node.cpp.o.d"
  "CMakeFiles/sc_netcalc.dir/packetizer.cpp.o"
  "CMakeFiles/sc_netcalc.dir/packetizer.cpp.o.d"
  "CMakeFiles/sc_netcalc.dir/pipeline.cpp.o"
  "CMakeFiles/sc_netcalc.dir/pipeline.cpp.o.d"
  "CMakeFiles/sc_netcalc.dir/shaper.cpp.o"
  "CMakeFiles/sc_netcalc.dir/shaper.cpp.o.d"
  "CMakeFiles/sc_netcalc.dir/trace.cpp.o"
  "CMakeFiles/sc_netcalc.dir/trace.cpp.o.d"
  "libsc_netcalc.a"
  "libsc_netcalc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_netcalc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
