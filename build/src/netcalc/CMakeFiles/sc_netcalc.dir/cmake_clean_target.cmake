file(REMOVE_RECURSE
  "libsc_netcalc.a"
)
