
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netcalc/bounds.cpp" "src/netcalc/CMakeFiles/sc_netcalc.dir/bounds.cpp.o" "gcc" "src/netcalc/CMakeFiles/sc_netcalc.dir/bounds.cpp.o.d"
  "/root/repo/src/netcalc/dag.cpp" "src/netcalc/CMakeFiles/sc_netcalc.dir/dag.cpp.o" "gcc" "src/netcalc/CMakeFiles/sc_netcalc.dir/dag.cpp.o.d"
  "/root/repo/src/netcalc/node.cpp" "src/netcalc/CMakeFiles/sc_netcalc.dir/node.cpp.o" "gcc" "src/netcalc/CMakeFiles/sc_netcalc.dir/node.cpp.o.d"
  "/root/repo/src/netcalc/packetizer.cpp" "src/netcalc/CMakeFiles/sc_netcalc.dir/packetizer.cpp.o" "gcc" "src/netcalc/CMakeFiles/sc_netcalc.dir/packetizer.cpp.o.d"
  "/root/repo/src/netcalc/pipeline.cpp" "src/netcalc/CMakeFiles/sc_netcalc.dir/pipeline.cpp.o" "gcc" "src/netcalc/CMakeFiles/sc_netcalc.dir/pipeline.cpp.o.d"
  "/root/repo/src/netcalc/shaper.cpp" "src/netcalc/CMakeFiles/sc_netcalc.dir/shaper.cpp.o" "gcc" "src/netcalc/CMakeFiles/sc_netcalc.dir/shaper.cpp.o.d"
  "/root/repo/src/netcalc/trace.cpp" "src/netcalc/CMakeFiles/sc_netcalc.dir/trace.cpp.o" "gcc" "src/netcalc/CMakeFiles/sc_netcalc.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minplus/CMakeFiles/sc_minplus.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
