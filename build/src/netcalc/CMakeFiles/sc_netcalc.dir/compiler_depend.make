# Empty compiler generated dependencies file for sc_netcalc.
# This may be replaced when dependencies are built.
