# Empty compiler generated dependencies file for sc_des.
# This may be replaced when dependencies are built.
