file(REMOVE_RECURSE
  "libsc_des.a"
)
