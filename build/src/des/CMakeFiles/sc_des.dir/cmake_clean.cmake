file(REMOVE_RECURSE
  "CMakeFiles/sc_des.dir/simulation.cpp.o"
  "CMakeFiles/sc_des.dir/simulation.cpp.o.d"
  "libsc_des.a"
  "libsc_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
