
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/aes.cpp" "src/kernels/CMakeFiles/sc_kernels.dir/aes.cpp.o" "gcc" "src/kernels/CMakeFiles/sc_kernels.dir/aes.cpp.o.d"
  "/root/repo/src/kernels/arq_link.cpp" "src/kernels/CMakeFiles/sc_kernels.dir/arq_link.cpp.o" "gcc" "src/kernels/CMakeFiles/sc_kernels.dir/arq_link.cpp.o.d"
  "/root/repo/src/kernels/blastn.cpp" "src/kernels/CMakeFiles/sc_kernels.dir/blastn.cpp.o" "gcc" "src/kernels/CMakeFiles/sc_kernels.dir/blastn.cpp.o.d"
  "/root/repo/src/kernels/fa2bit.cpp" "src/kernels/CMakeFiles/sc_kernels.dir/fa2bit.cpp.o" "gcc" "src/kernels/CMakeFiles/sc_kernels.dir/fa2bit.cpp.o.d"
  "/root/repo/src/kernels/lz4lite.cpp" "src/kernels/CMakeFiles/sc_kernels.dir/lz4lite.cpp.o" "gcc" "src/kernels/CMakeFiles/sc_kernels.dir/lz4lite.cpp.o.d"
  "/root/repo/src/kernels/measure.cpp" "src/kernels/CMakeFiles/sc_kernels.dir/measure.cpp.o" "gcc" "src/kernels/CMakeFiles/sc_kernels.dir/measure.cpp.o.d"
  "/root/repo/src/kernels/testdata.cpp" "src/kernels/CMakeFiles/sc_kernels.dir/testdata.cpp.o" "gcc" "src/kernels/CMakeFiles/sc_kernels.dir/testdata.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netcalc/CMakeFiles/sc_netcalc.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/sc_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/minplus/CMakeFiles/sc_minplus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
