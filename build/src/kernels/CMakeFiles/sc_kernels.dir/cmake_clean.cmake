file(REMOVE_RECURSE
  "CMakeFiles/sc_kernels.dir/aes.cpp.o"
  "CMakeFiles/sc_kernels.dir/aes.cpp.o.d"
  "CMakeFiles/sc_kernels.dir/arq_link.cpp.o"
  "CMakeFiles/sc_kernels.dir/arq_link.cpp.o.d"
  "CMakeFiles/sc_kernels.dir/blastn.cpp.o"
  "CMakeFiles/sc_kernels.dir/blastn.cpp.o.d"
  "CMakeFiles/sc_kernels.dir/fa2bit.cpp.o"
  "CMakeFiles/sc_kernels.dir/fa2bit.cpp.o.d"
  "CMakeFiles/sc_kernels.dir/lz4lite.cpp.o"
  "CMakeFiles/sc_kernels.dir/lz4lite.cpp.o.d"
  "CMakeFiles/sc_kernels.dir/measure.cpp.o"
  "CMakeFiles/sc_kernels.dir/measure.cpp.o.d"
  "CMakeFiles/sc_kernels.dir/testdata.cpp.o"
  "CMakeFiles/sc_kernels.dir/testdata.cpp.o.d"
  "libsc_kernels.a"
  "libsc_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
