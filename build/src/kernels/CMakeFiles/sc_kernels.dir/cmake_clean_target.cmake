file(REMOVE_RECURSE
  "libsc_kernels.a"
)
