# Empty dependencies file for sc_kernels.
# This may be replaced when dependencies are built.
