file(REMOVE_RECURSE
  "libsc_minplus.a"
)
