file(REMOVE_RECURSE
  "CMakeFiles/sc_minplus.dir/curve.cpp.o"
  "CMakeFiles/sc_minplus.dir/curve.cpp.o.d"
  "CMakeFiles/sc_minplus.dir/deviation.cpp.o"
  "CMakeFiles/sc_minplus.dir/deviation.cpp.o.d"
  "CMakeFiles/sc_minplus.dir/inverse.cpp.o"
  "CMakeFiles/sc_minplus.dir/inverse.cpp.o.d"
  "CMakeFiles/sc_minplus.dir/operations.cpp.o"
  "CMakeFiles/sc_minplus.dir/operations.cpp.o.d"
  "libsc_minplus.a"
  "libsc_minplus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_minplus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
