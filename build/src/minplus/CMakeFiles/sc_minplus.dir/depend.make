# Empty dependencies file for sc_minplus.
# This may be replaced when dependencies are built.
