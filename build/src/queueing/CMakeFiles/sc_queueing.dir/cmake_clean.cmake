file(REMOVE_RECURSE
  "CMakeFiles/sc_queueing.dir/mm1.cpp.o"
  "CMakeFiles/sc_queueing.dir/mm1.cpp.o.d"
  "libsc_queueing.a"
  "libsc_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
