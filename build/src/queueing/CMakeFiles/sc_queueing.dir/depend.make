# Empty dependencies file for sc_queueing.
# This may be replaced when dependencies are built.
