file(REMOVE_RECURSE
  "libsc_queueing.a"
)
