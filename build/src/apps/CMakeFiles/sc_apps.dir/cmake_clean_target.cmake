file(REMOVE_RECURSE
  "libsc_apps.a"
)
