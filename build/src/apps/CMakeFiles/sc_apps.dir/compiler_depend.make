# Empty compiler generated dependencies file for sc_apps.
# This may be replaced when dependencies are built.
