file(REMOVE_RECURSE
  "CMakeFiles/sc_apps.dir/bitw.cpp.o"
  "CMakeFiles/sc_apps.dir/bitw.cpp.o.d"
  "CMakeFiles/sc_apps.dir/blast.cpp.o"
  "CMakeFiles/sc_apps.dir/blast.cpp.o.d"
  "CMakeFiles/sc_apps.dir/flowgraph.cpp.o"
  "CMakeFiles/sc_apps.dir/flowgraph.cpp.o.d"
  "libsc_apps.a"
  "libsc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
