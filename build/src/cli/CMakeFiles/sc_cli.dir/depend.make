# Empty dependencies file for sc_cli.
# This may be replaced when dependencies are built.
