file(REMOVE_RECURSE
  "libsc_cli.a"
)
