file(REMOVE_RECURSE
  "CMakeFiles/sc_cli.dir/report.cpp.o"
  "CMakeFiles/sc_cli.dir/report.cpp.o.d"
  "CMakeFiles/sc_cli.dir/spec.cpp.o"
  "CMakeFiles/sc_cli.dir/spec.cpp.o.d"
  "libsc_cli.a"
  "libsc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
