# Empty dependencies file for sc_maxplus.
# This may be replaced when dependencies are built.
