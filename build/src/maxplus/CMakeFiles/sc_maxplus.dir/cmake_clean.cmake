file(REMOVE_RECURSE
  "CMakeFiles/sc_maxplus.dir/operations.cpp.o"
  "CMakeFiles/sc_maxplus.dir/operations.cpp.o.d"
  "libsc_maxplus.a"
  "libsc_maxplus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_maxplus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
