file(REMOVE_RECURSE
  "libsc_maxplus.a"
)
