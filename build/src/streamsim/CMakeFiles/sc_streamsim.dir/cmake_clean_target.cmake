file(REMOVE_RECURSE
  "libsc_streamsim.a"
)
