file(REMOVE_RECURSE
  "CMakeFiles/sc_streamsim.dir/pipeline_sim.cpp.o"
  "CMakeFiles/sc_streamsim.dir/pipeline_sim.cpp.o.d"
  "libsc_streamsim.a"
  "libsc_streamsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_streamsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
