# Empty compiler generated dependencies file for sc_streamsim.
# This may be replaced when dependencies are built.
