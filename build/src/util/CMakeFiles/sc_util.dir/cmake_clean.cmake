file(REMOVE_RECURSE
  "CMakeFiles/sc_util.dir/format.cpp.o"
  "CMakeFiles/sc_util.dir/format.cpp.o.d"
  "CMakeFiles/sc_util.dir/plot.cpp.o"
  "CMakeFiles/sc_util.dir/plot.cpp.o.d"
  "CMakeFiles/sc_util.dir/table.cpp.o"
  "CMakeFiles/sc_util.dir/table.cpp.o.d"
  "libsc_util.a"
  "libsc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
