file(REMOVE_RECURSE
  "CMakeFiles/streamcalc_cli.dir/streamcalc.cpp.o"
  "CMakeFiles/streamcalc_cli.dir/streamcalc.cpp.o.d"
  "streamcalc"
  "streamcalc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamcalc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
