# Empty dependencies file for streamcalc_cli.
# This may be replaced when dependencies are built.
