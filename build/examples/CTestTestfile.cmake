# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_video_analytics "/root/repo/build/examples/video_analytics")
set_tests_properties(example_video_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_compression "/root/repo/build/examples/sensor_compression")
set_tests_properties(example_sensor_compression PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planning "/root/repo/build/examples/capacity_planning")
set_tests_properties(example_capacity_planning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fork_join_analytics "/root/repo/build/examples/fork_join_analytics")
set_tests_properties(example_fork_join_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_measured_bitw "/root/repo/build/examples/measured_bitw")
set_tests_properties(example_measured_bitw PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_measured_blast "/root/repo/build/examples/measured_blast")
set_tests_properties(example_measured_blast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
