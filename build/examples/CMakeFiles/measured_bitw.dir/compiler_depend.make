# Empty compiler generated dependencies file for measured_bitw.
# This may be replaced when dependencies are built.
