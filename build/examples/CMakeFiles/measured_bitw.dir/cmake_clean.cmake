file(REMOVE_RECURSE
  "CMakeFiles/measured_bitw.dir/measured_bitw.cpp.o"
  "CMakeFiles/measured_bitw.dir/measured_bitw.cpp.o.d"
  "measured_bitw"
  "measured_bitw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measured_bitw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
