file(REMOVE_RECURSE
  "CMakeFiles/fork_join_analytics.dir/fork_join_analytics.cpp.o"
  "CMakeFiles/fork_join_analytics.dir/fork_join_analytics.cpp.o.d"
  "fork_join_analytics"
  "fork_join_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fork_join_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
