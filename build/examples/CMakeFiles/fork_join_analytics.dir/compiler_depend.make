# Empty compiler generated dependencies file for fork_join_analytics.
# This may be replaced when dependencies are built.
