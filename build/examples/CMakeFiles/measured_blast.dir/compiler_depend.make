# Empty compiler generated dependencies file for measured_blast.
# This may be replaced when dependencies are built.
