file(REMOVE_RECURSE
  "CMakeFiles/measured_blast.dir/measured_blast.cpp.o"
  "CMakeFiles/measured_blast.dir/measured_blast.cpp.o.d"
  "measured_blast"
  "measured_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measured_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
