# Empty dependencies file for ablation_job_ratio.
# This may be replaced when dependencies are built.
