file(REMOVE_RECURSE
  "../bench/ablation_job_ratio"
  "../bench/ablation_job_ratio.pdb"
  "CMakeFiles/ablation_job_ratio.dir/ablation_job_ratio.cpp.o"
  "CMakeFiles/ablation_job_ratio.dir/ablation_job_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_job_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
