file(REMOVE_RECURSE
  "../bench/fig04_blast_curves"
  "../bench/fig04_blast_curves.pdb"
  "CMakeFiles/fig04_blast_curves.dir/fig04_blast_curves.cpp.o"
  "CMakeFiles/fig04_blast_curves.dir/fig04_blast_curves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_blast_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
