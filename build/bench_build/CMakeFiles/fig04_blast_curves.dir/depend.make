# Empty dependencies file for fig04_blast_curves.
# This may be replaced when dependencies are built.
