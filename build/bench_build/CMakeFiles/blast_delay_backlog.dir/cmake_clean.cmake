file(REMOVE_RECURSE
  "../bench/blast_delay_backlog"
  "../bench/blast_delay_backlog.pdb"
  "CMakeFiles/blast_delay_backlog.dir/blast_delay_backlog.cpp.o"
  "CMakeFiles/blast_delay_backlog.dir/blast_delay_backlog.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blast_delay_backlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
