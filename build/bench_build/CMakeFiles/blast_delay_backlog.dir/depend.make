# Empty dependencies file for blast_delay_backlog.
# This may be replaced when dependencies are built.
