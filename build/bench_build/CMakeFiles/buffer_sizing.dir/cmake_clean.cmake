file(REMOVE_RECURSE
  "../bench/buffer_sizing"
  "../bench/buffer_sizing.pdb"
  "CMakeFiles/buffer_sizing.dir/buffer_sizing.cpp.o"
  "CMakeFiles/buffer_sizing.dir/buffer_sizing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
