file(REMOVE_RECURSE
  "../bench/fig10_bitw_curves"
  "../bench/fig10_bitw_curves.pdb"
  "CMakeFiles/fig10_bitw_curves.dir/fig10_bitw_curves.cpp.o"
  "CMakeFiles/fig10_bitw_curves.dir/fig10_bitw_curves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_bitw_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
