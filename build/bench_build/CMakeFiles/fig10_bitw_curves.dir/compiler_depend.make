# Empty compiler generated dependencies file for fig10_bitw_curves.
# This may be replaced when dependencies are built.
