file(REMOVE_RECURSE
  "../bench/figs_flowgraphs"
  "../bench/figs_flowgraphs.pdb"
  "CMakeFiles/figs_flowgraphs.dir/figs_flowgraphs.cpp.o"
  "CMakeFiles/figs_flowgraphs.dir/figs_flowgraphs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figs_flowgraphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
