# Empty dependencies file for figs_flowgraphs.
# This may be replaced when dependencies are built.
