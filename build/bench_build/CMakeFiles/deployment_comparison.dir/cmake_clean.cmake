file(REMOVE_RECURSE
  "../bench/deployment_comparison"
  "../bench/deployment_comparison.pdb"
  "CMakeFiles/deployment_comparison.dir/deployment_comparison.cpp.o"
  "CMakeFiles/deployment_comparison.dir/deployment_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
