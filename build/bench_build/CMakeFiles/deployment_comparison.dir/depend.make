# Empty dependencies file for deployment_comparison.
# This may be replaced when dependencies are built.
