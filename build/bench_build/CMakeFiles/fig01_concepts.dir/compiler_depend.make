# Empty compiler generated dependencies file for fig01_concepts.
# This may be replaced when dependencies are built.
