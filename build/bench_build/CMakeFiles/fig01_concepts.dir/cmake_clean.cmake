file(REMOVE_RECURSE
  "../bench/fig01_concepts"
  "../bench/fig01_concepts.pdb"
  "CMakeFiles/fig01_concepts.dir/fig01_concepts.cpp.o"
  "CMakeFiles/fig01_concepts.dir/fig01_concepts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_concepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
