# Empty dependencies file for overload_regimes.
# This may be replaced when dependencies are built.
