file(REMOVE_RECURSE
  "../bench/overload_regimes"
  "../bench/overload_regimes.pdb"
  "CMakeFiles/overload_regimes.dir/overload_regimes.cpp.o"
  "CMakeFiles/overload_regimes.dir/overload_regimes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overload_regimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
