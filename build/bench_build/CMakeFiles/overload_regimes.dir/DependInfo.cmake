
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/overload_regimes.cpp" "bench_build/CMakeFiles/overload_regimes.dir/overload_regimes.cpp.o" "gcc" "bench_build/CMakeFiles/overload_regimes.dir/overload_regimes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/sc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/streamsim/CMakeFiles/sc_streamsim.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/sc_des.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/sc_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/netcalc/CMakeFiles/sc_netcalc.dir/DependInfo.cmake"
  "/root/repo/build/src/minplus/CMakeFiles/sc_minplus.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
