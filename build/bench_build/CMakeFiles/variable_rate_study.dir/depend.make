# Empty dependencies file for variable_rate_study.
# This may be replaced when dependencies are built.
