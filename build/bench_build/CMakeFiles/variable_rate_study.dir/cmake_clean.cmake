file(REMOVE_RECURSE
  "../bench/variable_rate_study"
  "../bench/variable_rate_study.pdb"
  "CMakeFiles/variable_rate_study.dir/variable_rate_study.cpp.o"
  "CMakeFiles/variable_rate_study.dir/variable_rate_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variable_rate_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
