file(REMOVE_RECURSE
  "../bench/table1_blast_throughput"
  "../bench/table1_blast_throughput.pdb"
  "CMakeFiles/table1_blast_throughput.dir/table1_blast_throughput.cpp.o"
  "CMakeFiles/table1_blast_throughput.dir/table1_blast_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_blast_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
