file(REMOVE_RECURSE
  "../bench/bitw_delay_backlog"
  "../bench/bitw_delay_backlog.pdb"
  "CMakeFiles/bitw_delay_backlog.dir/bitw_delay_backlog.cpp.o"
  "CMakeFiles/bitw_delay_backlog.dir/bitw_delay_backlog.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitw_delay_backlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
