# Empty dependencies file for bitw_delay_backlog.
# This may be replaced when dependencies are built.
