file(REMOVE_RECURSE
  "../bench/ablation_concatenation"
  "../bench/ablation_concatenation.pdb"
  "CMakeFiles/ablation_concatenation.dir/ablation_concatenation.cpp.o"
  "CMakeFiles/ablation_concatenation.dir/ablation_concatenation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_concatenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
