# Empty compiler generated dependencies file for ablation_concatenation.
# This may be replaced when dependencies are built.
