file(REMOVE_RECURSE
  "../bench/micro_minplus"
  "../bench/micro_minplus.pdb"
  "CMakeFiles/micro_minplus.dir/micro_minplus.cpp.o"
  "CMakeFiles/micro_minplus.dir/micro_minplus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_minplus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
