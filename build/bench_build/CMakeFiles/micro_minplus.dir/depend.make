# Empty dependencies file for micro_minplus.
# This may be replaced when dependencies are built.
