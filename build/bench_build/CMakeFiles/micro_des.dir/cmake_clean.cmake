file(REMOVE_RECURSE
  "../bench/micro_des"
  "../bench/micro_des.pdb"
  "CMakeFiles/micro_des.dir/micro_des.cpp.o"
  "CMakeFiles/micro_des.dir/micro_des.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
