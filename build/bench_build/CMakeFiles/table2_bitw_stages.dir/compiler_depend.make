# Empty compiler generated dependencies file for table2_bitw_stages.
# This may be replaced when dependencies are built.
