file(REMOVE_RECURSE
  "../bench/table2_bitw_stages"
  "../bench/table2_bitw_stages.pdb"
  "CMakeFiles/table2_bitw_stages.dir/table2_bitw_stages.cpp.o"
  "CMakeFiles/table2_bitw_stages.dir/table2_bitw_stages.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_bitw_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
