file(REMOVE_RECURSE
  "../bench/table3_bitw_throughput"
  "../bench/table3_bitw_throughput.pdb"
  "CMakeFiles/table3_bitw_throughput.dir/table3_bitw_throughput.cpp.o"
  "CMakeFiles/table3_bitw_throughput.dir/table3_bitw_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bitw_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
