# Empty compiler generated dependencies file for table3_bitw_throughput.
# This may be replaced when dependencies are built.
