# Empty dependencies file for ablation_packetization.
# This may be replaced when dependencies are built.
