file(REMOVE_RECURSE
  "../bench/ablation_packetization"
  "../bench/ablation_packetization.pdb"
  "CMakeFiles/ablation_packetization.dir/ablation_packetization.cpp.o"
  "CMakeFiles/ablation_packetization.dir/ablation_packetization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_packetization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
