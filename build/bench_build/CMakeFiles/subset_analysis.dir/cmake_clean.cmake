file(REMOVE_RECURSE
  "../bench/subset_analysis"
  "../bench/subset_analysis.pdb"
  "CMakeFiles/subset_analysis.dir/subset_analysis.cpp.o"
  "CMakeFiles/subset_analysis.dir/subset_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subset_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
