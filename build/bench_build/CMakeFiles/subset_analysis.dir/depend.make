# Empty dependencies file for subset_analysis.
# This may be replaced when dependencies are built.
