# Empty dependencies file for shaping_study.
# This may be replaced when dependencies are built.
