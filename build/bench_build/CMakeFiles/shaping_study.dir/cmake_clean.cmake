file(REMOVE_RECURSE
  "../bench/shaping_study"
  "../bench/shaping_study.pdb"
  "CMakeFiles/shaping_study.dir/shaping_study.cpp.o"
  "CMakeFiles/shaping_study.dir/shaping_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shaping_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
