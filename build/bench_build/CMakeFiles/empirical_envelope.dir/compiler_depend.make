# Empty compiler generated dependencies file for empirical_envelope.
# This may be replaced when dependencies are built.
