file(REMOVE_RECURSE
  "../bench/empirical_envelope"
  "../bench/empirical_envelope.pdb"
  "CMakeFiles/empirical_envelope.dir/empirical_envelope.cpp.o"
  "CMakeFiles/empirical_envelope.dir/empirical_envelope.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/empirical_envelope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
