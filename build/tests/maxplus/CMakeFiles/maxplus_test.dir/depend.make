# Empty dependencies file for maxplus_test.
# This may be replaced when dependencies are built.
