file(REMOVE_RECURSE
  "CMakeFiles/maxplus_test.dir/operations_test.cpp.o"
  "CMakeFiles/maxplus_test.dir/operations_test.cpp.o.d"
  "maxplus_test"
  "maxplus_test.pdb"
  "maxplus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxplus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
