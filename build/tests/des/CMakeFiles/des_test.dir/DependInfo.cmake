
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/des/event_test.cpp" "tests/des/CMakeFiles/des_test.dir/event_test.cpp.o" "gcc" "tests/des/CMakeFiles/des_test.dir/event_test.cpp.o.d"
  "/root/repo/tests/des/monitor_test.cpp" "tests/des/CMakeFiles/des_test.dir/monitor_test.cpp.o" "gcc" "tests/des/CMakeFiles/des_test.dir/monitor_test.cpp.o.d"
  "/root/repo/tests/des/resource_test.cpp" "tests/des/CMakeFiles/des_test.dir/resource_test.cpp.o" "gcc" "tests/des/CMakeFiles/des_test.dir/resource_test.cpp.o.d"
  "/root/repo/tests/des/simulation_test.cpp" "tests/des/CMakeFiles/des_test.dir/simulation_test.cpp.o" "gcc" "tests/des/CMakeFiles/des_test.dir/simulation_test.cpp.o.d"
  "/root/repo/tests/des/store_test.cpp" "tests/des/CMakeFiles/des_test.dir/store_test.cpp.o" "gcc" "tests/des/CMakeFiles/des_test.dir/store_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/sc_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
