
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netcalc/bounds_test.cpp" "tests/netcalc/CMakeFiles/netcalc_test.dir/bounds_test.cpp.o" "gcc" "tests/netcalc/CMakeFiles/netcalc_test.dir/bounds_test.cpp.o.d"
  "/root/repo/tests/netcalc/dag_test.cpp" "tests/netcalc/CMakeFiles/netcalc_test.dir/dag_test.cpp.o" "gcc" "tests/netcalc/CMakeFiles/netcalc_test.dir/dag_test.cpp.o.d"
  "/root/repo/tests/netcalc/node_test.cpp" "tests/netcalc/CMakeFiles/netcalc_test.dir/node_test.cpp.o" "gcc" "tests/netcalc/CMakeFiles/netcalc_test.dir/node_test.cpp.o.d"
  "/root/repo/tests/netcalc/packetizer_test.cpp" "tests/netcalc/CMakeFiles/netcalc_test.dir/packetizer_test.cpp.o" "gcc" "tests/netcalc/CMakeFiles/netcalc_test.dir/packetizer_test.cpp.o.d"
  "/root/repo/tests/netcalc/pipeline_test.cpp" "tests/netcalc/CMakeFiles/netcalc_test.dir/pipeline_test.cpp.o" "gcc" "tests/netcalc/CMakeFiles/netcalc_test.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/netcalc/shaper_test.cpp" "tests/netcalc/CMakeFiles/netcalc_test.dir/shaper_test.cpp.o" "gcc" "tests/netcalc/CMakeFiles/netcalc_test.dir/shaper_test.cpp.o.d"
  "/root/repo/tests/netcalc/trace_test.cpp" "tests/netcalc/CMakeFiles/netcalc_test.dir/trace_test.cpp.o" "gcc" "tests/netcalc/CMakeFiles/netcalc_test.dir/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netcalc/CMakeFiles/sc_netcalc.dir/DependInfo.cmake"
  "/root/repo/build/src/minplus/CMakeFiles/sc_minplus.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
