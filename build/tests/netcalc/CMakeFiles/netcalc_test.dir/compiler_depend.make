# Empty compiler generated dependencies file for netcalc_test.
# This may be replaced when dependencies are built.
