file(REMOVE_RECURSE
  "CMakeFiles/netcalc_test.dir/bounds_test.cpp.o"
  "CMakeFiles/netcalc_test.dir/bounds_test.cpp.o.d"
  "CMakeFiles/netcalc_test.dir/dag_test.cpp.o"
  "CMakeFiles/netcalc_test.dir/dag_test.cpp.o.d"
  "CMakeFiles/netcalc_test.dir/node_test.cpp.o"
  "CMakeFiles/netcalc_test.dir/node_test.cpp.o.d"
  "CMakeFiles/netcalc_test.dir/packetizer_test.cpp.o"
  "CMakeFiles/netcalc_test.dir/packetizer_test.cpp.o.d"
  "CMakeFiles/netcalc_test.dir/pipeline_test.cpp.o"
  "CMakeFiles/netcalc_test.dir/pipeline_test.cpp.o.d"
  "CMakeFiles/netcalc_test.dir/shaper_test.cpp.o"
  "CMakeFiles/netcalc_test.dir/shaper_test.cpp.o.d"
  "CMakeFiles/netcalc_test.dir/trace_test.cpp.o"
  "CMakeFiles/netcalc_test.dir/trace_test.cpp.o.d"
  "netcalc_test"
  "netcalc_test.pdb"
  "netcalc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcalc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
