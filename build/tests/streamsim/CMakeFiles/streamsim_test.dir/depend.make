# Empty dependencies file for streamsim_test.
# This may be replaced when dependencies are built.
