file(REMOVE_RECURSE
  "CMakeFiles/streamsim_test.dir/dag_sim_test.cpp.o"
  "CMakeFiles/streamsim_test.dir/dag_sim_test.cpp.o.d"
  "CMakeFiles/streamsim_test.dir/pipeline_sim_test.cpp.o"
  "CMakeFiles/streamsim_test.dir/pipeline_sim_test.cpp.o.d"
  "streamsim_test"
  "streamsim_test.pdb"
  "streamsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
