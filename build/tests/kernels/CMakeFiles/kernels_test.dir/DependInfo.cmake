
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kernels/aes_test.cpp" "tests/kernels/CMakeFiles/kernels_test.dir/aes_test.cpp.o" "gcc" "tests/kernels/CMakeFiles/kernels_test.dir/aes_test.cpp.o.d"
  "/root/repo/tests/kernels/arq_link_test.cpp" "tests/kernels/CMakeFiles/kernels_test.dir/arq_link_test.cpp.o" "gcc" "tests/kernels/CMakeFiles/kernels_test.dir/arq_link_test.cpp.o.d"
  "/root/repo/tests/kernels/blastn_test.cpp" "tests/kernels/CMakeFiles/kernels_test.dir/blastn_test.cpp.o" "gcc" "tests/kernels/CMakeFiles/kernels_test.dir/blastn_test.cpp.o.d"
  "/root/repo/tests/kernels/fa2bit_test.cpp" "tests/kernels/CMakeFiles/kernels_test.dir/fa2bit_test.cpp.o" "gcc" "tests/kernels/CMakeFiles/kernels_test.dir/fa2bit_test.cpp.o.d"
  "/root/repo/tests/kernels/lz4lite_test.cpp" "tests/kernels/CMakeFiles/kernels_test.dir/lz4lite_test.cpp.o" "gcc" "tests/kernels/CMakeFiles/kernels_test.dir/lz4lite_test.cpp.o.d"
  "/root/repo/tests/kernels/measure_test.cpp" "tests/kernels/CMakeFiles/kernels_test.dir/measure_test.cpp.o" "gcc" "tests/kernels/CMakeFiles/kernels_test.dir/measure_test.cpp.o.d"
  "/root/repo/tests/kernels/testdata_test.cpp" "tests/kernels/CMakeFiles/kernels_test.dir/testdata_test.cpp.o" "gcc" "tests/kernels/CMakeFiles/kernels_test.dir/testdata_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/sc_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/netcalc/CMakeFiles/sc_netcalc.dir/DependInfo.cmake"
  "/root/repo/build/src/minplus/CMakeFiles/sc_minplus.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/sc_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
