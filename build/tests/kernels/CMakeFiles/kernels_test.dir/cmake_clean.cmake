file(REMOVE_RECURSE
  "CMakeFiles/kernels_test.dir/aes_test.cpp.o"
  "CMakeFiles/kernels_test.dir/aes_test.cpp.o.d"
  "CMakeFiles/kernels_test.dir/arq_link_test.cpp.o"
  "CMakeFiles/kernels_test.dir/arq_link_test.cpp.o.d"
  "CMakeFiles/kernels_test.dir/blastn_test.cpp.o"
  "CMakeFiles/kernels_test.dir/blastn_test.cpp.o.d"
  "CMakeFiles/kernels_test.dir/fa2bit_test.cpp.o"
  "CMakeFiles/kernels_test.dir/fa2bit_test.cpp.o.d"
  "CMakeFiles/kernels_test.dir/lz4lite_test.cpp.o"
  "CMakeFiles/kernels_test.dir/lz4lite_test.cpp.o.d"
  "CMakeFiles/kernels_test.dir/measure_test.cpp.o"
  "CMakeFiles/kernels_test.dir/measure_test.cpp.o.d"
  "CMakeFiles/kernels_test.dir/testdata_test.cpp.o"
  "CMakeFiles/kernels_test.dir/testdata_test.cpp.o.d"
  "kernels_test"
  "kernels_test.pdb"
  "kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
