# CMake generated Testfile for 
# Source directory: /root/repo/tests/minplus
# Build directory: /root/repo/build/tests/minplus
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/minplus/minplus_curve_test[1]_include.cmake")
include("/root/repo/build/tests/minplus/minplus_operations_test[1]_include.cmake")
include("/root/repo/build/tests/minplus/minplus_deviation_test[1]_include.cmake")
include("/root/repo/build/tests/minplus/minplus_inverse_test[1]_include.cmake")
