file(REMOVE_RECURSE
  "CMakeFiles/minplus_curve_test.dir/curve_test.cpp.o"
  "CMakeFiles/minplus_curve_test.dir/curve_test.cpp.o.d"
  "minplus_curve_test"
  "minplus_curve_test.pdb"
  "minplus_curve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minplus_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
