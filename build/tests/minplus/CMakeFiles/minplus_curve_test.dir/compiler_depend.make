# Empty compiler generated dependencies file for minplus_curve_test.
# This may be replaced when dependencies are built.
