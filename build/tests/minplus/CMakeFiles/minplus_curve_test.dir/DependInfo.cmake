
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/minplus/curve_test.cpp" "tests/minplus/CMakeFiles/minplus_curve_test.dir/curve_test.cpp.o" "gcc" "tests/minplus/CMakeFiles/minplus_curve_test.dir/curve_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minplus/CMakeFiles/sc_minplus.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
