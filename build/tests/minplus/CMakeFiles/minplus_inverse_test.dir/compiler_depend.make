# Empty compiler generated dependencies file for minplus_inverse_test.
# This may be replaced when dependencies are built.
