file(REMOVE_RECURSE
  "CMakeFiles/minplus_inverse_test.dir/inverse_test.cpp.o"
  "CMakeFiles/minplus_inverse_test.dir/inverse_test.cpp.o.d"
  "minplus_inverse_test"
  "minplus_inverse_test.pdb"
  "minplus_inverse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minplus_inverse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
