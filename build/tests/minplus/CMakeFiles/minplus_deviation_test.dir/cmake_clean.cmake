file(REMOVE_RECURSE
  "CMakeFiles/minplus_deviation_test.dir/deviation_test.cpp.o"
  "CMakeFiles/minplus_deviation_test.dir/deviation_test.cpp.o.d"
  "minplus_deviation_test"
  "minplus_deviation_test.pdb"
  "minplus_deviation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minplus_deviation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
