# Empty dependencies file for minplus_deviation_test.
# This may be replaced when dependencies are built.
