# Empty dependencies file for minplus_operations_test.
# This may be replaced when dependencies are built.
