file(REMOVE_RECURSE
  "CMakeFiles/minplus_operations_test.dir/operations_test.cpp.o"
  "CMakeFiles/minplus_operations_test.dir/operations_test.cpp.o.d"
  "minplus_operations_test"
  "minplus_operations_test.pdb"
  "minplus_operations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minplus_operations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
