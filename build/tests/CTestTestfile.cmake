# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("minplus")
subdirs("maxplus")
subdirs("netcalc")
subdirs("des")
subdirs("streamsim")
subdirs("queueing")
subdirs("kernels")
subdirs("apps")
subdirs("cli")
subdirs("integration")
