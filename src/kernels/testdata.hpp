// Synthetic workload generators for the kernels: DNA databases with
// planted homologies (for the BLAST pipeline) and telemetry-like text with
// controllable redundancy (for the compression pipeline). The paper's
// experiments run on proprietary databases and OCT traffic; these
// generators exercise the same code paths with controllable statistics
// (see DESIGN.md, "Substitutions").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace streamcalc::kernels {

/// Uniform random DNA sequence of `bases` characters (ACGT).
std::string random_dna(util::Xoshiro256& rng, std::size_t bases);

/// Copies `count` random substrings of `query` (each `length` bases, with
/// `mutation_rate` per-base substitutions) into random positions of `db` —
/// planted homologies for the BLAST pipeline to find.
void plant_homologies(std::string& db, const std::string& query,
                      util::Xoshiro256& rng, int count, std::size_t length,
                      double mutation_rate);

/// Telemetry-like line-oriented text of roughly `bytes` bytes whose
/// compressibility is controlled by `redundancy` in [0, 1]: 0 produces
/// unique high-entropy payloads, 1 repeats a small set of lines nearly
/// verbatim (LZ ratios from ~1.1x to >5x).
std::vector<std::uint8_t> telemetry_text(util::Xoshiro256& rng,
                                         std::size_t bytes,
                                         double redundancy);

}  // namespace streamcalc::kernels
