// lz4lite: an LZ77 byte-stream compressor with the LZ4 token layout —
// the software stand-in for the Vitis streaming LZ4 kernel the paper's
// bump-in-the-wire pipeline offloads to an FPGA (Section 5).
//
// Format (per independently-compressed chunk): a sequence of
//   [token] [literal-length extension]* [literals]
//   [match offset: 2 bytes LE] [match-length extension]*
// where the token's high nibble is the literal count (15 = extended by
// 255-run bytes) and the low nibble is match length - 4. The final
// sequence carries literals only. Matches reference up to 64 KiB back.
//
// Like the Vitis kernel, data is compressed in chunks: each chunk is
// self-contained, so chunking reduces cross-chunk redundancy — the effect
// the paper notes when discussing observed compression ratios.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace streamcalc::kernels {

/// Compresses one self-contained chunk. Never fails; incompressible data
/// expands by at most ~0.5%.
std::vector<std::uint8_t> lz4lite_compress(std::span<const std::uint8_t> in);

/// Decompresses one chunk produced by lz4lite_compress. Throws
/// PreconditionError on malformed input.
std::vector<std::uint8_t> lz4lite_decompress(
    std::span<const std::uint8_t> in);

/// Convenience: original size / compressed size for one chunk.
double lz4lite_ratio(std::span<const std::uint8_t> in);

}  // namespace streamcalc::kernels
