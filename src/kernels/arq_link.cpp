#include "kernels/arq_link.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "des/monitor.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace streamcalc::kernels {

namespace {

/// Shared state of one measurement run.
struct LinkRun {
  des::Simulation sim;
  des::Resource* window = nullptr;
  des::Resource* wire = nullptr;
  util::Xoshiro256 rng{1};
  double serialization = 0.0;
  double propagation = 0.0;
  double rto = 0.0;
  double loss = 0.0;
  double packet_bytes = 0.0;

  des::Tally latencies;
  std::uint64_t delivered = 0;
  std::uint64_t retransmissions = 0;
  std::vector<double> interval_bytes;
  double interval_len = 0.0;

  void record_delivery(double created) {
    ++delivered;
    latencies.add(sim.now() - created);
    const auto idx = static_cast<std::size_t>(sim.now() / interval_len);
    if (idx < interval_bytes.size()) interval_bytes[idx] += packet_bytes;
  }
};

des::Process packet_process(LinkRun& run, double created) {
  for (;;) {
    // Exclusive use of the wire for serialization.
    co_await run.wire->acquire();
    co_await run.sim.timeout(run.serialization);
    run.wire->release();
    co_await run.sim.timeout(run.propagation);
    if (run.rng.uniform01() >= run.loss) {
      run.record_delivery(created);
      // Cumulative ack returns after one more propagation delay.
      co_await run.sim.timeout(run.propagation);
      run.window->release();
      co_return;
    }
    ++run.retransmissions;
    // The sender notices via timeout and retransmits.
    co_await run.sim.timeout(run.rto);
  }
}

des::Process sender_process(LinkRun& run) {
  for (;;) {
    co_await run.window->acquire();
    run.sim.spawn(packet_process(run, run.sim.now()));
  }
}

}  // namespace

netcalc::NodeSpec ArqLinkMeasurement::to_node(std::string name,
                                              netcalc::NodeKind kind) const {
  netcalc::NodeSpec n;
  n.name = std::move(name);
  n.kind = kind;
  n.block_in = packet;
  n.block_out = packet;
  // Effective rates become per-packet times the models understand.
  n.time_min = packet / throughput_max;
  n.time_avg = packet / throughput_avg;
  n.time_max = packet / throughput_min;
  n.aggregates = false;  // cut-through
  // Packets overlap in flight; the pipeline-fill latency is the fastest
  // observed end-to-end delivery.
  n.latency_override = latency_min;
  n.validate();
  return n;
}

ArqLinkMeasurement measure_arq_link(const ArqLinkParams& params) {
  util::require(params.bandwidth > util::DataRate::bytes_per_sec(0),
                "measure_arq_link requires positive bandwidth");
  util::require(params.packet > util::DataSize::bytes(0),
                "measure_arq_link requires a positive packet size");
  util::require(params.window >= 1, "measure_arq_link requires window >= 1");
  util::require(params.loss_rate >= 0.0 && params.loss_rate < 1.0,
                "measure_arq_link requires loss in [0, 1)");
  util::require(params.measure_time > util::Duration::seconds(0) &&
                    params.measure_time.is_finite(),
                "measure_arq_link requires a positive measurement time");

  LinkRun run;
  run.rng = util::Xoshiro256(params.seed);
  run.serialization = (params.packet / params.bandwidth).in_seconds();
  run.propagation = params.propagation.in_seconds();
  run.loss = params.loss_rate;
  run.packet_bytes = params.packet.in_bytes();
  run.rto = params.retransmit_timeout > util::Duration::seconds(0)
                ? params.retransmit_timeout.in_seconds()
                : 2.0 * (2.0 * run.propagation + run.serialization);
  constexpr std::size_t kIntervals = 20;
  run.interval_len = params.measure_time.in_seconds() / kIntervals;
  run.interval_bytes.assign(kIntervals, 0.0);

  des::Resource window(run.sim, params.window);
  des::Resource wire(run.sim, 1);
  run.window = &window;
  run.wire = &wire;

  run.sim.spawn(sender_process(run));
  run.sim.run_until(params.measure_time.in_seconds());

  ArqLinkMeasurement m;
  m.packet = params.packet;
  m.packets_delivered = run.delivered;
  m.retransmissions = run.retransmissions;
  util::require(run.delivered > 0,
                "measure_arq_link: nothing delivered (measurement time too "
                "short for the configured RTT?)");
  m.latency_min = util::Duration::seconds(run.latencies.minimum());
  m.latency_avg = util::Duration::seconds(run.latencies.mean());
  m.latency_max = util::Duration::seconds(run.latencies.maximum());
  m.throughput_avg = util::DataRate::bytes_per_sec(
      static_cast<double>(run.delivered) * run.packet_bytes /
      params.measure_time.in_seconds());
  // Interval spread, skipping the first interval (pipe-fill ramp).
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (std::size_t i = 1; i < run.interval_bytes.size(); ++i) {
    const double rate = run.interval_bytes[i] / run.interval_len;
    lo = std::min(lo, rate);
    hi = std::max(hi, rate);
  }
  m.throughput_min = util::DataRate::bytes_per_sec(std::min(
      lo, m.throughput_avg.in_bytes_per_sec()));
  m.throughput_max = util::DataRate::bytes_per_sec(std::max(
      hi, m.throughput_avg.in_bytes_per_sec()));
  return m;
}

}  // namespace streamcalc::kernels
