// Isolated per-stage throughput measurement — the paper's methodology:
// "we will test each stage in isolation and measure performance in
// isolation" (Section 5), then feed the min/avg/max rates into the models.
//
// measure_stage() runs a callable over a set of data blocks, times each
// invocation with the steady clock, and returns the observed rate spread
// plus a ready-to-use netcalc::NodeSpec.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "netcalc/node.hpp"
#include "util/units.hpp"

namespace streamcalc::kernels {

/// Observed timing of one stage over repeated block invocations.
struct StageMeasurement {
  std::string name;
  util::DataSize block;        ///< input bytes per invocation
  util::Duration time_min;     ///< fastest observed per-block time
  util::Duration time_avg;     ///< mean per-block time
  util::Duration time_max;     ///< slowest observed per-block time
  util::DataRate rate_min;     ///< block / time_max
  util::DataRate rate_avg;
  util::DataRate rate_max;     ///< block / time_min
  double volume_ratio_min = 1.0;  ///< observed output/input byte ratios
  double volume_ratio_avg = 1.0;
  double volume_ratio_max = 1.0;
  std::size_t invocations = 0;

  /// Converts the measurement into a pipeline-model NodeSpec.
  netcalc::NodeSpec to_node(netcalc::NodeKind kind,
                            util::DataSize block_out) const;
};

/// A stage under measurement: given one input block, processes it and
/// returns the number of output bytes produced (for volume-ratio
/// observation).
using StageFn = std::function<std::size_t(std::span<const std::uint8_t>)>;

/// Runs `fn` over every block `repeats` times (after one untimed warm-up
/// pass) and collects the per-invocation rate/volume spread. Blocks may
/// differ in size (rates are computed per invocation and the reported
/// block is the mean size). Requires at least one non-empty block and
/// repeats >= 1.
StageMeasurement measure_stage(
    std::string name, const StageFn& fn,
    std::span<const std::vector<std::uint8_t>> blocks, int repeats = 3);

}  // namespace streamcalc::kernels
