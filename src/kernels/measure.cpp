#include "kernels/measure.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "util/error.hpp"

namespace streamcalc::kernels {

netcalc::NodeSpec StageMeasurement::to_node(netcalc::NodeKind kind,
                                            util::DataSize block_out) const {
  netcalc::NodeSpec n;
  n.name = name;
  n.kind = kind;
  n.block_in = block;
  n.block_out = block_out;
  n.time_min = time_min;
  n.time_avg = time_avg;
  n.time_max = time_max;
  n.volume =
      netcalc::VolumeRatio{volume_ratio_min, volume_ratio_avg,
                           volume_ratio_max};
  n.validate();
  return n;
}

StageMeasurement measure_stage(
    std::string name, const StageFn& fn,
    std::span<const std::vector<std::uint8_t>> blocks, int repeats) {
  util::require(!blocks.empty(), "measure_stage requires at least one block");
  util::require(repeats >= 1, "measure_stage requires repeats >= 1");
  double bytes_sum = 0.0;
  for (const auto& b : blocks) {
    util::require(!b.empty(), "measure_stage requires non-empty blocks");
    bytes_sum += static_cast<double>(b.size());
  }

  // Warm-up pass (caches, allocators, branch predictors) — untimed.
  for (const auto& b : blocks) (void)fn(b);

  using Clock = std::chrono::steady_clock;
  double r_min = std::numeric_limits<double>::infinity();
  double r_max = 0.0;
  double secs_sum = 0.0;
  double v_min = std::numeric_limits<double>::infinity();
  double v_max = 0.0;
  double v_sum = 0.0;
  std::size_t n = 0;
  for (int r = 0; r < repeats; ++r) {
    for (const auto& b : blocks) {
      const auto start = Clock::now();
      const std::size_t out_bytes = fn(b);
      const auto stop = Clock::now();
      double secs = std::chrono::duration<double>(stop - start).count();
      // Guard against clock granularity on very fast invocations.
      secs = std::max(secs, 1e-9);
      const double rate = static_cast<double>(b.size()) / secs;
      r_min = std::min(r_min, rate);
      r_max = std::max(r_max, rate);
      secs_sum += secs;
      const double ratio =
          static_cast<double>(out_bytes) / static_cast<double>(b.size());
      v_min = std::min(v_min, ratio);
      v_max = std::max(v_max, ratio);
      v_sum += ratio;
      ++n;
    }
  }

  StageMeasurement m;
  m.name = std::move(name);
  m.block = util::DataSize::bytes(bytes_sum /
                                  static_cast<double>(blocks.size()));
  const double r_avg = std::clamp(
      bytes_sum * static_cast<double>(repeats) / secs_sum, r_min, r_max);
  m.rate_min = util::DataRate::bytes_per_sec(r_min);
  m.rate_avg = util::DataRate::bytes_per_sec(r_avg);
  m.rate_max = util::DataRate::bytes_per_sec(r_max);
  m.time_min = m.block / m.rate_max;
  m.time_avg = m.block / m.rate_avg;
  m.time_max = m.block / m.rate_min;
  m.volume_ratio_min = v_min;
  m.volume_ratio_max = v_max;
  m.volume_ratio_avg =
      std::clamp(v_sum / static_cast<double>(n), v_min, v_max);
  m.invocations = n;
  return m;
}

}  // namespace streamcalc::kernels
