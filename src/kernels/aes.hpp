// AES-128/AES-256 in CBC mode — the software stand-in for the Vitis
// 256-bit CBC AES kernel of the paper's bump-in-the-wire pipeline
// (Section 5). Straightforward FIPS-197 implementation (S-box,
// ShiftRows, MixColumns over GF(2^8)); validated against the FIPS-197
// and NIST SP 800-38A known-answer vectors in the test suite.
//
// This is a functional kernel for throughput measurement and round-trip
// testing, not a hardened cryptographic library (no constant-time
// guarantees).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace streamcalc::kernels {

/// AES block/key containers.
using AesBlock = std::array<std::uint8_t, 16>;

/// Key-expanded AES context for 128- or 256-bit keys.
class Aes {
 public:
  /// Builds from a 16-byte (AES-128) or 32-byte (AES-256) key; other key
  /// sizes throw PreconditionError.
  explicit Aes(std::span<const std::uint8_t> key);

  int rounds() const { return rounds_; }

  /// Encrypts/decrypts a single 16-byte block (ECB primitive).
  AesBlock encrypt_block(const AesBlock& in) const;
  AesBlock decrypt_block(const AesBlock& in) const;

  /// CBC mode over whole blocks. The input length must be a multiple of
  /// 16 (the streaming pipeline moves whole chunks; padding is the
  /// caller's concern). Returns ciphertext/plaintext of equal length.
  std::vector<std::uint8_t> cbc_encrypt(std::span<const std::uint8_t> data,
                                        const AesBlock& iv) const;
  std::vector<std::uint8_t> cbc_decrypt(std::span<const std::uint8_t> data,
                                        const AesBlock& iv) const;

 private:
  int rounds_;
  std::vector<std::array<std::uint8_t, 16>> round_keys_;
};

}  // namespace streamcalc::kernels
