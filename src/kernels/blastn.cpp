#include "kernels/blastn.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace streamcalc::kernels {

std::uint16_t QueryIndex::kmer_at(std::span<const std::uint8_t> packed,
                                  std::uint64_t pos) {
  std::uint16_t k = 0;
  for (int i = 0; i < 8; ++i) {
    k = static_cast<std::uint16_t>(
        k | (base_at(packed, pos + static_cast<std::uint64_t>(i))
             << (2 * i)));
  }
  return k;
}

QueryIndex::QueryIndex(std::span<const std::uint8_t> query_packed,
                       std::uint64_t bases)
    : packed_(query_packed.begin(), query_packed.end()), bases_(bases) {
  util::require(bases >= 8, "QueryIndex requires a query of >= 8 bases");
  util::require(bases <= query_packed.size() * 4,
                "QueryIndex: packed query shorter than the declared bases");
  for (std::uint64_t q = 0; q + 8 <= bases; ++q) {
    auto& bucket = table_[kmer_at(packed_, q)];
    if (bucket.empty()) ++distinct_;
    bucket.push_back(static_cast<std::uint32_t>(q));
  }
}

std::vector<std::uint32_t> seed_match(std::span<const std::uint8_t> db_packed,
                                      std::uint64_t db_bases,
                                      const QueryIndex& index) {
  std::vector<std::uint32_t> hits;
  if (db_bases < 8) return hits;
  // Byte-aligned 8-mers: two consecutive packed bytes form the key.
  for (std::uint64_t p = 0; p + 8 <= db_bases; p += 4) {
    const std::uint16_t kmer = static_cast<std::uint16_t>(
        db_packed[p / 4] | (db_packed[p / 4 + 1] << 8));
    if (index.contains(kmer)) {
      hits.push_back(static_cast<std::uint32_t>(p));
    }
  }
  return hits;
}

std::vector<SeedMatch> seed_enumerate(
    std::span<const std::uint32_t> db_positions,
    std::span<const std::uint8_t> db_packed, const QueryIndex& index) {
  std::vector<SeedMatch> matches;
  matches.reserve(db_positions.size());
  for (std::uint32_t p : db_positions) {
    const std::uint16_t kmer = static_cast<std::uint16_t>(
        db_packed[p / 4] | (db_packed[p / 4 + 1] << 8));
    for (std::uint32_t q : index.positions(kmer)) {
      matches.push_back(SeedMatch{p, q});
    }
  }
  return matches;
}

std::vector<SeedMatch> small_extension(std::span<const SeedMatch> matches,
                                       std::span<const std::uint8_t> db_packed,
                                       std::uint64_t db_bases,
                                       const QueryIndex& index,
                                       int min_length) {
  std::vector<SeedMatch> kept;
  const auto query = index.query_packed();
  const std::uint64_t query_bases = index.query_bases();
  for (const SeedMatch& m : matches) {
    int length = 8;
    // Extend left by up to 3 exactly matching bases.
    for (int i = 1; i <= 3; ++i) {
      if (m.db_pos < static_cast<std::uint32_t>(i) ||
          m.query_pos < static_cast<std::uint32_t>(i)) {
        break;
      }
      if (base_at(db_packed, m.db_pos - static_cast<std::uint32_t>(i)) !=
          base_at(query, m.query_pos - static_cast<std::uint32_t>(i))) {
        break;
      }
      ++length;
    }
    // Extend right by up to 3.
    for (int i = 0; i < 3; ++i) {
      const std::uint64_t dp = m.db_pos + 8 + static_cast<std::uint64_t>(i);
      const std::uint64_t qp =
          m.query_pos + 8 + static_cast<std::uint64_t>(i);
      if (dp >= db_bases || qp >= query_bases) break;
      if (base_at(db_packed, dp) != base_at(query, qp)) break;
      ++length;
    }
    if (length >= min_length) kept.push_back(m);
  }
  return kept;
}

namespace {

/// Best X-drop extension score in one direction. `step` is +1 (right) or
/// -1 (left); the seed itself is not re-scored.
int extend_direction(std::span<const std::uint8_t> db,
                     std::uint64_t db_bases,
                     std::span<const std::uint8_t> query,
                     std::uint64_t query_bases, const SeedMatch& m, int step,
                     const UngappedParams& params, int* best_steps) {
  int score = 0;
  int best = 0;
  *best_steps = 0;
  for (int i = 1; i <= params.window; ++i) {
    const std::int64_t dp =
        static_cast<std::int64_t>(m.db_pos) +
        (step > 0 ? 7 + i : -i);
    const std::int64_t qp =
        static_cast<std::int64_t>(m.query_pos) +
        (step > 0 ? 7 + i : -i);
    if (dp < 0 || qp < 0 || dp >= static_cast<std::int64_t>(db_bases) ||
        qp >= static_cast<std::int64_t>(query_bases)) {
      break;
    }
    score += (base_at(db, static_cast<std::uint64_t>(dp)) ==
              base_at(query, static_cast<std::uint64_t>(qp)))
                 ? params.match_reward
                 : params.mismatch_penalty;
    if (score > best) {
      best = score;
      *best_steps = i;
    }
    if (best - score >= params.x_drop) break;  // X-drop cutoff
  }
  return best;
}

}  // namespace

std::vector<Alignment> ungapped_extension(
    std::span<const SeedMatch> matches,
    std::span<const std::uint8_t> db_packed, std::uint64_t db_bases,
    const QueryIndex& index, const UngappedParams& params) {
  std::vector<Alignment> alignments;
  const auto query = index.query_packed();
  const std::uint64_t query_bases = index.query_bases();
  for (const SeedMatch& m : matches) {
    int left_steps = 0;
    int right_steps = 0;
    const int left = extend_direction(db_packed, db_bases, query,
                                      query_bases, m, -1, params,
                                      &left_steps);
    const int right = extend_direction(db_packed, db_bases, query,
                                       query_bases, m, +1, params,
                                       &right_steps);
    const int seed_score = 8 * params.match_reward;
    const int total = seed_score + left + right;
    if (total >= params.threshold) {
      alignments.push_back(Alignment{
          m, total,
          static_cast<std::uint32_t>(8 + left_steps + right_steps)});
    }
  }
  return alignments;
}

std::vector<Alignment> blastn_pipeline(
    std::span<const std::uint8_t> db_packed, std::uint64_t db_bases,
    const QueryIndex& index, const UngappedParams& params) {
  const auto hits = seed_match(db_packed, db_bases, index);
  const auto matches = seed_enumerate(hits, db_packed, index);
  const auto extended =
      small_extension(matches, db_packed, db_bases, index);
  return ungapped_extension(extended, db_packed, db_bases, index, params);
}

}  // namespace streamcalc::kernels
