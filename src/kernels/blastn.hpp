// Software implementation of the BLASTN pipeline stages modeled in the
// paper's Section 4 (Fig. 2): seed matching against an 8-mer query hash
// table, seed enumeration, small extension, and ungapped extension.
// Mirrors the Mercator/GPU implementation's structure ([9], [18]): each
// stage is a filter/expander over the previous stage's outputs, so each
// can be run — and its throughput measured — in isolation.
//
// The database is 2-bit packed (kernels/fa2bit.hpp); seed matching scans
// byte-aligned 8-mers (one lookup per packed byte pair), exactly the
// "each byte-aligned 8-mer of the database" formulation of the paper.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace streamcalc::kernels {

/// Reads base i (2-bit code 0-3) from packed DNA.
inline std::uint8_t base_at(std::span<const std::uint8_t> packed,
                            std::uint64_t i) {
  return (packed[i / 4] >> (2 * (i % 4))) & 0x3;
}

/// An 8-mer match: database position p, query position q (both in bases).
struct SeedMatch {
  std::uint32_t db_pos;
  std::uint32_t query_pos;
  friend bool operator==(const SeedMatch&, const SeedMatch&) = default;
};

/// A scored ungapped alignment around a seed.
struct Alignment {
  SeedMatch seed;
  int score;
  std::uint32_t length;  ///< total aligned length including the seed
};

/// Hash table of all 8-mers of the query sequence (2-bit packed). An 8-mer
/// is 16 bits, so the "hash" is a direct 65536-entry table (collision-free),
/// as a GPU implementation would hold in shared/DRAM memory.
class QueryIndex {
 public:
  /// Builds from a packed query of `bases` bases. Requires bases >= 8.
  QueryIndex(std::span<const std::uint8_t> query_packed,
             std::uint64_t bases);

  /// True if the 8-mer occurs anywhere in the query.
  bool contains(std::uint16_t kmer) const {
    return !table_[kmer].empty();
  }
  /// All query positions at which the 8-mer occurs.
  const std::vector<std::uint32_t>& positions(std::uint16_t kmer) const {
    return table_[kmer];
  }

  std::uint64_t query_bases() const { return bases_; }
  std::span<const std::uint8_t> query_packed() const { return packed_; }
  /// Number of distinct 8-mers present.
  std::size_t distinct_kmers() const { return distinct_; }

  /// Packs 8 consecutive bases starting at `pos` into a 16-bit k-mer key.
  static std::uint16_t kmer_at(std::span<const std::uint8_t> packed,
                               std::uint64_t pos);

 private:
  std::vector<std::uint8_t> packed_;
  std::uint64_t bases_;
  std::size_t distinct_ = 0;
  std::array<std::vector<std::uint32_t>, 65536> table_;
};

/// Stage: seed matching. Scans every byte-aligned 8-mer of the database
/// (positions 0, 4, 8, ...) and returns those positions whose 8-mer occurs
/// in the query — a highly selective filter for queries much shorter than
/// 2^16 bases.
std::vector<std::uint32_t> seed_match(std::span<const std::uint8_t> db_packed,
                                      std::uint64_t db_bases,
                                      const QueryIndex& index);

/// Stage: seed enumeration. Expands each passing database position into
/// one (p, q) match per query occurrence of its 8-mer (on average 1-2 per
/// position for non-repetitive queries).
std::vector<SeedMatch> seed_enumerate(
    std::span<const std::uint32_t> db_positions,
    std::span<const std::uint8_t> db_packed, const QueryIndex& index);

/// Stage: small extension. Tries to extend each match left and right by up
/// to 3 bases (exact matches only); keeps matches reaching a total length
/// of at least `min_length` (11 in the paper).
std::vector<SeedMatch> small_extension(std::span<const SeedMatch> matches,
                                       std::span<const std::uint8_t> db_packed,
                                       std::uint64_t db_bases,
                                       const QueryIndex& index,
                                       int min_length = 11);

/// Scoring parameters for ungapped extension.
struct UngappedParams {
  int match_reward = 1;
  int mismatch_penalty = -2;
  int x_drop = 8;        ///< stop extending after the score drops this far
  int window = 128;      ///< max bases examined on each side of the seed
  int threshold = 12;    ///< minimum score to report
};

/// Stage: ungapped extension. Extends each match in both directions with
/// match/mismatch scoring and an X-drop cutoff inside a fixed window, and
/// reports seeds whose best extension scores at or above the threshold.
std::vector<Alignment> ungapped_extension(
    std::span<const SeedMatch> matches,
    std::span<const std::uint8_t> db_packed, std::uint64_t db_bases,
    const QueryIndex& index, const UngappedParams& params = {});

/// Runs the whole pipeline (convenience for tests and examples).
std::vector<Alignment> blastn_pipeline(
    std::span<const std::uint8_t> db_packed, std::uint64_t db_bases,
    const QueryIndex& index, const UngappedParams& params = {});

}  // namespace streamcalc::kernels
