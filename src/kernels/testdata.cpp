#include "kernels/testdata.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"

namespace streamcalc::kernels {

std::string random_dna(util::Xoshiro256& rng, std::size_t bases) {
  static constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
  std::string s;
  s.reserve(bases);
  for (std::size_t i = 0; i < bases; ++i) {
    s.push_back(kBases[rng() & 0x3]);
  }
  return s;
}

void plant_homologies(std::string& db, const std::string& query,
                      util::Xoshiro256& rng, int count, std::size_t length,
                      double mutation_rate) {
  util::require(length <= query.size(),
                "plant_homologies: homology longer than the query");
  util::require(db.size() >= length,
                "plant_homologies: database shorter than the homology");
  static constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
  for (int c = 0; c < count; ++c) {
    const std::size_t q0 =
        static_cast<std::size_t>(rng() % (query.size() - length + 1));
    const std::size_t d0 =
        static_cast<std::size_t>(rng() % (db.size() - length + 1));
    for (std::size_t i = 0; i < length; ++i) {
      db[d0 + i] = rng.uniform01() < mutation_rate
                       ? kBases[rng() & 0x3]
                       : query[q0 + i];
    }
  }
}

std::vector<std::uint8_t> telemetry_text(util::Xoshiro256& rng,
                                         std::size_t bytes,
                                         double redundancy) {
  util::require(redundancy >= 0.0 && redundancy <= 1.0,
                "telemetry_text: redundancy must be in [0, 1]");
  // A small dictionary of recurring line templates; redundancy selects how
  // often a line reuses a template verbatim versus carrying fresh entropy.
  static constexpr const char* kTemplates[] = {
      "sensor=thermal-array zone=%02d status=NOMINAL reading=%06.2f C",
      "sensor=vibration axis=%02d status=NOMINAL rms=%06.4f g",
      "link=uplink-%02d queue_depth=%04d drops=0 state=UP",
      "pump=%02d flow=%07.3f lpm pressure=%06.2f kPa valves=OPEN",
  };
  std::vector<std::uint8_t> out;
  out.reserve(bytes + 128);
  char line[160];
  while (out.size() < bytes) {
    const auto t = rng() % (sizeof kTemplates / sizeof kTemplates[0]);
    int a;
    double b, c2;
    if (rng.uniform01() < redundancy) {
      // Recurring values: only a handful of distinct lines.
      a = static_cast<int>(rng() % 4);
      b = 20.0 + static_cast<double>(rng() % 4);
      c2 = 100.0 + static_cast<double>(rng() % 4);
    } else {
      a = static_cast<int>(rng() % 100);
      b = rng.uniform(0.0, 9999.0);
      c2 = rng.uniform(0.0, 9999.0);
    }
    int n;
    switch (t) {
      case 0:
        n = std::snprintf(line, sizeof line, kTemplates[0], a, b);
        break;
      case 1:
        n = std::snprintf(line, sizeof line, kTemplates[1], a, b / 1000.0);
        break;
      case 2:
        n = std::snprintf(line, sizeof line, kTemplates[2], a,
                          static_cast<int>(c2));
        break;
      default:
        n = std::snprintf(line, sizeof line, kTemplates[3], a, b, c2);
        break;
    }
    out.insert(out.end(), line, line + n);
    if (rng.uniform01() >= redundancy) {
      // Fresh lines carry a high-entropy trace id, defeating LZ matching.
      char tag[32];
      const int tn = std::snprintf(tag, sizeof tag, " trace=%016llx",
                                   static_cast<unsigned long long>(rng()));
      out.insert(out.end(), tag, tag + tn);
    }
    out.push_back('\n');
  }
  out.resize(bytes);
  return out;
}

}  // namespace streamcalc::kernels
