// A reliable sliding-window link simulator — the measurable stand-in for
// the paper's FPGA TCP/CMAC network stack (EasyNet [15], TCP demo [24]).
//
// The link is modeled at packet granularity on the DES kernel: a sender
// with a bounded in-flight window, per-packet serialization at the line
// rate, one-way propagation, i.i.d. packet loss with timeout
// retransmission, and cumulative acknowledgements releasing window slots.
// measure_arq_link() runs the simulation and summarizes the *effective*
// throughput spread (per-interval min/avg/max) and per-packet latencies —
// exactly the isolated measurement the paper would take of its network
// stage — and converts them into a netcalc::NodeSpec.
#pragma once

#include <cstdint>
#include <string>

#include "netcalc/node.hpp"
#include "util/units.hpp"

namespace streamcalc::kernels {

/// Link and protocol parameters.
struct ArqLinkParams {
  util::DataRate bandwidth;          ///< line (serialization) rate
  util::Duration propagation;        ///< one-way propagation delay
  util::DataSize packet;             ///< payload per packet
  std::size_t window = 16;           ///< max packets in flight
  double loss_rate = 0.0;            ///< i.i.d. per-packet loss probability
  util::Duration retransmit_timeout; ///< zero = 2 x RTT
  util::Duration measure_time;       ///< simulated measurement length
  std::uint64_t seed = 1;
};

/// Measurement outcome.
struct ArqLinkMeasurement {
  util::DataRate throughput_min;  ///< slowest measurement interval
  util::DataRate throughput_avg;  ///< overall goodput
  util::DataRate throughput_max;  ///< fastest measurement interval
  util::Duration latency_min;     ///< fastest packet delivery
  util::Duration latency_avg;
  util::Duration latency_max;     ///< slowest (includes retransmissions)
  util::DataSize packet;          ///< packet size measured with
  std::uint64_t packets_delivered = 0;
  std::uint64_t retransmissions = 0;

  /// Link NodeSpec for the pipeline models (cut-through, with the observed
  /// rate spread and the minimum latency as the pipeline-fill override).
  netcalc::NodeSpec to_node(std::string name, netcalc::NodeKind kind) const;
};

/// Simulates the link under saturating load and measures it. Requires
/// positive bandwidth/packet/measure_time, window >= 1, loss in [0, 1).
ArqLinkMeasurement measure_arq_link(const ArqLinkParams& params);

}  // namespace streamcalc::kernels
