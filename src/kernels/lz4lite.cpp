#include "kernels/lz4lite.hpp"

#include <cstring>

#include "util/error.hpp"

namespace streamcalc::kernels {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kWindow = 65535;  // max 2-byte offset
constexpr int kHashBits = 14;

std::uint32_t load32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint32_t hash4(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void emit_length(std::vector<std::uint8_t>& out, std::size_t len) {
  while (len >= 255) {
    out.push_back(255);
    len -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(len));
}

}  // namespace

std::vector<std::uint8_t> lz4lite_compress(std::span<const std::uint8_t> in) {
  std::vector<std::uint8_t> out;
  out.reserve(in.size() / 2 + 16);
  std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, 0xFFFFFFFFu);

  std::size_t pos = 0;
  std::size_t literal_start = 0;
  // Stop the match search a little before the end so 4-byte loads stay in
  // bounds; the tail is emitted as literals.
  const std::size_t match_limit = in.size() > 12 ? in.size() - 12 : 0;

  auto emit_sequence = [&](std::size_t literals, std::size_t match_len,
                           std::size_t offset) {
    const std::uint8_t lit_nibble =
        literals >= 15 ? 15 : static_cast<std::uint8_t>(literals);
    const bool has_match = match_len >= kMinMatch;
    const std::size_t mcode = has_match ? match_len - kMinMatch : 0;
    const std::uint8_t match_nibble =
        has_match ? (mcode >= 15 ? 15 : static_cast<std::uint8_t>(mcode))
                  : 0;
    out.push_back(static_cast<std::uint8_t>((lit_nibble << 4) | match_nibble));
    if (lit_nibble == 15) emit_length(out, literals - 15);
    out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(literal_start),
               in.begin() + static_cast<std::ptrdiff_t>(literal_start + literals));
    if (has_match) {
      out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
      out.push_back(static_cast<std::uint8_t>((offset >> 8) & 0xFF));
      if (match_nibble == 15) emit_length(out, mcode - 15);
    }
  };

  while (pos < match_limit) {
    const std::uint32_t v = load32(in.data() + pos);
    const std::uint32_t h = hash4(v);
    const std::uint32_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(pos);
    if (cand != 0xFFFFFFFFu && pos - cand <= kWindow &&
        load32(in.data() + cand) == v) {
      // Extend the match as far as the data allows.
      std::size_t len = kMinMatch;
      while (pos + len < in.size() && in[cand + len] == in[pos + len]) {
        ++len;
      }
      emit_sequence(pos - literal_start, len, pos - cand);
      pos += len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  // Final literals-only sequence (always present, even if empty).
  emit_sequence(in.size() - literal_start, 0, 0);
  return out;
}

std::vector<std::uint8_t> lz4lite_decompress(
    std::span<const std::uint8_t> in) {
  std::vector<std::uint8_t> out;
  out.reserve(in.size() * 2);
  std::size_t pos = 0;
  const auto need = [&](std::size_t n) {
    util::require(pos + n <= in.size(), "lz4lite: truncated stream");
  };
  const auto read_length = [&](std::size_t base) {
    std::size_t len = base;
    if (base == 15) {
      std::uint8_t b;
      do {
        need(1);
        b = in[pos++];
        len += b;
      } while (b == 255);
    }
    return len;
  };

  while (pos < in.size()) {
    need(1);
    const std::uint8_t token = in[pos++];
    const std::size_t literals = read_length(token >> 4);
    need(literals);
    out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(pos),
               in.begin() + static_cast<std::ptrdiff_t>(pos + literals));
    pos += literals;
    if (pos == in.size()) break;  // final sequence: literals only

    need(2);
    const std::size_t offset =
        static_cast<std::size_t>(in[pos]) |
        (static_cast<std::size_t>(in[pos + 1]) << 8);
    pos += 2;
    util::require(offset >= 1 && offset <= out.size(),
                  "lz4lite: match offset out of range");
    const std::size_t match_len = read_length(token & 0x0F) + kMinMatch;
    // Overlapping copies are valid (and common for runs): copy bytewise.
    std::size_t src = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) {
      out.push_back(out[src + i]);
    }
  }
  return out;
}

double lz4lite_ratio(std::span<const std::uint8_t> in) {
  util::require(!in.empty(), "lz4lite_ratio requires non-empty input");
  const auto compressed = lz4lite_compress(in);
  return static_cast<double>(in.size()) /
         static_cast<double>(compressed.size());
}

}  // namespace streamcalc::kernels
