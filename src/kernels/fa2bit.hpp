// fa_2bit: FASTA-to-2-bit DNA conversion, the DIBS pre-processing stage the
// paper's BLAST pipeline runs on an FPGA ([8], [13]).
//
// Each base A/C/G/T (case-insensitive) packs into 2 bits; four bases per
// output byte, first base in the least-significant bits. Ambiguous IUPAC
// codes (N, R, ...) are mapped to A and counted, matching the common
// practice of masking them out downstream. FASTA header lines ('>' to end
// of line) and whitespace are skipped.
//
// The converter is a streaming kernel: feed arbitrary chunks, collect
// packed output, so its throughput can be measured in isolation
// (kernels/measure.hpp) exactly as the paper measures its stages.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace streamcalc::kernels {

/// 2-bit encoding of one base; 0xFF for non-base characters.
std::uint8_t base_code(char c);

/// Streaming FASTA -> 2-bit converter. Not thread-safe.
class Fa2Bit {
 public:
  /// Consumes a chunk of FASTA text, appending packed bases to the
  /// internal buffer.
  void feed(std::string_view chunk);

  /// Flushes a final partial byte (zero-padded). Call once at end of input.
  void finish();

  /// Packed output so far (4 bases per byte, LSB-first).
  const std::vector<std::uint8_t>& packed() const { return packed_; }
  /// Number of bases encoded (may exceed 4 * packed().size() before
  /// finish() pads the tail byte).
  std::uint64_t bases() const { return bases_; }
  /// Ambiguous (non-ACGT) bases mapped to A.
  std::uint64_t ambiguous() const { return ambiguous_; }

  /// Clears all state for reuse.
  void reset();

 private:
  std::vector<std::uint8_t> packed_;
  std::uint64_t bases_ = 0;
  std::uint64_t ambiguous_ = 0;
  std::uint8_t pending_ = 0;   ///< partial byte being filled
  int pending_count_ = 0;      ///< bases in the partial byte (0-3)
  bool in_header_ = false;     ///< inside a '>' header line
};

/// One-shot convenience: converts a whole FASTA string.
std::vector<std::uint8_t> fa2bit(std::string_view fasta);

/// Unpacks 2-bit data back to bases (for tests and downstream kernels).
std::vector<char> unpack_2bit(std::span<const std::uint8_t> packed,
                              std::uint64_t bases);

}  // namespace streamcalc::kernels
