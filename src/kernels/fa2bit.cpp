#include "kernels/fa2bit.hpp"

#include "util/error.hpp"

namespace streamcalc::kernels {

std::uint8_t base_code(char c) {
  switch (c) {
    case 'A':
    case 'a':
      return 0;
    case 'C':
    case 'c':
      return 1;
    case 'G':
    case 'g':
      return 2;
    case 'T':
    case 't':
      return 3;
    default:
      return 0xFF;
  }
}

void Fa2Bit::feed(std::string_view chunk) {
  for (char c : chunk) {
    if (in_header_) {
      if (c == '\n') in_header_ = false;
      continue;
    }
    if (c == '>') {
      in_header_ = true;
      continue;
    }
    if (c == '\n' || c == '\r' || c == ' ' || c == '\t') continue;

    std::uint8_t code = base_code(c);
    if (code == 0xFF) {
      ++ambiguous_;
      code = 0;  // mask ambiguous bases to A
    }
    pending_ = static_cast<std::uint8_t>(
        pending_ | (code << (2 * pending_count_)));
    if (++pending_count_ == 4) {
      packed_.push_back(pending_);
      pending_ = 0;
      pending_count_ = 0;
    }
    ++bases_;
  }
}

void Fa2Bit::finish() {
  if (pending_count_ > 0) {
    packed_.push_back(pending_);
    pending_ = 0;
    pending_count_ = 0;
  }
}

void Fa2Bit::reset() {
  packed_.clear();
  bases_ = 0;
  ambiguous_ = 0;
  pending_ = 0;
  pending_count_ = 0;
  in_header_ = false;
}

std::vector<std::uint8_t> fa2bit(std::string_view fasta) {
  Fa2Bit conv;
  conv.feed(fasta);
  conv.finish();
  return conv.packed();
}

std::vector<char> unpack_2bit(std::span<const std::uint8_t> packed,
                              std::uint64_t bases) {
  util::require(bases <= packed.size() * 4,
                "unpack_2bit: more bases requested than packed data holds");
  static constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
  std::vector<char> out;
  out.reserve(bases);
  for (std::uint64_t i = 0; i < bases; ++i) {
    const std::uint8_t byte = packed[i / 4];
    out.push_back(kBases[(byte >> (2 * (i % 4))) & 0x3]);
  }
  return out;
}

}  // namespace streamcalc::kernels
