// M/M/1 queueing-network baseline model (Faber et al. [12], used by the
// paper as its comparison model in Tables 1 and 3).
//
// Each pipeline stage is an M/M/1 queue with exponential service at the
// stage's *average* measured rate, normalized to pipeline-input bytes with
// the *average* volume ratios. Flow analysis over the open tandem network
// yields a roofline throughput (the minimum normalized service rate) and
// per-stage utilization/queue-length/waiting-time metrics at the offered
// load. The model is intentionally optimistic — it assumes Markovian
// behaviour at every stage, which is why the paper finds it over-predicts
// relative to network calculus and simulation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netcalc/node.hpp"
#include "netcalc/pipeline.hpp"
#include "util/units.hpp"

namespace streamcalc::queueing {

/// Per-stage M/M/1 metrics (input-normalized rates).
struct StageMetrics {
  std::string name;
  util::DataRate arrival_rate;  ///< lambda: offered load at the stage
  util::DataRate service_rate;  ///< mu: normalized average service rate
  double utilization = 0.0;     ///< rho = lambda / mu
  bool stable = false;          ///< rho < 1
  double mean_jobs = 0.0;       ///< L = rho / (1 - rho); inf if unstable
  util::Duration mean_sojourn;  ///< W = 1 / (mu - lambda); inf if unstable
  /// Wq = rho * W: time in queue before service starts; inf if unstable.
  util::Duration mean_waiting;
};

/// Whole-pipeline flow-analysis results.
struct QueueingReport {
  std::vector<StageMetrics> stages;
  /// Roofline prediction: min over stages of the normalized average service
  /// rate — the throughput number the paper quotes for "queueing theory
  /// prediction".
  util::DataRate roofline_throughput;
  std::size_t bottleneck = 0;  ///< index of the roofline stage
  /// Sum of per-stage sojourn times at the offered load (end-to-end mean
  /// latency; infinite if any stage is unstable).
  util::Duration total_sojourn;
  /// True when every stage is stable at the offered load.
  bool stable = false;
};

/// Runs the M/M/1 flow analysis for `nodes` fed by `source`. The offered
/// load is min(source rate, roofline) — the flow the network can actually
/// carry in steady state; utilizations at the bottleneck approach 1.
QueueingReport analyze(const std::vector<netcalc::NodeSpec>& nodes,
                       const netcalc::SourceSpec& source);

}  // namespace streamcalc::queueing
