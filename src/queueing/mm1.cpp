#include "queueing/mm1.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace streamcalc::queueing {

namespace {
using util::DataRate;
using util::Duration;
}  // namespace

QueueingReport analyze(const std::vector<netcalc::NodeSpec>& nodes,
                       const netcalc::SourceSpec& source) {
  util::require(!nodes.empty(), "queueing::analyze requires nodes");
  util::require(source.rate > DataRate::bytes_per_sec(0),
                "queueing::analyze requires a positive source rate");
  for (const netcalc::NodeSpec& n : nodes) n.validate();

  // Average-volume normalization: bytes at each stage per input byte.
  std::vector<double> vol(nodes.size(), 1.0);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    vol[i] = vol[i - 1] * nodes[i - 1].volume.avg;
  }

  QueueingReport report;
  report.stages.reserve(nodes.size());

  // Normalized average service rates and the roofline.
  std::vector<double> mu(nodes.size());
  double roofline = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    mu[i] = nodes[i].effective_isolated_rate().in_bytes_per_sec() / vol[i];
    if (mu[i] < roofline) {
      roofline = mu[i];
      report.bottleneck = i;
    }
  }
  report.roofline_throughput = DataRate::bytes_per_sec(roofline);

  // Offered load: the source rate, clipped to what the network can carry.
  const double lambda =
      std::min(source.rate.in_bytes_per_sec(), roofline);

  report.stable = true;
  double total_sojourn = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    StageMetrics m;
    m.name = nodes[i].name;
    m.arrival_rate = DataRate::bytes_per_sec(lambda);
    m.service_rate = DataRate::bytes_per_sec(mu[i]);
    m.utilization = lambda / mu[i];
    m.stable = m.utilization < 1.0;
    if (m.stable) {
      m.mean_jobs = m.utilization / (1.0 - m.utilization);
      // Job-level M/M/1: with jobs of `job_norm` normalized bytes, the job
      // rates are lambda/job_norm and mu/job_norm, so the mean sojourn is
      // W = 1/(mu_jobs - lambda_jobs) = job_norm / (mu - lambda).
      const double job_norm = nodes[i].block_in.in_bytes() / vol[i];
      m.mean_sojourn = Duration::seconds(job_norm / (mu[i] - lambda));
      // Wq = W - E[S] = W - job_norm/mu = rho * W.
      m.mean_waiting =
          Duration::seconds(m.utilization * m.mean_sojourn.in_seconds());
      total_sojourn += m.mean_sojourn.in_seconds();
    } else {
      report.stable = false;
      m.mean_jobs = std::numeric_limits<double>::infinity();
      m.mean_sojourn = Duration::infinite();
      m.mean_waiting = Duration::infinite();
      total_sojourn = std::numeric_limits<double>::infinity();
    }
    report.stages.push_back(std::move(m));
  }
  report.total_sojourn = Duration::seconds(total_sojourn);
  return report;
}

}  // namespace streamcalc::queueing
