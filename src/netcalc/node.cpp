#include "netcalc/node.hpp"

#include "util/error.hpp"
#include "util/format.hpp"

namespace streamcalc::netcalc {

const char* to_string(NodeKind k) {
  switch (k) {
    case NodeKind::kCompute:
      return "compute";
    case NodeKind::kNetworkLink:
      return "network";
    case NodeKind::kPcieLink:
      return "pcie";
  }
  return "?";
}

NodeSpec NodeSpec::compute(std::string name, util::DataSize block_in,
                           util::DataSize block_out, util::Duration time_min,
                           util::Duration time_max) {
  NodeSpec n;
  n.name = std::move(name);
  n.kind = NodeKind::kCompute;
  n.block_in = block_in;
  n.block_out = block_out;
  n.time_min = time_min;
  n.time_max = time_max;
  n.validate();
  return n;
}

NodeSpec NodeSpec::link(std::string name, NodeKind kind,
                        util::DataRate bandwidth, util::DataSize packet,
                        util::Duration propagation) {
  util::require(bandwidth > util::DataRate::bytes_per_sec(0),
                "link bandwidth must be positive");
  NodeSpec n;
  n.name = std::move(name);
  n.kind = kind;
  n.block_in = packet;
  n.block_out = packet;
  const util::Duration serialization = packet / bandwidth;
  n.time_min = serialization + propagation;
  n.time_max = serialization + propagation;
  n.aggregates = false;
  n.validate();
  return n;
}

NodeSpec NodeSpec::from_rates(std::string name, NodeKind kind,
                              util::DataSize block, util::DataRate rate_min,
                              util::DataRate rate_avg,
                              util::DataRate rate_max) {
  util::require(rate_min > util::DataRate::bytes_per_sec(0) &&
                    rate_min <= rate_avg && rate_avg <= rate_max,
                "from_rates requires 0 < min <= avg <= max");
  NodeSpec n;
  n.name = std::move(name);
  n.kind = kind;
  n.block_in = block;
  n.block_out = block;
  n.time_min = block / rate_max;
  n.time_avg = block / rate_avg;
  n.time_max = block / rate_min;
  n.validate();
  return n;
}

double NodeSpec::job_ratio() const {
  return block_in.in_bytes() / block_out.in_bytes();
}

util::DataRate NodeSpec::rate_min() const { return block_in / time_max; }

util::DataRate NodeSpec::rate_avg() const {
  return block_in / effective_time_avg();
}

util::DataRate NodeSpec::rate_max() const { return block_in / time_min; }

util::DataRate NodeSpec::effective_isolated_rate() const {
  return rate_isolated > util::DataRate::bytes_per_sec(0) ? rate_isolated
                                                          : rate_avg();
}

util::Duration NodeSpec::effective_time_avg() const {
  return time_avg > util::Duration::seconds(0) ? time_avg
                                               : (time_min + time_max) / 2.0;
}

void NodeSpec::validate() const {
  util::require(!name.empty(), "node name must not be empty");
  util::require(block_in > util::DataSize::bytes(0) && block_in.is_finite(),
                "node '" + name + "': block_in must be positive and finite "
                "(block_in=" +
                    util::format_significant(block_in.in_bytes(), 17) + " B)");
  util::require(block_out > util::DataSize::bytes(0) && block_out.is_finite(),
                "node '" + name + "': block_out must be positive and finite "
                "(block_out=" +
                    util::format_significant(block_out.in_bytes(), 17) + " B)");
  util::require(
      time_min > util::Duration::seconds(0) && time_min.is_finite(),
      "node '" + name + "': time_min must be positive and finite (time_min=" +
          util::format_significant(time_min.in_seconds(), 17) + " s)");
  util::require(time_max >= time_min && time_max.is_finite(),
                "node '" + name + "': time_max must be >= time_min (time_min=" +
                    util::format_significant(time_min.in_seconds(), 17) +
                    " s, time_max=" +
                    util::format_significant(time_max.in_seconds(), 17) +
                    " s)");
  if (time_avg > util::Duration::seconds(0)) {
    util::require(time_avg >= time_min && time_avg <= time_max,
                  "node '" + name +
                      "': time_avg must lie within [time_min, time_max] "
                      "(time_avg=" +
                      util::format_significant(time_avg.in_seconds(), 17) +
                      " s, time_min=" +
                      util::format_significant(time_min.in_seconds(), 17) +
                      " s, time_max=" +
                      util::format_significant(time_max.in_seconds(), 17) +
                      " s)");
  }
  util::require(volume.min > 0.0 && volume.min <= volume.avg &&
                    volume.avg <= volume.max,
                "node '" + name + "': volume ratios must satisfy "
                "0 < min <= avg <= max (min=" +
                    util::format_significant(volume.min, 17) + ", avg=" +
                    util::format_significant(volume.avg, 17) + ", max=" +
                    util::format_significant(volume.max, 17) + ")");
}

}  // namespace streamcalc::netcalc
