#include "netcalc/dag.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>

#include "minplus/deviation.hpp"
#include "minplus/cache.hpp"
#include "minplus/operations.hpp"
#include "netcalc/bounds.hpp"
#include "netcalc/packetizer.hpp"
#include "util/error.hpp"

namespace streamcalc::netcalc {

namespace {
using minplus::Curve;
using util::DataRate;
using util::DataSize;
using util::Duration;

double pick_rate_basis(const NodeSpec& node, RateBasis basis) {
  switch (basis) {
    case RateBasis::kMin:
      return node.rate_min().in_bytes_per_sec();
    case RateBasis::kAvg:
      return node.rate_avg().in_bytes_per_sec();
    case RateBasis::kMax:
      return node.rate_max().in_bytes_per_sec();
  }
  return node.rate_min().in_bytes_per_sec();
}
}  // namespace

void DagSpec::validate() const {
  util::require(!nodes.empty(), "DagSpec requires at least one node");
  util::require(!entries.empty(), "DagSpec requires at least one entry");
  for (const NodeSpec& n : nodes) n.validate();
  std::vector<double> out_sum(nodes.size(), 0.0);
  for (const DagEdge& e : edges) {
    util::require(e.from < nodes.size() && e.to < nodes.size(),
                  "DagSpec edge index out of range");
    util::require(e.from != e.to, "DagSpec self-loop");
    util::require(e.fraction > 0.0 && e.fraction <= 1.0,
                  "DagSpec edge fraction must be in (0, 1]");
    out_sum[e.from] += e.fraction;
  }
  for (double s : out_sum) {
    util::require(s <= 1.0 + 1e-9,
                  "DagSpec outgoing fractions exceed 1 at a node");
  }
  double entry_sum = 0.0;
  for (const DagEdge& e : entries) {
    util::require(e.to < nodes.size(), "DagSpec entry index out of range");
    util::require(e.fraction > 0.0 && e.fraction <= 1.0,
                  "DagSpec entry fraction must be in (0, 1]");
    entry_sum += e.fraction;
  }
  util::require(entry_sum <= 1.0 + 1e-9,
                "DagSpec entry fractions exceed 1");
  // Acyclicity and reachability via the topological sort.
  const auto order = topological_order();
  util::require(order.size() == nodes.size(),
                "DagSpec is cyclic or has nodes unreachable from the "
                "entries");
}

std::vector<std::size_t> DagSpec::topological_order() const {
  std::vector<std::size_t> indegree(nodes.size(), 0);
  for (const DagEdge& e : edges) ++indegree[e.to];
  std::queue<std::size_t> ready;
  std::vector<bool> entry_fed(nodes.size(), false);
  for (const DagEdge& e : entries) entry_fed[e.to] = true;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::vector<std::size_t> order;
  order.reserve(nodes.size());
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop();
    order.push_back(i);
    for (const DagEdge& e : edges) {
      if (e.from == i && --indegree[e.to] == 0) ready.push(e.to);
    }
  }
  return order;
}

std::vector<std::vector<std::size_t>> DagSpec::paths() const {
  std::vector<bool> has_out(nodes.size(), false);
  for (const DagEdge& e : edges) has_out[e.from] = true;
  std::vector<std::vector<std::size_t>> result;
  std::vector<std::size_t> stack;
  const std::function<void(std::size_t)> dfs = [&](std::size_t i) {
    stack.push_back(i);
    if (!has_out[i]) {
      result.push_back(stack);
    } else {
      for (const DagEdge& e : edges) {
        if (e.from == i) dfs(e.to);
      }
    }
    stack.pop_back();
  };
  for (const DagEdge& e : entries) dfs(e.to);
  return result;
}

DagModel::DagModel(DagSpec dag, SourceSpec source, ModelPolicy policy)
    : dag_(std::move(dag)), source_(source), policy_(policy) {
  dag_.validate();
  util::require(source_.rate > DataRate::bytes_per_sec(0),
                "DagModel requires a positive source rate");
  build();
}

void DagModel::build() {
  const std::size_t n = dag_.nodes.size();
  arrival_.resize(n);
  service_.resize(n);
  max_service_.resize(n);
  output_.resize(n);
  vol_in_.assign(n, 0.0);

  // Worst-case volume factors: entry edges carry `fraction` of the source
  // volume; graph edges carry fraction x the producer's output volume.
  std::vector<double> vol_out(n, 0.0);
  const auto order = dag_.topological_order();
  for (const DagEdge& e : dag_.entries) vol_in_[e.to] += e.fraction;
  for (std::size_t i : order) {
    for (const DagEdge& e : dag_.edges) {
      if (e.to == i) {
        vol_in_[i] += e.fraction * vol_out[e.from];
      }
    }
    vol_out[i] = vol_in_[i] * dag_.nodes[i].volume.max;
  }

  // Base source envelope (packetized, optionally capped).
  Curve alpha = Curve::affine(source_.rate, source_.burst);
  if (source_.job_volume.is_finite()) {
    alpha = minplus::minimum(
        alpha, Curve::constant(source_.job_volume.in_bytes()));
  }
  alpha = packetize_arrival(alpha, source_.packet);

  // Per-edge envelopes: proportional splitters with block granularity.
  std::vector<Curve> edge_curve(dag_.edges.size());
  std::vector<Curve> entry_curve(dag_.entries.size());
  for (std::size_t k = 0; k < dag_.entries.size(); ++k) {
    entry_curve[k] = alpha.scale_value(dag_.entries[k].fraction);
    if (dag_.entries[k].fraction < 1.0) {
      // Splitter granularity: a sub-flow can be ahead of its long-run
      // share by up to one source packet.
      entry_curve[k] =
          entry_curve[k].plus_step(source_.packet.in_bytes());
    }
  }

  for (std::size_t i : order) {
    const NodeSpec& node = dag_.nodes[i];
    // Merge incoming envelopes.
    Curve merged = Curve::zero();
    for (std::size_t k = 0; k < dag_.entries.size(); ++k) {
      if (dag_.entries[k].to == i) {
        merged = minplus::add(merged, entry_curve[k]);
      }
    }
    for (std::size_t k = 0; k < dag_.edges.size(); ++k) {
      if (dag_.edges[k].to == i) {
        merged = minplus::add(merged, edge_curve[k]);
      }
    }
    arrival_[i] = std::move(merged);

    // Normalized service curves.
    const double vol = vol_in_[i];
    SC_ASSERT(vol > 0.0);
    const double rate_lo = pick_rate_basis(node, policy_.service_basis) / vol;
    const double rate_hi =
        pick_rate_basis(node, policy_.max_service_basis) / vol;
    // Collection wait only when the node's block exceeds the granularity
    // of what reaches it (the chain model's b_n > b*_{n-1} condition).
    double incoming_block = std::numeric_limits<double>::infinity();
    for (const DagEdge& e : dag_.entries) {
      if (e.to == i) {
        incoming_block =
            std::min(incoming_block, source_.packet.in_bytes());
      }
    }
    for (const DagEdge& e : dag_.edges) {
      if (e.to == i) {
        const NodeSpec& prev = dag_.nodes[e.from];
        // Effective emitted packet: filters emit less than block_out.
        incoming_block = std::min(
            incoming_block,
            std::min(prev.block_out.in_bytes(),
                     prev.block_in.in_bytes() * prev.volume.min));
      }
    }
    Duration latency = node.latency();
    if (node.aggregates && node.block_in.in_bytes() > incoming_block) {
      const double sustained = arrival_[i].tail_slope();
      if (sustained > 0.0 && std::isfinite(sustained)) {
        // One upstream packet of slack for arrival-phase misalignment.
        latency += Duration::seconds(
            (node.block_in.in_bytes() +
             (std::isfinite(incoming_block) ? incoming_block : 0.0)) /
            vol / sustained);
      }
    }
    service_[i] = Curve::rate_latency(rate_lo, latency.in_seconds());
    const double out_block_norm =
        node.block_out.in_bytes() / (vol * node.volume.max);
    if (policy_.packetize) {
      service_[i] = packetize_service(service_[i],
                                      DataSize::bytes(out_block_norm));
    }
    max_service_[i] =
        policy_.max_service_latency
            ? Curve::rate_latency(rate_hi, latency.in_seconds())
            : Curve::rate(rate_hi);

    output_[i] = output_bound(arrival_[i], service_[i], max_service_[i]);

    // Outgoing edge envelopes.
    for (std::size_t k = 0; k < dag_.edges.size(); ++k) {
      if (dag_.edges[k].from == i) {
        edge_curve[k] = output_[i].scale_value(dag_.edges[k].fraction);
        if (dag_.edges[k].fraction < 1.0) {
          edge_curve[k] = edge_curve[k].plus_step(out_block_norm);
        }
      }
    }
  }

  // Stash per-edge/entry envelopes for the path analysis.
  edge_curve_ = std::move(edge_curve);
  entry_curve_ = std::move(entry_curve);
}

const Curve& DagModel::node_arrival(std::size_t i) const {
  util::require(i < arrival_.size(), "node index out of range");
  return arrival_[i];
}

const Curve& DagModel::node_service(std::size_t i) const {
  util::require(i < service_.size(), "node index out of range");
  return service_[i];
}

std::vector<DagNodeAnalysis> DagModel::per_node_analysis() const {
  std::vector<DagNodeAnalysis> out;
  out.reserve(dag_.nodes.size());
  for (std::size_t i = 0; i < dag_.nodes.size(); ++i) {
    DagNodeAnalysis a;
    a.name = dag_.nodes[i].name;
    a.load_regime = regime(arrival_[i], service_[i]);
    a.arrival_rate = DataRate::bytes_per_sec(arrival_[i].tail_slope());
    a.service_rate = DataRate::bytes_per_sec(service_[i].tail_slope());
    a.delay = delay_bound_for(i);
    a.backlog = backlog_bound_for(i);
    a.buffer_bytes = a.backlog * vol_in_[i];
    out.push_back(std::move(a));
  }
  return out;
}

util::Duration DagModel::delay_bound_for(std::size_t i) const {
  return netcalc::delay_bound(arrival_[i], service_[i]).value;
}

util::DataSize DagModel::backlog_bound_for(std::size_t i) const {
  return netcalc::backlog_bound(arrival_[i], service_[i]).value;
}

std::vector<DagPathAnalysis> DagModel::per_path_analysis() const {
  std::vector<DagPathAnalysis> result;
  for (const auto& path : dag_.paths()) {
    DagPathAnalysis pa;
    pa.nodes = path;

    // The flow of interest entering the path head: the entry envelope(s)
    // feeding it.
    Curve flow = Curve::zero();
    for (std::size_t k = 0; k < dag_.entries.size(); ++k) {
      if (dag_.entries[k].to == path.front()) {
        flow = minplus::add(flow, entry_curve_[k]);
      }
    }

    // Concatenate residual service along the path: at each node, subtract
    // the cross-traffic (incoming envelopes not contributed by the
    // previous path hop) from the node's service curve.
    Curve path_service = Curve::delta(0.0);
    bool valid = true;
    for (std::size_t hop = 0; hop < path.size(); ++hop) {
      const std::size_t i = path[hop];
      Curve cross = Curve::zero();
      for (std::size_t k = 0; k < dag_.entries.size(); ++k) {
        if (dag_.entries[k].to == i &&
            !(hop == 0)) {  // at the head, entries ARE the flow
          cross = minplus::add(cross, entry_curve_[k]);
        }
      }
      for (std::size_t k = 0; k < dag_.edges.size(); ++k) {
        const DagEdge& e = dag_.edges[k];
        if (e.to != i) continue;
        if (hop > 0 && e.from == path[hop - 1]) continue;  // the flow itself
        cross = minplus::add(cross, edge_curve_[k]);
      }
      Curve residual = service_[i];
      if (!cross.is_zero()) {
        try {
          residual = minplus::subtract_clamped(service_[i], cross);
        } catch (const util::PreconditionError&) {
          valid = false;
          break;
        }
      }
      pa.hop_residuals.push_back(residual);
      path_service = minplus::cached_convolve(path_service, residual);
    }
    pa.residual_valid = valid;
    pa.delay = valid ? util::Duration::seconds(minplus::horizontal_deviation(
                           flow, path_service))
                     : util::Duration::infinite();
    if (valid) {
      pa.flow = std::move(flow);
      pa.path_service = std::move(path_service);
    } else {
      pa.hop_residuals.clear();
    }
    result.push_back(std::move(pa));
  }
  return result;
}

DelayReport DagModel::delay_bound() const {
  Duration worst = Duration::seconds(0);
  for (const DagPathAnalysis& p : per_path_analysis()) {
    worst = std::max(worst, p.delay);
  }
  return DelayReport::worst_case(worst);
}

BacklogReport DagModel::backlog_bound() const {
  double total = 0.0;
  for (std::size_t i = 0; i < dag_.nodes.size(); ++i) {
    const double x = backlog_bound_for(i).in_bytes();
    if (x == std::numeric_limits<double>::infinity()) {
      return BacklogReport::worst_case(DataSize::infinite());
    }
    total += x;
  }
  return BacklogReport::worst_case(DataSize::bytes(total));
}

DelayReport DagModel::delay_bound(double epsilon) const {
  util::require(epsilon > 0.0 && epsilon < 1.0,
                "delay_bound requires epsilon in (0, 1)");
  DelayReport worst =
      DelayReport::violation_prob(Duration::seconds(0), epsilon,
                                  BoundProvenance{BoundMethod::kDetClamp, 0.0});
  for (const DagPathAnalysis& p : per_path_analysis()) {
    DelayReport r;
    if (p.residual_valid) {
      r = netcalc::delay_bound(p.flow, p.path_service, epsilon);
    } else {
      r = DelayReport::violation_prob(
          Duration::infinite(), epsilon,
          BoundProvenance{BoundMethod::kChernoff, 0.0});
    }
    if (r.value > worst.value) worst = r;
  }
  worst.epsilon = epsilon;
  return worst;
}

BacklogReport DagModel::backlog_bound(double epsilon) const {
  util::require(epsilon > 0.0 && epsilon < 1.0,
                "backlog_bound requires epsilon in (0, 1)");
  // Union bound: each node at epsilon/n, so the summed statement holds
  // with probability >= 1 - epsilon.
  const double per_node =
      epsilon / static_cast<double>(dag_.nodes.size());
  double total = 0.0;
  BoundProvenance prov{BoundMethod::kDetClamp, 0.0};
  for (std::size_t i = 0; i < dag_.nodes.size(); ++i) {
    const BacklogReport r =
        netcalc::backlog_bound(arrival_[i], service_[i], per_node);
    if (!r.value.is_finite()) {
      return BacklogReport::violation_prob(DataSize::infinite(), epsilon,
                                           r.provenance);
    }
    if (r.provenance.method == BoundMethod::kChernoff) prov = r.provenance;
    total += r.value.in_bytes();
  }
  return BacklogReport::violation_prob(DataSize::bytes(total), epsilon, prov);
}

}  // namespace streamcalc::netcalc
