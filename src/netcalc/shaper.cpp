#include "netcalc/shaper.hpp"

#include "minplus/deviation.hpp"
#include "minplus/operations.hpp"
#include "netcalc/packetizer.hpp"
#include "util/error.hpp"

namespace streamcalc::netcalc {

ShaperAnalysis analyze_shaper(const minplus::Curve& alpha,
                              const minplus::Curve& sigma) {
  util::require(sigma.is_concave_from_origin(),
                "analyze_shaper requires a concave shaping curve with "
                "sigma(0) = 0 (e.g. a leaky bucket)");
  ShaperAnalysis a;
  a.output_envelope = minplus::convolve(alpha, sigma);
  a.delay_bound = util::Duration::seconds(
      minplus::horizontal_deviation(alpha, sigma));
  a.buffer_bound =
      util::DataSize::bytes(minplus::vertical_deviation(alpha, sigma));
  return a;
}

ShapedPipeline shape_source(std::vector<NodeSpec> nodes, SourceSpec source,
                            ModelPolicy policy, util::DataRate sigma_rate,
                            util::DataSize sigma_burst) {
  util::require(sigma_rate > util::DataRate::bytes_per_sec(0),
                "shape_source requires a positive shaping rate");
  // The shaper sees the raw (packetized) offered flow.
  minplus::Curve alpha = packetize_arrival(
      minplus::Curve::affine(source.rate, source.burst), source.packet);
  if (source.job_volume.is_finite()) {
    alpha = minplus::minimum(
        alpha, minplus::Curve::constant(source.job_volume.in_bytes()));
  }
  const minplus::Curve sigma =
      minplus::Curve::affine(sigma_rate, sigma_burst);

  ShaperAnalysis shaper = analyze_shaper(alpha, sigma);

  // Downstream, the flow's sustained rate is the shaped one.
  SourceSpec shaped = source;
  shaped.rate = std::min(source.rate, sigma_rate);
  PipelineModel model = PipelineModel::with_arrival(
      std::move(nodes), shaped, policy, shaper.output_envelope);
  return ShapedPipeline{std::move(model), std::move(shaper)};
}

}  // namespace streamcalc::netcalc
