#include "netcalc/packetizer.hpp"

#include "util/error.hpp"

namespace streamcalc::netcalc {

minplus::Curve packetize_arrival(const minplus::Curve& alpha,
                                 util::DataSize l_max) {
  util::require(l_max >= util::DataSize::bytes(0) && l_max.is_finite(),
                "packetize_arrival requires finite l_max >= 0");
  return alpha.plus_step(l_max.in_bytes());
}

minplus::Curve packetize_service(const minplus::Curve& beta,
                                 util::DataSize l_max) {
  util::require(l_max >= util::DataSize::bytes(0) && l_max.is_finite(),
                "packetize_service requires finite l_max >= 0");
  return beta.minus_clamped(l_max.in_bytes());
}

minplus::Curve packetize_max_service(const minplus::Curve& gamma,
                                     util::DataSize /*l_max*/) {
  return gamma;
}

}  // namespace streamcalc::netcalc
