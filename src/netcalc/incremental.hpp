// Incremental DAG re-analysis: recompute only the bounds downstream of a
// changed flow.
//
// DagModel computes every per-node curve from scratch at construction,
// which is the right shape for one-shot CLI analysis but wrong for a
// long-running admission-control service (src/serve): admitting or
// releasing one tenant flow changes the arrival envelope at *one* entry,
// yet a full rebuild re-derives every node — including whole subgraphs the
// change can never reach.
//
// IncrementalDag keeps the DagModel state mutable behind a dirty-set:
//
//   * each entry edge carries an independent, caller-settable arrival
//     envelope (the constructor seeds them exactly as DagModel does from
//     the SourceSpec, so a freshly built IncrementalDag reproduces
//     DagModel bit for bit — tests/netcalc pins this);
//   * set_entry_envelope(k, env) marks the entry's target node dirty;
//   * refresh() walks the topological order recomputing only dirty nodes,
//     and propagates dirtiness to a successor only when the producer's
//     *output* envelope actually changed — a node whose service absorbs
//     the perturbation stops the wave;
//   * per-node and per-path bounds read the (now clean) cached curves.
//
// The arithmetic of the per-node step is kept deliberately identical to
// DagModel::build() — same operators in the same order on the same curves
// — so an incremental refresh() and a from-scratch rebuild produce
// identical doubles. The serve admission oracle
// (tests/serve/admission_oracle_test.cpp) relies on this equality.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "minplus/curve.hpp"
#include "netcalc/dag.hpp"
#include "netcalc/node.hpp"
#include "netcalc/pipeline.hpp"

namespace streamcalc::netcalc {

/// Mutable, incrementally recomputed DAG analysis.
class IncrementalDag {
 public:
  /// Seeds every entry envelope from `source` exactly as DagModel does
  /// (fraction-scaled, splitter-stepped source arrival curve). Validates
  /// the spec; throws PreconditionError on shape errors.
  IncrementalDag(DagSpec dag, SourceSpec source, ModelPolicy policy = {});

  const DagSpec& dag() const { return dag_; }
  std::size_t entry_count() const { return dag_.entries.size(); }
  /// Node index entry `k` feeds.
  std::size_t entry_node(std::size_t k) const;

  /// Replaces entry k's arrival envelope and marks the downstream cone
  /// dirty. A segment-identical envelope is a no-op (no recompute).
  void set_entry_envelope(std::size_t k, minplus::Curve envelope);
  const minplus::Curve& entry_envelope(std::size_t k) const;

  /// Recomputes dirty nodes in topological order; returns how many nodes
  /// were recomputed (0 when already clean). All accessors below refresh
  /// implicitly, so calling this by hand is only needed for assertions on
  /// the recompute count.
  std::size_t refresh();

  /// Marks every node dirty and refreshes — the from-scratch reference
  /// the differential tests compare an incremental history against.
  void full_recompute();

  /// Total nodes recomputed over this object's lifetime (monotone; the
  /// incrementality tests assert it stays well under nodes x updates).
  std::uint64_t recompute_count() const { return recompute_count_; }

  // --- results (refresh implicitly) --------------------------------------
  const minplus::Curve& node_arrival(std::size_t i);
  const minplus::Curve& node_service(std::size_t i);
  util::Duration node_delay(std::size_t i);
  util::DataSize node_backlog(std::size_t i);

  /// Per-path delay bounds (residual concatenation, as DagModel) over all
  /// source-to-sink paths, and their maximum.
  std::vector<DagPathAnalysis> per_path_analysis();
  util::Duration delay_bound();
  /// Max path delay over paths whose head node is `head` — the bound a
  /// flow entering at `head` experiences.
  util::Duration delay_bound_from(std::size_t head);
  /// Sum of per-node backlog bounds.
  util::DataSize backlog_bound();

  /// Node indices reachable from entry k's target (inclusive) — the cone a
  /// change to that entry can affect.
  std::vector<std::size_t> downstream_of_entry(std::size_t k) const;

 private:
  void recompute_node(std::size_t i);

  DagSpec dag_;
  SourceSpec source_;
  ModelPolicy policy_;
  std::vector<std::size_t> order_;           ///< topological order
  std::vector<double> vol_in_;               ///< worst-case input volume
  std::vector<minplus::Curve> entry_env_;    ///< per entry (caller-owned)
  std::vector<minplus::Curve> arrival_;      ///< per node
  std::vector<minplus::Curve> service_;      ///< per node
  std::vector<minplus::Curve> max_service_;  ///< per node
  std::vector<minplus::Curve> output_;       ///< per node
  std::vector<minplus::Curve> edge_curve_;   ///< per edge envelope
  std::vector<bool> dirty_;
  std::uint64_t recompute_count_ = 0;
};

}  // namespace streamcalc::netcalc
