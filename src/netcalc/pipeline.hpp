// Network-calculus model of a heterogeneous streaming pipeline
// (paper, Sections 3-4).
//
// A PipelineModel takes the per-stage NodeSpecs (derived from isolated
// measurements, never a full deployment) plus a description of the input
// source, and produces:
//
//   * per-node arrival/service/max-service curves, normalized so every
//     curve is expressed in *pipeline-input bytes* (following Timcheck &
//     Buhler: stages with lossless compression or filtering change the data
//     volume; normalization keeps curves comparable along the chain);
//   * the end-to-end service curve (min-plus convolution of the per-node
//     curves — "pay bursts only once") including the paper's job-ratio
//     aggregation latency T_n^tot = T_{n-1}^tot + b_n / R_alpha_{n-1} + T_n
//     at nodes that collect a larger block than their predecessor emits;
//   * delay, backlog, and output-flow bounds, end to end, per node, and for
//     any contiguous subset of stages;
//   * finite-horizon throughput bounds (the MiB/s numbers of the paper's
//     Tables 1 and 3); and
//   * a buffer-sizing plan from the per-node backlog bounds (the paper's
//     future-work application).
//
// The model handles all three load regimes; in the overloaded regime the
// asymptotic bounds are infinite but finite-horizon queue growth is still
// reported (Section 6).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "minplus/curve.hpp"
#include "netcalc/bounds.hpp"
#include "netcalc/node.hpp"
#include "util/units.hpp"

namespace streamcalc::netcalc {

/// The flow offered to the first stage.
struct SourceSpec {
  util::DataRate rate;                        ///< sustained input rate
  util::DataSize burst;                       ///< instantaneous burst
  util::DataSize packet = util::DataSize{};   ///< source packetization l_max
  /// Total volume of the job traversing the pipeline. Infinite (the
  /// default) models an endless stream; a finite volume caps the arrival
  /// curve at this value, which keeps the delay/backlog bounds finite even
  /// when the offered rate exceeds the bottleneck — the paper's
  /// "estimates on required queue size for individual nodes as a job
  /// traverses the system" (Section 3).
  util::DataSize job_volume = util::DataSize::infinite();
};

/// Which measured rate feeds each curve family. The sound worst-case choice
/// for the service curve is the minimum measured rate; the paper's BITW
/// study instead derives its service curves from the sustained averages
/// (Table 2's primary columns), so the basis is configurable.
enum class RateBasis { kMin, kAvg, kMax };

/// Modeling choices that select how NodeSpec measurements become curves.
struct ModelPolicy {
  RateBasis service_basis = RateBasis::kMin;      ///< beta: guarantee
  RateBasis max_service_basis = RateBasis::kMax;  ///< gamma: ceiling
  /// Give gamma the same latency as beta (paper, Section 5: the BITW
  /// maximum service curve is the baseline service curve scaled by the
  /// maximum observed compression). Default: gamma starts at the origin.
  bool max_service_latency = false;
  /// Apply the per-node packetizer adjustments ([beta - l]^+). The paper's
  /// quantitative results collapse the pipeline into a single node and use
  /// the plain rate-latency formulas, so its reproduction benches turn
  /// this off; the ablation bench quantifies the difference.
  bool packetize = true;
};

/// Finite-horizon throughput numbers (Tables 1 and 3 of the paper).
struct ThroughputBounds {
  util::DataRate lower;        ///< beta(h)/h: guaranteed average rate
  util::DataRate upper;        ///< min(alpha, gamma)(h)/h: offered/achievable
  util::DataRate loose_upper;  ///< alpha*(h)/h: output-flow bound (loose)
};

/// Per-node results from propagating the arrival curve down the chain.
struct NodeAnalysis {
  std::string name;
  Regime load_regime = Regime::kUnderloaded;
  util::DataRate arrival_rate;   ///< sustained arrival (input-normalized)
  util::DataRate service_rate;   ///< guaranteed service (input-normalized)
  util::Duration delay;          ///< per-node delay bound
  util::DataSize backlog;        ///< per-node backlog bound (normalized)
  util::DataSize buffer_bytes;   ///< recommended buffer in local raw bytes
  util::Duration aggregation_wait;  ///< job-collection latency at this node
};

/// Network-calculus model of one pipeline. Immutable after construction;
/// all curves are computed eagerly (model sizes are tiny).
class PipelineModel {
 public:
  /// Models `nodes` fed by `source`. Throws PreconditionError on invalid
  /// specs or an empty node list.
  PipelineModel(std::vector<NodeSpec> nodes, SourceSpec source,
                ModelPolicy policy = {});

  /// Models `nodes` fed by an arbitrary arrival envelope (bytes over
  /// seconds) instead of the leaky-bucket built from `source` — e.g. a
  /// shaped flow, a variable-rate profile, or the minimal arrival curve of
  /// a recorded trace. `source` still provides the rate/packet metadata
  /// used for aggregation-wait estimation and simulation.
  static PipelineModel with_arrival(std::vector<NodeSpec> nodes,
                                    SourceSpec source, ModelPolicy policy,
                                    minplus::Curve arrival) {
    return PipelineModel(std::move(nodes), source, policy,
                         std::move(arrival));
  }

  // --- End-to-end curves (all input-normalized, bytes over seconds) -------

  /// The (packetized) arrival curve alpha constraining the source.
  const minplus::Curve& arrival_curve() const { return arrival_; }
  /// End-to-end service curve beta (worst-case rates, worst-case volumes).
  const minplus::Curve& service_curve() const { return service_; }
  /// End-to-end maximum service curve gamma (best-case rates and volumes).
  const minplus::Curve& max_service_curve() const { return max_service_; }
  /// Output-flow bound alpha* = (alpha (x) gamma) (/) beta.
  const minplus::Curve& output_bound_curve() const { return output_; }
  /// Guaranteed cumulative output alpha (x) beta: every conforming
  /// execution delivers at least this much by time t (beta alone bounds
  /// *capacity*; delivery is also limited by what has arrived).
  const minplus::Curve& guaranteed_output_curve() const {
    return guaranteed_;
  }

  // --- End-to-end bounds ----------------------------------------------------

  /// Maximum virtual delay through the whole pipeline (sure worst case).
  DelayReport delay_bound() const;
  /// Maximum data occupancy resident anywhere in the pipeline
  /// (input-normalized bytes, sure worst case).
  BacklogReport backlog_bound() const;
  /// P(delay > value) <= epsilon: the theta-optimized Chernoff bound of
  /// the model's arrival against its end-to-end service, clamped by the
  /// sure bound (see netcalc/report.hpp). Requires epsilon in (0, 1).
  DelayReport delay_bound(double epsilon) const;
  /// P(backlog > value) <= epsilon.
  BacklogReport backlog_bound(double epsilon) const;
  /// Stochastic bounds for an explicit MGF source (on/off users, Poisson
  /// packets, aggregates) flowing through this pipeline's end-to-end
  /// service, replacing the model's own arrival envelope.
  DelayReport delay_bound(double epsilon,
                          const stochcalc::Arrival& arrival) const;
  BacklogReport backlog_bound(double epsilon,
                              const stochcalc::Arrival& arrival) const;
  /// The summed latency T^tot of the aggregation recursion — the fixed
  /// component of the delay bound.
  util::Duration total_latency() const { return total_latency_; }
  /// Finite-horizon throughput bounds. Requires horizon > 0.
  ThroughputBounds throughput_bounds(util::Duration horizon) const;
  /// Load regime of the end-to-end model.
  Regime load_regime() const;

  // --- Structure and per-node analysis --------------------------------------

  const std::vector<NodeSpec>& nodes() const { return nodes_; }
  const SourceSpec& source() const { return source_; }

  /// Index of the stage with the smallest normalized guaranteed rate.
  std::size_t bottleneck() const;

  /// Propagates the arrival curve node by node and reports per-node bounds
  /// (the analysis the paper uses to attribute data occupancy to individual
  /// nodes for buffer allocation).
  std::vector<NodeAnalysis> per_node_analysis() const;

  /// Model of the contiguous stage range [first, first + count): the
  /// paper's "analyze any desired subset of the streaming application".
  /// The subset is fed by the propagated output bound of the prefix.
  PipelineModel subrange(std::size_t first, std::size_t count) const;

  /// Per-node normalized service curve (worst case) — exposed for plotting.
  const minplus::Curve& node_service_curve(std::size_t i) const;
  /// Propagated arrival envelope at node i's input (i == nodes().size()
  /// yields the pipeline's output envelope) — exposed for certification.
  const minplus::Curve& node_arrival_curve(std::size_t i) const;
  /// Per-node normalized maximum service curve.
  const minplus::Curve& node_max_service_curve(std::size_t i) const;
  /// Data volume seen at a node's input per pipeline-input byte,
  /// worst case (most data downstream).
  double volume_in_worst(std::size_t i) const;
  /// Best case (least data downstream).
  double volume_in_best(std::size_t i) const;

 private:
  /// Internal: model a chain fed by an arbitrary arrival curve.
  PipelineModel(std::vector<NodeSpec> nodes, SourceSpec source,
                ModelPolicy policy, minplus::Curve arrival);
  void build();

  std::vector<NodeSpec> nodes_;
  SourceSpec source_;
  ModelPolicy policy_;
  minplus::Curve arrival_;
  minplus::Curve service_;
  minplus::Curve max_service_;
  minplus::Curve output_;
  minplus::Curve guaranteed_;
  std::vector<minplus::Curve> node_service_;
  std::vector<minplus::Curve> node_max_service_;
  std::vector<minplus::Curve> node_arrival_;  ///< propagated, per node input
  std::vector<double> vol_worst_;  ///< volume at node input, worst case
  std::vector<double> vol_best_;
  std::vector<util::Duration> aggregation_wait_;
  util::Duration total_latency_;
};

}  // namespace streamcalc::netcalc
