// The extended network-calculus node of the paper: a stage of a streaming
// application that may be a computation (CPU/GPU/FPGA kernel) or a
// communication element (network link, PCIe bus).
//
// A node consumes data in blocks of `block_in` bytes, takes between
// `time_min` and `time_max` to process one block, and emits `block_out`
// bytes per block. The same description drives both the analytic
// network-calculus model (src/netcalc/pipeline.hpp) and the discrete-event
// simulation (src/streamsim), so the two models are parameterized by a
// single source of truth — matching the paper's methodology of deriving
// every model from the same isolated per-stage measurements.
//
// Data-volume changes are expressed separately from blocking:
//   * job ratio      = block_in / block_out   (granularity change, Fig. 3)
//   * volume ratio   = long-run bytes emitted per byte consumed
//     (filtering stages < 1, seed enumeration > 1, compression with its
//     min/avg/max observed ratios, Section 5).
#pragma once

#include <string>
#include <vector>

#include "minplus/curve.hpp"
#include "util/units.hpp"

namespace streamcalc::netcalc {

/// What a node physically is; affects nothing in the math but everything in
/// how results are reported and which flow-graph shape is emitted.
enum class NodeKind {
  kCompute,      ///< computational stage (CPU/GPU/FPGA kernel)
  kNetworkLink,  ///< network communication (e.g. 100G Ethernet between FPGAs)
  kPcieLink,     ///< PCIe bus transfer between memory domains
};

const char* to_string(NodeKind k);

/// Long-run bytes emitted per byte consumed, with the spread observed in
/// isolated measurements (compression ratio uncertainty, Section 5 /
/// Table 2). For deterministic stages all three coincide.
struct VolumeRatio {
  double min = 1.0;  ///< fewest bytes out per byte in (best compression)
  double avg = 1.0;
  double max = 1.0;  ///< most bytes out per byte in (worst compression)

  static VolumeRatio exact(double v) { return {v, v, v}; }
  /// From observed compression ratios (input bytes per output byte):
  /// e.g. LZ4 with ratios min 1.0x, avg 2.2x, max 5.3x.
  static VolumeRatio from_compression(double ratio_min, double ratio_avg,
                                      double ratio_max) {
    return {1.0 / ratio_max, 1.0 / ratio_avg, 1.0 / ratio_min};
  }
};

/// One stage of a streaming pipeline. See file comment.
struct NodeSpec {
  std::string name;
  NodeKind kind = NodeKind::kCompute;

  util::DataSize block_in;   ///< bytes consumed per job
  util::DataSize block_out;  ///< bytes emitted per job (before volume ratio)
  util::Duration time_min;   ///< fastest per-job execution
  util::Duration time_max;   ///< slowest per-job execution
  /// Mean per-job execution time. Zero (the default) means the midpoint of
  /// [time_min, time_max]; set explicitly when the measured average rate is
  /// not the midpoint (as in the paper's Table 2).
  util::Duration time_avg;

  VolumeRatio volume;  ///< long-run bytes out per byte in

  /// Whether the node must collect a full block_in before starting (the
  /// paper's job-aggregation latency, T_n^tot recursion). True for
  /// accelerator dispatch; false for cut-through elements.
  bool aggregates = true;

  /// Initial delay T_n of the node's rate-latency service curve. Zero (the
  /// default) uses time_max — the worst-case whole-block time, appropriate
  /// for batch kernels. Streaming kernels (HLS dataflow, cut-through
  /// links) emit their first output long before a whole block is
  /// processed; set this to the pipeline-fill latency instead.
  util::Duration latency_override;

  /// Marks a stage that *undoes* upstream volume changes (a decompressor):
  /// in the discrete-event simulation its output volume is the data's
  /// original input-normalized volume rather than an independently sampled
  /// ratio — per-job compression and decompression stay correlated. The
  /// analytic model still uses `volume` (the observed ratio spread).
  bool restores_volume = false;

  /// Throughput measured with the stage running *in isolation* (the input
  /// to the M/M/1 queueing model of [12]). Zero (the default) falls back
  /// to rate_avg(). Isolated measurements can exceed in-pipeline averages —
  /// e.g. GPU stages lose SIMD occupancy inside the pipeline — which is
  /// exactly why the paper finds the queueing roofline optimistic.
  util::DataRate rate_isolated;

  /// rate_isolated if set, else rate_avg().
  util::DataRate effective_isolated_rate() const;

  // --- Convenience constructors -------------------------------------------

  /// A computational stage processing blocks.
  static NodeSpec compute(std::string name, util::DataSize block_in,
                          util::DataSize block_out, util::Duration time_min,
                          util::Duration time_max);

  /// A communication link moving packets of `packet` bytes at `bandwidth`
  /// (cut-through: no aggregation). `propagation` is folded into the
  /// per-packet service time — store-and-forward semantics, appropriate
  /// for short hops where serialization dominates. For long pipelined
  /// links (packets overlap in flight) pass zero here and set
  /// latency_override to the propagation delay instead.
  static NodeSpec link(std::string name, NodeKind kind,
                       util::DataRate bandwidth, util::DataSize packet,
                       util::Duration propagation);

  // --- Derived quantities ---------------------------------------------------

  /// block_in / block_out: the job ratio annotated under each node in the
  /// paper's Fig. 3.
  double job_ratio() const;

  /// Raw service rates at the node (bytes of *its own input* per second).
  util::DataRate rate_min() const;  ///< block_in / time_max
  util::DataRate rate_avg() const;  ///< block_in / effective_time_avg()
  util::DataRate rate_max() const;  ///< block_in / time_min

  /// The mean execution time actually used: time_avg if set, else the
  /// midpoint of [time_min, time_max].
  util::Duration effective_time_avg() const;

  /// A stage whose measured throughputs are `min`/`avg`/`max` for blocks of
  /// `block` bytes (the form of the paper's Table 2). Rates must satisfy
  /// min <= avg <= max.
  static NodeSpec from_rates(std::string name, NodeKind kind,
                             util::DataSize block, util::DataRate rate_min,
                             util::DataRate rate_avg,
                             util::DataRate rate_max);

  /// Initial delay T of this node's rate-latency service curve:
  /// latency_override if set, else the worst-case whole-block time.
  util::Duration latency() const {
    return latency_override > util::Duration::seconds(0) ? latency_override
                                                         : time_max;
  }

  /// Validates the spec (positive blocks/times, ordered min <= avg <= max).
  void validate() const;
};

}  // namespace streamcalc::netcalc
