#include "netcalc/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "minplus/cache.hpp"
#include "minplus/deviation.hpp"
#include "minplus/operations.hpp"
#include "netcalc/bounds.hpp"
#include "netcalc/packetizer.hpp"
#include "util/error.hpp"

namespace streamcalc::netcalc {

namespace {
using minplus::Curve;
using util::DataRate;
using util::DataSize;
using util::Duration;

// Same basis selection as dag.cpp (kept in lockstep; the incremental and
// from-scratch analyses must produce identical doubles).
double pick_rate_basis(const NodeSpec& node, RateBasis basis) {
  switch (basis) {
    case RateBasis::kMin:
      return node.rate_min().in_bytes_per_sec();
    case RateBasis::kAvg:
      return node.rate_avg().in_bytes_per_sec();
    case RateBasis::kMax:
      return node.rate_max().in_bytes_per_sec();
  }
  return node.rate_min().in_bytes_per_sec();
}

Curve source_envelope(const SourceSpec& source) {
  Curve alpha = Curve::affine(source.rate, source.burst);
  if (source.job_volume.is_finite()) {
    alpha = minplus::minimum(alpha,
                             Curve::constant(source.job_volume.in_bytes()));
  }
  return packetize_arrival(alpha, source.packet);
}

}  // namespace

IncrementalDag::IncrementalDag(DagSpec dag, SourceSpec source,
                               ModelPolicy policy)
    : dag_(std::move(dag)), source_(source), policy_(policy) {
  dag_.validate();
  util::require(source_.rate > DataRate::bytes_per_sec(0),
                "IncrementalDag requires a positive source rate");
  const std::size_t n = dag_.nodes.size();
  order_ = dag_.topological_order();
  arrival_.resize(n);
  service_.resize(n);
  max_service_.resize(n);
  output_.resize(n);
  edge_curve_.resize(dag_.edges.size());
  dirty_.assign(n, true);
  vol_in_.assign(n, 0.0);

  // Worst-case volume factors — identical to DagModel::build().
  std::vector<double> vol_out(n, 0.0);
  for (const DagEdge& e : dag_.entries) vol_in_[e.to] += e.fraction;
  for (std::size_t i : order_) {
    for (const DagEdge& e : dag_.edges) {
      if (e.to == i) vol_in_[i] += e.fraction * vol_out[e.from];
    }
    vol_out[i] = vol_in_[i] * dag_.nodes[i].volume.max;
  }

  // Seed entry envelopes the way DagModel builds them from the source.
  const Curve alpha = source_envelope(source_);
  entry_env_.resize(dag_.entries.size());
  for (std::size_t k = 0; k < dag_.entries.size(); ++k) {
    Curve env = alpha.scale_value(dag_.entries[k].fraction);
    if (dag_.entries[k].fraction < 1.0) {
      env = env.plus_step(source_.packet.in_bytes());
    }
    entry_env_[k] = std::move(env);
  }
  refresh();
}

std::size_t IncrementalDag::entry_node(std::size_t k) const {
  util::require(k < dag_.entries.size(), "entry index out of range");
  return dag_.entries[k].to;
}

const minplus::Curve& IncrementalDag::entry_envelope(std::size_t k) const {
  util::require(k < entry_env_.size(), "entry index out of range");
  return entry_env_[k];
}

void IncrementalDag::set_entry_envelope(std::size_t k,
                                        minplus::Curve envelope) {
  util::require(k < entry_env_.size(), "entry index out of range");
  if (entry_env_[k] == envelope) return;
  entry_env_[k] = std::move(envelope);
  dirty_[dag_.entries[k].to] = true;
}

std::vector<std::size_t> IncrementalDag::downstream_of_entry(
    std::size_t k) const {
  util::require(k < dag_.entries.size(), "entry index out of range");
  std::vector<bool> reach(dag_.nodes.size(), false);
  reach[dag_.entries[k].to] = true;
  // One pass in topological order closes reachability over a DAG.
  for (std::size_t i : order_) {
    if (!reach[i]) continue;
    for (const DagEdge& e : dag_.edges) {
      if (e.from == i) reach[e.to] = true;
    }
  }
  std::vector<std::size_t> out;
  for (std::size_t i : order_) {
    if (reach[i]) out.push_back(i);
  }
  return out;
}

void IncrementalDag::recompute_node(std::size_t i) {
  const NodeSpec& node = dag_.nodes[i];
  // Merge incoming envelopes — same operator order as DagModel::build()
  // (entries first, then edges, both in declaration order).
  Curve merged = Curve::zero();
  for (std::size_t k = 0; k < dag_.entries.size(); ++k) {
    if (dag_.entries[k].to == i) {
      merged = minplus::add(merged, entry_env_[k]);
    }
  }
  for (std::size_t k = 0; k < dag_.edges.size(); ++k) {
    if (dag_.edges[k].to == i) {
      merged = minplus::add(merged, edge_curve_[k]);
    }
  }
  arrival_[i] = std::move(merged);

  const double vol = vol_in_[i];
  const double rate_lo = pick_rate_basis(node, policy_.service_basis) / vol;
  const double rate_hi =
      pick_rate_basis(node, policy_.max_service_basis) / vol;
  double incoming_block = std::numeric_limits<double>::infinity();
  for (const DagEdge& e : dag_.entries) {
    if (e.to == i) {
      incoming_block = std::min(incoming_block, source_.packet.in_bytes());
    }
  }
  for (const DagEdge& e : dag_.edges) {
    if (e.to == i) {
      const NodeSpec& prev = dag_.nodes[e.from];
      incoming_block = std::min(
          incoming_block,
          std::min(prev.block_out.in_bytes(),
                   prev.block_in.in_bytes() * prev.volume.min));
    }
  }
  Duration latency = node.latency();
  if (node.aggregates && node.block_in.in_bytes() > incoming_block) {
    const double sustained = arrival_[i].tail_slope();
    if (sustained > 0.0 && std::isfinite(sustained)) {
      latency += Duration::seconds(
          (node.block_in.in_bytes() +
           (std::isfinite(incoming_block) ? incoming_block : 0.0)) /
          vol / sustained);
    }
  }
  service_[i] = Curve::rate_latency(rate_lo, latency.in_seconds());
  const double out_block_norm =
      node.block_out.in_bytes() / (vol * node.volume.max);
  if (policy_.packetize) {
    service_[i] =
        packetize_service(service_[i], DataSize::bytes(out_block_norm));
  }
  max_service_[i] = policy_.max_service_latency
                        ? Curve::rate_latency(rate_hi, latency.in_seconds())
                        : Curve::rate(rate_hi);

  output_[i] = output_bound(arrival_[i], service_[i], max_service_[i]);

  for (std::size_t k = 0; k < dag_.edges.size(); ++k) {
    if (dag_.edges[k].from == i) {
      Curve env = output_[i].scale_value(dag_.edges[k].fraction);
      if (dag_.edges[k].fraction < 1.0) {
        env = env.plus_step(out_block_norm);
      }
      // The downstream wave stops at unchanged edge envelopes.
      if (!(edge_curve_[k] == env)) {
        edge_curve_[k] = std::move(env);
        dirty_[dag_.edges[k].to] = true;
      }
    }
  }
}

std::size_t IncrementalDag::refresh() {
  std::size_t recomputed = 0;
  for (std::size_t i : order_) {
    if (!dirty_[i]) continue;
    recompute_node(i);
    dirty_[i] = false;
    ++recomputed;
  }
  recompute_count_ += recomputed;
  return recomputed;
}

void IncrementalDag::full_recompute() {
  // A full pass must not inherit stale edge envelopes produced by a
  // previous refresh wave that stopped early: recompute everything.
  std::fill(dirty_.begin(), dirty_.end(), true);
  refresh();
}

const minplus::Curve& IncrementalDag::node_arrival(std::size_t i) {
  util::require(i < arrival_.size(), "node index out of range");
  refresh();
  return arrival_[i];
}

const minplus::Curve& IncrementalDag::node_service(std::size_t i) {
  util::require(i < service_.size(), "node index out of range");
  refresh();
  return service_[i];
}

util::Duration IncrementalDag::node_delay(std::size_t i) {
  util::require(i < arrival_.size(), "node index out of range");
  refresh();
  return netcalc::delay_bound(arrival_[i], service_[i]).value;
}

util::DataSize IncrementalDag::node_backlog(std::size_t i) {
  util::require(i < arrival_.size(), "node index out of range");
  refresh();
  return netcalc::backlog_bound(arrival_[i], service_[i]).value;
}

std::vector<DagPathAnalysis> IncrementalDag::per_path_analysis() {
  refresh();
  // Residual concatenation identical to DagModel::per_path_analysis(),
  // reading this object's (incrementally maintained) envelopes.
  std::vector<DagPathAnalysis> result;
  for (const auto& path : dag_.paths()) {
    DagPathAnalysis pa;
    pa.nodes = path;

    Curve flow = Curve::zero();
    for (std::size_t k = 0; k < dag_.entries.size(); ++k) {
      if (dag_.entries[k].to == path.front()) {
        flow = minplus::add(flow, entry_env_[k]);
      }
    }

    Curve path_service = Curve::delta(0.0);
    bool valid = true;
    for (std::size_t hop = 0; hop < path.size(); ++hop) {
      const std::size_t i = path[hop];
      Curve cross = Curve::zero();
      for (std::size_t k = 0; k < dag_.entries.size(); ++k) {
        if (dag_.entries[k].to == i && hop != 0) {
          cross = minplus::add(cross, entry_env_[k]);
        }
      }
      for (std::size_t k = 0; k < dag_.edges.size(); ++k) {
        const DagEdge& e = dag_.edges[k];
        if (e.to != i) continue;
        if (hop > 0 && e.from == path[hop - 1]) continue;
        cross = minplus::add(cross, edge_curve_[k]);
      }
      Curve residual = service_[i];
      if (!cross.is_zero()) {
        try {
          residual = minplus::subtract_clamped(service_[i], cross);
        } catch (const util::PreconditionError&) {
          valid = false;
          break;
        }
      }
      pa.hop_residuals.push_back(residual);
      path_service = minplus::cached_convolve(path_service, residual);
    }
    pa.residual_valid = valid;
    pa.delay = valid ? util::Duration::seconds(minplus::horizontal_deviation(
                           flow, path_service))
                     : util::Duration::infinite();
    if (valid) {
      pa.flow = std::move(flow);
      pa.path_service = std::move(path_service);
    } else {
      pa.hop_residuals.clear();
    }
    result.push_back(std::move(pa));
  }
  return result;
}

util::Duration IncrementalDag::delay_bound() {
  Duration worst = Duration::seconds(0);
  for (const DagPathAnalysis& p : per_path_analysis()) {
    worst = std::max(worst, p.delay);
  }
  return worst;
}

util::Duration IncrementalDag::delay_bound_from(std::size_t head) {
  Duration worst = Duration::seconds(0);
  for (const DagPathAnalysis& p : per_path_analysis()) {
    if (!p.nodes.empty() && p.nodes.front() == head) {
      worst = std::max(worst, p.delay);
    }
  }
  return worst;
}

util::DataSize IncrementalDag::backlog_bound() {
  refresh();
  double total = 0.0;
  for (std::size_t i = 0; i < dag_.nodes.size(); ++i) {
    const double x =
        netcalc::backlog_bound(arrival_[i], service_[i]).value.in_bytes();
    if (x == std::numeric_limits<double>::infinity()) {
      return DataSize::infinite();
    }
    total += x;
  }
  return DataSize::bytes(total);
}

}  // namespace streamcalc::netcalc
