#include "netcalc/pipeline.hpp"

#include <algorithm>
#include <limits>

#include "minplus/cache.hpp"
#include "minplus/operations.hpp"
#include "netcalc/packetizer.hpp"
#include "util/error.hpp"

namespace streamcalc::netcalc {

namespace {
using minplus::Curve;
using util::DataRate;
using util::DataSize;
using util::Duration;
}  // namespace

namespace {

/// Arrival curve of the source: a leaky bucket, optionally capped at the
/// finite job volume, then packetized.
Curve source_arrival(const SourceSpec& source) {
  Curve alpha = Curve::affine(source.rate, source.burst);
  if (source.job_volume.is_finite()) {
    // min(alpha, job_volume for t > 0): all data of the job.
    alpha = minplus::minimum(alpha,
                             Curve::constant(source.job_volume.in_bytes()));
  }
  return packetize_arrival(alpha, source.packet);
}

double pick_rate(const NodeSpec& node, RateBasis basis) {
  switch (basis) {
    case RateBasis::kMin:
      return node.rate_min().in_bytes_per_sec();
    case RateBasis::kAvg:
      return node.rate_avg().in_bytes_per_sec();
    case RateBasis::kMax:
      return node.rate_max().in_bytes_per_sec();
  }
  return node.rate_min().in_bytes_per_sec();
}

}  // namespace

PipelineModel::PipelineModel(std::vector<NodeSpec> nodes, SourceSpec source,
                             ModelPolicy policy)
    : PipelineModel(std::move(nodes), source, policy,
                    source_arrival(source)) {}

PipelineModel::PipelineModel(std::vector<NodeSpec> nodes, SourceSpec source,
                             ModelPolicy policy, Curve arrival)
    : nodes_(std::move(nodes)),
      source_(source),
      policy_(policy),
      arrival_(std::move(arrival)) {
  util::require(!nodes_.empty(), "PipelineModel requires at least one node");
  util::require(source_.rate > DataRate::bytes_per_sec(0),
                "PipelineModel requires a positive source rate");
  for (const NodeSpec& n : nodes_) n.validate();
  build();
}

void PipelineModel::build() {
  const std::size_t n = nodes_.size();
  vol_worst_.resize(n);
  vol_best_.resize(n);
  node_service_.resize(n);
  node_max_service_.resize(n);
  node_arrival_.resize(n + 1);
  aggregation_wait_.resize(n);

  // Volume normalization (Timcheck & Buhler): bytes at each node's input
  // per pipeline-input byte. "Worst" carries the most data downstream
  // (e.g. compression ratio 1.0); "best" the least (maximum compression).
  vol_worst_[0] = vol_best_[0] = 1.0;
  for (std::size_t i = 1; i < n; ++i) {
    vol_worst_[i] = vol_worst_[i - 1] * nodes_[i - 1].volume.max;
    vol_best_[i] = vol_best_[i - 1] * nodes_[i - 1].volume.min;
  }

  node_arrival_[0] = arrival_;
  total_latency_ = Duration::seconds(0);

  // Sustained flow rate reaching each node (input-normalized): the source
  // rate clipped by every upstream stage's guaranteed rate — the
  // R_alpha_{n-1} of the paper's aggregation recursion. (The propagated
  // arrival *envelope* is not used here: after a few hops its burst can
  // cover an entire finite job, which says nothing about the sustained
  // pace at which a collection block actually fills.)
  double sustained_norm = source_.rate.in_bytes_per_sec();

  for (std::size_t i = 0; i < n; ++i) {
    const NodeSpec& node = nodes_[i];

    // Job-ratio aggregation latency (paper, Section 3): a node that must
    // collect a block larger than its predecessor emits waits
    // b_n / R_alpha_{n-1} before it can dispatch. The predecessor's
    // *effective* packet can be smaller than its nominal block_out when it
    // filters (total emitted = block_in x volume), so compare against the
    // smaller of the two.
    DataSize prev_block = source_.packet;
    if (i > 0) {
      const NodeSpec& prev = nodes_[i - 1];
      prev_block = std::min(prev.block_out, prev.block_in * prev.volume.min);
    }
    Duration wait = Duration::seconds(0);
    if (node.aggregates && node.block_in > prev_block &&
        sustained_norm > 0.0 && std::isfinite(sustained_norm)) {
      // One upstream packet of slack covers arrival-phase misalignment
      // (the block may start filling just after a packet boundary).
      const double block_norm =
          (node.block_in + prev_block).in_bytes() / vol_worst_[i];
      wait = Duration::seconds(block_norm / sustained_norm);
    }
    aggregation_wait_[i] = wait;
    const Duration latency_eff = node.latency() + wait;
    total_latency_ += latency_eff;

    // Per-node service curves, normalized to pipeline-input bytes. The
    // node's output packetizer degrades the service curve by one output
    // block ([beta - l_max]^+) and leaves the maximum service curve alone.
    const double rate_lo =
        pick_rate(node, policy_.service_basis) / vol_worst_[i];
    const double rate_hi =
        pick_rate(node, policy_.max_service_basis) / vol_best_[i];
    node_service_[i] =
        Curve::rate_latency(rate_lo, latency_eff.in_seconds());
    if (policy_.packetize) {
      const double out_block_norm =
          node.block_out.in_bytes() / (vol_worst_[i] * node.volume.max);
      node_service_[i] = packetize_service(node_service_[i],
                                           DataSize::bytes(out_block_norm));
    }
    node_max_service_[i] =
        policy_.max_service_latency
            ? Curve::rate_latency(rate_hi, latency_eff.in_seconds())
            : Curve::rate(rate_hi);

    node_arrival_[i + 1] = output_bound(node_arrival_[i], node_service_[i],
                                        node_max_service_[i]);
    sustained_norm = std::min(sustained_norm, node_service_[i].tail_slope());
  }

  // End-to-end curves: concatenation pays bursts only once.
  service_ = node_service_[0];
  max_service_ = node_max_service_[0];
  for (std::size_t i = 1; i < n; ++i) {
    service_ = minplus::cached_convolve(service_, node_service_[i]);
    max_service_ =
        minplus::cached_convolve(max_service_, node_max_service_[i]);
  }
  output_ = output_bound(arrival_, service_, max_service_);
  guaranteed_ = minplus::cached_convolve(arrival_, service_);
}

DelayReport PipelineModel::delay_bound() const {
  return netcalc::delay_bound(arrival_, service_);
}

BacklogReport PipelineModel::backlog_bound() const {
  return netcalc::backlog_bound(arrival_, service_);
}

DelayReport PipelineModel::delay_bound(double epsilon) const {
  return netcalc::delay_bound(arrival_, service_, epsilon);
}

BacklogReport PipelineModel::backlog_bound(double epsilon) const {
  return netcalc::backlog_bound(arrival_, service_, epsilon);
}

DelayReport PipelineModel::delay_bound(
    double epsilon, const stochcalc::Arrival& arrival) const {
  return netcalc::delay_bound(arrival, service_, epsilon);
}

BacklogReport PipelineModel::backlog_bound(
    double epsilon, const stochcalc::Arrival& arrival) const {
  return netcalc::backlog_bound(arrival, service_, epsilon);
}

ThroughputBounds PipelineModel::throughput_bounds(Duration horizon) const {
  ThroughputBounds b;
  b.lower = guaranteed_rate(guaranteed_, horizon);
  b.upper = std::min(limiting_rate(arrival_, horizon),
                     limiting_rate(max_service_, horizon));
  b.loose_upper = limiting_rate(output_, horizon);
  return b;
}

Regime PipelineModel::load_regime() const {
  return regime(arrival_, service_);
}

std::size_t PipelineModel::bottleneck() const {
  std::size_t best = 0;
  double best_rate = node_service_[0].tail_slope();
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const double r = node_service_[i].tail_slope();
    if (r < best_rate) {
      best_rate = r;
      best = i;
    }
  }
  return best;
}

std::vector<NodeAnalysis> PipelineModel::per_node_analysis() const {
  std::vector<NodeAnalysis> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeAnalysis a;
    a.name = nodes_[i].name;
    a.load_regime = regime(node_arrival_[i], node_service_[i]);
    a.arrival_rate =
        DataRate::bytes_per_sec(node_arrival_[i].tail_slope());
    a.service_rate =
        DataRate::bytes_per_sec(node_service_[i].tail_slope());
    a.delay = netcalc::delay_bound(node_arrival_[i], node_service_[i]).value;
    a.backlog =
        netcalc::backlog_bound(node_arrival_[i], node_service_[i]).value;
    a.buffer_bytes = a.backlog * vol_worst_[i];
    a.aggregation_wait = aggregation_wait_[i];
    out.push_back(std::move(a));
  }
  return out;
}

PipelineModel PipelineModel::subrange(std::size_t first,
                                      std::size_t count) const {
  util::require(first < nodes_.size() && count >= 1 &&
                    first + count <= nodes_.size(),
                "subrange out of bounds");
  std::vector<NodeSpec> sub(nodes_.begin() +
                                static_cast<std::ptrdiff_t>(first),
                            nodes_.begin() +
                                static_cast<std::ptrdiff_t>(first + count));
  // Convert the propagated arrival (normalized to the original pipeline
  // input) into the subrange's own input units.
  Curve arr = node_arrival_[first].scale_value(vol_worst_[first]);
  SourceSpec src;
  src.rate = DataRate::bytes_per_sec(arr.tail_slope());
  src.burst = DataSize::bytes(arr.value_right(0.0));
  // The subrange receives data in the upstream stage's output blocks;
  // keeping the granularity avoids a spurious aggregation wait at its
  // first node.
  src.packet = (first > 0) ? nodes_[first - 1].block_out : source_.packet;
  if (src.rate == DataRate::bytes_per_sec(0)) {
    // A finite-job arrival has zero tail rate; keep the spec meaningful.
    src.rate = source_.rate;
  }
  return PipelineModel(std::move(sub), src, policy_, std::move(arr));
}

const Curve& PipelineModel::node_service_curve(std::size_t i) const {
  util::require(i < node_service_.size(), "node index out of bounds");
  return node_service_[i];
}

const Curve& PipelineModel::node_arrival_curve(std::size_t i) const {
  util::require(i < node_arrival_.size(), "node index out of bounds");
  return node_arrival_[i];
}

const Curve& PipelineModel::node_max_service_curve(std::size_t i) const {
  util::require(i < node_max_service_.size(), "node index out of bounds");
  return node_max_service_[i];
}

double PipelineModel::volume_in_worst(std::size_t i) const {
  util::require(i < vol_worst_.size(), "node index out of bounds");
  return vol_worst_[i];
}

double PipelineModel::volume_in_best(std::size_t i) const {
  util::require(i < vol_best_.size(), "node index out of bounds");
  return vol_best_[i];
}

}  // namespace streamcalc::netcalc
