// Single-server network calculus bounds with physical units.
//
// Given a flow constrained by arrival curve alpha entering a server that
// guarantees service curve beta (and optionally offers at most gamma):
//
//   backlog  x <= sup_t [alpha(t) - beta(t)]            (vertical deviation)
//   delay    d <= sup_t inf{d : alpha(t) <= beta(t+d)}  (horizontal deviation)
//   output   alpha* = (alpha (x) gamma) (/) beta
//
// All curves are in bytes over seconds. The bounds are finite only when the
// sustained arrival rate R_alpha does not exceed the service rate R_beta;
// the three regimes (R_alpha < = > R_beta) are classified by regime().
#pragma once

#include <optional>

#include "minplus/curve.hpp"
#include "netcalc/report.hpp"
#include "stochcalc/envelope.hpp"
#include "util/units.hpp"

namespace streamcalc::netcalc {

/// Load regime of a server (paper, Section 3: the three scenarios of
/// interest around the stability constraint R_alpha <= R_beta).
enum class Regime {
  kUnderloaded,  ///< R_alpha < R_beta: finite bounds, standard operation.
  kCritical,     ///< R_alpha == R_beta: bounds finite but queues persist.
  kOverloaded,   ///< R_alpha > R_beta: backlog/delay bounds are infinite.
};

const char* to_string(Regime r);

/// Classifies by comparing sustained (tail) rates of alpha and beta.
Regime regime(const minplus::Curve& alpha, const minplus::Curve& beta);

/// Backlog bound: maximum data resident in the server. Infinite if
/// overloaded. Always a worst-case report; `.value` is the vertical
/// deviation the pre-redesign API returned.
BacklogReport backlog_bound(const minplus::Curve& alpha,
                            const minplus::Curve& beta);

/// Virtual delay bound: maximum time for the server to emit as much data as
/// it was sent. Infinite if overloaded. Always a worst-case report;
/// `.value` is the horizontal deviation the pre-redesign API returned.
DelayReport delay_bound(const minplus::Curve& alpha,
                        const minplus::Curve& beta);

// --- Stochastic (violation-probability) bounds ----------------------------
//
// The epsilon overloads answer P(quantity > value) <= epsilon instead of
// the sure statement. The deterministic curves are relaxed onto the
// stochastic tier (alpha to its dominating leaky bucket, beta to its
// rate-latency minorant), the Chernoff bound is theta-optimized, and the
// result is clamped by the sure deviation bound — whichever is tighter
// wins, recorded in the report's provenance. Requires epsilon in (0, 1).

BacklogReport backlog_bound(const minplus::Curve& alpha,
                            const minplus::Curve& beta, double epsilon);

DelayReport delay_bound(const minplus::Curve& alpha,
                        const minplus::Curve& beta, double epsilon);

/// Stochastic bounds for an explicit MGF arrival model (on/off users,
/// Poisson packets, aggregates) against a service curve: Chernoff against
/// beta's rate-latency minorant. No curve-derived clamp is applied (alpha
/// does not constrain a stochastic source); stochcalc's own sure-envelope
/// clamp still does.
DelayReport delay_bound(const stochcalc::Arrival& arrival,
                        const minplus::Curve& beta, double epsilon);

BacklogReport backlog_bound(const stochcalc::Arrival& arrival,
                            const minplus::Curve& beta, double epsilon);

/// The tightest leaky bucket dominating a (piecewise-linear) arrival
/// curve: rate = tail slope, burst = sup_t [alpha(t) - rate*t]. The
/// bridge from deterministic envelopes into the stochastic tier.
stochcalc::Arrival dominating_arrival(const minplus::Curve& alpha);

/// Output flow bound alpha* = (alpha (x) gamma) (/) beta. Pass nullopt for
/// gamma when no maximum service curve is known (gamma = +infinity, so the
/// convolution term is just alpha).
minplus::Curve output_bound(const minplus::Curve& alpha,
                            const minplus::Curve& beta,
                            const std::optional<minplus::Curve>& gamma);

/// Finite-horizon throughput guaranteed by a service curve: beta(h) / h —
/// the least average output rate over a run of length `horizon` (this is
/// how the paper turns curves into the single MiB/s numbers of its
/// Tables 1 and 3). Requires horizon > 0.
util::DataRate guaranteed_rate(const minplus::Curve& beta,
                               util::Duration horizon);

/// Finite-horizon throughput ceiling from a constraining curve:
/// min(curve(h), h * tail considerations) / h = curve(h) / h.
util::DataRate limiting_rate(const minplus::Curve& curve,
                             util::Duration horizon);

/// Backlog growth rate in the overloaded regime: R_alpha - R_beta. Returns
/// zero when not overloaded. This is the quantity the paper's future-work
/// section proposes for reasoning about queue sizing when the stability
/// constraint is relaxed.
util::DataRate overload_growth_rate(const minplus::Curve& alpha,
                                    const minplus::Curve& beta);

/// Estimated queue occupancy after running an overloaded server for
/// `elapsed`: the deviation sup_{t <= elapsed} [alpha(t) - beta(t)],
/// which stays finite on a finite horizon even when the long-run bound is
/// infinite.
util::DataSize backlog_at(const minplus::Curve& alpha,
                          const minplus::Curve& beta, util::Duration elapsed);

}  // namespace streamcalc::netcalc
