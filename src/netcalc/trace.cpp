#include "netcalc/trace.hpp"

#include "minplus/operations.hpp"
#include "util/error.hpp"

namespace streamcalc::netcalc {

minplus::Curve trace_to_curve(
    const std::vector<std::pair<double, double>>& cumulative) {
  util::require(!cumulative.empty(), "trace_to_curve requires samples");
  std::vector<minplus::Segment> segs;
  segs.reserve(cumulative.size() + 1);
  double prev_t = -1.0;
  double prev_v = 0.0;
  if (cumulative.front().first > 0.0) {
    segs.push_back(minplus::Segment{0.0, 0.0, 0.0, 0.0});
    prev_t = 0.0;
  }
  for (const auto& [t, v] : cumulative) {
    util::require(t >= 0.0 && v >= 0.0,
                  "trace_to_curve requires non-negative samples");
    util::require(t > prev_t || segs.empty(),
                  "trace_to_curve requires strictly increasing times");
    util::require(v >= prev_v,
                  "trace_to_curve requires non-decreasing values");
    // Sample-and-hold: the value jumps to v at time t and holds.
    segs.push_back(minplus::Segment{t, prev_v, v, 0.0});
    prev_t = t;
    prev_v = v;
  }
  return minplus::Curve(std::move(segs));
}

minplus::Curve minimal_arrival_curve(
    const std::vector<std::pair<double, double>>& cumulative) {
  const minplus::Curve r = trace_to_curve(cumulative);
  return minplus::deconvolve(r, r);
}

minplus::Curve minimal_arrival_curve(const minplus::Curve& cumulative) {
  return minplus::deconvolve(cumulative, cumulative);
}

minplus::Curve cumulative_from_rate_profile(
    const std::vector<std::pair<double, double>>& profile) {
  util::require(!profile.empty(),
                "cumulative_from_rate_profile requires samples");
  util::require(profile.front().first == 0.0,
                "rate profile must start at time 0");
  std::vector<minplus::Segment> segs;
  segs.reserve(profile.size());
  double value = 0.0;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const auto& [t, rate] = profile[i];
    util::require(rate >= 0.0, "rate profile requires non-negative rates");
    util::require(i == 0 || t > profile[i - 1].first,
                  "rate profile times must be strictly increasing");
    segs.push_back(minplus::Segment{t, value, value, rate});
    if (i + 1 < profile.size()) {
      value += rate * (profile[i + 1].first - t);
    }
  }
  return minplus::Curve(std::move(segs));
}

}  // namespace streamcalc::netcalc
