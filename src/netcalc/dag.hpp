// Network calculus over directed acyclic graphs of stages (paper,
// Section 4: "streaming data applications are often modeled as a chain of
// nodes interconnected into a directed acyclic graph").
//
// The DAG model generalizes PipelineModel: a node's output may be split
// among several successors (a *proportional* splitter routing a fixed
// fraction of each emitted block down each edge), and a node may join the
// flows of several predecessors (its arrival curve is the sum of the
// incoming edge envelopes). Analysis walks the graph in topological order:
//
//   * per-edge arrival envelopes, normalized to pipeline-input bytes,
//     propagate through output bounds and splitter scaling;
//   * per-node delay/backlog bounds come from (sum of incoming envelopes,
//     node service curve);
//   * per-path delay bounds concatenate service curves along the path,
//     using *residual* service [beta - alpha_cross]^+ at nodes shared with
//     cross-traffic from other paths (blind-multiplexing residual);
//   * the end-to-end delay bound is the maximum over source-to-sink paths.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "minplus/curve.hpp"
#include "netcalc/node.hpp"
#include "netcalc/pipeline.hpp"

namespace streamcalc::netcalc {

/// A directed edge: `fraction` of node `from`'s output volume flows to
/// node `to`. Fractions out of a node must sum to at most 1 (the
/// remainder, if any, leaves the modeled system).
struct DagEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  double fraction = 1.0;
};

/// A DAG of stages. `entries` lists the nodes fed by the source and the
/// fraction of the source flow each receives (fractions sum to <= 1).
struct DagSpec {
  std::vector<NodeSpec> nodes;
  std::vector<DagEdge> edges;
  std::vector<DagEdge> entries;  ///< `from` ignored; `to` = entry node

  /// Validates shape: indices in range, acyclic, fractions in (0, 1] with
  /// per-node outgoing sums <= 1 (+eps). Throws PreconditionError.
  void validate() const;

  /// Node indices in a topological order (entries first).
  std::vector<std::size_t> topological_order() const;

  /// All source-to-sink paths (sequences of node indices). Exponential in
  /// the worst case; intended for the small graphs of application models.
  std::vector<std::vector<std::size_t>> paths() const;
};

/// Per-node results of the DAG analysis.
struct DagNodeAnalysis {
  std::string name;
  Regime load_regime = Regime::kUnderloaded;
  util::DataRate arrival_rate;      ///< summed sustained arrivals
  util::DataRate service_rate;      ///< guaranteed rate (normalized)
  util::Duration delay;             ///< per-node delay bound
  util::DataSize backlog;           ///< per-node backlog bound (normalized)
  util::DataSize buffer_bytes;      ///< recommended local buffer
};

/// Per-path results. The curves behind the delay bound are retained so the
/// certification layer (src/certify) can re-derive the bound and audit the
/// residual concatenation.
struct DagPathAnalysis {
  std::vector<std::size_t> nodes;   ///< node indices along the path
  util::Duration delay;             ///< concatenated (residual) delay bound
  /// False when cross-traffic absorbed a shared node's entire service
  /// rate: the delay is infinite and the curves below are meaningless.
  bool residual_valid = true;
  minplus::Curve flow;              ///< envelope of the flow of interest
  minplus::Curve path_service;      ///< concatenated residual service
  std::vector<minplus::Curve> hop_residuals;  ///< per-hop residual curves
};

/// Network-calculus model of a DAG pipeline.
class DagModel {
 public:
  DagModel(DagSpec dag, SourceSpec source, ModelPolicy policy = {});

  const DagSpec& dag() const { return dag_; }

  /// Arrival envelope entering node i (sum of incoming edges), normalized.
  const minplus::Curve& node_arrival(std::size_t i) const;
  /// Service curve of node i (normalized to pipeline input).
  const minplus::Curve& node_service(std::size_t i) const;

  /// Per-node bounds in topological order of `dag().nodes`.
  std::vector<DagNodeAnalysis> per_node_analysis() const;

  /// Delay bound along every source-to-sink path (residual concatenation)
  /// and the end-to-end maximum (sure worst case).
  std::vector<DagPathAnalysis> per_path_analysis() const;
  DelayReport delay_bound() const;

  /// Total backlog bound: sum of per-node bounds (normalized bytes, sure
  /// worst case).
  BacklogReport backlog_bound() const;

  /// Per-packet P(delay > value) <= epsilon: the worst path's Chernoff
  /// bound (flow envelope against the concatenated residual service),
  /// clamped per path by the sure bound. Requires epsilon in (0, 1).
  DelayReport delay_bound(double epsilon) const;

  /// P(total backlog > value) <= epsilon: per-node Chernoff bounds at
  /// epsilon / node-count, union-bounded over the nodes.
  BacklogReport backlog_bound(double epsilon) const;

 private:
  void build();
  util::Duration delay_bound_for(std::size_t i) const;
  util::DataSize backlog_bound_for(std::size_t i) const;

  DagSpec dag_;
  SourceSpec source_;
  ModelPolicy policy_;
  std::vector<minplus::Curve> arrival_;      ///< per node
  std::vector<minplus::Curve> service_;      ///< per node (normalized)
  std::vector<minplus::Curve> max_service_;  ///< per node
  std::vector<minplus::Curve> output_;       ///< per node output bound
  std::vector<minplus::Curve> edge_curve_;   ///< per edge envelope
  std::vector<minplus::Curve> entry_curve_;  ///< per entry envelope
  std::vector<double> vol_in_;               ///< worst-case volume at input
};

}  // namespace streamcalc::netcalc
