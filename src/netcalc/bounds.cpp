#include "netcalc/bounds.hpp"

#include <algorithm>
#include <limits>

#include "minplus/cache.hpp"
#include "minplus/deviation.hpp"
#include "minplus/operations.hpp"
#include "util/error.hpp"

namespace streamcalc::netcalc {

const char* to_string(Regime r) {
  switch (r) {
    case Regime::kUnderloaded:
      return "underloaded";
    case Regime::kCritical:
      return "critical";
    case Regime::kOverloaded:
      return "overloaded";
  }
  return "?";
}

Regime regime(const minplus::Curve& alpha, const minplus::Curve& beta) {
  const double ra = alpha.tail_slope();
  const double rb = beta.tail_slope();
  if (ra < rb) return Regime::kUnderloaded;
  if (ra == rb) return Regime::kCritical;
  return Regime::kOverloaded;
}

util::DataSize backlog_bound(const minplus::Curve& alpha,
                             const minplus::Curve& beta) {
  return util::DataSize::bytes(minplus::vertical_deviation(alpha, beta));
}

util::Duration delay_bound(const minplus::Curve& alpha,
                           const minplus::Curve& beta) {
  return util::Duration::seconds(minplus::horizontal_deviation(alpha, beta));
}

minplus::Curve output_bound(const minplus::Curve& alpha,
                            const minplus::Curve& beta,
                            const std::optional<minplus::Curve>& gamma) {
  // Cached operators: parameter sweeps and per-node analyses re-derive the
  // same output bound from identical operands, and the shape-aware cache
  // key (canonical segments, commutative for convolve) makes those repeats
  // hits instead of fresh envelope builds.
  const minplus::Curve constrained =
      gamma ? minplus::cached_convolve(alpha, *gamma) : alpha;
  return minplus::cached_deconvolve(constrained, beta);
}

util::DataRate guaranteed_rate(const minplus::Curve& beta,
                               util::Duration horizon) {
  util::require(horizon > util::Duration::seconds(0) && horizon.is_finite(),
                "guaranteed_rate requires a positive finite horizon");
  const double h = horizon.in_seconds();
  return util::DataRate::bytes_per_sec(beta.value(h) / h);
}

util::DataRate limiting_rate(const minplus::Curve& curve,
                             util::Duration horizon) {
  util::require(horizon > util::Duration::seconds(0) && horizon.is_finite(),
                "limiting_rate requires a positive finite horizon");
  const double h = horizon.in_seconds();
  const double v = curve.value(h);
  if (v == std::numeric_limits<double>::infinity()) {
    return util::DataRate::infinite();
  }
  return util::DataRate::bytes_per_sec(v / h);
}

util::DataRate overload_growth_rate(const minplus::Curve& alpha,
                                    const minplus::Curve& beta) {
  const double excess = alpha.tail_slope() - beta.tail_slope();
  return util::DataRate::bytes_per_sec(std::max(0.0, excess));
}

util::DataSize backlog_at(const minplus::Curve& alpha,
                          const minplus::Curve& beta, util::Duration elapsed) {
  util::require(elapsed >= util::Duration::seconds(0) && elapsed.is_finite(),
                "backlog_at requires a finite elapsed time >= 0");
  // sup over [0, elapsed] of alpha - beta: candidates are the breakpoints
  // of either curve inside the window plus the window edge.
  double best = 0.0;
  const double h = elapsed.in_seconds();
  auto consider = [&](double t) {
    if (t < 0.0 || t > h) return;
    const double a = alpha.value_right(t);
    const double b = beta.value(t);
    if (b == std::numeric_limits<double>::infinity()) return;
    best = std::max(best, a - b);
  };
  consider(h);
  for (const minplus::Segment& s : alpha.segments()) consider(s.x);
  for (const minplus::Segment& s : beta.segments()) consider(s.x);
  // Between breakpoints the difference is linear, so interior suprema occur
  // only at the considered points or at the window edge (handled above).
  return util::DataSize::bytes(best);
}

}  // namespace streamcalc::netcalc
