#include "netcalc/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "minplus/cache.hpp"
#include "minplus/deviation.hpp"
#include "minplus/operations.hpp"
#include "obs/obs.hpp"
#include "stochcalc/bounds.hpp"
#include "stochcalc/service.hpp"
#include "util/error.hpp"

namespace streamcalc::netcalc {

const char* to_string(BoundKind k) {
  switch (k) {
    case BoundKind::kWorstCase:
      return "worst_case";
    case BoundKind::kViolationProb:
      return "violation_prob";
  }
  return "?";
}

const char* to_string(BoundMethod m) {
  switch (m) {
    case BoundMethod::kDeviation:
      return "deviation";
    case BoundMethod::kChernoff:
      return "chernoff";
    case BoundMethod::kDetClamp:
      return "det_clamp";
  }
  return "?";
}

const char* to_string(Regime r) {
  switch (r) {
    case Regime::kUnderloaded:
      return "underloaded";
    case Regime::kCritical:
      return "critical";
    case Regime::kOverloaded:
      return "overloaded";
  }
  return "?";
}

Regime regime(const minplus::Curve& alpha, const minplus::Curve& beta) {
  const double ra = alpha.tail_slope();
  const double rb = beta.tail_slope();
  if (ra < rb) return Regime::kUnderloaded;
  if (ra == rb) return Regime::kCritical;
  return Regime::kOverloaded;
}

BacklogReport backlog_bound(const minplus::Curve& alpha,
                            const minplus::Curve& beta) {
  SC_OBS_COUNT("netcalc.bound.worst_case", 1);
  return BacklogReport::worst_case(
      util::DataSize::bytes(minplus::vertical_deviation(alpha, beta)));
}

DelayReport delay_bound(const minplus::Curve& alpha,
                        const minplus::Curve& beta) {
  SC_OBS_COUNT("netcalc.bound.worst_case", 1);
  return DelayReport::worst_case(
      util::Duration::seconds(minplus::horizontal_deviation(alpha, beta)));
}

namespace {

/// Folds a stochcalc result and the sure deviation bound into one report:
/// the tighter value wins, with provenance recording which one it was.
/// `det_value` may be +infinity (no sure bound available).
template <class Q>
BoundReport<Q> fold_stochastic(const stochcalc::StochasticBound& stoch,
                               double det_value, double epsilon,
                               Q (*make)(double)) {
  SC_OBS_COUNT("netcalc.bound.violation_prob", 1);
  BoundProvenance prov;
  prov.method = BoundMethod::kDetClamp;
  double value = det_value;
  if (stoch.finite && stoch.value < det_value) {
    value = stoch.value;
    if (!stoch.det_clamped) {
      prov.method = BoundMethod::kChernoff;
      prov.theta = stoch.theta;
    }
  }
  return BoundReport<Q>::violation_prob(make(value), epsilon, prov);
}

util::Duration make_duration(double s) { return util::Duration::seconds(s); }
util::DataSize make_size(double b) { return util::DataSize::bytes(b); }

/// Rate-latency minorant of beta, or nullopt when beta has no positive
/// finite tail slope (the Chernoff machinery then has no stable server).
std::optional<stochcalc::Service> service_minorant(
    const minplus::Curve& beta) {
  const double rate = beta.tail_slope();
  if (!(rate > 0.0) || !std::isfinite(rate)) return std::nullopt;
  return stochcalc::Service::from_curve(beta);
}

}  // namespace

stochcalc::Arrival dominating_arrival(const minplus::Curve& alpha) {
  const double rate = alpha.tail_slope();
  util::require(rate >= 0.0 && std::isfinite(rate),
                "dominating_arrival requires a finite arrival tail slope");
  // sup_t [alpha(t) - rate*t] is attained at a breakpoint (the objective
  // is piecewise linear with non-positive final slope); a discontinuity
  // contributes its larger side.
  double burst = 0.0;
  for (const minplus::Segment& s : alpha.segments()) {
    const double v = std::max(alpha.value(s.x), alpha.value_right(s.x));
    if (!std::isfinite(v)) continue;
    burst = std::max(burst, v - rate * s.x);
  }
  return stochcalc::Arrival::leaky_bucket(
      util::DataRate::bytes_per_sec(rate), util::DataSize::bytes(burst));
}

DelayReport delay_bound(const minplus::Curve& alpha,
                        const minplus::Curve& beta, double epsilon) {
  util::require(epsilon > 0.0 && epsilon < 1.0,
                "delay_bound requires epsilon in (0, 1)");
  const double det = minplus::horizontal_deviation(alpha, beta);
  stochcalc::StochasticBound stoch;
  if (const auto service = service_minorant(beta)) {
    stoch = stochcalc::delay_bound(dominating_arrival(alpha), *service,
                                   epsilon);
  }
  return fold_stochastic<util::Duration>(stoch, det, epsilon, make_duration);
}

BacklogReport backlog_bound(const minplus::Curve& alpha,
                            const minplus::Curve& beta, double epsilon) {
  util::require(epsilon > 0.0 && epsilon < 1.0,
                "backlog_bound requires epsilon in (0, 1)");
  const double det = minplus::vertical_deviation(alpha, beta);
  stochcalc::StochasticBound stoch;
  if (const auto service = service_minorant(beta)) {
    stoch = stochcalc::backlog_bound(dominating_arrival(alpha), *service,
                                     epsilon);
  }
  return fold_stochastic<util::DataSize>(stoch, det, epsilon, make_size);
}

DelayReport delay_bound(const stochcalc::Arrival& arrival,
                        const minplus::Curve& beta, double epsilon) {
  util::require(epsilon > 0.0 && epsilon < 1.0,
                "delay_bound requires epsilon in (0, 1)");
  stochcalc::StochasticBound stoch;
  if (const auto service = service_minorant(beta)) {
    stoch = stochcalc::delay_bound(arrival, *service, epsilon);
  }
  return fold_stochastic<util::Duration>(
      stoch, std::numeric_limits<double>::infinity(), epsilon, make_duration);
}

BacklogReport backlog_bound(const stochcalc::Arrival& arrival,
                            const minplus::Curve& beta, double epsilon) {
  util::require(epsilon > 0.0 && epsilon < 1.0,
                "backlog_bound requires epsilon in (0, 1)");
  stochcalc::StochasticBound stoch;
  if (const auto service = service_minorant(beta)) {
    stoch = stochcalc::backlog_bound(arrival, *service, epsilon);
  }
  return fold_stochastic<util::DataSize>(
      stoch, std::numeric_limits<double>::infinity(), epsilon, make_size);
}

minplus::Curve output_bound(const minplus::Curve& alpha,
                            const minplus::Curve& beta,
                            const std::optional<minplus::Curve>& gamma) {
  // Cached operators: parameter sweeps and per-node analyses re-derive the
  // same output bound from identical operands, and the shape-aware cache
  // key (canonical segments, commutative for convolve) makes those repeats
  // hits instead of fresh envelope builds.
  const minplus::Curve constrained =
      gamma ? minplus::cached_convolve(alpha, *gamma) : alpha;
  return minplus::cached_deconvolve(constrained, beta);
}

util::DataRate guaranteed_rate(const minplus::Curve& beta,
                               util::Duration horizon) {
  util::require(horizon > util::Duration::seconds(0) && horizon.is_finite(),
                "guaranteed_rate requires a positive finite horizon");
  const double h = horizon.in_seconds();
  return util::DataRate::bytes_per_sec(beta.value(h) / h);
}

util::DataRate limiting_rate(const minplus::Curve& curve,
                             util::Duration horizon) {
  util::require(horizon > util::Duration::seconds(0) && horizon.is_finite(),
                "limiting_rate requires a positive finite horizon");
  const double h = horizon.in_seconds();
  const double v = curve.value(h);
  if (v == std::numeric_limits<double>::infinity()) {
    return util::DataRate::infinite();
  }
  return util::DataRate::bytes_per_sec(v / h);
}

util::DataRate overload_growth_rate(const minplus::Curve& alpha,
                                    const minplus::Curve& beta) {
  const double excess = alpha.tail_slope() - beta.tail_slope();
  return util::DataRate::bytes_per_sec(std::max(0.0, excess));
}

util::DataSize backlog_at(const minplus::Curve& alpha,
                          const minplus::Curve& beta, util::Duration elapsed) {
  util::require(elapsed >= util::Duration::seconds(0) && elapsed.is_finite(),
                "backlog_at requires a finite elapsed time >= 0");
  // sup over [0, elapsed] of alpha - beta: candidates are the breakpoints
  // of either curve inside the window plus the window edge.
  double best = 0.0;
  const double h = elapsed.in_seconds();
  auto consider = [&](double t) {
    if (t < 0.0 || t > h) return;
    const double a = alpha.value_right(t);
    const double b = beta.value(t);
    if (b == std::numeric_limits<double>::infinity()) return;
    best = std::max(best, a - b);
  };
  consider(h);
  for (const minplus::Segment& s : alpha.segments()) consider(s.x);
  for (const minplus::Segment& s : beta.segments()) consider(s.x);
  // Between breakpoints the difference is linear, so interior suprema occur
  // only at the considered points or at the window edge (handled above).
  return util::DataSize::bytes(best);
}

}  // namespace streamcalc::netcalc
