// Empirical arrival curves from recorded traffic traces — the bridge
// between measurement and model the paper's future work gestures at
// ("variable rate servers for arrival curves").
//
// Given a cumulative trace R(t) (monotone samples of bytes-by-time), the
// *minimal arrival curve* that the trace conforms to is its min-plus
// self-deconvolution:
//
//   alpha_min(t) = sup_s [R(s + t) - R(s)] = (R (/) R)(t)
//
// — the tightest envelope over every window of length t. Feeding
// alpha_min into PipelineModel::with_arrival() yields bounds valid for
// exactly the recorded workload (and any workload it envelopes).
#pragma once

#include <utility>
#include <vector>

#include "minplus/curve.hpp"

namespace streamcalc::netcalc {

/// Converts a cumulative trace — non-decreasing (time, bytes) samples with
/// sample-and-hold semantics between points — into a piecewise-linear
/// curve. Requires at least one sample and non-decreasing times/values.
minplus::Curve trace_to_curve(
    const std::vector<std::pair<double, double>>& cumulative);

/// The minimal arrival curve of a cumulative trace: (R (/) R).
/// Complexity is quadratic in the number of samples; thin long traces
/// first (streamsim's traces already are).
minplus::Curve minimal_arrival_curve(
    const std::vector<std::pair<double, double>>& cumulative);

/// Same, for an already-built cumulative curve.
minplus::Curve minimal_arrival_curve(const minplus::Curve& cumulative);

/// Integrates a piecewise-constant rate profile — (start_time, bytes/s)
/// samples, each rate holding until the next start — into a cumulative
/// curve. The profile repeats nothing: after the last sample its rate
/// holds forever. Requires non-negative rates and strictly increasing
/// times starting at 0.
minplus::Curve cumulative_from_rate_profile(
    const std::vector<std::pair<double, double>>& profile);

}  // namespace streamcalc::netcalc
