// Unified result type for deterministic and probabilistic bounds.
//
// Historically every bound in the library was a bare quantity (a
// util::Duration delay, a util::DataSize backlog) and the only possible
// semantics was "worst case, always". The stochastic tier (src/stochcalc)
// adds Chernoff bounds of the form P(delay > d) <= epsilon, which are a
// different *kind* of statement about the same quantity. BoundReport makes
// the kind explicit so a value can never be silently reinterpreted: every
// analysis entry point returns the quantity together with
//
//   * kind      — worst_case (holds surely) or violation_prob (holds with
//                 probability >= 1 - epsilon);
//   * epsilon   — the violation probability (0 for worst-case bounds);
//   * provenance — which derivation produced the number (deviation kernels,
//                 Chernoff/MGF optimization, or the deterministic clamp that
//                 caps a stochastic bound by the sure bound), plus the
//                 optimizing theta for MGF-based results.
//
// Provenance is plain-old-data on purpose: reports flow through the serve
// admission hot path, which must not allocate per decision.
//
// Migration note (one release): BoundReport converts implicitly to its
// quantity type so pre-redesign call sites keep compiling, but the
// conversion is deprecated — write `.value` (and check `.kind` when the
// bound may be probabilistic).
#pragma once

#include "util/units.hpp"

namespace streamcalc::netcalc {

/// What a bound asserts about its quantity.
enum class BoundKind {
  kWorstCase,      ///< holds on every admissible behaviour
  kViolationProb,  ///< P(quantity > value) <= epsilon
};

const char* to_string(BoundKind k);

/// Which derivation produced the number.
enum class BoundMethod {
  kDeviation,  ///< min-plus horizontal/vertical deviation kernels
  kChernoff,   ///< MGF envelope + Chernoff bound, theta-optimized
  kDetClamp,   ///< stochastic request answered by the (tighter) sure bound
};

const char* to_string(BoundMethod m);

/// POD provenance attached to every report (no strings: serve hot path).
struct BoundProvenance {
  BoundMethod method = BoundMethod::kDeviation;
  /// Optimizing MGF parameter (1/bytes) for kChernoff; 0 otherwise.
  double theta = 0.0;
};

/// A bound on quantity type Q (util::Duration, util::DataSize, ...).
template <class Q>
struct BoundReport {
  Q value{};
  BoundKind kind = BoundKind::kWorstCase;
  double epsilon = 0.0;
  BoundProvenance provenance{};

  /// Wraps a quantity as a sure worst-case bound from the deviation
  /// kernels — the exact value the pre-redesign API returned.
  static BoundReport worst_case(Q v) {
    BoundReport r;
    r.value = v;
    return r;
  }

  /// Wraps a quantity as P(quantity > value) <= eps.
  static BoundReport violation_prob(Q v, double eps, BoundProvenance prov) {
    BoundReport r;
    r.value = v;
    r.kind = BoundKind::kViolationProb;
    r.epsilon = eps;
    r.provenance = prov;
    return r;
  }

  /// Deprecated migration shim: pre-redesign call sites treated the bound
  /// as the bare quantity. Write `.value` instead (and consult `.kind`).
  [[deprecated("use .value (and check .kind)")]] operator Q() const {
    return value;
  }
};

using DelayReport = BoundReport<util::Duration>;
using BacklogReport = BoundReport<util::DataSize>;

}  // namespace streamcalc::netcalc
