// Packetizer adjustments (paper, Section 3; Van Bemten & Kellerer 2016).
//
// Classic network calculus models bit-by-bit fluid flows; real streaming
// stages and network elements move whole packets/jobs. A packetizer P^L
// placed after a system changes the curves as follows, where l_max is the
// largest packet:
//
//   arrival:      P^L(r)  is constrained by  alpha(t) + l_max * 1_{t>0}
//   service:      beta'(t) = [beta(t) - l_max]^+
//   max service:  gamma'(t) = gamma(t)              (unchanged)
#pragma once

#include "minplus/curve.hpp"
#include "util/units.hpp"

namespace streamcalc::netcalc {

/// Packetized arrival curve: alpha + l_max * 1_{t > 0}.
minplus::Curve packetize_arrival(const minplus::Curve& alpha,
                                 util::DataSize l_max);

/// Packetized service curve: [beta - l_max]^+.
minplus::Curve packetize_service(const minplus::Curve& beta,
                                 util::DataSize l_max);

/// Packetized maximum service curve: unchanged (identity, kept for symmetry
/// so call sites document the rule).
minplus::Curve packetize_max_service(const minplus::Curve& gamma,
                                     util::DataSize l_max);

}  // namespace streamcalc::netcalc
