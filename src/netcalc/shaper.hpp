// Greedy traffic shaping — the paper's future-work remedy for queues "at
// risk of overflowing" (Section 6): when the offered flow exceeds what a
// pipeline can sustain, a shaper delays data at the source until it
// conforms to a shaping curve sigma.
//
// Classic results (Le Boudec & Thiran, ch. 1.5): a greedy shaper with a
// (sub-additive, sigma(0)=0) shaping curve re-emits the flow with arrival
// envelope alpha (x) sigma, buffers at most v(alpha, sigma), and delays
// data at most h(alpha, sigma). Shaping is "free" downstream: it never
// increases the end-to-end delay bound beyond the shaper's own.
#pragma once

#include "minplus/curve.hpp"
#include "netcalc/pipeline.hpp"
#include "util/units.hpp"

namespace streamcalc::netcalc {

/// What a greedy shaper does to a flow constrained by `alpha`.
struct ShaperAnalysis {
  minplus::Curve output_envelope;  ///< alpha (x) sigma
  util::Duration delay_bound;      ///< h(alpha, sigma)
  util::DataSize buffer_bound;     ///< v(alpha, sigma)
};

/// Analyzes a greedy shaper with shaping curve `sigma` applied to a flow
/// with arrival curve `alpha`. `sigma` should be concave with
/// sigma(0) = 0 (e.g. a leaky bucket); a PreconditionError is thrown
/// otherwise.
ShaperAnalysis analyze_shaper(const minplus::Curve& alpha,
                              const minplus::Curve& sigma);

/// A pipeline model whose source is shaped before entering the chain.
struct ShapedPipeline {
  PipelineModel model;          ///< pipeline fed by the shaped flow
  ShaperAnalysis shaper;        ///< the shaper's own bounds
  /// End-to-end delay bound including the shaper (shaper delay + pipeline
  /// delay of the shaped flow).
  util::Duration total_delay_bound() const {
    return shaper.delay_bound + model.delay_bound().value;
  }
};

/// Builds the model of `nodes` fed by `source` shaped through a leaky
/// bucket (sigma_rate, sigma_burst). The typical use: sigma_rate slightly
/// below the bottleneck turns an overloaded pipeline (infinite bounds)
/// into an underloaded one with a finite, provisionable shaper buffer.
ShapedPipeline shape_source(std::vector<NodeSpec> nodes, SourceSpec source,
                            ModelPolicy policy, util::DataRate sigma_rate,
                            util::DataSize sigma_burst);

}  // namespace streamcalc::netcalc
