#include "testing/shrink.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "util/error.hpp"

namespace streamcalc::testing {

namespace {

using minplus::Curve;
using minplus::Segment;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Appends Curve(segs) to out when the segments form a valid curve that
/// differs from the original.
void try_push(std::vector<Curve>& out, std::vector<Segment> segs,
              const Curve& original) {
  if (segs.empty()) return;
  try {
    Curve c(std::move(segs));
    if (!(c == original)) out.push_back(std::move(c));
  } catch (const util::PreconditionError&) {
    // Candidate broke a curve invariant; skip it.
  }
}

double round_to(double v, double unit) {
  if (v == kInf || unit <= 0.0) return v;
  return std::round(v / unit) * unit;
}

}  // namespace

std::vector<Curve> shrink_candidates(const Curve& c) {
  const std::vector<Segment>& segs = c.segments();
  std::vector<Curve> out;

  // Canonical tiny curves first: if one of these still fails, the property
  // is broken in its simplest possible setting.
  for (const Curve& tiny :
       {Curve::zero(), Curve::rate(1.0), Curve::affine(1.0, 1.0)}) {
    if (!(tiny == c)) out.push_back(tiny);
  }

  // Prefixes: keep only the first k pieces.
  for (std::size_t k = 1; k < segs.size(); ++k) {
    try_push(out, {segs.begin(), segs.begin() + static_cast<std::ptrdiff_t>(k)},
             c);
  }

  // Drop one interior piece at a time.
  for (std::size_t i = 1; i < segs.size(); ++i) {
    std::vector<Segment> dropped = segs;
    dropped.erase(dropped.begin() + static_cast<std::ptrdiff_t>(i));
    try_push(out, std::move(dropped), c);
  }

  // Remove one jump (fuse the right limit down onto the point value).
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (segs[i].value_after == segs[i].value_at) continue;
    if (segs[i].value_after == kInf) continue;
    std::vector<Segment> fused = segs;
    fused[i].value_after = fused[i].value_at;
    try_push(out, std::move(fused), c);
  }

  // Zero one slope.
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (segs[i].slope == 0.0) continue;
    std::vector<Segment> flat = segs;
    flat[i].slope = 0.0;
    try_push(out, std::move(flat), c);
  }

  // Round every number to progressively coarser grids: long decimals in a
  // counterexample are almost never essential, and integer breakpoints make
  // the report legible.
  for (const double unit : {1.0, 0.25, 1.0 / 1024.0}) {
    std::vector<Segment> rounded = segs;
    for (Segment& s : rounded) {
      s.x = round_to(s.x, unit);
      s.value_at = round_to(s.value_at, unit);
      s.value_after = round_to(s.value_after, unit);
      s.slope = round_to(s.slope, unit);
    }
    try_push(out, std::move(rounded), c);
  }

  return out;
}

std::vector<Curve> shrink_tuple(
    std::vector<Curve> inputs,
    const std::function<bool(const std::vector<Curve>&)>& fails,
    int budget) {
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    for (std::size_t slot = 0; slot < inputs.size() && budget > 0; ++slot) {
      for (Curve& candidate : shrink_candidates(inputs[slot])) {
        if (budget-- <= 0) break;
        std::vector<Curve> trial = inputs;
        trial[slot] = candidate;
        bool still_fails = false;
        try {
          still_fails = fails(trial);
        } catch (...) {
          // A property that *throws* on the simplified input still counts
          // as failing: the shrunk tuple reproduces a defect.
          still_fails = true;
        }
        if (still_fails) {
          inputs[slot] = std::move(candidate);
          progress = true;
          break;  // restart candidate enumeration from the smaller curve
        }
      }
    }
  }
  return inputs;
}

}  // namespace streamcalc::testing
