// Seeded random generators for the verification harness: piecewise-linear
// curves drawn from the standard network-calculus families (token buckets,
// rate-latency, staircases, burst-delay) plus general and deliberately
// pathological shapes, and random pipeline scenarios (NodeSpec chains with
// volume changes and block aggregation).
//
// Everything here is deterministic in the seed: the same (config, seed)
// pair always produces the same sequence of values, so a fuzzing failure
// can be replayed exactly from the (seed, case index) printed in its
// report. Generated curves are always *valid* (they pass Curve's
// constructor checks); "pathological" means structurally nasty —
// near-degenerate micro-segments, nearly-equal slopes, huge magnitudes,
// infinite tails — not invalid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minplus/curve.hpp"
#include "netcalc/node.hpp"
#include "netcalc/pipeline.hpp"
#include "util/rng.hpp"

namespace streamcalc::testing {

/// What shape class a property needs for an operand.
enum class CurveKind {
  kAny,      ///< any valid curve, possibly with an infinite tail
  kFinite,   ///< finite everywhere (no delta-style jump to +inf)
  kArrival,  ///< arrival-curve shaped: 0 at 0, mostly concave, finite
  kService,  ///< service-curve shaped: convex, finite, eventually growing
};

const char* to_string(CurveKind k);

struct CurveGenConfig {
  int max_segments = 6;        ///< cap on pieces of general random curves
  double max_slope = 8.0;      ///< slope scale of generated pieces
  double max_span = 1.5;       ///< max segment length (x units)
  bool allow_jumps = true;     ///< upward discontinuities
  bool allow_infinite = true;  ///< delta-style +inf tails (kAny only)
  /// Probability of post-processing a draw into a pathological variant
  /// (micro-segments, near-equal slopes, huge offsets, time squeeze).
  double pathological_bias = 0.25;
};

/// Deterministic random curve source. Draws cycle through the named
/// constructor families, general piecewise shapes, min/max/sum composites,
/// and pathological perturbations of any of those.
class CurveGenerator {
 public:
  CurveGenerator(CurveGenConfig config, std::uint64_t seed);

  /// Next curve of the requested kind.
  minplus::Curve next(CurveKind kind = CurveKind::kAny);

  /// The underlying RNG, for properties that also need scalars (evaluation
  /// points, tolerances) tied to the same replayable stream.
  util::Xoshiro256& rng() { return rng_; }

  const CurveGenConfig& config() const { return config_; }

 private:
  minplus::Curve family_draw(CurveKind kind, int depth);
  minplus::Curve general_draw(bool allow_inf);
  minplus::Curve pathological(const minplus::Curve& base);

  CurveGenConfig config_;
  util::Xoshiro256 rng_;
};

/// A generated pipeline: the inputs every model (NC, DES, M/M/1) consumes.
struct Scenario {
  std::vector<netcalc::NodeSpec> nodes;
  netcalc::SourceSpec source;
  /// One-line description (stage rates/blocks/volumes + source) for
  /// failure reports.
  std::string describe() const;
};

struct ScenarioGenConfig {
  int min_stages = 1;
  int max_stages = 5;
  /// Allow stages whose volume ratio is != 1 (filters / expanders).
  bool volume_changes = true;
  /// Allow stages that aggregate a larger block than the predecessor emits.
  bool aggregation = true;
  /// Offered load as a fraction of the worst-case normalized bottleneck
  /// rate; keep the upper end < 1 to generate underloaded pipelines.
  double load_lo = 0.3;
  double load_hi = 0.8;
  /// Markov-compatible draws: uniform blocks, exact unit volumes, no
  /// aggregation — the class of pipelines where the M/M/1 tandem model is
  /// exact (Burke/Jackson) and the differential check can be tight.
  bool markovian = false;
};

/// Deterministic random pipeline-scenario source.
class ScenarioGenerator {
 public:
  ScenarioGenerator(ScenarioGenConfig config, std::uint64_t seed);

  Scenario next();

  util::Xoshiro256& rng() { return rng_; }

 private:
  ScenarioGenConfig config_;
  util::Xoshiro256 rng_;
};

}  // namespace streamcalc::testing
