// Counterexample shrinking for the curve fuzzer.
//
// When a generated input tuple falsifies a property, the raw curves are
// usually noisy (many segments, long decimals, irrelevant operands). The
// shrinker greedily replaces one tuple element at a time with a structurally
// simpler variant — fewer segments, rounded numbers, removed jumps — and
// keeps the replacement whenever the property still fails, until no
// candidate makes progress or the evaluation budget runs out. The result is
// the small, readable counterexample printed in the failure report.
//
// Everything is deterministic: candidates are enumerated in a fixed order,
// so the same failing input always shrinks to the same counterexample.
#pragma once

#include <functional>
#include <vector>

#include "minplus/curve.hpp"

namespace streamcalc::testing {

/// Structurally simpler variants of `c`, most aggressive first. Every
/// candidate is a valid Curve; candidates equal to `c` are omitted.
std::vector<minplus::Curve> shrink_candidates(const minplus::Curve& c);

/// Greedily shrinks `inputs` under the invariant fails(inputs) == true.
/// `fails` must be pure; it is called at most `budget` times. Returns the
/// shrunk tuple (== the original when nothing simpler still fails).
std::vector<minplus::Curve> shrink_tuple(
    std::vector<minplus::Curve> inputs,
    const std::function<bool(const std::vector<minplus::Curve>&)>& fails,
    int budget = 400);

}  // namespace streamcalc::testing
