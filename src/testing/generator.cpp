#include "testing/generator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "minplus/operations.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace streamcalc::testing {

namespace {

using minplus::Curve;
using minplus::Segment;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Constructs a curve from segments, falling back to `fallback` when the
/// segment list violates a Curve invariant. Perturbation passes synthesize
/// candidate segment lists that are *usually* valid; the fallback keeps the
/// generator total without weakening Curve's own validation.
Curve curve_or(std::vector<Segment> segs, const Curve& fallback) {
  try {
    return Curve(std::move(segs));
  } catch (const util::PreconditionError&) {
    return fallback;
  }
}

}  // namespace

const char* to_string(CurveKind k) {
  switch (k) {
    case CurveKind::kAny:
      return "any";
    case CurveKind::kFinite:
      return "finite";
    case CurveKind::kArrival:
      return "arrival";
    case CurveKind::kService:
      return "service";
  }
  return "?";
}

CurveGenerator::CurveGenerator(CurveGenConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

Curve CurveGenerator::next(CurveKind kind) {
  Curve c = family_draw(kind, /*depth=*/0);
  if (rng_.uniform01() < config_.pathological_bias) {
    Curve p = pathological(c);
    // Pathological rewrites must preserve the requested shape class.
    const bool ok = (kind == CurveKind::kAny) ||
                    (p.is_finite() &&
                     (kind != CurveKind::kArrival ||
                      p.segments().front().value_at == 0.0) &&
                     (kind != CurveKind::kService || p.is_convex()));
    if (ok) return p;
  }
  return c;
}

Curve CurveGenerator::general_draw(bool allow_inf) {
  const int n =
      1 + static_cast<int>(rng_() % static_cast<unsigned>(
                                        std::max(1, config_.max_segments)));
  std::vector<Segment> segs;
  double x = 0.0;
  double y = rng_.uniform01() < 0.5 ? 0.0 : rng_.uniform(0.0, 2.0);
  for (int i = 0; i < n; ++i) {
    double value_after = y;
    if (config_.allow_jumps && rng_.uniform01() < 0.3) {
      value_after += rng_.uniform(0.0, 3.0);
    }
    const double slope =
        rng_.uniform01() < 0.2 ? 0.0 : rng_.uniform(0.0, config_.max_slope);
    segs.push_back(Segment{x, y, value_after, slope});
    const double dx = rng_.uniform(0.05, config_.max_span);
    y = value_after + slope * dx;
    x += dx;
  }
  if (allow_inf && rng_.uniform01() < 0.5) {
    segs.push_back(Segment{x, y, kInf, 0.0});
  }
  return Curve(std::move(segs));
}

Curve CurveGenerator::family_draw(CurveKind kind, int depth) {
  auto rate = [&] { return rng_.uniform(0.05, config_.max_slope); };
  auto burst = [&] { return rng_.uniform(0.0, 4.0); };
  auto latency = [&] { return rng_.uniform(0.0, 2.0); };

  if (kind == CurveKind::kArrival) {
    switch (rng_() % 5) {
      case 0:
        return Curve::rate(rate());
      case 1:
        return Curve::affine(rate(), burst());
      case 2:  // min of two token buckets: concave arrival envelope
        return minplus::minimum(Curve::affine(rate() * 4.0, burst()),
                                Curve::affine(rate(), burst() + 2.0));
      case 3: {  // packetized flow
        const double h = rng_.uniform(0.2, 2.0);
        return Curve::staircase(h, rng_.uniform(0.1, 1.0), latency(),
                                1 + static_cast<int>(rng_() % 5));
      }
      default:
        return Curve::affine(rate(), 0.0);
    }
  }
  if (kind == CurveKind::kService) {
    switch (rng_() % 4) {
      case 0:
        return Curve::rate(rate());
      case 1:
        return Curve::rate_latency(rate(), latency());
      case 2:  // max of two rate-latencies: convex multi-slope service
        return minplus::maximum(Curve::rate_latency(rate(), latency()),
                                Curve::rate_latency(rate() * 3.0,
                                                    latency() + 1.0));
      default:
        return Curve::rate_latency(rate(), rng_.uniform(0.0, 0.3));
    }
  }

  const bool inf_ok = kind == CurveKind::kAny && config_.allow_infinite;
  switch (rng_() % 12) {
    case 0:
      return Curve::zero();
    case 1:
      return Curve::constant(burst());
    case 2:
      return Curve::affine(rate(), burst());
    case 3:
      return Curve::rate(rate());
    case 4:
      return Curve::rate_latency(rate(), latency());
    case 5:
      return inf_ok ? Curve::delta(latency()) : Curve::rate(rate());
    case 6:
      return Curve::step(burst(), rng_.uniform(0.1, 2.0));
    case 7:
      return Curve::staircase(rng_.uniform(0.2, 2.0), rng_.uniform(0.1, 1.0),
                              latency(), 1 + static_cast<int>(rng_() % 5));
    case 8:
    case 9:
      return general_draw(inf_ok);
    default: {
      if (depth >= 2) return general_draw(inf_ok);
      // Composite: combine two shallower draws with a lattice/dioid op.
      const Curve a = family_draw(CurveKind::kAny, depth + 1);
      const Curve b = family_draw(CurveKind::kAny, depth + 1);
      switch (rng_() % 3) {
        case 0:
          return minplus::minimum(a, b);
        case 1:
          return minplus::maximum(a, b);
        default:
          return minplus::add(a, b);
      }
    }
  }
}

Curve CurveGenerator::pathological(const Curve& base) {
  std::vector<Segment> segs = base.segments();
  switch (rng_() % 5) {
    case 0: {
      // Micro-segment: split a piece epsilon after its breakpoint with an
      // infinitesimally different slope — the near-degenerate shape that
      // once slipped past envelope construction (repair_point_values).
      const std::size_t i = rng_() % segs.size();
      const Segment s = segs[i];
      if (s.value_after == kInf) return base;
      const double span =
          (i + 1 < segs.size()) ? segs[i + 1].x - s.x : 1.0;
      const double eps = span * rng_.uniform(1e-9, 1e-6);
      Segment wedge{s.x + eps, s.value_after + s.slope * eps,
                    s.value_after + s.slope * eps,
                    s.slope * (1.0 + 1e-12) + 1e-13};
      segs.insert(segs.begin() + static_cast<std::ptrdiff_t>(i) + 1, wedge);
      return curve_or(std::move(segs), base);
    }
    case 1: {
      // Huge magnitudes: scale values so absolute tolerances are useless
      // and only relative comparisons survive.
      return base.scale_value(rng_.uniform(1e6, 1e9));
    }
    case 2: {
      // Time squeeze: compress the breakpoints into a tiny prefix.
      return base.scale_time(rng_.uniform(1e-6, 1e-3));
    }
    case 3: {
      // Micro-jumps: bump every right limit by a sub-tolerance amount.
      for (Segment& s : segs) {
        if (s.value_after != kInf) s.value_after += 1e-12;
      }
      return curve_or(std::move(segs), base);
    }
    default: {
      // Plateau chain: repeat the last finite value across several long
      // zero-slope pieces (exercises inverse plateaus and merge logic).
      Segment last = segs.back();
      if (last.value_after == kInf) return base;
      double x = last.x + 1.0;
      const double y = last.value_after + last.slope * 1.0;
      segs.back().slope = last.slope;
      for (int k = 0; k < 3; ++k) {
        segs.push_back(Segment{x, y, y, 0.0});
        x += rng_.uniform(0.5, 1.5);
      }
      return curve_or(std::move(segs), base);
    }
  }
}

// ---------------------------------------------------------------------------

ScenarioGenerator::ScenarioGenerator(ScenarioGenConfig config,
                                     std::uint64_t seed)
    : config_(config), rng_(seed) {
  util::require(config_.min_stages >= 1 &&
                    config_.max_stages >= config_.min_stages,
                "ScenarioGenConfig requires 1 <= min_stages <= max_stages");
  util::require(config_.load_lo > 0.0 && config_.load_hi >= config_.load_lo,
                "ScenarioGenConfig requires 0 < load_lo <= load_hi");
}

Scenario ScenarioGenerator::next() {
  using util::DataRate;
  using util::DataSize;

  Scenario sc;
  const int n = config_.min_stages +
                static_cast<int>(rng_() % static_cast<unsigned>(
                                              config_.max_stages -
                                              config_.min_stages + 1));
  const DataSize block = DataSize::kib(64);
  // Worst-case input-normalized bottleneck rate: the sustained rate of the
  // sound end-to-end service curve. Volume normalization follows the model:
  // data at stage i is scaled by the *max* volume ratios of stages < i.
  double min_norm_rate = std::numeric_limits<double>::infinity();
  double vol = 1.0;
  DataSize prev_out = block;
  for (int i = 0; i < n; ++i) {
    const double avg = rng_.uniform(60.0, 400.0);  // MiB/s
    const double spread =
        config_.markovian ? 1.0 : rng_.uniform(1.05, 1.6);
    std::string name = "s";
    name += std::to_string(i);
    netcalc::NodeSpec node = netcalc::NodeSpec::from_rates(
        std::move(name), netcalc::NodeKind::kCompute, block,
        DataRate::mib_per_sec(avg / spread), DataRate::mib_per_sec(avg),
        DataRate::mib_per_sec(avg * spread));
    if (config_.volume_changes && !config_.markovian &&
        rng_.uniform01() < 0.35) {
      // Filtering stage: emits fewer bytes than it consumes.
      node.volume = netcalc::VolumeRatio::exact(rng_.uniform(0.3, 0.9));
    }
    if (config_.aggregation && !config_.markovian && i > 0 &&
        rng_.uniform01() < 0.25) {
      // Aggregating stage: collects a larger block than the predecessor
      // emits (the paper's T_n^tot recursion).
      node.block_in = prev_out * 4.0;
      node.block_out = node.block_in;
      node.time_min = node.block_in / DataRate::mib_per_sec(avg * spread);
      node.time_avg = node.block_in / DataRate::mib_per_sec(avg);
      node.time_max = node.block_in / DataRate::mib_per_sec(avg / spread);
    }
    prev_out = node.block_out;
    min_norm_rate = std::min(
        min_norm_rate, (avg / spread) * 1024.0 * 1024.0 / vol);
    vol *= node.volume.max;
    sc.nodes.push_back(std::move(node));
  }
  sc.source.rate = DataRate::bytes_per_sec(
      rng_.uniform(config_.load_lo, config_.load_hi) * min_norm_rate);
  sc.source.burst = config_.markovian ? DataSize::bytes(0) : block;
  sc.source.packet = block;
  return sc;
}

std::string Scenario::describe() const {
  std::ostringstream os;
  os << "source " << util::format_rate(source.rate) << " burst "
     << util::format_size(source.burst) << "; stages:";
  for (const netcalc::NodeSpec& n : nodes) {
    os << " [" << n.name << " block=" << util::format_size(n.block_in)
       << " rate=" << util::format_rate(n.rate_min()) << ".."
       << util::format_rate(n.rate_max());
    if (n.volume.min != 1.0 || n.volume.max != 1.0) {
      os << " vol=" << util::format_significant(n.volume.min) << ".."
         << util::format_significant(n.volume.max);
    }
    os << "]";
  }
  return os.str();
}

}  // namespace streamcalc::testing
