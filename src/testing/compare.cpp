#include "testing/compare.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/format.hpp"

namespace streamcalc::testing {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool above(double a, double b, double rtol, double atol) {
  if (a == kInf) return b != kInf;
  if (b == kInf) return false;
  return a > b + atol + rtol * std::max(std::fabs(a), std::fabs(b));
}

struct ValueRange {
  double lo, hi;
};

/// Every value the curve can take at t under a breakpoint-abscissa
/// perturbation of a few ulps. Constructed breakpoints (operand sums,
/// crossing abscissae) are not exactly representable, so two curves that
/// are equal as functions may place the same breakpoint one ulp apart;
/// near a steep piece the pointwise difference is then O(slope * ulp(t)),
/// and at a jump it is the full jump height. Comparing value *ranges* over
/// the ulp neighbourhood absorbs exactly that placement freedom while
/// still flagging any divergence wider than a few ulps.
ValueRange value_range(const minplus::Curve& c, double t, bool right_limit) {
  const double xtol =
      4.0 * std::numeric_limits<double>::epsilon() * (1.0 + std::fabs(t));
  const double lo_t = std::max(0.0, t - xtol);
  const double hi_t = t + xtol;
  if (right_limit) return {c.value_right(lo_t), c.value_right(hi_t)};
  return {c.value(lo_t), c.value(hi_t)};
}

double max_finite_slope(const minplus::Curve& c) {
  double m = 0.0;
  for (const minplus::Segment& s : c.segments()) {
    if (s.slope != kInf) m = std::max(m, s.slope);
  }
  return m;
}

template <typename Bad>
std::optional<CurveGap> first_probe(const minplus::Curve& a,
                                    const minplus::Curve& b,
                                    const Bad& bad) {
  // Conditioning-aware slack: a crossing against a piece of slope m cannot
  // be located better than one ulp in the abscissa, so its breakpoint
  // value — and, through the monotonicity chain, the whole tail after
  // it — carries an inherent O(m * ulp(t)) offset. Any algorithm storing
  // breakpoints as doubles has this error floor; the comparator must not
  // flag it.
  const double mslope = std::max(max_finite_slope(a), max_finite_slope(b));
  for (const double t : probe_times(a, b)) {
    const double slack = 8.0 * std::numeric_limits<double>::epsilon() *
                         (1.0 + std::fabs(t)) * mslope;
    for (const bool right_limit : {false, true}) {
      const ValueRange ra = value_range(a, t, right_limit);
      const ValueRange rb = value_range(b, t, right_limit);
      if (bad(ra, rb, slack)) {
        const double va = right_limit ? a.value_right(t) : a.value(t);
        const double vb = right_limit ? b.value_right(t) : b.value(t);
        return CurveGap{t, va, vb, right_limit};
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<double> probe_times(const minplus::Curve& a,
                                const minplus::Curve& b) {
  std::vector<double> xs;
  for (const minplus::Curve* c : {&a, &b}) {
    for (const minplus::Segment& s : c->segments()) xs.push_back(s.x);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  std::vector<double> probes;
  probes.reserve(xs.size() * 2 + 3);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    probes.push_back(xs[i]);
    if (i + 1 < xs.size()) probes.push_back(0.5 * (xs[i] + xs[i + 1]));
  }
  // Past the joint last breakpoint both curves are affine; two distinct
  // probes pin both tail value and tail slope.
  const double last = xs.empty() ? 0.0 : xs.back();
  const double unit = 1.0 + std::fabs(last);
  probes.push_back(last + 0.5 * unit);
  probes.push_back(last + 2.0 * unit);
  return probes;
}

std::optional<CurveGap> first_gap(const minplus::Curve& a,
                                  const minplus::Curve& b, double rtol,
                                  double atol) {
  return first_probe(
      a, b, [&](const ValueRange& x, const ValueRange& y, double slack) {
        return above(x.lo, y.hi, rtol, atol + slack) ||
               above(y.lo, x.hi, rtol, atol + slack);
      });
}

std::optional<CurveGap> first_above(const minplus::Curve& a,
                                    const minplus::Curve& b, double rtol,
                                    double atol) {
  return first_probe(
      a, b, [&](const ValueRange& x, const ValueRange& y, double slack) {
        return above(x.lo, y.hi, rtol, atol + slack);
      });
}

std::string gap_str(const CurveGap& gap) {
  std::ostringstream os;
  os << "at t=" << util::format_significant(gap.t, 17)
     << (gap.right_limit ? " (right limit)" : "") << ": lhs="
     << util::format_significant(gap.a_value, 17)
     << ", rhs=" << util::format_significant(gap.b_value, 17);
  return os.str();
}

}  // namespace streamcalc::testing
