#include "testing/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "queueing/mm1.hpp"
#include "streamsim/replication.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace streamcalc::testing {

namespace {

using netcalc::NodeSpec;
using netcalc::PipelineModel;
using util::format_significant;

/// "name=value" context line helper.
std::string kv(const std::string& name, double value) {
  return name + "=" + format_significant(value, 9);
}

}  // namespace

std::string OracleReport::summary() const {
  std::ostringstream os;
  if (violations.empty()) {
    os << "all invariants hold\n";
  } else {
    os << violations.size() << " violation(s):\n";
    for (const std::string& v : violations) os << "  VIOLATION: " << v << "\n";
  }
  for (const std::string& c : context) os << "  " << c << "\n";
  return os.str();
}

OracleReport check_bounds_dominate(const std::vector<NodeSpec>& nodes,
                                   const netcalc::SourceSpec& source,
                                   const netcalc::ModelPolicy& policy,
                                   const OracleConfig& config) {
  OracleReport report;
  const PipelineModel model(nodes, source, policy);
  const auto analysis = model.per_node_analysis();

  // Largest input-normalized block anywhere in the chain: the granularity
  // slack separating the fluid model from the packetized simulation.
  double max_norm_block = source.packet.in_bytes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    max_norm_block =
        std::max(max_norm_block,
                 nodes[i].block_in.in_bytes() / model.volume_in_worst(i));
  }
  const double burst_norm = source.burst.in_bytes();

  streamsim::ReplicationConfig rc;
  rc.replications = config.replications;
  rc.base_seed = config.base_seed;
  streamsim::SimConfig sim;
  sim.horizon = config.horizon;
  sim.deterministic = config.deterministic_sim;
  const streamsim::ReplicationSummary summary =
      streamsim::ReplicationRunner(rc).run(nodes, source, sim);

  const netcalc::Regime regime = model.load_regime();
  report.context.push_back(std::string("regime=") + to_string(regime));

  if (regime == netcalc::Regime::kUnderloaded) {
    // Delay: the bound must dominate the worst replication's worst packet.
    const double bound_d = model.delay_bound().value.in_seconds();
    const double worst_d = summary.worst_delay.in_seconds();
    report.context.push_back(kv("delay_bound_s", bound_d) + " " +
                             kv("worst_sim_delay_s", worst_d));
    if (worst_d > bound_d + config.delay_slack) {
      report.violations.push_back(
          "simulated delay exceeds NC delay bound: " +
          format_significant(worst_d, 9) + " s > " +
          format_significant(bound_d, 9) + " s");
    }

    // Backlog: same, against peak system occupancy.
    const double bound_b = model.backlog_bound().value.in_bytes();
    const double worst_b = summary.worst_backlog.in_bytes();
    report.context.push_back(kv("backlog_bound_B", bound_b) + " " +
                             kv("worst_sim_backlog_B", worst_b));
    if (worst_b > bound_b + config.backlog_slack) {
      report.violations.push_back(
          "simulated backlog exceeds NC backlog bound: " +
          format_significant(worst_b, 9) + " B > " +
          format_significant(bound_b, 9) + " B");
    }

    // Per-stage utilization: observed busy fraction must stay below the
    // worst-case load ratio (plus packet-granularity edge effects).
    for (std::size_t i = 0; i < analysis.size(); ++i) {
      const double rho_worst =
          std::min(1.0, analysis[i].arrival_rate.in_bytes_per_sec() /
                            analysis[i].service_rate.in_bytes_per_sec());
      const double edge =
          nodes[i].time_max.in_seconds() *
          (2.0 + burst_norm / std::max(1.0, nodes[i].block_in.in_bytes())) /
          config.horizon.in_seconds();
      for (const streamsim::SimResult& r : summary.results) {
        if (r.node_stats[i].utilization > rho_worst + edge + 1e-9) {
          report.violations.push_back(
              "stage " + nodes[i].name + " utilization " +
              format_significant(r.node_stats[i].utilization, 9) +
              " exceeds worst-case load ratio " +
              format_significant(rho_worst, 9));
          break;
        }
      }
    }
  } else {
    report.context.push_back(
        "asymptotic delay/backlog bounds are infinite in this regime; "
        "domination checks limited to the arrival envelope");
  }

  // Output trajectory: every replication's cumulative delivery must stay
  // inside [guaranteed - granularity, arrival envelope]. The arrival side
  // holds in every regime; the guaranteed side needs the service bound.
  const minplus::Curve& arrival = model.arrival_curve();
  const minplus::Curve& guaranteed = model.guaranteed_output_curve();
  const double trace_slack = max_norm_block + burst_norm;
  for (std::size_t rep = 0; rep < summary.results.size(); ++rep) {
    for (const auto& [t, out] : summary.results[rep].output_trace) {
      if (out > arrival.value_right(t) + 1.0) {
        report.violations.push_back(
            "replication " + std::to_string(rep) + " output " +
            format_significant(out, 9) + " B at t=" +
            format_significant(t, 9) + " exceeds the arrival envelope " +
            format_significant(arrival.value_right(t), 9) + " B");
        break;
      }
      if (regime == netcalc::Regime::kUnderloaded &&
          out + trace_slack < guaranteed.value(t)) {
        report.violations.push_back(
            "replication " + std::to_string(rep) + " output " +
            format_significant(out, 9) + " B at t=" +
            format_significant(t, 9) + " falls below the guaranteed curve " +
            format_significant(guaranteed.value(t), 9) + " B");
        break;
      }
    }
  }

  // Finite-horizon throughput brackets (with per-stage in-flight slack).
  const auto tb = model.throughput_bounds(config.horizon);
  const double slack_rate = static_cast<double>(nodes.size() + 1) *
                            max_norm_block / config.horizon.in_seconds();
  report.context.push_back(
      kv("tp_lower_Bps", tb.lower.in_bytes_per_sec()) + " " +
      kv("tp_upper_Bps", tb.upper.in_bytes_per_sec()) + " " +
      kv("tp_sim_mean_Bps", summary.throughput_bytes_per_sec.mean));
  for (std::size_t rep = 0; rep < summary.results.size(); ++rep) {
    const double tp = summary.results[rep].throughput.in_bytes_per_sec();
    if (regime == netcalc::Regime::kUnderloaded &&
        tp + slack_rate < tb.lower.in_bytes_per_sec()) {
      report.violations.push_back(
          "replication " + std::to_string(rep) + " throughput " +
          format_significant(tp, 9) + " B/s below the guaranteed rate " +
          format_significant(tb.lower.in_bytes_per_sec(), 9) + " B/s");
    }
    if (tp > tb.upper.in_bytes_per_sec() + slack_rate) {
      report.violations.push_back(
          "replication " + std::to_string(rep) + " throughput " +
          format_significant(tp, 9) + " B/s above the achievable bound " +
          format_significant(tb.upper.in_bytes_per_sec(), 9) + " B/s");
    }
  }
  return report;
}

OracleReport check_mm1_agreement(const std::vector<NodeSpec>& nodes,
                                 const netcalc::SourceSpec& source,
                                 const OracleConfig& config) {
  OracleReport report;
  const queueing::QueueingReport q = queueing::analyze(nodes, source);
  if (!q.stable) {
    report.violations.push_back(
        "M/M/1 model unstable at the offered load; the agreement check "
        "requires a stable operating point");
    return report;
  }

  streamsim::ReplicationConfig rc;
  rc.replications = config.replications;
  rc.base_seed = config.base_seed;
  streamsim::SimConfig sim;
  sim.horizon = config.mm1_horizon;
  sim.warmup = config.mm1_warmup;
  sim.poisson_arrivals = true;
  sim.service_distribution = streamsim::TimeDistribution::kExponential;
  sim.volume_mode = streamsim::VolumeMode::kAverage;
  const streamsim::ReplicationSummary summary =
      streamsim::ReplicationRunner(rc).run(nodes, source, sim);

  // Mean end-to-end sojourn: theory within the replication CI (plus a
  // relative guard band for finite-horizon bias).
  const double theory = q.total_sojourn.in_seconds();
  const auto& observed = summary.mean_delay_seconds;
  const double tolerance = std::max(3.0 * observed.ci95_half,
                                    config.mm1_rel_tol * theory);
  report.context.push_back(kv("mm1_sojourn_theory_s", theory) + " " +
                           kv("sim_mean_sojourn_s", observed.mean) + " " +
                           kv("ci95_half", observed.ci95_half));
  if (std::fabs(observed.mean - theory) > tolerance) {
    report.violations.push_back(
        "simulated mean sojourn " + format_significant(observed.mean, 9) +
        " s disagrees with M/M/1 theory " + format_significant(theory, 9) +
        " s beyond tolerance " + format_significant(tolerance, 9) + " s");
  }

  // Per-stage utilization: rho = lambda/mu, against the cross-replication
  // mean busy fraction.
  for (std::size_t i = 0; i < q.stages.size(); ++i) {
    const auto& stat = summary.node_utilization[i];
    const double rho = q.stages[i].utilization;
    const double tol =
        std::max({3.0 * stat.ci95_half, config.mm1_rel_tol * rho, 0.02});
    report.context.push_back("stage " + q.stages[i].name + ": " +
                             kv("rho", rho) + " " +
                             kv("sim_util_mean", stat.mean));
    if (std::fabs(stat.mean - rho) > tol) {
      report.violations.push_back(
          "stage " + q.stages[i].name + " utilization " +
          format_significant(stat.mean, 9) + " disagrees with rho=" +
          format_significant(rho, 9) + " beyond tolerance " +
          format_significant(tol, 9));
    }
  }
  return report;
}

}  // namespace streamcalc::testing
