// Tolerant pointwise comparison of piecewise-linear curves, for property
// assertions.
//
// Exact segment equality (Curve::operator==) is the right notion for
// bit-identity contracts (parallel == serial, cached == uncached), but
// algebraic-law checks compare results of *different* computation orders —
// e.g. conv(conv(f,g),h) against conv(f,conv(g,h)) — whose breakpoints
// carry different rounding noise. These helpers compare curves by value at
// a deterministic set of probe times (every breakpoint of both curves,
// interval midpoints, and points past the last breakpoint), at both the
// point value and the right limit, under a relative-plus-absolute
// tolerance. Infinities compare equal only to infinities.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "minplus/curve.hpp"

namespace streamcalc::testing {

/// One probe where curves a and b disagree (or violate an ordering).
struct CurveGap {
  double t = 0.0;
  double a_value = 0.0;
  double b_value = 0.0;
  bool right_limit = false;  ///< gap at lim_{s->t+} rather than at f(t)
};

/// Human-readable "a(t)=..., b(t)=..." line for a failure message.
std::string gap_str(const CurveGap& gap);

/// Deterministic probe times covering both curves: all breakpoints,
/// midpoints of consecutive breakpoint intervals, and a few points beyond
/// the last breakpoint (where both curves are affine).
std::vector<double> probe_times(const minplus::Curve& a,
                                const minplus::Curve& b);

/// First probe where |a - b| > atol + rtol * max(|a|, |b|), checking both
/// the value and the right limit; nullopt if none.
std::optional<CurveGap> first_gap(const minplus::Curve& a,
                                  const minplus::Curve& b,
                                  double rtol = 1e-9, double atol = 1e-9);

/// First probe where a > b + tolerance (i.e. a violation of a <= b
/// pointwise); nullopt if a <= b everywhere probed.
std::optional<CurveGap> first_above(const minplus::Curve& a,
                                    const minplus::Curve& b,
                                    double rtol = 1e-9, double atol = 1e-9);

inline bool approx_equal(const minplus::Curve& a, const minplus::Curve& b,
                         double rtol = 1e-9, double atol = 1e-9) {
  return !first_gap(a, b, rtol, atol).has_value();
}

inline bool approx_leq(const minplus::Curve& a, const minplus::Curve& b,
                       double rtol = 1e-9, double atol = 1e-9) {
  return !first_above(a, b, rtol, atol).has_value();
}

}  // namespace streamcalc::testing
