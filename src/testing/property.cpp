#include "testing/property.hpp"

#include <exception>
#include <sstream>
#include <utility>

#include "testing/shrink.hpp"
#include "util/context.hpp"
#include "util/error.hpp"

namespace streamcalc::testing {

namespace {

/// Evaluates the property, folding exceptions into failure messages so the
/// fuzz loop and the shrinker see one uniform "fails or not" signal.
std::string eval_property(const PropertyFn& property,
                          const std::vector<minplus::Curve>& inputs) {
  try {
    return property(inputs);
  } catch (const std::exception& e) {
    return std::string("property threw: ") + e.what();
  } catch (...) {
    return "property threw a non-standard exception";
  }
}

}  // namespace

int base_cases() {
  // Resolved through the process Context: an installed Context's fuzz
  // budget wins; otherwise Context::from_env() strict-parses
  // STREAMCALC_FUZZ_CASES (a garbled budget must not silently revert to
  // 500 cases). The range cap (<= 1e8, well below INT_MAX) keeps the
  // scaled_cases multiplication from overflowing.
  return util::Context::active().fuzz_cases;
}

int scaled_cases(int default_cases) {
  const long scaled =
      static_cast<long>(default_cases) * base_cases() / 500;
  return scaled < 1 ? 1 : static_cast<int>(scaled);
}

std::string Failure::report() const {
  std::ostringstream os;
  os << "property falsified (seed=" << seed << ", case=" << case_index
     << ", " << shrunk.size() << " operand(s))\n";
  for (std::size_t i = 0; i < shrunk.size(); ++i) {
    os << "  operand " << i << " (shrunk): " << shrunk[i].describe() << "\n";
  }
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (!(original[i] == shrunk[i])) {
      os << "  operand " << i << " (as generated): "
         << original[i].describe() << "\n";
    }
  }
  os << "  " << message;
  return os.str();
}

std::optional<Failure> fuzz(const FuzzSpec& spec, const PropertyFn& property) {
  util::require(!spec.operands.empty(),
                "fuzz() requires at least one operand kind");
  const int cases = spec.cases > 0 ? spec.cases : scaled_cases(500);

  // One generator stream per case, derived from (seed, index): a failure
  // replays from its case index alone, without regenerating the prefix.
  util::SplitMix64 sm(spec.seed);
  for (int index = 0; index < cases; ++index) {
    CurveGenerator gen(spec.gen, sm.next());
    std::vector<minplus::Curve> inputs;
    inputs.reserve(spec.operands.size());
    for (const CurveKind kind : spec.operands) {
      inputs.push_back(gen.next(kind));
    }

    const std::string message = eval_property(property, inputs);
    if (message.empty()) continue;

    Failure failure;
    failure.seed = spec.seed;
    failure.case_index = index;
    failure.original = inputs;
    failure.shrunk = shrink_tuple(
        std::move(inputs),
        [&](const std::vector<minplus::Curve>& trial) {
          return !eval_property(property, trial).empty();
        },
        spec.shrink_budget);
    failure.message = eval_property(property, failure.shrunk);
    return failure;
  }
  return std::nullopt;
}

}  // namespace streamcalc::testing
