// Property-based fuzzing driver for curve operators.
//
// A property is a pure function from a tuple of curves to a failure
// message ("" = holds). The driver generates `cases` input tuples from a
// seeded CurveGenerator, evaluates the property on each, and on the first
// failure shrinks the tuple (testing/shrink.hpp) and returns a replayable
// report carrying the base seed, the case index, the original inputs, and
// the shrunk counterexample.
//
// Budgets: every suite sizes itself through scaled_cases(), so the
// STREAMCALC_FUZZ_CASES environment variable scales the whole harness at
// once. The default (500) keeps the full property suite around a 10k-case
// budget — the fixed CI configuration; raise it locally for deeper runs
// (e.g. STREAMCALC_FUZZ_CASES=50000 for a ~1M-case soak).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "testing/generator.hpp"

namespace streamcalc::testing {

/// Per-property base case count: STREAMCALC_FUZZ_CASES if set (>= 1), else
/// 500.
int base_cases();

/// `default_cases` scaled by base_cases()/500 (at least 1): suites with
/// expensive properties pass smaller defaults and still scale with the
/// environment knob.
int scaled_cases(int default_cases);

/// A falsified property, shrunk and ready to print.
struct Failure {
  std::uint64_t seed = 0;        ///< base seed of the fuzz run
  int case_index = 0;            ///< which generated tuple failed first
  std::vector<minplus::Curve> original;  ///< inputs as generated
  std::vector<minplus::Curve> shrunk;    ///< minimized counterexample
  std::string message;           ///< property message on the shrunk tuple

  /// Multi-line report: seed/case for replay, the shrunk operands (both
  /// describe() and exact segment listings), and the failure message.
  std::string report() const;
};

/// "" = property holds for this tuple; anything else = failure message.
using PropertyFn =
    std::function<std::string(const std::vector<minplus::Curve>&)>;

struct FuzzSpec {
  /// One entry per operand; the arity of the property.
  std::vector<CurveKind> operands;
  CurveGenConfig gen;
  std::uint64_t seed = 0x5eedcafe;
  int cases = 0;  ///< 0 = scaled_cases(500)
  int shrink_budget = 400;
};

/// Runs the property over `spec.cases` generated tuples. Returns the first
/// failure (shrunk), or nullopt when every case passes. A property that
/// throws fails with the exception text as its message.
std::optional<Failure> fuzz(const FuzzSpec& spec, const PropertyFn& property);

}  // namespace streamcalc::testing
