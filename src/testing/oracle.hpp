// Differential oracle: the paper's soundness relationships, checkable on
// any pipeline spec.
//
// All three models — the network-calculus PipelineModel, the discrete-event
// streamsim, and the M/M/1 queueing baseline — consume the same NodeSpecs,
// so the relationships the paper relies on are machine-checkable:
//
//   * every simulated observation (per-packet delay, system backlog,
//     cumulative output trajectory, finite-horizon throughput) must lie
//     within the sound network-calculus bounds, replication by replication;
//   * per-stage utilizations observed in simulation must not exceed the
//     worst-case load ratio the analytic model assigns the stage;
//   * in the Markovian regime (Poisson arrivals, exponential service,
//     volume-preserving stages) the tandem is a product-form network, so
//     the M/M/1 model's sojourn times and utilizations must match the
//     simulation within its replication confidence interval.
//
// Checks return an OracleReport listing violations as human-readable
// strings (empty = all invariants hold) plus the numbers that were
// compared, so a failing property prints a complete replayable diagnosis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netcalc/node.hpp"
#include "netcalc/pipeline.hpp"
#include "util/units.hpp"

namespace streamcalc::testing {

struct OracleConfig {
  int replications = 4;
  std::uint64_t base_seed = 1;
  util::Duration horizon = util::Duration::seconds(1.0);
  /// Exact rates/volumes in the DES (no sampling): the NC bounds must then
  /// hold with only numeric slack. Used for scenarios with aggregation,
  /// whose analytic wait estimate assumes the sustained rate.
  bool deterministic_sim = false;
  /// Numeric slack on the delay bound (seconds).
  double delay_slack = 1e-9;
  /// Slack on the backlog bound (bytes).
  double backlog_slack = 1.0;
  /// Relative tolerance of the M/M/1 agreement check (on top of the
  /// replication CI).
  double mm1_rel_tol = 0.15;
  /// Horizon of the (statistics-hungry) Markovian agreement run.
  util::Duration mm1_horizon = util::Duration::seconds(30.0);
  util::Duration mm1_warmup = util::Duration::seconds(3.0);
};

struct OracleReport {
  std::vector<std::string> violations;  ///< empty = all invariants hold
  std::vector<std::string> context;     ///< the numbers that were compared

  bool ok() const { return violations.empty(); }
  /// Violations (if any) followed by the context lines.
  std::string summary() const;
};

/// Checks that the sound NC bounds dominate every replication of the DES:
/// delay, backlog, output-trajectory envelope, finite-horizon throughput,
/// and per-stage utilization. In non-underloaded regimes only the checks
/// that remain meaningful (arrival envelope, throughput ceiling) run.
OracleReport check_bounds_dominate(const std::vector<netcalc::NodeSpec>& nodes,
                                   const netcalc::SourceSpec& source,
                                   const netcalc::ModelPolicy& policy,
                                   const OracleConfig& config);

/// Checks M/M/1 agreement in its validity regime: runs the DES with
/// Poisson arrivals and exponential service and compares mean sojourn and
/// per-stage utilization against queueing::analyze. The pipeline should be
/// Markov-compatible (uniform blocks, unit volume ratios); stages outside
/// the stable region are reported as violations.
OracleReport check_mm1_agreement(const std::vector<netcalc::NodeSpec>& nodes,
                                 const netcalc::SourceSpec& source,
                                 const OracleConfig& config);

}  // namespace streamcalc::testing
