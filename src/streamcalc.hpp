// streamcalc umbrella header: one include for the public API.
//
//   #include "streamcalc.hpp"
//
// pulls in the curve algebra (min-plus / max-plus), the network-calculus
// models (chain pipeline + DAG), the discrete-event cross-check simulator
// with its replication runner, the nclint / certify verification layers,
// the observability layer (spans, metrics, sinks), and the util
// foundations (Context, units, formatting). Applications that only need a
// slice — e.g. just the curve algebra — can keep including the individual
// headers; this header is for examples, tools, and downstream consumers
// that want the whole surface without tracking the internal layout.
//
// Versioning follows the CMake project version; compare against
// STREAMCALC_VERSION_MAJOR / _MINOR for source-level feature checks.
#pragma once

#define STREAMCALC_VERSION_MAJOR 1
#define STREAMCALC_VERSION_MINOR 0

// Foundations: units/literals, error types, formatting, run configuration.
#include "util/context.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/units.hpp"

// Observability: SC_OBS_* macros, Tracer/Span, metrics Registry, Sink.
#include "obs/obs.hpp"

// Curve algebra.
#include "maxplus/operations.hpp"
#include "minplus/cache.hpp"
#include "minplus/curve.hpp"
#include "minplus/deviation.hpp"
#include "minplus/inverse.hpp"
#include "minplus/operations.hpp"

// Network-calculus models and bounds.
#include "netcalc/bounds.hpp"
#include "netcalc/dag.hpp"
#include "netcalc/node.hpp"
#include "netcalc/packetizer.hpp"
#include "netcalc/pipeline.hpp"
#include "netcalc/shaper.hpp"
#include "netcalc/trace.hpp"

// Verification: pre-flight lint and post-flight bound certification.
#include "certify/postflight.hpp"
#include "diagnostics/lint.hpp"

// Simulation cross-check: DES pipeline simulator + replication summaries.
#include "streamsim/pipeline_sim.hpp"
#include "streamsim/replication.hpp"

// Analytic queueing reference model.
#include "queueing/mm1.hpp"
