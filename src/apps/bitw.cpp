#include "apps/bitw.hpp"

#include "queueing/mm1.hpp"

namespace streamcalc::apps::bitw {

using netcalc::NodeKind;
using netcalc::NodeSpec;
using netcalc::SourceSpec;
using netcalc::VolumeRatio;
using util::DataRate;
using util::DataSize;
using util::Duration;
using namespace util::literals;

namespace {

constexpr auto kChunk = 1_KiB;  // normalized chunk size (paper, Section 5)

/// Table 2 row: a streaming kernel moving 1 KiB chunks with the given
/// min/avg/max throughputs (raw MiB/s of its own input) and pipeline-fill
/// latency.
NodeSpec kernel(const char* name, double mibps_min, double mibps_avg,
                double mibps_max, Duration fill_latency, VolumeRatio volume) {
  NodeSpec n = NodeSpec::from_rates(
      name, NodeKind::kCompute, kChunk, DataRate::mib_per_sec(mibps_min),
      DataRate::mib_per_sec(mibps_avg), DataRate::mib_per_sec(mibps_max));
  n.volume = volume;
  n.aggregates = false;       // HLS stream channels: cut-through
  n.latency_override = fill_latency;
  n.validate();
  return n;
}

}  // namespace

std::vector<netcalc::NodeSpec> nodes() {
  std::vector<NodeSpec> ns;
  // Table 2, with the LZ4 volume spread attached to the compressor and the
  // inverse expansion to the decompressor.
  ns.push_back(kernel("compress", 1181, 2662, 6386, 1.5_us,
                      VolumeRatio::from_compression(
                          kCompressionMin, kCompressionAvg,
                          kCompressionMax)));
  ns.push_back(kernel("encrypt", 56, 68, 75, 9_us, VolumeRatio::exact(1.0)));
  {
    // Propagation enters the model through latency_override (Table 2
    // reports the pure link bandwidth).
    NodeSpec net = NodeSpec::link("network", NodeKind::kNetworkLink,
                                  DataRate::gib_per_sec(10), kChunk, 0_us);
    net.latency_override = 1.5_us;
    ns.push_back(net);
  }
  ns.push_back(kernel("decrypt", 77, 90, 113, 9_us, VolumeRatio::exact(1.0)));
  {
    NodeSpec dec = kernel("decompress", 1426, 1495, 1543, 1.5_us,
                          VolumeRatio{kCompressionMin, kCompressionAvg,
                                      kCompressionMax});
    dec.restores_volume = true;
    ns.push_back(dec);
  }
  {
    NodeSpec pcie = NodeSpec::link("pcie", NodeKind::kPcieLink,
                                   DataRate::gib_per_sec(11), 4_KiB, 0_us);
    pcie.latency_override = 1.5_us;
    ns.push_back(pcie);
  }
  return ns;
}

std::vector<netcalc::NodeSpec> traditional_nodes() {
  // Fig. 7: after encryption the data crosses PCIe to host memory, the
  // host NIC sends it, and symmetrically on the receive side, before the
  // same decrypt/decompress work. Two extra PCIe hops plus host-memory
  // staging latency.
  std::vector<NodeSpec> ns = nodes();
  NodeSpec pcie_up = NodeSpec::link("pcie_to_host", NodeKind::kPcieLink,
                                    DataRate::gib_per_sec(11), kChunk, 1_us);
  pcie_up.latency_override = 4_us;  // DMA + host staging
  NodeSpec pcie_down = NodeSpec::link("pcie_from_host", NodeKind::kPcieLink,
                                      DataRate::gib_per_sec(11), kChunk,
                                      1_us);
  pcie_down.latency_override = 4_us;
  // Insert after encrypt (index 2) and before decrypt (now index 4).
  ns.insert(ns.begin() + 2, pcie_up);
  ns.insert(ns.begin() + 4, pcie_down);
  return ns;
}

netcalc::SourceSpec streaming_source() {
  SourceSpec s;
  s.rate = DataRate::gib_per_sec(2);  // FPGA DRAM DMA feed
  s.burst = 4_KiB;
  s.packet = DataSize::bytes(0);
  return s;
}

netcalc::SourceSpec throttled_source() {
  SourceSpec s;
  s.rate = DataRate::mib_per_sec(61);  // the sustained pipeline rate
  s.burst = DataSize::bytes(0);
  s.packet = kChunk;  // chunk granularity enters via the packetizer step
  return s;
}

netcalc::SourceSpec delay_study_source() {
  SourceSpec s = throttled_source();
  s.rate = DataRate::mib_per_sec(56);  // bottleneck worst-case rate
  return s;
}

netcalc::ModelPolicy policy() {
  netcalc::ModelPolicy p;
  p.service_basis = netcalc::RateBasis::kAvg;
  p.max_service_basis = netcalc::RateBasis::kAvg;
  p.max_service_latency = true;  // gamma = baseline x max compression
  p.packetize = false;           // single-node collapse (paper)
  return p;
}

streamsim::SimConfig sim_config() {
  streamsim::SimConfig c;
  // The simulation runs much longer than the bound-evaluation horizon so
  // steady-state throughput is not dominated by end effects.
  c.horizon = Duration::millis(5);
  c.warmup = Duration::millis(1);
  c.seed = 7;
  c.queue_capacity = 2;  // shallow FPGA stream FIFOs
  // The paper's simulation accounts chunks at their normalized (worst-case
  // compression) size; sampled-ratio simulation is reported as an
  // extension.
  c.volume_mode = streamsim::VolumeMode::kWorstCase;
  return c;
}

util::Duration table3_horizon() { return Duration::micros(181); }

PaperNumbers paper() { return {}; }

Reproduced reproduce() {
  const auto ns = nodes();
  const netcalc::PipelineModel model(ns, streaming_source(), policy());
  const auto tb = model.throughput_bounds(table3_horizon());
  const auto q = queueing::analyze(ns, streaming_source());
  const auto sim = streamsim::simulate(ns, throttled_source(), sim_config());
  const netcalc::PipelineModel delay_model(ns, delay_study_source(), policy());

  Reproduced r;
  r.nc_upper_mibps = tb.upper.in_mib_per_sec();
  r.nc_lower_mibps = tb.lower.in_mib_per_sec();
  r.des_mibps = sim.throughput.in_mib_per_sec();
  r.queueing_mibps = q.roofline_throughput.in_mib_per_sec();
  r.delay_bound_us = delay_model.delay_bound().value.in_micros();
  r.backlog_bound_kib = delay_model.backlog_bound().value.in_kib();
  for (const netcalc::NodeAnalysis& a : delay_model.per_node_analysis()) {
    StageBound s;
    s.name = a.name;
    s.service_mibps = a.service_rate.in_mib_per_sec();
    s.delay_us = a.delay.in_micros();
    r.stages.push_back(std::move(s));
  }
  return r;
}

}  // namespace streamcalc::apps::bitw
