#include "apps/flowgraph.hpp"

#include <sstream>

#include "util/format.hpp"

namespace streamcalc::apps {

namespace {

std::string ratio_label(double r) {
  // Render as a:b with small integers where possible.
  if (r >= 1.0) return util::format_significant(r) + ":1";
  return "1:" + util::format_significant(1.0 / r);
}

const char* shape_for(netcalc::NodeKind k) {
  switch (k) {
    case netcalc::NodeKind::kCompute:
      return "box";
    case netcalc::NodeKind::kNetworkLink:
      return "ellipse";
    case netcalc::NodeKind::kPcieLink:
      return "hexagon";
  }
  return "box";
}

}  // namespace

std::string flow_graph_dot(const std::string& title,
                           const std::vector<netcalc::NodeSpec>& nodes,
                           const netcalc::SourceSpec& source) {
  std::ostringstream os;
  os << "digraph \"" << title << "\" {\n";
  os << "  rankdir=LR;\n";
  os << "  source [shape=plaintext, label=\"source\\n"
     << util::format_rate(source.rate) << "\"];\n";
  for (const netcalc::NodeSpec& n : nodes) {
    os << "  \"" << n.name << "\" [shape=" << shape_for(n.kind)
       << ", label=\"" << n.name << "\\n" << to_string(n.kind) << "\\n"
       << util::format_rate(n.rate_avg()) << "\"];\n";
  }
  os << "  sink [shape=plaintext];\n";
  std::string prev = "source";
  for (const netcalc::NodeSpec& n : nodes) {
    os << "  " << (prev == "source" || prev == "sink"
                       ? prev
                       : "\"" + prev + "\"")
       << " -> \"" << n.name << "\" [label=\""
       << ratio_label(n.job_ratio()) << "\"];\n";
    prev = n.name;
  }
  os << "  \"" << prev << "\" -> sink;\n";
  os << "}\n";
  return os.str();
}

std::string flow_graph_ascii(const std::vector<netcalc::NodeSpec>& nodes) {
  std::ostringstream os;
  os << "[source]";
  for (const netcalc::NodeSpec& n : nodes) {
    os << " -> (" << n.name << " " << ratio_label(n.job_ratio()) << ")";
  }
  os << " -> [sink]";
  return os.str();
}

}  // namespace streamcalc::apps
