// Model of the BLASTN biosequence-alignment streaming pipeline
// (paper, Section 4; Faber et al. [12]; Fig. 2 stages, Fig. 3 data-flow).
//
// The deployment: an FPGA converts the FASTA database to 2-bit encoding
// (fa_2bit from DIBS), data blocks are decomposed for network transport to
// the GPU host, re-composed into large blocks, moved over PCIe, and run
// through the Mercator BLASTN stages on the GPU (seed matching, seed
// enumeration + small extension, ungapped extension).
//
// The paper's per-stage measurements for BLAST are not published; the
// parameters here are calibrated so an independent implementation of the
// models reproduces the published relationships (Table 1, Fig. 4, and the
// Section-4 delay/backlog numbers). See DESIGN.md ("Calibration").
#pragma once

#include <string>
#include <vector>

#include "netcalc/node.hpp"
#include "netcalc/pipeline.hpp"
#include "streamsim/pipeline_sim.hpp"

namespace streamcalc::apps::blast {

/// The eight-node chain of Fig. 3 (FPGA fa_2bit through GPU ungapped
/// extension, including the network and PCIe transport nodes).
std::vector<netcalc::NodeSpec> nodes();

/// Endless-stream source (Table 1 throughput study): the FPGA offers
/// converted database data at its sustained output rate.
netcalc::SourceSpec streaming_source();

/// Finite-job source (Section 4 delay/backlog study): one database search
/// job traversing the pipeline.
netcalc::SourceSpec job_source();

/// Modeling policy used for the paper reproduction: worst-case rates for
/// beta, best-case for gamma, single-node collapse (no per-node
/// packetizer).
netcalc::ModelPolicy policy();

/// Simulation configuration matching the paper's discrete-event setup:
/// bounded Mercator-style queues between stages (backpressure).
streamsim::SimConfig sim_config();

/// Horizon over which the Table 1 throughput numbers are evaluated.
util::Duration table1_horizon();

/// Published values from the paper, for side-by-side reporting.
struct PaperNumbers {
  double nc_upper_mibps = 704.0;
  double nc_lower_mibps = 350.0;
  double des_mibps = 353.0;
  double queueing_mibps = 500.0;
  double measured_mibps = 355.0;
  double delay_bound_ms = 46.9;
  double sim_delay_max_ms = 46.4;
  double sim_delay_min_ms = 40.7;
  double backlog_bound_mib = 20.6;
  double sim_backlog_mib = 20.1;  // printed as "20.1 KiB" in the paper; see
                                  // EXPERIMENTS.md for the discrepancy note
};
PaperNumbers paper();

/// Headline numbers this reproduction computes from the three models
/// (Table 1 and the Section 4 delay/backlog study), evaluated from the
/// shared NodeSpecs. Bench executables and the golden regression test both
/// call reproduce() so they can never drift apart.
struct Reproduced {
  double nc_upper_mibps = 0.0;      ///< NC throughput bound, upper
  double nc_lower_mibps = 0.0;      ///< NC throughput bound, lower
  double des_mibps = 0.0;           ///< single-run DES throughput
  double queueing_mibps = 0.0;      ///< M/M/1 roofline prediction
  double delay_bound_ms = 0.0;      ///< job-source delay bound (collapsed)
  double backlog_bound_mib = 0.0;   ///< job-source backlog bound (packetized)
  /// End-to-end NC lower bound over the published measured throughput
  /// (355 MiB/s): the paper's headline "bound within 1.4% of measurement".
  double bound_over_measured = 0.0;
  std::string bottleneck;           ///< bottleneck stage name
};
Reproduced reproduce();

}  // namespace streamcalc::apps::blast
