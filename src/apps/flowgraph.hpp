// Flow-graph rendering for the paper's structural figures (Figs. 2-3, 5-9):
// emits Graphviz DOT and a one-line ASCII chain with the per-node job
// ratios annotated, generated from the same NodeSpecs that drive the
// models so the figures cannot drift from the parameters.
#pragma once

#include <string>
#include <vector>

#include "netcalc/node.hpp"
#include "netcalc/pipeline.hpp"

namespace streamcalc::apps {

/// Graphviz DOT for a pipeline: source -> nodes -> sink, with node kind
/// shapes (boxes for compute, ellipses for links) and job ratios as edge
/// labels.
std::string flow_graph_dot(const std::string& title,
                           const std::vector<netcalc::NodeSpec>& nodes,
                           const netcalc::SourceSpec& source);

/// One-line ASCII rendering in the style of the paper's Fig. 3:
///   [source] -> (fa_2bit 8:1) -> (decompose 4:1) -> ...
std::string flow_graph_ascii(const std::vector<netcalc::NodeSpec>& nodes);

}  // namespace streamcalc::apps
