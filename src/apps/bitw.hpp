// Model of the "bump in the wire" FPGA compression/encryption pipeline
// (paper, Section 5; Figs. 5-9; Tables 2-3).
//
// Two network-attached Alveo-class FPGAs run streaming LZ4 compression and
// 256-bit CBC AES kernels (Vitis libraries) plus a TCP/CMAC network stack:
// the source FPGA compresses and encrypts, the data crosses the network
// without ever returning to host memory, and the destination FPGA decrypts,
// decompresses, and delivers over PCIe. Per-stage throughputs are the
// paper's Table 2 verbatim; LZ4 compression ratios observed: 1.0x minimum,
// 2.2x average, 5.3x maximum.
#pragma once

#include <string>
#include <vector>

#include "netcalc/node.hpp"
#include "netcalc/pipeline.hpp"
#include "streamsim/pipeline_sim.hpp"

namespace streamcalc::apps::bitw {

/// Observed LZ4 compression ratios (Table 2 caption).
inline constexpr double kCompressionMin = 1.0;
inline constexpr double kCompressionAvg = 2.2;
inline constexpr double kCompressionMax = 5.3;

/// The six-node chain of Fig. 9: compress, encrypt, network, decrypt,
/// decompress, PCIe. Rates are Table 2 verbatim; all kernels are streaming
/// (cut-through) with pipeline-fill latencies, moving 1 KiB chunks.
std::vector<netcalc::NodeSpec> nodes();

/// The same functions deployed with a traditional FPGA interconnect
/// (Fig. 7): the compressed/encrypted data must cross PCIe to host memory
/// and the host NIC instead of leaving the FPGA directly. Used by the
/// deployment-comparison example/bench.
std::vector<netcalc::NodeSpec> traditional_nodes();

/// Fast upstream feed (FPGA DRAM DMA): the Table 3 throughput study offers
/// data faster than the pipeline can drain it.
netcalc::SourceSpec streaming_source();

/// Throttled source matching the paper's simulation: chunks are offered at
/// the rate the pipeline actually sustains (the Table 3 simulation row).
netcalc::SourceSpec throttled_source();

/// Source for the Section-5 delay/backlog study: offered load equal to the
/// bottleneck's *minimum* measured rate, so the pipeline is stable even
/// under worst-case service and the backlog bound is sound against the
/// stochastic simulation. (At the sustained 61 MiB/s the encrypt stage is
/// transiently overloaded — its slowest service exceeds the inter-chunk
/// period — and queue peaks can exceed the average-rate bound; see
/// EXPERIMENTS.md.)
netcalc::SourceSpec delay_study_source();

/// Paper policy: service curves from the sustained average rates
/// (Table 2's primary columns), maximum service curve = the same baseline
/// scaled by the maximum compression (Section 5), single-node collapse.
netcalc::ModelPolicy policy();

/// Simulation configuration (1 KiB chunks, bounded FIFOs).
streamsim::SimConfig sim_config();

/// Horizon over which the Table 3 throughput numbers are evaluated.
util::Duration table3_horizon();

/// Published values from the paper for side-by-side reporting.
struct PaperNumbers {
  double nc_upper_mibps = 313.0;
  double nc_lower_mibps = 59.0;
  double des_mibps = 61.0;
  double queueing_mibps = 151.0;
  double delay_bound_us = 38.0;
  double sim_delay_max_us = 36.7;
  double sim_delay_min_us = 25.7;
  double backlog_bound_kib = 3.0;
  double sim_backlog_kib = 2.0;
};
PaperNumbers paper();

/// One stage's bounds as derived from the Table 2 rates: the
/// input-normalized guaranteed service rate and the stage's delay-bound
/// contribution at the delay-study load.
struct StageBound {
  std::string name;
  double service_mibps = 0.0;  ///< input-normalized guaranteed rate
  double delay_us = 0.0;       ///< per-stage delay bound
};

/// Headline numbers this reproduction computes from the three models
/// (Table 3 and the Section 5 delay/backlog study) plus the Table 2-derived
/// per-stage bounds. Bench executables and the golden regression test both
/// call reproduce() so they can never drift apart.
struct Reproduced {
  double nc_upper_mibps = 0.0;     ///< NC throughput bound, upper
  double nc_lower_mibps = 0.0;     ///< NC throughput bound, lower
  double des_mibps = 0.0;          ///< single-run DES throughput (throttled)
  double queueing_mibps = 0.0;     ///< M/M/1 roofline prediction
  double delay_bound_us = 0.0;     ///< delay bound at the delay-study load
  double backlog_bound_kib = 0.0;  ///< backlog bound at the delay-study load
  std::vector<StageBound> stages;  ///< Table 2-derived per-stage bounds
};
Reproduced reproduce();

}  // namespace streamcalc::apps::bitw
