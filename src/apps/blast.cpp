#include "apps/blast.hpp"

#include "queueing/mm1.hpp"

namespace streamcalc::apps::blast {

using netcalc::NodeKind;
using netcalc::NodeSpec;
using netcalc::SourceSpec;
using netcalc::VolumeRatio;
using util::DataRate;
using util::DataSize;
using util::Duration;
using namespace util::literals;

namespace {

/// Builds a compute node from its *input-normalized* rates (MiB of pipeline
/// input per second) given the data volume it actually sees. Raw times are
/// derived from the raw block size.
NodeSpec stage(const char* name, DataSize block_in, DataSize block_out,
               double vol_in, double norm_min, double norm_avg,
               double norm_max, VolumeRatio volume) {
  NodeSpec n;
  n.name = name;
  n.kind = NodeKind::kCompute;
  n.block_in = block_in;
  n.block_out = block_out;
  n.time_min = block_in / DataRate::mib_per_sec(norm_max * vol_in);
  n.time_avg = block_in / DataRate::mib_per_sec(norm_avg * vol_in);
  n.time_max = block_in / DataRate::mib_per_sec(norm_min * vol_in);
  n.volume = volume;
  n.validate();
  return n;
}

}  // namespace

std::vector<netcalc::NodeSpec> nodes() {
  std::vector<NodeSpec> ns;

  // A: fa_2bit on the FPGA — FASTA to 2-bit conversion, 4:1 volume drop.
  ns.push_back(stage("fa_2bit", 1_MiB, 128_KiB, 1.0,
                     /*norm rates*/ 720, 760, 880, VolumeRatio::exact(0.25)));

  // B: decompose — FPGA DMA splits large blocks into network-sized chunks
  // (Fig. 3 node D). Sees 0.25 bytes per input byte.
  ns.push_back(stage("decompose", 256_KiB, 64_KiB, 0.25,
                     1800, 2000, 2400, VolumeRatio::exact(1.0)));

  // C: network link between the FPGA host and the GPU host.
  ns.push_back(NodeSpec::link("network", NodeKind::kNetworkLink,
                              DataRate::gib_per_sec(10), 64_KiB, 10_us));

  // D: compose — collects chunks into even larger blocks for GPU dispatch
  // (Fig. 3 node E); the aggregation latency of the T^tot recursion.
  ns.push_back(stage("compose", 256_KiB, 256_KiB, 0.25,
                     1800, 2000, 2400, VolumeRatio::exact(1.0)));

  // E: PCIe transfer into GPU memory.
  ns.push_back(NodeSpec::link("pcie", NodeKind::kPcieLink,
                              DataRate::gib_per_sec(11), 256_KiB, 20_us));

  // F: seed matching on the GPU — the pipeline bottleneck. Filters the
  // vast majority of 8-mer positions. Isolated-measurement throughput
  // (used by the queueing model) is well above the in-pipeline average
  // because SIMD occupancy effects do not appear in isolation ([12]
  // observed ~30% roofline optimism).
  {
    NodeSpec n = stage("seed_match", 256_KiB, 16_KiB, 0.25,
                       353, 356, 900, VolumeRatio::exact(0.05));
    n.rate_isolated = DataRate::mib_per_sec(500 * 0.25);  // 500 normalized
    ns.push_back(n);
  }

  // G: seed enumeration + small extension — enumeration multiplies matches
  // (1-2 per position), small extension filters most of them. Mercator
  // schedules these as fine-grained work items (no block aggregation).
  {
    NodeSpec n = stage("seed_enum_ext", 16_KiB, 16_KiB, 0.0125,
                       2000, 2500, 4000, VolumeRatio::exact(0.45));
    n.aggregates = false;
    ns.push_back(n);
  }

  // H: ungapped extension — scores candidate alignments, few survive.
  {
    NodeSpec n = stage("ungapped_ext", 8_KiB, 8_KiB, 0.005625,
                       3000, 4000, 6000, VolumeRatio::exact(0.10));
    n.aggregates = false;
    ns.push_back(n);
  }

  return ns;
}

netcalc::SourceSpec streaming_source() {
  SourceSpec s;
  s.rate = DataRate::mib_per_sec(704);  // FPGA sustained output, normalized
  s.burst = 1_MiB;
  s.packet = DataSize::bytes(0);
  return s;
}

netcalc::SourceSpec job_source() {
  SourceSpec s = streaming_source();
  s.job_volume = 25_MiB;  // one database search job
  return s;
}

netcalc::ModelPolicy policy() {
  netcalc::ModelPolicy p;
  p.service_basis = netcalc::RateBasis::kMin;
  p.max_service_basis = netcalc::RateBasis::kMax;
  p.packetize = false;  // paper collapses the chain into a single node
  return p;
}

streamsim::SimConfig sim_config() {
  streamsim::SimConfig c;
  c.horizon = table1_horizon();
  c.warmup = Duration::seconds(0.3);  // exclude the pipeline-fill transient
  c.seed = 42;
  c.queue_capacity = 2;  // Mercator's limited inter-stage queues
  return c;
}

util::Duration table1_horizon() { return Duration::seconds(1.4); }

PaperNumbers paper() { return {}; }

Reproduced reproduce() {
  const auto ns = nodes();
  const netcalc::PipelineModel model(ns, streaming_source(), policy());
  const auto tb = model.throughput_bounds(table1_horizon());
  const auto q = queueing::analyze(ns, streaming_source());
  const auto sim = streamsim::simulate(ns, streaming_source(), sim_config());
  const netcalc::PipelineModel job_model(ns, job_source(), policy());
  // The paper's backlog number includes the per-node packetizer terms while
  // its delay number does not (see bench/blast_delay_backlog.cpp).
  netcalc::ModelPolicy packetized = policy();
  packetized.packetize = true;
  const netcalc::PipelineModel pk_model(ns, job_source(), packetized);

  Reproduced r;
  r.nc_upper_mibps = tb.upper.in_mib_per_sec();
  r.nc_lower_mibps = tb.lower.in_mib_per_sec();
  r.des_mibps = sim.throughput.in_mib_per_sec();
  r.queueing_mibps = q.roofline_throughput.in_mib_per_sec();
  r.delay_bound_ms = job_model.delay_bound().value.in_millis();
  r.backlog_bound_mib = pk_model.backlog_bound().value.in_mib();
  r.bound_over_measured = r.nc_lower_mibps / paper().measured_mibps;
  r.bottleneck = ns[model.bottleneck()].name;
  return r;
}

}  // namespace streamcalc::apps::blast
