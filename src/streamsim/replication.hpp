// Multi-replication simulation runner.
//
// A single DES run gives one sample of the stochastic pipeline's behaviour;
// the paper's simulated delay *ranges* and backlog maxima are properties of
// the sampling distribution. ReplicationRunner runs N independently-seeded
// replications of the pipeline simulator and condenses them into mean /
// spread / 95% confidence-interval summaries per metric.
//
// Concurrency & determinism contract:
//   * Replications are independent: each runs its own des::Simulation on
//     one thread (the DES kernel itself stays single-threaded and
//     deterministic per replication).
//   * Seeds derive from the base seed by a fixed splitmix64 stream, so the
//     seed set depends only on (base_seed, replications).
//   * Per-replication results land in index-addressed slots and are merged
//     in index order, so the summary statistics are byte-identical whatever
//     the thread count — including a 1-thread (serial) run.
//
// The runner deliberately holds no mutex-guarded state of its own: the
// only memory shared across threads is the slot vectors, which workers
// touch at disjoint indices handed out by ThreadPool::parallel_for (whose
// internal queue/claim state carries the Clang thread-safety annotations —
// see util/thread_annotations.hpp and DESIGN.md §8). Keep it that way: any
// future cross-replication accumulator must either stay slot-addressed or
// be guarded by an annotated util::Mutex.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netcalc/dag.hpp"
#include "netcalc/node.hpp"
#include "streamsim/pipeline_sim.hpp"
#include "util/context.hpp"
#include "util/units.hpp"

namespace streamcalc::streamsim {

struct ReplicationConfig {
  /// Number of independent replications (>= 1).
  int replications = 8;
  /// Base seed; per-replication seeds are splitmix64(base_seed) outputs in
  /// index order (SimConfig::seed of the base config is ignored).
  std::uint64_t base_seed = 1;
  /// Worker threads running replications: 0 = use the process-global pool;
  /// N >= 1 = a dedicated pool with N-thread total concurrency (1 = run
  /// everything on the calling thread).
  unsigned threads = 0;
};

/// Mean / spread summary of one scalar metric across replications.
struct SummaryStat {
  double mean = 0.0;
  double stddev = 0.0;     ///< sample standard deviation (n - 1)
  double ci95_half = 0.0;  ///< half-width of the 95% CI (Student t)
  double min = 0.0;
  double max = 0.0;
};

/// Cross-replication summaries of the SimResult metrics.
struct ReplicationSummary {
  int replications = 0;
  std::vector<std::uint64_t> seeds;  ///< seed used by each replication
  SummaryStat throughput_bytes_per_sec;
  SummaryStat min_delay_seconds;
  SummaryStat mean_delay_seconds;
  SummaryStat max_delay_seconds;
  SummaryStat max_backlog_bytes;
  SummaryStat packets_delivered;
  /// Per-node busy-fraction summaries, in pipeline order (empty for DAG
  /// runs whose replications disagree on node count).
  std::vector<SummaryStat> node_utilization;
  std::vector<std::string> node_names;  ///< parallel to node_utilization
  /// Extremes across all replications, for bracketing against NC bounds
  /// (a sound bound must dominate every replication, not just the mean).
  util::Duration worst_delay;
  util::DataSize worst_backlog;
  /// The raw per-replication results, in replication order.
  std::vector<SimResult> results;
};

class ReplicationRunner {
 public:
  explicit ReplicationRunner(ReplicationConfig config);

  /// Context-aware constructor (preferred): a config deferring to the
  /// process-global pool (threads == 0) is pinned to `ctx`'s resolved
  /// thread count instead, so the runner's concurrency is fully
  /// determined by the Context passed in.
  ReplicationRunner(ReplicationConfig config, const util::Context& ctx);

  /// Runs the chain simulator `config.replications` times; `base` supplies
  /// everything but the seed.
  ReplicationSummary run(const std::vector<netcalc::NodeSpec>& nodes,
                         const netcalc::SourceSpec& source,
                         const SimConfig& base) const;

  /// DAG variant.
  ReplicationSummary run_dag(const netcalc::DagSpec& dag,
                             const netcalc::SourceSpec& source,
                             const SimConfig& base) const;

  const ReplicationConfig& config() const { return config_; }

 private:
  template <typename RunOne>
  ReplicationSummary run_impl(const RunOne& run_one) const;

  ReplicationConfig config_;
};

/// Summarizes a scalar sample vector (mean, sample stddev, Student-t 95%
/// CI half-width, min, max). Deterministic left-to-right accumulation.
SummaryStat summarize(const std::vector<double>& samples);

}  // namespace streamcalc::streamsim
