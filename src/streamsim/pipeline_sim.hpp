// Discrete-event simulation of a streaming pipeline (paper, Section 4.2).
//
// The simulator executes the same NodeSpec chain the network-calculus model
// analyzes, reproducing the paper's SimPy methodology: each node has a
// minimum and maximum execution time, a data packet size to consume and one
// to emit; the events are packet arrival at a node, initiation of execution
// when the node becomes free, and packet departure when execution
// completes; execution times are drawn from a uniform distribution between
// the measured bounds.
//
// All statistics are *input-normalized* (bytes referred to the pipeline
// input, following Timcheck & Buhler) so they are directly comparable to
// the network-calculus curves: cumulative output trace (the stairstep of
// Figs. 4 and 10), end-to-end packet delays (shortest/longest observed),
// and total data resident in the system (max backlog).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "netcalc/dag.hpp"
#include "netcalc/node.hpp"
#include "netcalc/pipeline.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace streamcalc::streamsim {

/// Service-time (and source inter-arrival) distributions.
enum class TimeDistribution {
  kUniformMixture,  ///< in [min, max] with mean = avg (the paper's setup)
  kExponential,     ///< exponential with mean = avg (M/M/1 validation)
};

/// How per-job volume ratios are chosen in the simulation.
enum class VolumeMode {
  kSampled,    ///< random in [min, max] with mean = avg (default)
  kWorstCase,  ///< always volume.max (most data downstream)
  kBestCase,   ///< always volume.min
  kAverage,    ///< always volume.avg
};

/// Simulation parameters.
struct SimConfig {
  util::Duration horizon;     ///< simulated run length
  /// Statistics (throughput, delays, max backlog) are collected only after
  /// this much simulated time, excluding pipeline-fill transients; traces
  /// still record the full run.
  util::Duration warmup;
  std::uint64_t seed = 1;     ///< RNG seed (split per node)
  /// Inter-stage queue capacity in packets; kUnlimitedQueue = no
  /// backpressure (the paper's base configuration).
  std::size_t queue_capacity = kUnlimitedQueue;
  /// Use mean execution times and volumes instead of sampling (for
  /// variance-free regression tests).
  bool deterministic = false;
  /// Volume-ratio selection; the paper's BITW simulation corresponds to
  /// kWorstCase (compression ratio 1.0).
  VolumeMode volume_mode = VolumeMode::kSampled;
  /// Service-time distribution (mean is always the node's time_avg).
  TimeDistribution service_distribution = TimeDistribution::kUniformMixture;
  /// Poisson packet arrivals (exponential inter-arrival with the source's
  /// mean rate) instead of a deterministic period — pairs with
  /// kExponential service for M/M/1 validation runs.
  bool poisson_arrivals = false;
  /// Cap on recorded trace samples (traces are thinned beyond this).
  std::size_t max_trace_samples = 4096;
  /// Markov-modulated on/off source population (chain simulate() only):
  /// when `onoff_users` > 0 the constant-rate source is replaced by that
  /// many independent on/off users, each alternating exponential silences
  /// (mean `onoff_mean_off`) and exponential on-periods (mean
  /// `onoff_mean_on`) during which it emits whole source-packet-sized
  /// packets at rate `onoff_peak`; the partial accumulation window at an
  /// on->off switch is discarded. This is the DES twin of
  /// stochcalc::Arrival::on_off for the tail-quantile oracle.
  std::size_t onoff_users = 0;
  util::DataRate onoff_peak;
  util::Duration onoff_mean_on;
  util::Duration onoff_mean_off;
  /// Optional piecewise-constant source-rate profile: (start_seconds,
  /// bytes/s), each rate holding until the next entry (the last holds to
  /// the horizon). Empty = the constant SourceSpec rate. Pair with
  /// netcalc::cumulative_from_rate_profile() +
  /// netcalc::minimal_arrival_curve() to model the same workload.
  std::vector<std::pair<double, double>> rate_profile;

  static constexpr std::size_t kUnlimitedQueue = SIZE_MAX;
};

/// Per-node observations.
struct NodeStats {
  std::string name;
  double utilization = 0.0;       ///< busy time / horizon
  util::DataSize max_queue;       ///< max input-normalized bytes queued
  std::uint64_t jobs = 0;         ///< jobs executed
};

/// Whole-run observations.
struct SimResult {
  util::DataRate throughput;   ///< delivered input-normalized bytes / horizon
  util::Duration min_delay;    ///< shortest end-to-end packet delay
  util::Duration max_delay;    ///< longest end-to-end packet delay
  util::Duration mean_delay;
  util::DataSize max_backlog;  ///< max input-normalized bytes in the system
  std::uint64_t packets_delivered = 0;
  /// Cumulative delivered data over time (t seconds, normalized bytes) —
  /// the stairstep curve plotted between the NC bounds in Figs. 4 and 10.
  std::vector<std::pair<double, double>> output_trace;
  /// System backlog over time (t seconds, normalized bytes).
  std::vector<std::pair<double, double>> backlog_trace;
  /// Per-delivery end-to-end delay (t seconds, delay seconds), thinned to
  /// max_trace_samples like the other traces — the empirical delay
  /// distribution the stochastic-bound oracle takes tail quantiles of.
  std::vector<std::pair<double, double>> delay_trace;
  std::vector<NodeStats> node_stats;
};

/// Runs the discrete-event simulation of `nodes` fed by `source`.
/// Deterministic for a fixed config (seeded RNG, deterministic event
/// ordering).
SimResult simulate(const std::vector<netcalc::NodeSpec>& nodes,
                   const netcalc::SourceSpec& source, const SimConfig& config);

/// Simulates a DAG pipeline (netcalc::DagSpec): splitters route each
/// emitted packet along outgoing edges with deterministic weighted
/// round-robin matching the edge fractions; fraction mass not covered by
/// edges leaves the modeled system. Packets reaching nodes without
/// outgoing edges are delivered to the sink. Statistics as in simulate().
SimResult simulate_dag(const netcalc::DagSpec& dag,
                       const netcalc::SourceSpec& source,
                       const SimConfig& config);

/// Samples from [lo, hi] with mean exactly `mid` (a two-piece uniform
/// mixture over [lo, mid] and [mid, hi]). Requires lo <= mid <= hi.
double sample_in_range(util::Xoshiro256& rng, double lo, double mid,
                       double hi);

/// Samples a per-job volume ratio whose mean matches `v.avg` exactly.
double sample_volume_ratio(util::Xoshiro256& rng,
                           const netcalc::VolumeRatio& v);

}  // namespace streamcalc::streamsim
