#include "streamsim/pipeline_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "des/monitor.hpp"
#include "des/simulation.hpp"
#include "des/store.hpp"
#include "util/error.hpp"

namespace streamcalc::streamsim {

namespace {

using netcalc::NodeSpec;
using netcalc::SourceSpec;
using util::DataRate;
using util::DataSize;
using util::Duration;
using util::Xoshiro256;

/// A unit of data in flight. `raw_bytes` is its size at the current hop;
/// `input_bytes` its input-normalized equivalent (conserved through volume
/// changes so throughput and backlog stay comparable to the NC curves);
/// `created_at` the simulated time its earliest constituent entered the
/// pipeline.
struct Packet {
  double raw_bytes;
  double input_bytes;
  double created_at;
};

/// Thinning recorder for (time, value) traces.
class Trace {
 public:
  explicit Trace(std::size_t max_samples) : max_samples_(max_samples) {}

  void record(double t, double v) {
    if (samples_.size() >= max_samples_) thin();
    if (samples_.size() < max_samples_ || stride_counter_++ % stride_ == 0) {
      samples_.emplace_back(t, v);
    }
  }

  std::vector<std::pair<double, double>> take() { return std::move(samples_); }

 private:
  void thin() {
    // Keep every other sample; double the accepted stride.
    std::vector<std::pair<double, double>> kept;
    kept.reserve(samples_.size() / 2 + 1);
    for (std::size_t i = 0; i < samples_.size(); i += 2) {
      kept.push_back(samples_[i]);
    }
    samples_ = std::move(kept);
    stride_ *= 2;
  }

  std::size_t max_samples_;
  std::uint64_t stride_ = 1;
  std::uint64_t stride_counter_ = 0;
  std::vector<std::pair<double, double>> samples_;
};

/// The running simulation: owns the DES kernel, queues, and statistics.
class Runner {
 public:
  Runner(const std::vector<NodeSpec>& nodes, const SourceSpec& source,
         const SimConfig& config)
      : nodes_(nodes),
        source_(source),
        config_(config),
        rng_(config.seed),
        output_trace_(config.max_trace_samples),
        backlog_trace_(config.max_trace_samples),
        delay_trace_(config.max_trace_samples) {
    util::require(!nodes_.empty(), "simulate requires at least one node");
    util::require(config_.horizon > Duration::seconds(0) &&
                      config_.horizon.is_finite(),
                  "simulate requires a positive finite horizon");
    util::require(source_.rate > DataRate::bytes_per_sec(0),
                  "simulate requires a positive source rate");
    if (config_.onoff_users > 0) {
      util::require(config_.onoff_peak > DataRate::bytes_per_sec(0),
                    "on/off sources require a positive peak rate");
      util::require(config_.onoff_mean_on > Duration::seconds(0) &&
                        config_.onoff_mean_off > Duration::seconds(0),
                    "on/off sources require positive mean sojourns");
    }
    for (const NodeSpec& n : nodes_) n.validate();
    if (!config_.rate_profile.empty()) {
      util::require(config_.rate_profile.front().first == 0.0,
                    "rate_profile must start at time 0");
      for (std::size_t i = 0; i < config_.rate_profile.size(); ++i) {
        util::require(config_.rate_profile[i].second >= 0.0,
                      "rate_profile rates must be non-negative");
        util::require(i == 0 || config_.rate_profile[i].first >
                                    config_.rate_profile[i - 1].first,
                      "rate_profile times must be strictly increasing");
      }
    }

    queues_.reserve(nodes_.size() + 1);
    for (std::size_t i = 0; i <= nodes_.size(); ++i) {
      queues_.push_back(std::make_unique<des::Store<Packet>>(
          sim_, config_.queue_capacity));
    }
    node_rngs_.reserve(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      node_rngs_.push_back(rng_.split(i + 1));
    }
    busy_.assign(nodes_.size(), 0.0);
    jobs_.assign(nodes_.size(), 0);
    queue_bytes_.assign(nodes_.size() + 1, 0.0);
    max_queue_bytes_.assign(nodes_.size() + 1, 0.0);
  }

  SimResult run() {
    if (config_.onoff_users > 0) {
      for (std::size_t u = 0; u < config_.onoff_users; ++u) {
        sim_.spawn(onoff_source_process(u));
      }
    } else {
      sim_.spawn(source_process());
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      sim_.spawn(node_process(i));
    }
    sim_.spawn(sink_process());
    sim_.run_until(config_.horizon.in_seconds());

    SimResult r;
    const double h = config_.horizon.in_seconds();
    const double w = config_.warmup.in_seconds();
    util::require(w >= 0.0 && w < h, "warmup must lie within the horizon");
    r.throughput =
        DataRate::bytes_per_sec(measured_input_bytes_ / (h - w));
    if (delays_.count() > 0) {
      r.min_delay = Duration::seconds(delays_.minimum());
      r.max_delay = Duration::seconds(delays_.maximum());
      r.mean_delay = Duration::seconds(delays_.mean());
    }
    r.max_backlog = DataSize::bytes(std::max(0.0, max_backlog_));
    r.packets_delivered = packets_delivered_;
    r.output_trace = output_trace_.take();
    r.backlog_trace = backlog_trace_.take();
    r.delay_trace = delay_trace_.take();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      NodeStats s;
      s.name = nodes_[i].name;
      s.utilization = busy_[i] / h;
      s.max_queue = DataSize::bytes(max_queue_bytes_[i]);
      s.jobs = jobs_[i];
      r.node_stats.push_back(std::move(s));
    }
    return r;
  }

 private:
  bool past_warmup() const {
    return sim_.now() >= config_.warmup.in_seconds();
  }

  void adjust_backlog(double delta) {
    backlog_ += delta;
    if (past_warmup()) max_backlog_ = std::max(max_backlog_, backlog_);
    backlog_trace_.record(sim_.now(), backlog_);
  }

  void adjust_queue(std::size_t i, double delta_input_bytes) {
    queue_bytes_[i] += delta_input_bytes;
    max_queue_bytes_[i] = std::max(max_queue_bytes_[i], queue_bytes_[i]);
  }

  /// Profile rate in effect at time t (falls back to the constant rate).
  double source_rate_at(double t) const {
    if (config_.rate_profile.empty()) {
      return source_.rate.in_bytes_per_sec();
    }
    double rate = config_.rate_profile.front().second;
    for (const auto& [start, r] : config_.rate_profile) {
      if (start <= t) rate = r;
    }
    return rate;
  }

  /// First profile change strictly after t; +inf if none.
  double next_rate_change(double t) const {
    for (const auto& [start, r] : config_.rate_profile) {
      if (start > t) return start;
    }
    return std::numeric_limits<double>::infinity();
  }

  des::Process source_process() {
    const double packet_bytes =
        source_.packet > DataSize::bytes(0)
            ? source_.packet.in_bytes()
            : nodes_.front().block_in.in_bytes();
    // Initial burst: the arrival curve's instantaneous component.
    double burst_left = source_.burst.in_bytes();
    while (burst_left >= packet_bytes) {
      burst_left -= packet_bytes;
      co_await emit_source_packet(packet_bytes);
    }
    for (;;) {
      const double rate = source_rate_at(sim_.now());
      if (rate <= 0.0) {
        // Idle phase: sleep through to the next profile change.
        const double next = next_rate_change(sim_.now());
        if (!std::isfinite(next)) co_return;  // silent forever
        co_await sim_.timeout(next - sim_.now());
        continue;
      }
      const double mean_gap = packet_bytes / rate;
      co_await sim_.timeout(config_.poisson_arrivals && !config_.deterministic
                                ? rng_.exponential(mean_gap)
                                : mean_gap);
      co_await emit_source_packet(packet_bytes);
    }
  }

  des::Store<Packet>::PutAwaiter emit_source_packet(double bytes) {
    adjust_backlog(bytes);
    adjust_queue(0, bytes);
    return queues_.front()->put(Packet{bytes, bytes, sim_.now()});
  }

  /// One on/off user: exponential silences and on-periods; while on, a
  /// whole packet is released after each accumulation window of `packet`
  /// bytes at the peak rate, and the partial window at the on->off switch
  /// is discarded (the fluid envelope in stochcalc dominates this source).
  /// User RNG streams are split off a 1000+ base so they never collide
  /// with the per-node streams (split(i + 1)).
  des::Process onoff_source_process(std::size_t user) {
    Xoshiro256 rng = rng_.split(1000 + user);
    const double packet_bytes =
        source_.packet > DataSize::bytes(0)
            ? source_.packet.in_bytes()
            : nodes_.front().block_in.in_bytes();
    const double window =
        packet_bytes / config_.onoff_peak.in_bytes_per_sec();
    const double mean_on = config_.onoff_mean_on.in_seconds();
    const double mean_off = config_.onoff_mean_off.in_seconds();
    for (;;) {
      co_await sim_.timeout(rng.exponential(mean_off));
      double on_left = rng.exponential(mean_on);
      while (on_left >= window) {
        co_await sim_.timeout(window);
        on_left -= window;
        co_await emit_source_packet(packet_bytes);
      }
      // Partial accumulation window: sojourn ends mid-packet, bytes lost.
      co_await sim_.timeout(on_left);
    }
  }

  des::Process node_process(std::size_t i) {
    const NodeSpec& node = nodes_[i];
    Xoshiro256& rng = node_rngs_[i];
    const double block_in = node.block_in.in_bytes();
    const double block_out = node.block_out.in_bytes();
    const double t_min = node.time_min.in_seconds();
    const double t_avg = node.effective_time_avg().in_seconds();
    const double t_max = node.time_max.in_seconds();
    const double threshold = node.aggregates ? block_in : 0.0;

    // Bytes delivered but not yet dispatched (block misalignment between
    // upstream packet sizes and this node's collection block).
    double pending_raw = 0.0;
    double pending_input = 0.0;
    double pending_created = std::numeric_limits<double>::infinity();
    double last_created = 0.0;
    for (;;) {
      // Collect a job: at least one packet, and a full block when the
      // node aggregates before dispatch.
      // The node consumes exactly block_in per job when it aggregates;
      // surplus bytes (block misalignment with upstream packet sizes) stay
      // pending for the next job.
      while (pending_raw < threshold || pending_raw <= 0.0) {
        Packet p = co_await queues_[i]->get();
        adjust_queue(i, -p.input_bytes);
        pending_raw += p.raw_bytes;
        pending_input += p.input_bytes;
        pending_created = std::min(pending_created, p.created_at);
        last_created = p.created_at;
      }
      double job_raw;
      double job_input;
      const double created = pending_created;
      if (node.aggregates && pending_raw > block_in) {
        job_raw = block_in;
        job_input = pending_input * (block_in / pending_raw);
        pending_raw -= job_raw;
        pending_input -= job_input;
        // The surplus came from the most recent packet.
        pending_created = last_created;
      } else {
        job_raw = pending_raw;
        job_input = pending_input;
        pending_raw = 0.0;
        pending_input = 0.0;
        pending_created = std::numeric_limits<double>::infinity();
      }

      // Execute: random in [min, max] with mean exactly time_avg, scaled
      // for jobs that differ from the nominal block (links serving
      // variable packets).
      double nominal;
      if (config_.deterministic) {
        nominal = t_avg;
      } else if (config_.service_distribution ==
                 TimeDistribution::kExponential) {
        nominal = rng.exponential(t_avg);
      } else {
        nominal = sample_in_range(rng, t_min, t_avg, t_max);
      }
      const double exec = nominal * (job_raw / block_in);
      co_await sim_.timeout(exec);
      busy_[i] += exec;
      ++jobs_[i];

      // Emit: total output volume after the node's volume ratio, split into
      // block_out-sized packets. A restoring stage (decompressor) emits the
      // data's original volume so compression stays correlated end to end.
      double total_out;
      if (node.restores_volume) {
        total_out = job_input;
      } else {
        double ratio;
        switch (config_.volume_mode) {
          case VolumeMode::kWorstCase:
            ratio = node.volume.max;
            break;
          case VolumeMode::kBestCase:
            ratio = node.volume.min;
            break;
          case VolumeMode::kAverage:
            ratio = node.volume.avg;
            break;
          case VolumeMode::kSampled:
          default:
            ratio = config_.deterministic
                        ? node.volume.avg
                        : sample_volume_ratio(rng, node.volume);
            break;
        }
        total_out = job_raw * ratio;
      }
      const auto n_packets = static_cast<std::size_t>(
          std::max(1.0, std::floor(total_out / block_out + 0.5)));
      const double out_raw = total_out / static_cast<double>(n_packets);
      const double out_input = job_input / static_cast<double>(n_packets);
      for (std::size_t k = 0; k < n_packets; ++k) {
        adjust_queue(i + 1, out_input);
        co_await queues_[i + 1]->put(Packet{out_raw, out_input, created});
      }
    }
  }

  des::Process sink_process() {
    for (;;) {
      Packet p = co_await queues_.back()->get();
      adjust_queue(nodes_.size(), -p.input_bytes);
      delivered_input_bytes_ += p.input_bytes;
      ++packets_delivered_;
      if (past_warmup()) {
        measured_input_bytes_ += p.input_bytes;
        delays_.add(sim_.now() - p.created_at);
      }
      delay_trace_.record(sim_.now(), sim_.now() - p.created_at);
      adjust_backlog(-p.input_bytes);
      output_trace_.record(sim_.now(), delivered_input_bytes_);
    }
  }

  const std::vector<NodeSpec>& nodes_;
  const SourceSpec& source_;
  const SimConfig& config_;

  des::Simulation sim_;
  Xoshiro256 rng_;
  std::vector<std::unique_ptr<des::Store<Packet>>> queues_;
  std::vector<Xoshiro256> node_rngs_;

  std::vector<double> busy_;
  std::vector<std::uint64_t> jobs_;
  std::vector<double> queue_bytes_;
  std::vector<double> max_queue_bytes_;
  double backlog_ = 0.0;
  double max_backlog_ = 0.0;
  double delivered_input_bytes_ = 0.0;
  double measured_input_bytes_ = 0.0;
  std::uint64_t packets_delivered_ = 0;
  des::Tally delays_;
  Trace output_trace_;
  Trace backlog_trace_;
  Trace delay_trace_;
};

/// Deterministic weighted round-robin over a set of destinations: each
/// send picks the destination with the largest deficit (weight * total -
/// sent), so long-run shares converge to the weights exactly.
class WeightedRouter {
 public:
  struct Destination {
    std::size_t queue;   ///< target queue index; kDropped = leaves system
    double weight;
  };
  static constexpr std::size_t kDropped = SIZE_MAX;

  explicit WeightedRouter(std::vector<Destination> dests)
      : dests_(std::move(dests)), sent_(dests_.size(), 0.0) {}

  bool empty() const { return dests_.empty(); }

  /// Destination queue for the next packet (kDropped if it leaves).
  std::size_t route() {
    ++total_;
    std::size_t best = 0;
    double best_deficit = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < dests_.size(); ++i) {
      const double deficit =
          dests_[i].weight * static_cast<double>(total_) - sent_[i];
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best = i;
      }
    }
    if (best_deficit <= 0.0) return kDropped;  // only the remainder is due
    sent_[best] += 1.0;
    return dests_[best].queue;
  }

 private:
  std::vector<Destination> dests_;
  std::vector<double> sent_;
  std::uint64_t total_ = 0;
};

/// DAG variant of Runner: per-node input queues, weighted-round-robin
/// splitters on every node's output, and a shared sink for nodes without
/// outgoing edges.
class DagRunner {
 public:
  DagRunner(const netcalc::DagSpec& dag, const SourceSpec& source,
            const SimConfig& config)
      : dag_(dag),
        source_(source),
        config_(config),
        rng_(config.seed),
        output_trace_(config.max_trace_samples),
        backlog_trace_(config.max_trace_samples),
        delay_trace_(config.max_trace_samples) {
    dag_.validate();
    util::require(config_.horizon > Duration::seconds(0) &&
                      config_.horizon.is_finite(),
                  "simulate_dag requires a positive finite horizon");
    util::require(source_.rate > DataRate::bytes_per_sec(0),
                  "simulate_dag requires a positive source rate");
    util::require(config_.onoff_users == 0,
                  "on/off sources apply to chain simulations only");

    const std::size_t n = dag_.nodes.size();
    for (std::size_t i = 0; i <= n; ++i) {  // index n = sink
      queues_.push_back(std::make_unique<des::Store<Packet>>(
          sim_, config_.queue_capacity));
    }
    for (std::size_t i = 0; i < n; ++i) {
      node_rngs_.push_back(rng_.split(i + 1));
      std::vector<WeightedRouter::Destination> dests;
      double covered = 0.0;
      for (const netcalc::DagEdge& e : dag_.edges) {
        if (e.from == i) {
          dests.push_back({e.to, e.fraction});
          covered += e.fraction;
        }
      }
      if (dests.empty()) {
        dests.push_back({n, 1.0});  // sink
      } else if (covered < 1.0 - 1e-9) {
        dests.push_back({WeightedRouter::kDropped, 1.0 - covered});
      }
      routers_.emplace_back(std::move(dests));
    }
    {
      std::vector<WeightedRouter::Destination> dests;
      double covered = 0.0;
      for (const netcalc::DagEdge& e : dag_.entries) {
        dests.push_back({e.to, e.fraction});
        covered += e.fraction;
      }
      if (covered < 1.0 - 1e-9) {
        dests.push_back({WeightedRouter::kDropped, 1.0 - covered});
      }
      source_router_ = std::make_unique<WeightedRouter>(std::move(dests));
    }
    busy_.assign(n, 0.0);
    jobs_.assign(n, 0);
    queue_bytes_.assign(n + 1, 0.0);
    max_queue_bytes_.assign(n + 1, 0.0);
  }

  SimResult run() {
    sim_.spawn(source_process());
    for (std::size_t i = 0; i < dag_.nodes.size(); ++i) {
      sim_.spawn(node_process(i));
    }
    sim_.spawn(sink_process());
    sim_.run_until(config_.horizon.in_seconds());

    SimResult r;
    const double h = config_.horizon.in_seconds();
    const double w = config_.warmup.in_seconds();
    util::require(w >= 0.0 && w < h, "warmup must lie within the horizon");
    r.throughput = DataRate::bytes_per_sec(measured_input_bytes_ / (h - w));
    if (delays_.count() > 0) {
      r.min_delay = Duration::seconds(delays_.minimum());
      r.max_delay = Duration::seconds(delays_.maximum());
      r.mean_delay = Duration::seconds(delays_.mean());
    }
    r.max_backlog = DataSize::bytes(std::max(0.0, max_backlog_));
    r.packets_delivered = packets_delivered_;
    r.output_trace = output_trace_.take();
    r.backlog_trace = backlog_trace_.take();
    r.delay_trace = delay_trace_.take();
    for (std::size_t i = 0; i < dag_.nodes.size(); ++i) {
      NodeStats s;
      s.name = dag_.nodes[i].name;
      s.utilization = busy_[i] / h;
      s.max_queue = DataSize::bytes(max_queue_bytes_[i]);
      s.jobs = jobs_[i];
      r.node_stats.push_back(std::move(s));
    }
    return r;
  }

 private:
  bool past_warmup() const {
    return sim_.now() >= config_.warmup.in_seconds();
  }

  void adjust_backlog(double delta) {
    backlog_ += delta;
    if (past_warmup()) max_backlog_ = std::max(max_backlog_, backlog_);
    backlog_trace_.record(sim_.now(), backlog_);
  }

  void adjust_queue(std::size_t i, double delta) {
    queue_bytes_[i] += delta;
    max_queue_bytes_[i] = std::max(max_queue_bytes_[i], queue_bytes_[i]);
  }

  des::Process source_process() {
    const double packet_bytes =
        source_.packet > DataSize::bytes(0)
            ? source_.packet.in_bytes()
            : dag_.nodes[dag_.entries.front().to].block_in.in_bytes();
    const double period = packet_bytes / source_.rate.in_bytes_per_sec();
    double burst_left = source_.burst.in_bytes();
    while (burst_left >= packet_bytes) {
      burst_left -= packet_bytes;
      co_await route_source_packet(packet_bytes);
    }
    for (;;) {
      co_await sim_.timeout(config_.poisson_arrivals && !config_.deterministic
                                ? rng_.exponential(period)
                                : period);
      co_await route_source_packet(packet_bytes);
    }
  }

  des::Process node_process(std::size_t i) {
    const netcalc::NodeSpec& node = dag_.nodes[i];
    Xoshiro256& rng = node_rngs_[i];
    const double block_in = node.block_in.in_bytes();
    const double block_out = node.block_out.in_bytes();
    const double t_min = node.time_min.in_seconds();
    const double t_avg = node.effective_time_avg().in_seconds();
    const double t_max = node.time_max.in_seconds();
    const double threshold = node.aggregates ? block_in : 0.0;

    // Bytes delivered but not yet dispatched (block misalignment between
    // upstream packet sizes and this node's collection block).
    double pending_raw = 0.0;
    double pending_input = 0.0;
    double pending_created = std::numeric_limits<double>::infinity();
    double last_created = 0.0;
    for (;;) {
      // The node consumes exactly block_in per job when it aggregates;
      // surplus bytes (block misalignment with upstream packet sizes) stay
      // pending for the next job.
      while (pending_raw < threshold || pending_raw <= 0.0) {
        Packet p = co_await queues_[i]->get();
        adjust_queue(i, -p.input_bytes);
        pending_raw += p.raw_bytes;
        pending_input += p.input_bytes;
        pending_created = std::min(pending_created, p.created_at);
        last_created = p.created_at;
      }
      double job_raw;
      double job_input;
      const double created = pending_created;
      if (node.aggregates && pending_raw > block_in) {
        job_raw = block_in;
        job_input = pending_input * (block_in / pending_raw);
        pending_raw -= job_raw;
        pending_input -= job_input;
        // The surplus came from the most recent packet.
        pending_created = last_created;
      } else {
        job_raw = pending_raw;
        job_input = pending_input;
        pending_raw = 0.0;
        pending_input = 0.0;
        pending_created = std::numeric_limits<double>::infinity();
      }

      double nominal;
      if (config_.deterministic) {
        nominal = t_avg;
      } else if (config_.service_distribution ==
                 TimeDistribution::kExponential) {
        nominal = rng.exponential(t_avg);
      } else {
        nominal = sample_in_range(rng, t_min, t_avg, t_max);
      }
      const double exec = nominal * (job_raw / block_in);
      co_await sim_.timeout(exec);
      busy_[i] += exec;
      ++jobs_[i];

      double total_out;
      if (node.restores_volume) {
        total_out = job_input;
      } else {
        double ratio;
        switch (config_.volume_mode) {
          case VolumeMode::kWorstCase:
            ratio = node.volume.max;
            break;
          case VolumeMode::kBestCase:
            ratio = node.volume.min;
            break;
          case VolumeMode::kAverage:
            ratio = node.volume.avg;
            break;
          case VolumeMode::kSampled:
          default:
            ratio = config_.deterministic
                        ? node.volume.avg
                        : sample_volume_ratio(rng, node.volume);
            break;
        }
        total_out = job_raw * ratio;
      }
      const auto n_packets = static_cast<std::size_t>(
          std::max(1.0, std::floor(total_out / block_out + 0.5)));
      const double out_raw = total_out / static_cast<double>(n_packets);
      const double out_input = job_input / static_cast<double>(n_packets);
      for (std::size_t k = 0; k < n_packets; ++k) {
        const std::size_t dest = routers_[i].route();
        if (dest == WeightedRouter::kDropped) {
          adjust_backlog(-out_input);  // leaves the modeled system
          continue;
        }
        adjust_queue(dest, out_input);
        co_await queues_[dest]->put(Packet{out_raw, out_input, created});
      }
    }
  }

  des::Store<Packet>::PutAwaiter route_source_packet(double bytes) {
    const std::size_t dest = source_router_->route();
    if (dest == WeightedRouter::kDropped) {
      // Unmodeled share: never enters the system; hand it to a dummy
      // always-accepting path by re-routing to the sink without counting.
      return queues_.back()->put(Packet{0.0, 0.0, sim_.now()});
    }
    adjust_backlog(bytes);
    adjust_queue(dest, bytes);
    return queues_[dest]->put(Packet{bytes, bytes, sim_.now()});
  }

  des::Process sink_process() {
    for (;;) {
      Packet p = co_await queues_.back()->get();
      if (p.input_bytes <= 0.0) continue;  // unmodeled-share placeholder
      adjust_queue(dag_.nodes.size(), -p.input_bytes);
      delivered_input_bytes_ += p.input_bytes;
      ++packets_delivered_;
      if (past_warmup()) {
        measured_input_bytes_ += p.input_bytes;
        delays_.add(sim_.now() - p.created_at);
      }
      delay_trace_.record(sim_.now(), sim_.now() - p.created_at);
      adjust_backlog(-p.input_bytes);
      output_trace_.record(sim_.now(), delivered_input_bytes_);
    }
  }

  const netcalc::DagSpec& dag_;
  const SourceSpec& source_;
  const SimConfig& config_;

  des::Simulation sim_;
  Xoshiro256 rng_;
  std::vector<std::unique_ptr<des::Store<Packet>>> queues_;
  std::vector<Xoshiro256> node_rngs_;
  std::vector<WeightedRouter> routers_;
  std::unique_ptr<WeightedRouter> source_router_;

  std::vector<double> busy_;
  std::vector<std::uint64_t> jobs_;
  std::vector<double> queue_bytes_;
  std::vector<double> max_queue_bytes_;
  double backlog_ = 0.0;
  double max_backlog_ = 0.0;
  double delivered_input_bytes_ = 0.0;
  double measured_input_bytes_ = 0.0;
  std::uint64_t packets_delivered_ = 0;
  des::Tally delays_;
  Trace output_trace_;
  Trace backlog_trace_;
  Trace delay_trace_;
};

}  // namespace

double sample_in_range(Xoshiro256& rng, double lo, double mid, double hi) {
  if (hi == lo) return mid;
  // Two-piece uniform mixture whose mean is exactly `mid`.
  const double p_low = (hi - mid) / (hi - lo);
  if (rng.uniform01() < p_low) return rng.uniform(lo, mid);
  return rng.uniform(mid, hi);
}

double sample_volume_ratio(Xoshiro256& rng, const netcalc::VolumeRatio& v) {
  return sample_in_range(rng, v.min, v.avg, v.max);
}

SimResult simulate(const std::vector<NodeSpec>& nodes,
                   const SourceSpec& source, const SimConfig& config) {
  Runner runner(nodes, source, config);
  return runner.run();
}

SimResult simulate_dag(const netcalc::DagSpec& dag, const SourceSpec& source,
                       const SimConfig& config) {
  DagRunner runner(dag, source, config);
  return runner.run();
}

}  // namespace streamcalc::streamsim
