#include "streamsim/replication.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace streamcalc::streamsim {

namespace {

/// Two-sided Student-t critical values at 95% for df = 1..30; the normal
/// quantile beyond. Index df - 1.
constexpr double kT95[30] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};

double t95(int df) {
  if (df < 1) return 0.0;
  if (df <= 30) return kT95[df - 1];
  return 1.960;
}

}  // namespace

SummaryStat summarize(const std::vector<double>& samples) {
  SummaryStat s;
  if (samples.empty()) return s;
  const auto n = static_cast<double>(samples.size());
  double sum = 0.0;
  s.min = samples.front();
  s.max = samples.front();
  for (const double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / n;
  if (samples.size() > 1) {
    double ss = 0.0;
    for (const double v : samples) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / (n - 1.0));
    s.ci95_half = t95(static_cast<int>(samples.size()) - 1) * s.stddev /
                  std::sqrt(n);
  }
  return s;
}

ReplicationRunner::ReplicationRunner(ReplicationConfig config)
    : config_(config) {
  util::require(config_.replications >= 1,
                "ReplicationRunner requires replications >= 1");
}

ReplicationRunner::ReplicationRunner(ReplicationConfig config,
                                     const util::Context& ctx)
    : ReplicationRunner([&] {
        // An explicit Context pins the concurrency: a config that would
        // defer to the process-global pool (threads == 0) gets the
        // context's resolved thread count instead.
        if (config.threads == 0) config.threads = ctx.resolved_threads();
        return config;
      }()) {}

template <typename RunOne>
ReplicationSummary ReplicationRunner::run_impl(const RunOne& run_one) const {
  const auto n = static_cast<std::size_t>(config_.replications);

  // Fixed seed stream: replication i always gets the i-th splitmix output,
  // independent of how replications are scheduled onto threads.
  std::vector<std::uint64_t> seeds(n);
  util::SplitMix64 sm(config_.base_seed);
  for (std::uint64_t& seed : seeds) seed = sm.next();

  std::vector<SimResult> results(n);
  const auto run_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      SC_OBS_SPAN("sim", "replication");
      results[i] = run_one(seeds[i]);
      SC_OBS_COUNT("sim.replications", 1);
    }
  };
  if (config_.threads == 0) {
    util::ThreadPool::global().parallel_for(0, n, 1, run_range);
  } else if (config_.threads == 1) {
    run_range(0, n);
  } else {
    // Dedicated pool: threads - 1 workers + the calling thread.
    util::ThreadPool pool(config_.threads - 1);
    pool.parallel_for(0, n, 1, run_range);
  }

  // Index-order merge: every accumulation below walks replications
  // 0, 1, ..., n-1, so the summary bytes cannot depend on thread count.
  ReplicationSummary summary;
  summary.replications = config_.replications;
  summary.seeds = std::move(seeds);
  std::vector<double> tput(n), dmin(n), dmean(n), dmax(n), backlog(n),
      packets(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SimResult& r = results[i];
    tput[i] = r.throughput.in_bytes_per_sec();
    dmin[i] = r.min_delay.in_seconds();
    dmean[i] = r.mean_delay.in_seconds();
    dmax[i] = r.max_delay.in_seconds();
    backlog[i] = r.max_backlog.in_bytes();
    packets[i] = static_cast<double>(r.packets_delivered);
  }
  summary.throughput_bytes_per_sec = summarize(tput);
  summary.min_delay_seconds = summarize(dmin);
  summary.mean_delay_seconds = summarize(dmean);
  summary.max_delay_seconds = summarize(dmax);
  summary.max_backlog_bytes = summarize(backlog);
  summary.packets_delivered = summarize(packets);

  // Per-node utilization summaries, when every replication simulated the
  // same node sequence (always true for the chain runner).
  const std::size_t node_count = results.front().node_stats.size();
  bool uniform = true;
  for (const SimResult& r : results) {
    if (r.node_stats.size() != node_count) uniform = false;
  }
  if (uniform) {
    std::vector<double> util(n);
    for (std::size_t j = 0; j < node_count; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        util[i] = results[i].node_stats[j].utilization;
      }
      summary.node_utilization.push_back(summarize(util));
      summary.node_names.push_back(results.front().node_stats[j].name);
    }
  }
  summary.worst_delay = util::Duration::seconds(summary.max_delay_seconds.max);
  summary.worst_backlog =
      util::DataSize::bytes(summary.max_backlog_bytes.max);
  summary.results = std::move(results);
  return summary;
}

ReplicationSummary ReplicationRunner::run(
    const std::vector<netcalc::NodeSpec>& nodes,
    const netcalc::SourceSpec& source, const SimConfig& base) const {
  return run_impl([&](std::uint64_t seed) {
    SimConfig cfg = base;
    cfg.seed = seed;
    return simulate(nodes, source, cfg);
  });
}

ReplicationSummary ReplicationRunner::run_dag(const netcalc::DagSpec& dag,
                                              const netcalc::SourceSpec& source,
                                              const SimConfig& base) const {
  return run_impl([&](std::uint64_t seed) {
    SimConfig cfg = base;
    cfg.seed = seed;
    return simulate_dag(dag, source, cfg);
  });
}

}  // namespace streamcalc::streamsim
