// `streamcalc lint`: the nclint model analyzer over spec files.
//
// Bridges the spec layer to the diagnostics passes: a spec is parsed
// leniently (syntax errors still throw; semantic validation is left to the
// passes so a broken model yields a full structured report rather than the
// first exception), then linted as a chain or a DAG according to its
// [topology] section.
#pragma once

#include <string>

#include "cli/options.hpp"
#include "cli/spec.hpp"
#include "diagnostics/diagnostic.hpp"

namespace streamcalc::cli {

/// Runs every applicable lint pass over a parsed spec.
diagnostics::LintReport lint_spec(const Spec& spec);

/// Parses `text` leniently and lints it. Syntax errors surface as a
/// PreconditionError (there is no model to analyze); semantic problems
/// come back as diagnostics.
diagnostics::LintReport lint_spec_text(std::string_view text);

/// JSON array literal of a report's findings, shared by the CLI's --json
/// emitters: [{"code", "severity", "location", "message", "hint"}, ...].
std::string findings_json(const diagnostics::LintReport& report);

/// CLI driver for `streamcalc lint <spec>...`: lints each file, prints the
/// findings compiler-style to stdout (or, with opts.json, one JSON object
/// with a per-file findings array), and returns the process exit code.
/// 0 = every file clean (info-level findings allowed); 1 = at least one
/// unreadable or unparseable file (takes precedence — there was no model
/// to analyze); 2 = every file was readable but at least one warning or
/// error was found.
int run_lint(const std::vector<std::string>& paths, const Options& opts);
int run_lint(const std::vector<std::string>& paths);

}  // namespace streamcalc::cli
