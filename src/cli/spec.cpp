#include "cli/spec.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <map>
#include <optional>
#include <tuple>

#include "util/error.hpp"

namespace streamcalc::cli {

namespace {

using util::DataRate;
using util::DataSize;
using util::Duration;

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void fail(const std::string& message) {
  throw util::PreconditionError("spec: " + message);
}

double parse_number(std::string_view text, std::string_view what) {
  const std::string_view t = trim(text);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    fail("cannot parse " + std::string(what) + " number from '" +
         std::string(text) + "'");
  }
  return value;
}

/// Splits "123.4 MiB/s" into the number and the unit token.
std::pair<double, std::string> split_quantity(std::string_view text,
                                              std::string_view what) {
  const std::string_view t = trim(text);
  std::size_t i = 0;
  while (i < t.size() &&
         (std::isdigit(static_cast<unsigned char>(t[i])) || t[i] == '.' ||
          t[i] == '+' || t[i] == '-' || t[i] == 'e' || t[i] == 'E')) {
    // Stop at an 'e'/'E' that begins a unit rather than an exponent.
    if ((t[i] == 'e' || t[i] == 'E') &&
        (i + 1 >= t.size() ||
         (!std::isdigit(static_cast<unsigned char>(t[i + 1])) &&
          t[i + 1] != '+' && t[i + 1] != '-'))) {
      break;
    }
    ++i;
  }
  const double value = parse_number(t.substr(0, i), what);
  return {value, std::string(trim(t.substr(i)))};
}

}  // namespace

DataSize parse_size(std::string_view text) {
  const auto [value, unit] = split_quantity(text, "size");
  if (unit == "B") return DataSize::bytes(value);
  if (unit == "KiB") return DataSize::kib(value);
  if (unit == "MiB") return DataSize::mib(value);
  if (unit == "GiB") return DataSize::gib(value);
  fail("unknown size unit '" + unit + "' (use B, KiB, MiB, GiB)");
}

DataRate parse_rate(std::string_view text) {
  const auto [value, unit] = split_quantity(text, "rate");
  if (unit == "B/s") return DataRate::bytes_per_sec(value);
  if (unit == "KiB/s") return DataRate::kib_per_sec(value);
  if (unit == "MiB/s") return DataRate::mib_per_sec(value);
  if (unit == "GiB/s") return DataRate::gib_per_sec(value);
  fail("unknown rate unit '" + unit + "' (use B/s, KiB/s, MiB/s, GiB/s)");
}

Duration parse_duration(std::string_view text) {
  const auto [value, unit] = split_quantity(text, "duration");
  if (unit == "s") return Duration::seconds(value);
  if (unit == "ms") return Duration::millis(value);
  if (unit == "us") return Duration::micros(value);
  if (unit == "ns") return Duration::nanos(value);
  fail("unknown duration unit '" + unit + "' (use s, ms, us, ns)");
}

namespace {

bool parse_bool(std::string_view text, int line) {
  const std::string_view t = trim(text);
  if (t == "true" || t == "yes" || t == "1") return true;
  if (t == "false" || t == "no" || t == "0") return false;
  fail("line " + std::to_string(line) + ": expected a boolean, got '" +
       std::string(text) + "'");
}

/// Key/value pairs of one section, with line numbers for diagnostics.
struct Section {
  std::string kind;  // "source", "node", "policy", "analysis"
  std::string name;  // node name for [node X]
  int line = 0;
  std::vector<std::pair<std::string, std::pair<std::string, int>>> entries;
};

std::vector<Section> split_sections(std::string_view text) {
  std::vector<Section> sections;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    line = trim(line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        fail("line " + std::to_string(line_no) + ": unterminated section");
      }
      const std::string_view inner = trim(line.substr(1, line.size() - 2));
      Section s;
      s.line = line_no;
      const std::size_t space = inner.find(' ');
      if (space == std::string_view::npos) {
        s.kind = std::string(inner);
      } else {
        s.kind = std::string(trim(inner.substr(0, space)));
        s.name = std::string(trim(inner.substr(space + 1)));
      }
      sections.push_back(std::move(s));
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail("line " + std::to_string(line_no) + ": expected 'key = value'");
    }
    if (sections.empty()) {
      fail("line " + std::to_string(line_no) +
           ": key/value before any [section]");
    }
    sections.back().entries.emplace_back(
        std::string(trim(line.substr(0, eq))),
        std::make_pair(std::string(trim(line.substr(eq + 1))), line_no));
  }
  return sections;
}

/// Consumable view over a section's entries that rejects unknown keys.
class Keys {
 public:
  explicit Keys(const Section& s) : section_(s) {
    for (const auto& [k, v] : s.entries) {
      if (!map_.emplace(k, v).second) {
        fail("line " + std::to_string(v.second) + ": duplicate key '" + k +
             "'");
      }
    }
  }

  std::optional<std::string> take(const std::string& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    std::string value = it->second.first;
    map_.erase(it);
    return value;
  }

  void finish() const {
    if (!map_.empty()) {
      const auto& [k, v] = *map_.begin();
      fail("line " + std::to_string(v.second) + ": unknown key '" + k +
           "' in [" + section_.kind +
           (section_.name.empty() ? "" : " " + section_.name) + "]");
    }
  }

 private:
  const Section& section_;
  std::map<std::string, std::pair<std::string, int>> map_;
};

netcalc::NodeKind parse_kind(const std::string& text, int line) {
  if (text == "compute") return netcalc::NodeKind::kCompute;
  if (text == "network") return netcalc::NodeKind::kNetworkLink;
  if (text == "pcie") return netcalc::NodeKind::kPcieLink;
  fail("line " + std::to_string(line) + ": unknown node kind '" + text +
       "' (use compute, network, pcie)");
}

netcalc::RateBasis parse_basis(const std::string& text, int line) {
  if (text == "min") return netcalc::RateBasis::kMin;
  if (text == "avg") return netcalc::RateBasis::kAvg;
  if (text == "max") return netcalc::RateBasis::kMax;
  fail("line " + std::to_string(line) + ": unknown rate basis '" + text +
       "' (use min, avg, max)");
}

netcalc::NodeSpec parse_node(const Section& s, bool validate) {
  if (s.name.empty()) {
    fail("line " + std::to_string(s.line) + ": node sections need a name "
         "([node myname])");
  }
  Keys keys(s);
  netcalc::NodeKind kind = netcalc::NodeKind::kCompute;
  if (auto v = keys.take("kind")) kind = parse_kind(*v, s.line);
  netcalc::NodeSpec n;
  n.name = s.name;
  n.kind = kind;

  if (auto bw = keys.take("bandwidth")) {
    // Link shorthand.
    DataSize packet = DataSize::kib(64);
    if (auto v = keys.take("packet")) packet = parse_size(*v);
    Duration prop = Duration::seconds(0);
    if (auto v = keys.take("propagation")) prop = parse_duration(*v);
    n = netcalc::NodeSpec::link(s.name, kind, parse_rate(*bw), packet, prop);
  } else {
    if (auto v = keys.take("block_in")) n.block_in = parse_size(*v);
    n.block_out = n.block_in;
    if (auto v = keys.take("block_out")) n.block_out = parse_size(*v);
    if (auto v = keys.take("time_min")) n.time_min = parse_duration(*v);
    if (auto v = keys.take("time_avg")) n.time_avg = parse_duration(*v);
    if (auto v = keys.take("time_max")) n.time_max = parse_duration(*v);
    const auto rmin = keys.take("rate_min");
    const auto ravg = keys.take("rate_avg");
    const auto rmax = keys.take("rate_max");
    if (rmin || ravg || rmax) {
      if (!(rmin && ravg && rmax)) {
        fail("line " + std::to_string(s.line) +
             ": rate_min/rate_avg/rate_max must be given together");
      }
      if (n.block_in == DataSize::bytes(0)) {
        fail("line " + std::to_string(s.line) +
             ": rates need block_in to derive per-job times");
      }
      n.time_min = n.block_in / parse_rate(*rmax);
      n.time_avg = n.block_in / parse_rate(*ravg);
      n.time_max = n.block_in / parse_rate(*rmin);
    }
  }
  if (auto v = keys.take("volume")) {
    n.volume = netcalc::VolumeRatio::exact(parse_number(*v, "volume"));
  }
  {
    // Explicit bytes-out-per-byte-in spread (e.g. a decompressor's
    // expansion range, which runs opposite to `compression`).
    const auto vmin = keys.take("volume_min");
    const auto vavg = keys.take("volume_avg");
    const auto vmax = keys.take("volume_max");
    if (vmin || vavg || vmax) {
      if (!(vmin && vavg && vmax)) {
        fail("line " + std::to_string(s.line) +
             ": volume_min/volume_avg/volume_max must be given together");
      }
      n.volume = netcalc::VolumeRatio{parse_number(*vmin, "volume_min"),
                                      parse_number(*vavg, "volume_avg"),
                                      parse_number(*vmax, "volume_max")};
    }
  }
  if (auto v = keys.take("compression")) {
    // "min avg max" observed compression ratios.
    double a, b, c;
    if (std::sscanf(v->c_str(), "%lf %lf %lf", &a, &b, &c) != 3) {
      fail("line " + std::to_string(s.line) +
           ": compression expects three ratios 'min avg max'");
    }
    n.volume = netcalc::VolumeRatio::from_compression(a, b, c);
  }
  if (auto v = keys.take("restores_volume")) {
    n.restores_volume = parse_bool(*v, s.line);
  }
  if (auto v = keys.take("aggregates")) {
    n.aggregates = parse_bool(*v, s.line);
  }
  if (auto v = keys.take("latency")) {
    n.latency_override = parse_duration(*v);
  }
  if (auto v = keys.take("rate_isolated")) {
    n.rate_isolated = parse_rate(*v);
  }
  keys.finish();
  if (validate) n.validate();
  return n;
}

}  // namespace

netcalc::DagSpec Spec::dag() const {
  util::require(is_dag(), "Spec::dag() requires a [topology] section");
  netcalc::DagSpec d;
  d.nodes = nodes;
  d.edges = edges;
  d.entries = entries;
  d.validate();
  return d;
}

namespace {

/// "from to fraction" or "to fraction" (entries) with node-name lookup.
netcalc::DagEdge parse_topology_edge(
    const std::string& value, int line, bool entry,
    const std::vector<netcalc::NodeSpec>& nodes) {
  const auto index_of = [&](const std::string& name) -> std::size_t {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].name == name) return i;
    }
    fail("line " + std::to_string(line) + ": unknown node '" + name + "'");
  };
  char a[128], b[128];
  double fraction = 1.0;
  netcalc::DagEdge e;
  if (entry) {
    const int got = std::sscanf(value.c_str(), "%127s %lf", a, &fraction);
    if (got < 1) {
      fail("line " + std::to_string(line) +
           ": entry expects '<node> [fraction]'");
    }
    e.to = index_of(a);
  } else {
    const int got =
        std::sscanf(value.c_str(), "%127s %127s %lf", a, b, &fraction);
    if (got < 2) {
      fail("line " + std::to_string(line) +
           ": edge expects '<from> <to> [fraction]'");
    }
    e.from = index_of(a);
    e.to = index_of(b);
  }
  e.fraction = fraction;
  return e;
}

}  // namespace

namespace {

Spec parse_spec_impl(std::string_view text, bool validate) {
  Spec spec;
  bool have_source = false;
  // Topology lines are resolved after all nodes are known.
  std::vector<std::tuple<std::string, std::string, int>> topology;
  for (const Section& s : split_sections(text)) {
    if (s.kind == "source") {
      have_source = true;
      Keys keys(s);
      if (auto v = keys.take("rate")) spec.source.rate = parse_rate(*v);
      if (auto v = keys.take("burst")) spec.source.burst = parse_size(*v);
      if (auto v = keys.take("packet")) spec.source.packet = parse_size(*v);
      if (auto v = keys.take("job")) spec.source.job_volume = parse_size(*v);
      if (auto v = keys.take("model")) {
        if (*v != "onoff" && *v != "poisson" && *v != "leaky") {
          fail("line " + std::to_string(s.line) +
               ": [source] model must be onoff, poisson, or leaky (got '" +
               std::string(*v) + "')");
        }
        spec.stoch_source.model = *v;
      }
      if (auto v = keys.take("users")) {
        spec.stoch_source.users = parse_number(*v, "users");
      }
      if (auto v = keys.take("peak")) {
        spec.stoch_source.peak = parse_rate(*v);
      }
      if (auto v = keys.take("mean_on")) {
        spec.stoch_source.mean_on = parse_duration(*v);
      }
      if (auto v = keys.take("mean_off")) {
        spec.stoch_source.mean_off = parse_duration(*v);
      }
      if (auto v = keys.take("lambda")) {
        spec.stoch_source.lambda = parse_number(*v, "lambda");
      }
      keys.finish();
    } else if (s.kind == "node") {
      spec.nodes.push_back(parse_node(s, validate));
    } else if (s.kind == "policy") {
      Keys keys(s);
      if (auto v = keys.take("service_basis")) {
        spec.policy.service_basis = parse_basis(*v, s.line);
      }
      if (auto v = keys.take("max_service_basis")) {
        spec.policy.max_service_basis = parse_basis(*v, s.line);
      }
      if (auto v = keys.take("max_service_latency")) {
        spec.policy.max_service_latency = parse_bool(*v, s.line);
      }
      if (auto v = keys.take("packetize")) {
        spec.policy.packetize = parse_bool(*v, s.line);
      }
      keys.finish();
    } else if (s.kind == "topology") {
      for (const auto& [key, value] : s.entries) {
        if (key != "edge" && key != "entry") {
          fail("line " + std::to_string(value.second) +
               ": [topology] accepts only 'edge' and 'entry' keys");
        }
        topology.emplace_back(key, value.first, value.second);
      }
    } else if (s.kind == "analysis") {
      Keys keys(s);
      if (auto v = keys.take("horizon")) {
        spec.analysis.horizon = parse_duration(*v);
      }
      if (auto v = keys.take("simulate")) {
        spec.analysis.simulate = parse_bool(*v, s.line);
      }
      if (auto v = keys.take("seed")) {
        spec.analysis.seed =
            static_cast<std::uint64_t>(parse_number(*v, "seed"));
      }
      if (auto v = keys.take("queue_capacity")) {
        spec.analysis.queue_capacity =
            static_cast<std::size_t>(parse_number(*v, "queue_capacity"));
      }
      keys.finish();
    } else {
      fail("line " + std::to_string(s.line) + ": unknown section [" +
           s.kind + "]");
    }
  }
  if (!have_source) fail("missing [source] section");
  if (spec.nodes.empty()) fail("no [node ...] sections");
  for (const auto& [key, value, line] : topology) {
    if (key == "entry") {
      spec.entries.push_back(
          parse_topology_edge(value, line, /*entry=*/true, spec.nodes));
    } else {
      spec.edges.push_back(
          parse_topology_edge(value, line, /*entry=*/false, spec.nodes));
    }
  }
  if (validate) {
    if (spec.is_dag()) spec.dag();  // validate the topology eagerly
    util::require(spec.source.rate > DataRate::bytes_per_sec(0),
                  "spec: [source] rate must be positive");
    const StochSourceSpec& ss = spec.stoch_source;
    util::require(ss.users >= 1.0, "spec: [source] users must be >= 1");
    if (ss.model == "onoff") {
      util::require(ss.peak > DataRate::bytes_per_sec(0),
                    "spec: onoff source needs a positive peak rate");
      util::require(ss.mean_on > util::Duration::seconds(0) &&
                        ss.mean_off > util::Duration::seconds(0),
                    "spec: onoff source needs positive mean_on and mean_off");
    } else if (ss.model == "poisson") {
      util::require(ss.lambda > 0.0,
                    "spec: poisson source needs a positive lambda");
      util::require(spec.source.packet > util::DataSize::bytes(0),
                    "spec: poisson source needs a positive packet size");
    }
  }
  return spec;
}

}  // namespace

Spec parse_spec(std::string_view text) {
  return parse_spec_impl(text, /*validate=*/true);
}

Spec parse_spec_lenient(std::string_view text) {
  return parse_spec_impl(text, /*validate=*/false);
}

}  // namespace streamcalc::cli
