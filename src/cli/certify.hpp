// `streamcalc certify`: proof-carrying re-verification of every bound a
// spec's model produces (DESIGN.md §9).
//
// For each spec file the driver parses strictly, lints (a model with lint
// *errors* cannot be built, let alone certified), builds the chain or DAG
// model, emits a BoundCertificate for every reported bound, and hands each
// to the independent exact-rational checker. It also evaluates the
// interval stability certificate at the spec's own operating point (a
// degenerate parameter box) and prints the verdict — informational: an
// intentionally overloaded spec has infinite bounds that certify just
// fine.
#pragma once

#include <string>
#include <vector>

#include "cli/options.hpp"
#include "cli/spec.hpp"
#include "diagnostics/diagnostic.hpp"

namespace streamcalc::cli {

/// Emits and checks certificates for every bound of `spec`'s model.
/// Lint errors (the model cannot be built) come back as-is; lint warnings
/// do not block certification.
diagnostics::LintReport certify_spec(const Spec& spec);

/// CLI driver for `streamcalc certify <spec>...` (opts.json switches the
/// stdout rendering to one JSON object with a per-file findings array).
/// Exit codes follow the lint convention: 0 = every bound of every file
/// certified; 1 = at least one unreadable or unparseable file (takes
/// precedence); 2 = every file was readable but at least one bound failed
/// certification (or the model had lint errors blocking the build).
int run_certify(const std::vector<std::string>& paths, const Options& opts);
int run_certify(const std::vector<std::string>& paths);

}  // namespace streamcalc::cli
