// Shared command-line surface for the streamcalc tool.
//
// Every subcommand (analyze, lint, certify) accepts the same flags with
// the same spelling and the same exit-code convention, parsed here once:
//
//   --threads <n|serial>   worker threads (0 = hardware concurrency)
//   --stats                append the observability metrics JSON block
//   --trace <file>         write a chrome://tracing JSON trace
//   --json                 machine-readable output instead of text
//   --help, -h             print the shared help table
//
// analyze and stoch additionally take --epsilon <p>: report the
// theta-optimized Chernoff bounds P(delay > d) <= p next to (analyze) or
// instead of only (stoch) the sure worst-case bounds. A missing value is
// a usage error (exit 3); a value outside (0, 1) is rejected by the
// bounds layer (PreconditionError, exit 1) — the flag parser forwards the
// number verbatim so the validation lives in exactly one place.
//
// The serve subcommand additionally takes exactly one of
// --socket <path> (unix domain socket) or --port <n> (TCP on localhost,
// 0 = kernel-assigned); its positional arguments are the catalog specs.
//
// Flags override the environment: parse_args() starts from
// util::Context::from_env() and applies the flags on top, so
// `STREAMCALC_THREADS=8 streamcalc analyze --threads 2 spec` runs with 2.
// A usage problem (unknown flag, missing value, missing spec path) is a
// ParseResult::error and exits 3; a malformed *environment variable*
// throws PreconditionError and exits 1, matching the pre-existing
// behaviour of the bare tool.
#pragma once

#include <string>
#include <vector>

#include "util/context.hpp"

namespace streamcalc::cli {

/// Parsed command line shared by every subcommand.
struct Options {
  std::string command = "analyze";  ///< analyze|lint|certify|serve|stoch
  std::vector<std::string> paths;   ///< spec files; "-" reads stdin
  bool json = false;                ///< machine-readable output
  bool help = false;                ///< --help / -h was given
  std::string socket_path;          ///< serve: unix socket to bind
  int port = -1;                    ///< serve: TCP port (0 = auto); -1 unset
  /// Violation probability for analyze/stoch. Negative = not given:
  /// analyze stays deterministic, stoch uses its default (1e-6). The
  /// parser does NOT range-check; bad values fail in stochcalc (exit 1).
  double epsilon = -1.0;
  /// Run configuration: environment settings overridden by flags.
  /// `ctx.stats` / `ctx.trace_path` mirror --stats / --trace.
  util::Context ctx;
};

/// Either a usable Options or a usage error (print it + the help table,
/// exit 3).
struct ParseResult {
  Options options;
  std::string error;
  bool ok() const { return error.empty(); }
};

/// Parses argv[1..): an optional leading subcommand (a bare spec path
/// keeps the historical `streamcalc <spec|->` meaning of analyze), then
/// any mix of flags and spec paths. Throws PreconditionError only for
/// malformed STREAMCALC_* environment variables.
ParseResult parse_args(int argc, const char* const* argv);

/// The one help/usage table every subcommand shares.
std::string help_text(const std::string& argv0);

/// JSON string literal (quotes + escapes) for the CLI's --json emitters.
std::string json_quote(const std::string& s);

}  // namespace streamcalc::cli
