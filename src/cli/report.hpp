// Text report for a parsed pipeline spec: the analysis the CLI prints.
#pragma once

#include <string>

#include "cli/options.hpp"
#include "cli/spec.hpp"
#include "util/context.hpp"

namespace streamcalc::cli {

/// Runs the network-calculus model (plus the queueing baseline and, if
/// requested, the simulator) on a parsed spec and renders a full text
/// report. The Context governs the certify post-flight; the one-argument
/// overload resolves it from Context::active(). A non-negative `epsilon`
/// appends the theta-optimized Chernoff block: P(delay > d) <= epsilon
/// next to the sure bounds (--epsilon; see netcalc/report.hpp).
std::string run_report(const Spec& spec, const util::Context& ctx,
                       double epsilon = -1.0);
std::string run_report(const Spec& spec);

/// Machine-readable (--json) variant: one JSON object with the model
/// kind, end-to-end bounds, per-node analysis, and (when the spec enables
/// it) the simulation cross-check. Non-finite bounds render as null.
/// A non-negative `epsilon` adds a "stochastic" object.
std::string run_report_json(const Spec& spec, const util::Context& ctx,
                            double epsilon = -1.0);

/// Stochastic-tier report for a chain spec: the MGF source (explicit
/// [source] model, or the leaky bucket implied by rate/burst), Chernoff
/// delay/backlog bounds at `epsilon` vs the sure bounds, and the
/// aggregation-of-N-users scaling table. Text or JSON (`json`).
std::string run_stoch_report(const Spec& spec, double epsilon, bool json);

/// CLI driver for `streamcalc analyze <spec>`: reads the single spec in
/// `opts.paths`, parses it, runs the lint pre-flight, and prints the text
/// or JSON report. Exit codes: 0 = analyzed, 1 = unreadable, unparseable,
/// or failed strict pre/post-flight.
int run_analyze(const Options& opts);

/// CLI driver for `streamcalc stoch <spec>`: like run_analyze but prints
/// run_stoch_report at opts.epsilon (default 1e-6 when the flag was not
/// given). Chain specs only — a [topology] DAG is an error (exit 1).
int run_stoch(const Options& opts);

}  // namespace streamcalc::cli
