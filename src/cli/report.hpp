// Text report for a parsed pipeline spec: the analysis the CLI prints.
#pragma once

#include <string>

#include "cli/options.hpp"
#include "cli/spec.hpp"
#include "util/context.hpp"

namespace streamcalc::cli {

/// Runs the network-calculus model (plus the queueing baseline and, if
/// requested, the simulator) on a parsed spec and renders a full text
/// report. The Context governs the certify post-flight; the one-argument
/// overload resolves it from Context::active().
std::string run_report(const Spec& spec, const util::Context& ctx);
std::string run_report(const Spec& spec);

/// Machine-readable (--json) variant: one JSON object with the model
/// kind, end-to-end bounds, per-node analysis, and (when the spec enables
/// it) the simulation cross-check. Non-finite bounds render as null.
std::string run_report_json(const Spec& spec, const util::Context& ctx);

/// CLI driver for `streamcalc analyze <spec>`: reads the single spec in
/// `opts.paths`, parses it, runs the lint pre-flight, and prints the text
/// or JSON report. Exit codes: 0 = analyzed, 1 = unreadable, unparseable,
/// or failed strict pre/post-flight.
int run_analyze(const Options& opts);

}  // namespace streamcalc::cli
