// Text report for a parsed pipeline spec: the analysis the CLI prints.
#pragma once

#include <string>

#include "cli/spec.hpp"

namespace streamcalc::cli {

/// Runs the network-calculus model (plus the queueing baseline and, if
/// requested, the simulator) on a parsed spec and renders a full text
/// report.
std::string run_report(const Spec& spec);

}  // namespace streamcalc::cli
