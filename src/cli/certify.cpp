#include "cli/certify.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "certify/interval.hpp"
#include "certify/postflight.hpp"
#include "cli/lint.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace streamcalc::cli {

namespace {

bool read_input(const std::string& path, std::string& text) {
  std::ostringstream ss;
  if (path == "-") {
    ss << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) return false;
    ss << in.rdbuf();
  }
  text = ss.str();
  return true;
}

certify::IntervalCertificate stability_at_spec(const Spec& spec) {
  const certify::ParamBox box =
      certify::ParamBox::at(spec.source, spec.nodes.size());
  if (spec.is_dag()) {
    return certify::certify_stability_dag(spec.dag(), spec.source,
                                          spec.policy, box);
  }
  return certify::certify_stability(spec.nodes, spec.source, spec.policy,
                                    box);
}

}  // namespace

diagnostics::LintReport certify_spec(const Spec& spec) {
  const diagnostics::LintReport lint = lint_spec(spec);
  if (lint.has_errors()) return lint;
  if (spec.is_dag()) {
    const netcalc::DagModel model(spec.dag(), spec.source, spec.policy);
    return certify::certify_dag(model);
  }
  const netcalc::PipelineModel model(spec.nodes, spec.source, spec.policy);
  return certify::certify_pipeline(model);
}

int run_certify(const std::vector<std::string>& paths, const Options& opts) {
  bool any_unreadable = false;
  bool any_defects = false;
  std::ostringstream json;
  json << "{\"command\": \"certify\", \"files\": [";
  bool first = true;
  const auto emit_json = [&](const std::string& path,
                             const std::string& status,
                             const diagnostics::LintReport& report,
                             const std::string& stability) {
    if (!opts.json) return;
    json << (first ? "" : ",") << "\n {\"path\": " << json_quote(path)
         << ", \"status\": " << json_quote(status);
    if (!stability.empty()) {
      json << ", \"stability\": " << json_quote(stability);
    }
    json << ", \"findings\": " << findings_json(report) << "}";
    first = false;
  };
  for (const std::string& path : paths) {
    SC_OBS_SPAN("cli", "certify");
    std::string text;
    if (!read_input(path, text)) {
      std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
      any_unreadable = true;
      emit_json(path, "unreadable", {}, "");
      continue;
    }
    Spec spec;
    try {
      spec = parse_spec(text);
    } catch (const util::Error& e) {
      std::fprintf(stderr, "%s: error: %s\n", path.c_str(), e.what());
      any_unreadable = true;
      emit_json(path, "unparseable", {}, "");
      continue;
    }
    diagnostics::LintReport report;
    try {
      report = certify_spec(spec);
    } catch (const util::Error& e) {
      // A model the lint passes let through but the builder rejected:
      // report it as a certification defect, not a parse failure.
      std::fprintf(stderr, "%s: error: %s\n", path.c_str(), e.what());
      any_defects = true;
      emit_json(path, "defects", {}, "");
      continue;
    }
    if (!opts.json) std::fputs(report.render(path).c_str(), stdout);
    if (!report.clean()) any_defects = true;
    if (!opts.json && report.clean()) {
      std::printf("%s: certified\n", path.c_str());
    }
    std::string stability_verdict;
    if (!report.has_errors()) {
      // Informational stability verdict at the spec's own operating point.
      // An overloaded model has infinite bounds that certify as infinite,
      // so instability is context, not a certification failure.
      const certify::IntervalCertificate stability = stability_at_spec(spec);
      if (stability.stable_everywhere) {
        stability_verdict = "stable";
        if (!opts.json) {
          std::printf("%s: stability: utilization < 1 at every node\n",
                      path.c_str());
        }
      } else {
        stability_verdict = "violated: " + stability.violating_face;
        if (!opts.json) {
          std::printf("%s: stability: violated (%s)\n", path.c_str(),
                      stability.violating_face.c_str());
        }
      }
    }
    emit_json(path, report.clean() ? "certified" : "defects", report,
              stability_verdict);
  }
  const int code = any_unreadable ? 1 : (any_defects ? 2 : 0);
  if (opts.json) {
    json << "],\n \"exit_code\": " << code << "}\n";
    std::fputs(json.str().c_str(), stdout);
  }
  return code;
}

int run_certify(const std::vector<std::string>& paths) {
  return run_certify(paths, Options{});
}

}  // namespace streamcalc::cli
