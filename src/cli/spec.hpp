// Pipeline specification files for the command-line tool: a small INI-like
// format describing the source, the stages, the modeling policy, and the
// analysis to run — so the models are usable without writing C++.
//
//   [source]
//   rate = 100 MiB/s
//   burst = 256 KiB
//   packet = 64 KiB
//   # job = 25 MiB              # optional finite job volume
//   # --- optional stochastic source (stoch subcommand, analyze --epsilon)
//   # model = onoff             # onoff | poisson | leaky
//   # users = 50                # aggregated i.i.d. users (default 1)
//   # peak = 4 MiB/s            # onoff: per-user on-state rate
//   # mean_on = 200 ms          # onoff: mean on-sojourn
//   # mean_off = 800 ms         # onoff: mean off-sojourn
//   # lambda = 1200             # poisson: packets per second per user
//
//   [node transform]
//   kind = compute              # compute | network | pcie
//   block_in = 64 KiB
//   block_out = 64 KiB
//   rate_min = 120 MiB/s        # or time_min/time_avg/time_max
//   rate_avg = 140 MiB/s
//   rate_max = 165 MiB/s
//   compression = 1.0 2.2 5.3   # optional: observed ratios min avg max
//   # volume = 0.25             # or an exact bytes-out-per-byte-in ratio
//   aggregates = true
//   # latency = 5 us            # streaming-kernel latency override
//
//   [node uplink]
//   kind = network
//   bandwidth = 1 GiB/s
//   packet = 64 KiB
//   propagation = 50 us
//
//   [policy]
//   service_basis = min         # min | avg | max
//   max_service_basis = max
//   packetize = true
//
//   [analysis]
//   horizon = 1 s
//   simulate = true
//   seed = 42
//   queue_capacity = 4          # packets; omit for unlimited
//
// By default nodes form a chain in declaration order. A [topology]
// section turns the pipeline into a DAG:
//
//   [topology]
//   entry = demux 1.0           # source -> demux (fraction 1.0)
//   edge = demux video 0.6      # 60% of demux's output -> video
//   edge = demux audio 0.4
//   edge = video mux 1.0
//   edge = audio mux 1.0
//
// Lines starting with '#' (or ';') and blank lines are ignored. Unknown
// sections or keys are errors (typos should not silently change a model).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "netcalc/dag.hpp"
#include "netcalc/node.hpp"
#include "netcalc/pipeline.hpp"
#include "streamsim/pipeline_sim.hpp"

namespace streamcalc::cli {

/// What the CLI should do with the parsed pipeline.
struct AnalysisOptions {
  util::Duration horizon = util::Duration::seconds(1);
  bool simulate = false;
  std::uint64_t seed = 1;
  std::size_t queue_capacity = streamsim::SimConfig::kUnlimitedQueue;
};

/// Optional stochastic description of the source ([source] model = ...):
/// the MGF arrival the stoch subcommand and analyze --epsilon evaluate.
/// `model` empty means the spec declared none; the stochastic reports then
/// fall back to the leaky bucket implied by (rate, burst).
struct StochSourceSpec {
  std::string model;           ///< "" | "onoff" | "poisson" | "leaky"
  double users = 1.0;          ///< aggregated i.i.d. users
  util::DataRate peak;         ///< onoff: per-user on-state rate
  util::Duration mean_on;      ///< onoff: mean on-sojourn
  util::Duration mean_off;     ///< onoff: mean off-sojourn
  double lambda = 0.0;         ///< poisson: packets per second per user
};

/// A fully parsed specification.
struct Spec {
  netcalc::SourceSpec source;
  StochSourceSpec stoch_source;
  std::vector<netcalc::NodeSpec> nodes;
  netcalc::ModelPolicy policy;
  AnalysisOptions analysis;
  /// Non-empty when a [topology] section declares a DAG; node order and
  /// names come from the [node ...] sections.
  std::vector<netcalc::DagEdge> edges;
  std::vector<netcalc::DagEdge> entries;

  bool is_dag() const { return !edges.empty() || !entries.empty(); }
  /// Builds the DagSpec (requires is_dag()).
  netcalc::DagSpec dag() const;
};

/// Parses a quantity with a unit: "64 KiB", "1.5 MiB", "100 B".
/// Throws PreconditionError with the offending text on failure.
util::DataSize parse_size(std::string_view text);
/// "100 MiB/s", "10 GiB/s", "512 B/s".
util::DataRate parse_rate(std::string_view text);
/// "5 us", "1.5 ms", "2 s", "100 ns".
util::Duration parse_duration(std::string_view text);

/// Parses a whole specification document. Throws PreconditionError with a
/// line-numbered message on any syntax or semantic error.
Spec parse_spec(std::string_view text);

/// Like parse_spec, but skips the semantic validation (node specs, DAG
/// shape, positive source rate) — syntax errors still throw. Used by
/// `streamcalc lint`, which wants to load a semantically-broken model and
/// report *all* of its problems as structured diagnostics instead of
/// stopping at the first PreconditionError.
Spec parse_spec_lenient(std::string_view text);

}  // namespace streamcalc::cli
