#include "cli/lint.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "diagnostics/lint.hpp"
#include "util/error.hpp"

namespace streamcalc::cli {

diagnostics::LintReport lint_spec(const Spec& spec) {
  if (spec.is_dag()) {
    // Assemble the DagSpec without DagSpec::validate(): the lint passes
    // re-derive every validation failure as a structured diagnostic.
    netcalc::DagSpec dag;
    dag.nodes = spec.nodes;
    dag.edges = spec.edges;
    dag.entries = spec.entries;
    return diagnostics::lint_dag(dag, spec.source, spec.policy);
  }
  return diagnostics::lint_pipeline(spec.nodes, spec.source, spec.policy);
}

diagnostics::LintReport lint_spec_text(std::string_view text) {
  return lint_spec(parse_spec_lenient(text));
}

namespace {

bool read_input(const std::string& path, std::string& text) {
  std::ostringstream ss;
  if (path == "-") {
    ss << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) return false;
    ss << in.rdbuf();
  }
  text = ss.str();
  return true;
}

}  // namespace

int run_lint(const std::vector<std::string>& paths) {
  bool any_parse_failure = false;
  bool any_defects = false;
  for (const std::string& path : paths) {
    std::string text;
    if (!read_input(path, text)) {
      std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
      any_parse_failure = true;
      continue;
    }
    diagnostics::LintReport report;
    try {
      report = lint_spec_text(text);
    } catch (const util::Error& e) {
      // Syntax-level failure: there is no model to lint.
      std::fprintf(stderr, "%s: error: %s\n", path.c_str(), e.what());
      any_parse_failure = true;
      continue;
    }
    std::fputs(report.render(path).c_str(), stdout);
    if (report.clean()) {
      std::printf("%s: clean (%zu info)\n", path.c_str(),
                  report.count(diagnostics::Severity::kInfo));
    } else {
      any_defects = true;
    }
  }
  if (any_parse_failure) return 1;
  return any_defects ? 2 : 0;
}

}  // namespace streamcalc::cli
