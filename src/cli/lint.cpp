#include "cli/lint.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "diagnostics/lint.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace streamcalc::cli {

diagnostics::LintReport lint_spec(const Spec& spec) {
  if (spec.is_dag()) {
    // Assemble the DagSpec without DagSpec::validate(): the lint passes
    // re-derive every validation failure as a structured diagnostic.
    netcalc::DagSpec dag;
    dag.nodes = spec.nodes;
    dag.edges = spec.edges;
    dag.entries = spec.entries;
    return diagnostics::lint_dag(dag, spec.source, spec.policy);
  }
  return diagnostics::lint_pipeline(spec.nodes, spec.source, spec.policy);
}

diagnostics::LintReport lint_spec_text(std::string_view text) {
  return lint_spec(parse_spec_lenient(text));
}

namespace {

bool read_input(const std::string& path, std::string& text) {
  std::ostringstream ss;
  if (path == "-") {
    ss << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) return false;
    ss << in.rdbuf();
  }
  text = ss.str();
  return true;
}

}  // namespace

std::string findings_json(const diagnostics::LintReport& report) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const diagnostics::Diagnostic& d : report.diagnostics()) {
    os << (first ? "" : ",") << "\n   {\"code\": " << json_quote(d.code)
       << ", \"severity\": " << json_quote(to_string(d.severity))
       << ", \"location\": " << json_quote(d.location)
       << ", \"message\": " << json_quote(d.message)
       << ", \"hint\": " << json_quote(d.hint) << "}";
    first = false;
  }
  os << "]";
  return os.str();
}

int run_lint(const std::vector<std::string>& paths, const Options& opts) {
  bool any_parse_failure = false;
  bool any_defects = false;
  std::ostringstream json;
  json << "{\"command\": \"lint\", \"files\": [";
  bool first = true;
  for (const std::string& path : paths) {
    SC_OBS_SPAN("cli", "lint");
    std::string text;
    std::string status;
    diagnostics::LintReport report;
    if (!read_input(path, text)) {
      std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
      any_parse_failure = true;
      status = "unreadable";
    } else {
      try {
        report = lint_spec_text(text);
        if (report.clean()) {
          status = "clean";
        } else {
          status = "defects";
          any_defects = true;
        }
      } catch (const util::Error& e) {
        // Syntax-level failure: there is no model to lint.
        std::fprintf(stderr, "%s: error: %s\n", path.c_str(), e.what());
        any_parse_failure = true;
        status = "unparseable";
      }
    }
    if (opts.json) {
      json << (first ? "" : ",") << "\n {\"path\": " << json_quote(path)
           << ", \"status\": " << json_quote(status)
           << ", \"findings\": " << findings_json(report) << "}";
      first = false;
    } else if (status == "clean") {
      std::fputs(report.render(path).c_str(), stdout);
      std::printf("%s: clean (%zu info)\n", path.c_str(),
                  report.count(diagnostics::Severity::kInfo));
    } else if (status == "defects") {
      std::fputs(report.render(path).c_str(), stdout);
    }
  }
  const int code = any_parse_failure ? 1 : (any_defects ? 2 : 0);
  if (opts.json) {
    json << "],\n \"exit_code\": " << code << "}\n";
    std::fputs(json.str().c_str(), stdout);
  }
  return code;
}

int run_lint(const std::vector<std::string>& paths) {
  return run_lint(paths, Options{});
}

}  // namespace streamcalc::cli
