#include "cli/options.hpp"

#include <cctype>
#include <cstdio>

namespace streamcalc::cli {

namespace {

constexpr unsigned kMaxThreads = 4096;

/// Parses a --threads value with the same grammar as STREAMCALC_THREADS:
/// a non-negative count (0 = hardware concurrency) or "serial".
bool parse_threads_flag(const std::string& value, unsigned& out) {
  if (value == "serial") {
    out = 1;
    return true;
  }
  if (value.empty()) return false;
  unsigned long parsed = 0;
  for (const char c : value) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
    parsed = parsed * 10 + static_cast<unsigned long>(c - '0');
    if (parsed > kMaxThreads) return false;
  }
  out = static_cast<unsigned>(parsed);
  return true;
}

/// Parses a --port value: a decimal port number 0..65535 (0 asks the
/// kernel to assign one — handy for tests).
bool parse_port_flag(const std::string& value, int& out) {
  if (value.empty()) return false;
  long parsed = 0;
  for (const char c : value) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
    parsed = parsed * 10 + (c - '0');
    if (parsed > 65535) return false;
  }
  out = static_cast<int>(parsed);
  return true;
}

/// Parses an --epsilon value as a double. Deliberately no range check
/// here: stochcalc validates epsilon in (0, 1) and throws
/// PreconditionError, which maps to exit 1 — the same class as every
/// other semantically-bad input.
bool parse_epsilon_flag(const std::string& value, double& out) {
  if (value.empty()) return false;
  try {
    std::size_t pos = 0;
    out = std::stod(value, &pos);
    return pos == value.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

ParseResult parse_args(int argc, const char* const* argv) {
  ParseResult result;
  Options& opts = result.options;
  // Environment first; flags below override. May throw PreconditionError
  // for malformed STREAMCALC_* values — the caller maps that to exit 1.
  opts.ctx = util::Context::from_env();

  int i = 1;
  if (i < argc) {
    const std::string first = argv[i];
    if (first == "analyze" || first == "lint" || first == "certify" ||
        first == "serve" || first == "stoch") {
      opts.command = first;
      ++i;
    }
    // Anything else keeps the historical `streamcalc <spec|->` meaning:
    // command stays "analyze" and the argument is parsed below.
  }

  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--stats") {
      opts.ctx.stats = true;
    } else if (arg == "--trace") {
      if (i + 1 >= argc) {
        result.error = "--trace requires a file argument";
        return result;
      }
      opts.ctx.trace_path = argv[++i];
    } else if (arg == "--threads") {
      if (i + 1 >= argc) {
        result.error = "--threads requires a count argument";
        return result;
      }
      unsigned threads = 0;
      if (!parse_threads_flag(argv[++i], threads)) {
        result.error = std::string("invalid --threads value '") + argv[i] +
                       "': expected a count 0.." +
                       std::to_string(kMaxThreads) + " or 'serial'";
        return result;
      }
      opts.ctx.threads = threads;
    } else if (arg == "--socket") {
      if (i + 1 >= argc) {
        result.error = "--socket requires a path argument";
        return result;
      }
      opts.socket_path = argv[++i];
    } else if (arg == "--port") {
      if (i + 1 >= argc) {
        result.error = "--port requires a port argument";
        return result;
      }
      int port = 0;
      if (!parse_port_flag(argv[++i], port)) {
        result.error = std::string("invalid --port value '") + argv[i] +
                       "': expected 0..65535";
        return result;
      }
      opts.port = port;
    } else if (arg == "--epsilon") {
      if (i + 1 >= argc) {
        result.error = "--epsilon requires a probability argument";
        return result;
      }
      double epsilon = 0.0;
      if (!parse_epsilon_flag(argv[++i], epsilon)) {
        result.error = std::string("invalid --epsilon value '") + argv[i] +
                       "': expected a number";
        return result;
      }
      opts.epsilon = epsilon;
    } else if (arg.size() >= 2 && arg[0] == '-' && arg != "-") {
      result.error = "unknown flag '" + arg + "'";
      return result;
    } else {
      opts.paths.push_back(arg);
    }
  }

  if (opts.help) return result;
  if (opts.command != "serve" &&
      (!opts.socket_path.empty() || opts.port >= 0)) {
    result.error = "--socket/--port apply to the serve subcommand only";
    return result;
  }
  if (opts.epsilon >= 0.0 && opts.command != "analyze" &&
      opts.command != "stoch") {
    result.error = "--epsilon applies to the analyze and stoch subcommands";
    return result;
  }
  if (opts.paths.empty()) {
    result.error = opts.command == "serve"
                       ? "serve requires at least one catalog spec path"
                       : "missing spec path (use '-' for stdin)";
    return result;
  }
  if ((opts.command == "analyze" || opts.command == "stoch") &&
      opts.paths.size() != 1) {
    result.error = opts.command + " takes exactly one spec path";
    return result;
  }
  if (opts.command == "serve") {
    const bool has_socket = !opts.socket_path.empty();
    const bool has_port = opts.port >= 0;
    if (has_socket == has_port) {
      result.error = "serve requires exactly one of --socket or --port";
      return result;
    }
  }
  return result;
}

std::string help_text(const std::string& argv0) {
  std::string out;
  out += "usage: " + argv0 + " [analyze] <spec|-> [flags]\n";
  out += "       " + argv0 + " lint <spec|->... [flags]\n";
  out += "       " + argv0 + " certify <spec|->... [flags]\n";
  out += "       " + argv0 + " stoch <spec|-> [flags]\n";
  out += "       " + argv0 +
         " serve (--socket <path> | --port <n>) <spec>... [flags]\n";
  out +=
      "\n"
      "subcommands:\n"
      "  analyze   network-calculus bounds report (default)\n"
      "  lint      nclint static model analysis\n"
      "  certify   proof-carrying bound certification\n"
      "  stoch     stochastic (Chernoff/MGF) bounds and scaling report\n"
      "  serve     admission-control daemon over the spec catalog\n"
      "\n"
      "serve flags:\n"
      "  --socket <path>       bind a unix domain socket at <path>\n"
      "  --port <n>            bind TCP 127.0.0.1:<n> (0 = auto-assign)\n"
      "\n"
      "analyze/stoch flags:\n"
      "  --epsilon <p>         also report P(delay > d) <= p Chernoff\n"
      "                        bounds (stoch default: 1e-6)\n"
      "\n"
      "flags (all subcommands):\n"
      "  --threads <n|serial>  worker threads; 0 = hardware concurrency\n"
      "                        (overrides STREAMCALC_THREADS)\n"
      "  --stats               append the metrics JSON block to stdout\n"
      "  --trace <file>        write a chrome://tracing JSON trace\n"
      "  --json                machine-readable output\n"
      "  --help, -h            this table\n"
      "\n"
      "exit codes: 0 clean, 1 unreadable/unparseable input or bad\n"
      "environment, 2 defects found, 3 usage error.\n"
      "Spec format: see src/cli/spec.hpp and examples/specs/.\n";
  return out;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace streamcalc::cli
