#include "cli/report.hpp"

#include <sstream>

#include "certify/postflight.hpp"
#include "queueing/mm1.hpp"
#include "streamsim/pipeline_sim.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace streamcalc::cli {

namespace {

std::string run_dag_report(const Spec& spec) {
  using util::format_duration;
  using util::format_rate;
  using util::format_size;

  std::ostringstream os;
  const netcalc::DagSpec dag = spec.dag();
  const netcalc::DagModel model(dag, spec.source, spec.policy);
  certify::postflight_dag("analyze", model);

  os << "pipeline: DAG with " << dag.nodes.size() << " nodes, "
     << dag.edges.size() << " edges, offered "
     << format_rate(spec.source.rate) << "\n\n";

  os << "per-node analysis:\n";
  util::Table t({"node", "regime", "arrival", "service", "delay", "backlog",
                 "buffer"},
                {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight});
  for (const auto& a : model.per_node_analysis()) {
    t.add_row({a.name, to_string(a.load_regime), format_rate(a.arrival_rate),
               format_rate(a.service_rate), format_duration(a.delay),
               format_size(a.backlog), format_size(a.buffer_bytes)});
  }
  os << t.render();

  os << "\npath delay bounds:\n";
  for (const auto& p : model.per_path_analysis()) {
    os << "  ";
    for (std::size_t i = 0; i < p.nodes.size(); ++i) {
      os << dag.nodes[p.nodes[i]].name
         << (i + 1 < p.nodes.size() ? " -> " : "");
    }
    os << ": " << format_duration(p.delay) << "\n";
  }
  os << "end-to-end delay bound: " << format_duration(model.delay_bound())
     << "; total backlog bound: " << format_size(model.backlog_bound())
     << "\n";

  if (spec.analysis.simulate) {
    streamsim::SimConfig cfg;
    cfg.horizon = spec.analysis.horizon;
    cfg.warmup = spec.analysis.horizon / 5.0;
    cfg.seed = spec.analysis.seed;
    cfg.queue_capacity = spec.analysis.queue_capacity;
    const auto sim = streamsim::simulate_dag(dag, spec.source, cfg);
    os << "\nsimulation (seed " << spec.analysis.seed << "):\n";
    os << "  throughput  " << format_rate(sim.throughput) << "\n";
    os << "  delays      [" << format_duration(sim.min_delay) << " .. "
       << format_duration(sim.max_delay) << "]\n";
    os << "  max backlog " << format_size(sim.max_backlog) << "\n";
    os << "  within bounds: delay "
       << (sim.max_delay <= model.delay_bound() ? "yes" : "NO")
       << ", backlog "
       << (sim.max_backlog <= model.backlog_bound() ? "yes" : "NO") << "\n";
  }
  return os.str();
}

}  // namespace

std::string run_report(const Spec& spec) {
  using util::format_duration;
  using util::format_rate;
  using util::format_size;

  if (spec.is_dag()) return run_dag_report(spec);

  std::ostringstream os;
  const netcalc::PipelineModel model(spec.nodes, spec.source, spec.policy);
  certify::postflight_pipeline("analyze", model);

  os << "pipeline: " << spec.nodes.size() << " stages, offered "
     << format_rate(spec.source.rate);
  if (spec.source.job_volume.is_finite()) {
    os << ", job " << format_size(spec.source.job_volume);
  }
  os << "\n";
  os << "regime:   " << to_string(model.load_regime()) << "\n";
  os << "bottleneck: " << spec.nodes[model.bottleneck()].name << "\n\n";

  os << "end-to-end bounds:\n";
  os << "  delay    d <= " << format_duration(model.delay_bound()) << "\n";
  os << "  backlog  x <= " << format_size(model.backlog_bound()) << "\n";
  os << "  fixed latency T^tot = " << format_duration(model.total_latency())
     << "\n";
  const auto tb = model.throughput_bounds(spec.analysis.horizon);
  os << "  throughput over " << format_duration(spec.analysis.horizon)
     << ": guaranteed " << format_rate(tb.lower) << ", at most "
     << format_rate(tb.upper) << "\n";

  const auto q = queueing::analyze(spec.nodes, spec.source);
  os << "  M/M/1 roofline: " << format_rate(q.roofline_throughput) << "\n\n";

  os << "per-node analysis:\n";
  util::Table t({"node", "regime", "arrival", "service", "delay", "backlog",
                 "buffer", "agg wait"},
                {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight,
                 util::Align::kRight});
  for (const auto& a : model.per_node_analysis()) {
    t.add_row({a.name, to_string(a.load_regime), format_rate(a.arrival_rate),
               format_rate(a.service_rate), format_duration(a.delay),
               format_size(a.backlog), format_size(a.buffer_bytes),
               format_duration(a.aggregation_wait)});
  }
  os << t.render();

  if (spec.analysis.simulate) {
    streamsim::SimConfig cfg;
    cfg.horizon = spec.analysis.horizon;
    cfg.warmup = spec.analysis.horizon / 5.0;
    cfg.seed = spec.analysis.seed;
    cfg.queue_capacity = spec.analysis.queue_capacity;
    const auto sim = streamsim::simulate(spec.nodes, spec.source, cfg);
    os << "\nsimulation (seed " << spec.analysis.seed << "):\n";
    os << "  throughput  " << format_rate(sim.throughput) << "\n";
    os << "  delays      [" << format_duration(sim.min_delay) << " .. "
       << format_duration(sim.max_delay) << "], mean "
       << format_duration(sim.mean_delay) << "\n";
    os << "  max backlog " << format_size(sim.max_backlog) << "\n";
    os << "  within bounds: delay "
       << (sim.max_delay <= model.delay_bound() ? "yes" : "NO")
       << ", backlog "
       << (sim.max_backlog <= model.backlog_bound() ? "yes" : "NO") << "\n";
  }
  return os.str();
}

}  // namespace streamcalc::cli
