#include "cli/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "certify/postflight.hpp"
#include "cli/lint.hpp"
#include "diagnostics/lint.hpp"
#include "obs/obs.hpp"
#include "queueing/mm1.hpp"
#include "streamsim/pipeline_sim.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace streamcalc::cli {

namespace {

/// JSON number literal; non-finite values (divergent bounds) render null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string run_dag_report(const Spec& spec, const util::Context& ctx) {
  using util::format_duration;
  using util::format_rate;
  using util::format_size;

  std::ostringstream os;
  const netcalc::DagSpec dag = spec.dag();
  const netcalc::DagModel model(dag, spec.source, spec.policy);
  certify::postflight_dag("analyze", model, ctx);

  os << "pipeline: DAG with " << dag.nodes.size() << " nodes, "
     << dag.edges.size() << " edges, offered "
     << format_rate(spec.source.rate) << "\n\n";

  os << "per-node analysis:\n";
  util::Table t({"node", "regime", "arrival", "service", "delay", "backlog",
                 "buffer"},
                {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight});
  for (const auto& a : model.per_node_analysis()) {
    t.add_row({a.name, to_string(a.load_regime), format_rate(a.arrival_rate),
               format_rate(a.service_rate), format_duration(a.delay),
               format_size(a.backlog), format_size(a.buffer_bytes)});
  }
  os << t.render();

  os << "\npath delay bounds:\n";
  for (const auto& p : model.per_path_analysis()) {
    os << "  ";
    for (std::size_t i = 0; i < p.nodes.size(); ++i) {
      os << dag.nodes[p.nodes[i]].name
         << (i + 1 < p.nodes.size() ? " -> " : "");
    }
    os << ": " << format_duration(p.delay) << "\n";
  }
  os << "end-to-end delay bound: " << format_duration(model.delay_bound())
     << "; total backlog bound: " << format_size(model.backlog_bound())
     << "\n";

  if (spec.analysis.simulate) {
    streamsim::SimConfig cfg;
    cfg.horizon = spec.analysis.horizon;
    cfg.warmup = spec.analysis.horizon / 5.0;
    cfg.seed = spec.analysis.seed;
    cfg.queue_capacity = spec.analysis.queue_capacity;
    const auto sim = streamsim::simulate_dag(dag, spec.source, cfg);
    os << "\nsimulation (seed " << spec.analysis.seed << "):\n";
    os << "  throughput  " << format_rate(sim.throughput) << "\n";
    os << "  delays      [" << format_duration(sim.min_delay) << " .. "
       << format_duration(sim.max_delay) << "]\n";
    os << "  max backlog " << format_size(sim.max_backlog) << "\n";
    os << "  within bounds: delay "
       << (sim.max_delay <= model.delay_bound() ? "yes" : "NO")
       << ", backlog "
       << (sim.max_backlog <= model.backlog_bound() ? "yes" : "NO") << "\n";
  }
  return os.str();
}

}  // namespace

std::string run_report(const Spec& spec, const util::Context& ctx) {
  using util::format_duration;
  using util::format_rate;
  using util::format_size;

  SC_OBS_SPAN("cli", "analyze");
  if (spec.is_dag()) return run_dag_report(spec, ctx);

  std::ostringstream os;
  const netcalc::PipelineModel model(spec.nodes, spec.source, spec.policy);
  certify::postflight_pipeline("analyze", model, ctx);

  os << "pipeline: " << spec.nodes.size() << " stages, offered "
     << format_rate(spec.source.rate);
  if (spec.source.job_volume.is_finite()) {
    os << ", job " << format_size(spec.source.job_volume);
  }
  os << "\n";
  os << "regime:   " << to_string(model.load_regime()) << "\n";
  os << "bottleneck: " << spec.nodes[model.bottleneck()].name << "\n\n";

  os << "end-to-end bounds:\n";
  os << "  delay    d <= " << format_duration(model.delay_bound()) << "\n";
  os << "  backlog  x <= " << format_size(model.backlog_bound()) << "\n";
  os << "  fixed latency T^tot = " << format_duration(model.total_latency())
     << "\n";
  const auto tb = model.throughput_bounds(spec.analysis.horizon);
  os << "  throughput over " << format_duration(spec.analysis.horizon)
     << ": guaranteed " << format_rate(tb.lower) << ", at most "
     << format_rate(tb.upper) << "\n";

  const auto q = queueing::analyze(spec.nodes, spec.source);
  os << "  M/M/1 roofline: " << format_rate(q.roofline_throughput) << "\n\n";

  os << "per-node analysis:\n";
  util::Table t({"node", "regime", "arrival", "service", "delay", "backlog",
                 "buffer", "agg wait"},
                {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight,
                 util::Align::kRight});
  for (const auto& a : model.per_node_analysis()) {
    t.add_row({a.name, to_string(a.load_regime), format_rate(a.arrival_rate),
               format_rate(a.service_rate), format_duration(a.delay),
               format_size(a.backlog), format_size(a.buffer_bytes),
               format_duration(a.aggregation_wait)});
  }
  os << t.render();

  if (spec.analysis.simulate) {
    streamsim::SimConfig cfg;
    cfg.horizon = spec.analysis.horizon;
    cfg.warmup = spec.analysis.horizon / 5.0;
    cfg.seed = spec.analysis.seed;
    cfg.queue_capacity = spec.analysis.queue_capacity;
    const auto sim = streamsim::simulate(spec.nodes, spec.source, cfg);
    os << "\nsimulation (seed " << spec.analysis.seed << "):\n";
    os << "  throughput  " << format_rate(sim.throughput) << "\n";
    os << "  delays      [" << format_duration(sim.min_delay) << " .. "
       << format_duration(sim.max_delay) << "], mean "
       << format_duration(sim.mean_delay) << "\n";
    os << "  max backlog " << format_size(sim.max_backlog) << "\n";
    os << "  within bounds: delay "
       << (sim.max_delay <= model.delay_bound() ? "yes" : "NO")
       << ", backlog "
       << (sim.max_backlog <= model.backlog_bound() ? "yes" : "NO") << "\n";
  }
  return os.str();
}

std::string run_report(const Spec& spec) {
  return run_report(spec, util::Context::active());
}

namespace {

std::string dag_report_json(const Spec& spec, const util::Context& ctx) {
  const netcalc::DagSpec dag = spec.dag();
  const netcalc::DagModel model(dag, spec.source, spec.policy);
  certify::postflight_dag("analyze", model, ctx);

  std::ostringstream os;
  os << "{\"kind\": \"dag\", \"nodes\": " << dag.nodes.size()
     << ", \"edges\": " << dag.edges.size() << ",\n \"bounds\": {"
     << "\"delay_seconds\": "
     << json_number(model.delay_bound().in_seconds())
     << ", \"backlog_bytes\": "
     << json_number(model.backlog_bound().in_bytes()) << "},\n";
  os << " \"per_node\": [";
  bool first = true;
  for (const auto& a : model.per_node_analysis()) {
    os << (first ? "" : ",") << "\n  {\"name\": " << json_quote(a.name)
       << ", \"regime\": " << json_quote(to_string(a.load_regime))
       << ", \"arrival_bytes_per_sec\": "
       << json_number(a.arrival_rate.in_bytes_per_sec())
       << ", \"service_bytes_per_sec\": "
       << json_number(a.service_rate.in_bytes_per_sec())
       << ", \"delay_seconds\": " << json_number(a.delay.in_seconds())
       << ", \"backlog_bytes\": " << json_number(a.backlog.in_bytes())
       << "}";
    first = false;
  }
  os << "],\n \"paths\": [";
  first = true;
  for (const auto& p : model.per_path_analysis()) {
    os << (first ? "" : ",") << "\n  {\"nodes\": [";
    for (std::size_t i = 0; i < p.nodes.size(); ++i) {
      os << (i > 0 ? ", " : "") << json_quote(dag.nodes[p.nodes[i]].name);
    }
    os << "], \"delay_seconds\": " << json_number(p.delay.in_seconds())
       << "}";
    first = false;
  }
  os << "]}\n";
  return os.str();
}

}  // namespace

std::string run_report_json(const Spec& spec, const util::Context& ctx) {
  SC_OBS_SPAN("cli", "analyze");
  if (spec.is_dag()) return dag_report_json(spec, ctx);

  const netcalc::PipelineModel model(spec.nodes, spec.source, spec.policy);
  certify::postflight_pipeline("analyze", model, ctx);

  std::ostringstream os;
  os << "{\"kind\": \"chain\", \"stages\": " << spec.nodes.size()
     << ", \"regime\": " << json_quote(to_string(model.load_regime()))
     << ", \"bottleneck\": "
     << json_quote(spec.nodes[model.bottleneck()].name) << ",\n \"bounds\": {"
     << "\"delay_seconds\": "
     << json_number(model.delay_bound().in_seconds())
     << ", \"backlog_bytes\": "
     << json_number(model.backlog_bound().in_bytes())
     << ", \"total_latency_seconds\": "
     << json_number(model.total_latency().in_seconds());
  const auto tb = model.throughput_bounds(spec.analysis.horizon);
  os << ", \"throughput_lower_bytes_per_sec\": "
     << json_number(tb.lower.in_bytes_per_sec())
     << ", \"throughput_upper_bytes_per_sec\": "
     << json_number(tb.upper.in_bytes_per_sec()) << "},\n";
  os << " \"per_node\": [";
  bool first = true;
  for (const auto& a : model.per_node_analysis()) {
    os << (first ? "" : ",") << "\n  {\"name\": " << json_quote(a.name)
       << ", \"regime\": " << json_quote(to_string(a.load_regime))
       << ", \"arrival_bytes_per_sec\": "
       << json_number(a.arrival_rate.in_bytes_per_sec())
       << ", \"service_bytes_per_sec\": "
       << json_number(a.service_rate.in_bytes_per_sec())
       << ", \"delay_seconds\": " << json_number(a.delay.in_seconds())
       << ", \"backlog_bytes\": " << json_number(a.backlog.in_bytes())
       << "}";
    first = false;
  }
  os << "]";
  if (spec.analysis.simulate) {
    streamsim::SimConfig cfg;
    cfg.horizon = spec.analysis.horizon;
    cfg.warmup = spec.analysis.horizon / 5.0;
    cfg.seed = spec.analysis.seed;
    cfg.queue_capacity = spec.analysis.queue_capacity;
    const auto sim = streamsim::simulate(spec.nodes, spec.source, cfg);
    os << ",\n \"simulation\": {\"seed\": " << spec.analysis.seed
       << ", \"throughput_bytes_per_sec\": "
       << json_number(sim.throughput.in_bytes_per_sec())
       << ", \"max_delay_seconds\": "
       << json_number(sim.max_delay.in_seconds())
       << ", \"max_backlog_bytes\": "
       << json_number(sim.max_backlog.in_bytes())
       << ", \"delay_within_bound\": "
       << (sim.max_delay <= model.delay_bound() ? "true" : "false")
       << ", \"backlog_within_bound\": "
       << (sim.max_backlog <= model.backlog_bound() ? "true" : "false")
       << "}";
  }
  os << "}\n";
  return os.str();
}

int run_analyze(const Options& opts) {
  const std::string& path = opts.paths.front();
  std::string text;
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }

  try {
    const Spec spec = parse_spec(text);
    diagnostics::preflight(path, lint_spec(spec),
                           diagnostics::lint_mode(opts.ctx));
    const std::string report = opts.json ? run_report_json(spec, opts.ctx)
                                         : run_report(spec, opts.ctx);
    std::fputs(report.c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace streamcalc::cli
