#include "cli/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "certify/postflight.hpp"
#include "cli/lint.hpp"
#include "diagnostics/lint.hpp"
#include "netcalc/bounds.hpp"
#include "obs/obs.hpp"
#include "queueing/mm1.hpp"
#include "stochcalc/bounds.hpp"
#include "stochcalc/envelope.hpp"
#include "stochcalc/service.hpp"
#include "streamsim/pipeline_sim.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace streamcalc::cli {

namespace {

/// JSON number literal; non-finite values (divergent bounds) render null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Human label for a report's derivation: "chernoff (theta=3.2e-07)",
/// "det_clamp", "deviation".
std::string provenance_label(const netcalc::BoundProvenance& p) {
  std::string out = to_string(p.method);
  if (p.method == netcalc::BoundMethod::kChernoff) {
    out += " (theta=" + util::format_significant(p.theta, 3) + ")";
  }
  return out;
}

/// Clamps an explicit-source stochastic report by the spec's own sure
/// bound. A spec declares [source] rate/burst as a shaping contract the
/// traffic satisfies *in addition to* the MGF model, so min(Chernoff,
/// sure) is sound here; the model-level API stays unclamped because its
/// explicit arrival is the only premise it is given.
template <class Q>
netcalc::BoundReport<Q> clamp_by_sure(netcalc::BoundReport<Q> stoch,
                                      const netcalc::BoundReport<Q>& sure) {
  if (sure.value < stoch.value) {
    stoch.value = sure.value;
    stoch.provenance = {netcalc::BoundMethod::kDetClamp, 0.0};
  }
  return stoch;
}

/// The per-user MGF arrival a spec describes: the explicit [source] model
/// when one was declared, else the leaky bucket dominating the model's
/// arrival curve (so the fallback agrees with the curve-level epsilon
/// overloads). Aggregation across users is applied by the caller.
stochcalc::Arrival per_user_arrival(const Spec& spec,
                                    const minplus::Curve& alpha) {
  const StochSourceSpec& ss = spec.stoch_source;
  if (ss.model == "onoff") {
    return stochcalc::Arrival::on_off(ss.peak, ss.mean_on, ss.mean_off,
                                      spec.source.packet);
  }
  if (ss.model == "poisson") {
    return stochcalc::Arrival::poisson_packets(ss.lambda, spec.source.packet);
  }
  if (ss.model == "leaky") {
    return stochcalc::Arrival::leaky_bucket(spec.source.rate,
                                            spec.source.burst);
  }
  return netcalc::dominating_arrival(alpha);
}

/// One-line description of the stochastic source for the text reports.
std::string stoch_source_label(const Spec& spec) {
  const StochSourceSpec& ss = spec.stoch_source;
  std::string out =
      ss.model.empty() ? std::string("leaky bucket (from rate/burst)")
                       : ss.model;
  if (ss.users > 1.0) {
    out += " x " + util::format_significant(ss.users, 6) + " users";
  }
  return out;
}

std::string run_dag_report(const Spec& spec, const util::Context& ctx,
                           double epsilon) {
  using util::format_duration;
  using util::format_rate;
  using util::format_size;

  std::ostringstream os;
  const netcalc::DagSpec dag = spec.dag();
  const netcalc::DagModel model(dag, spec.source, spec.policy);
  certify::postflight_dag("analyze", model, ctx);

  os << "pipeline: DAG with " << dag.nodes.size() << " nodes, "
     << dag.edges.size() << " edges, offered "
     << format_rate(spec.source.rate) << "\n\n";

  os << "per-node analysis:\n";
  util::Table t({"node", "regime", "arrival", "service", "delay", "backlog",
                 "buffer"},
                {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight});
  for (const auto& a : model.per_node_analysis()) {
    t.add_row({a.name, to_string(a.load_regime), format_rate(a.arrival_rate),
               format_rate(a.service_rate), format_duration(a.delay),
               format_size(a.backlog), format_size(a.buffer_bytes)});
  }
  os << t.render();

  os << "\npath delay bounds:\n";
  for (const auto& p : model.per_path_analysis()) {
    os << "  ";
    for (std::size_t i = 0; i < p.nodes.size(); ++i) {
      os << dag.nodes[p.nodes[i]].name
         << (i + 1 < p.nodes.size() ? " -> " : "");
    }
    os << ": " << format_duration(p.delay) << "\n";
  }
  os << "end-to-end delay bound: " << format_duration(model.delay_bound().value)
     << "; total backlog bound: " << format_size(model.backlog_bound().value)
     << "\n";

  if (epsilon >= 0.0) {
    const netcalc::DelayReport sd = model.delay_bound(epsilon);
    const netcalc::BacklogReport sb = model.backlog_bound(epsilon);
    os << "\nstochastic bounds, P(violation) <= "
       << util::format_significant(epsilon, 3) << ":\n";
    os << "  delay    d <= " << format_duration(sd.value) << "  ["
       << provenance_label(sd.provenance) << "]\n";
    os << "  backlog  x <= " << format_size(sb.value) << "  ["
       << provenance_label(sb.provenance) << "]\n";
  }

  if (spec.analysis.simulate) {
    streamsim::SimConfig cfg;
    cfg.horizon = spec.analysis.horizon;
    cfg.warmup = spec.analysis.horizon / 5.0;
    cfg.seed = spec.analysis.seed;
    cfg.queue_capacity = spec.analysis.queue_capacity;
    const auto sim = streamsim::simulate_dag(dag, spec.source, cfg);
    os << "\nsimulation (seed " << spec.analysis.seed << "):\n";
    os << "  throughput  " << format_rate(sim.throughput) << "\n";
    os << "  delays      [" << format_duration(sim.min_delay) << " .. "
       << format_duration(sim.max_delay) << "]\n";
    os << "  max backlog " << format_size(sim.max_backlog) << "\n";
    os << "  within bounds: delay "
       << (sim.max_delay <= model.delay_bound().value ? "yes" : "NO")
       << ", backlog "
       << (sim.max_backlog <= model.backlog_bound().value ? "yes" : "NO") << "\n";
  }
  return os.str();
}

}  // namespace

std::string run_report(const Spec& spec, const util::Context& ctx,
                       double epsilon) {
  using util::format_duration;
  using util::format_rate;
  using util::format_size;

  SC_OBS_SPAN("cli", "analyze");
  if (spec.is_dag()) return run_dag_report(spec, ctx, epsilon);

  std::ostringstream os;
  const netcalc::PipelineModel model(spec.nodes, spec.source, spec.policy);
  certify::postflight_pipeline("analyze", model, ctx);

  os << "pipeline: " << spec.nodes.size() << " stages, offered "
     << format_rate(spec.source.rate);
  if (spec.source.job_volume.is_finite()) {
    os << ", job " << format_size(spec.source.job_volume);
  }
  os << "\n";
  os << "regime:   " << to_string(model.load_regime()) << "\n";
  os << "bottleneck: " << spec.nodes[model.bottleneck()].name << "\n\n";

  os << "end-to-end bounds:\n";
  os << "  delay    d <= " << format_duration(model.delay_bound().value) << "\n";
  os << "  backlog  x <= " << format_size(model.backlog_bound().value) << "\n";
  os << "  fixed latency T^tot = " << format_duration(model.total_latency())
     << "\n";
  const auto tb = model.throughput_bounds(spec.analysis.horizon);
  os << "  throughput over " << format_duration(spec.analysis.horizon)
     << ": guaranteed " << format_rate(tb.lower) << ", at most "
     << format_rate(tb.upper) << "\n";

  const auto q = queueing::analyze(spec.nodes, spec.source);
  os << "  M/M/1 roofline: " << format_rate(q.roofline_throughput) << "\n\n";

  if (epsilon >= 0.0) {
    const bool explicit_model = !spec.stoch_source.model.empty();
    const stochcalc::Arrival arrival =
        per_user_arrival(spec, model.arrival_curve())
            .aggregate(spec.stoch_source.users);
    const netcalc::DelayReport sd =
        explicit_model
            ? clamp_by_sure(model.delay_bound(epsilon, arrival),
                            model.delay_bound())
            : model.delay_bound(epsilon);
    const netcalc::BacklogReport sb =
        explicit_model
            ? clamp_by_sure(model.backlog_bound(epsilon, arrival),
                            model.backlog_bound())
            : model.backlog_bound(epsilon);
    os << "stochastic bounds, P(violation) <= "
       << util::format_significant(epsilon, 3) << " (source "
       << stoch_source_label(spec) << "):\n";
    os << "  delay    d <= " << format_duration(sd.value) << "  ["
       << provenance_label(sd.provenance) << "]\n";
    os << "  backlog  x <= " << format_size(sb.value) << "  ["
       << provenance_label(sb.provenance) << "]\n\n";
  }

  os << "per-node analysis:\n";
  util::Table t({"node", "regime", "arrival", "service", "delay", "backlog",
                 "buffer", "agg wait"},
                {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight,
                 util::Align::kRight});
  for (const auto& a : model.per_node_analysis()) {
    t.add_row({a.name, to_string(a.load_regime), format_rate(a.arrival_rate),
               format_rate(a.service_rate), format_duration(a.delay),
               format_size(a.backlog), format_size(a.buffer_bytes),
               format_duration(a.aggregation_wait)});
  }
  os << t.render();

  if (spec.analysis.simulate) {
    streamsim::SimConfig cfg;
    cfg.horizon = spec.analysis.horizon;
    cfg.warmup = spec.analysis.horizon / 5.0;
    cfg.seed = spec.analysis.seed;
    cfg.queue_capacity = spec.analysis.queue_capacity;
    const auto sim = streamsim::simulate(spec.nodes, spec.source, cfg);
    os << "\nsimulation (seed " << spec.analysis.seed << "):\n";
    os << "  throughput  " << format_rate(sim.throughput) << "\n";
    os << "  delays      [" << format_duration(sim.min_delay) << " .. "
       << format_duration(sim.max_delay) << "], mean "
       << format_duration(sim.mean_delay) << "\n";
    os << "  max backlog " << format_size(sim.max_backlog) << "\n";
    os << "  within bounds: delay "
       << (sim.max_delay <= model.delay_bound().value ? "yes" : "NO")
       << ", backlog "
       << (sim.max_backlog <= model.backlog_bound().value ? "yes" : "NO") << "\n";
  }
  return os.str();
}

std::string run_report(const Spec& spec) {
  return run_report(spec, util::Context::active());
}

namespace {

/// Shared "stochastic" JSON object for the analyze --epsilon reports.
std::string stochastic_json(double epsilon, const netcalc::DelayReport& sd,
                            const netcalc::BacklogReport& sb) {
  std::ostringstream os;
  os << "{\"epsilon\": " << json_number(epsilon)
     << ", \"kind\": " << json_quote(to_string(sd.kind))
     << ", \"delay_seconds\": " << json_number(sd.value.in_seconds())
     << ", \"delay_method\": "
     << json_quote(to_string(sd.provenance.method))
     << ", \"delay_theta\": " << json_number(sd.provenance.theta)
     << ", \"backlog_bytes\": " << json_number(sb.value.in_bytes())
     << ", \"backlog_method\": "
     << json_quote(to_string(sb.provenance.method))
     << ", \"backlog_theta\": " << json_number(sb.provenance.theta) << "}";
  return os.str();
}

std::string dag_report_json(const Spec& spec, const util::Context& ctx,
                            double epsilon) {
  const netcalc::DagSpec dag = spec.dag();
  const netcalc::DagModel model(dag, spec.source, spec.policy);
  certify::postflight_dag("analyze", model, ctx);

  std::ostringstream os;
  os << "{\"kind\": \"dag\", \"nodes\": " << dag.nodes.size()
     << ", \"edges\": " << dag.edges.size() << ",\n \"bounds\": {"
     << "\"delay_seconds\": "
     << json_number(model.delay_bound().value.in_seconds())
     << ", \"backlog_bytes\": "
     << json_number(model.backlog_bound().value.in_bytes()) << "},\n";
  if (epsilon >= 0.0) {
    os << " \"stochastic\": "
       << stochastic_json(epsilon, model.delay_bound(epsilon),
                          model.backlog_bound(epsilon))
       << ",\n";
  }
  os << " \"per_node\": [";
  bool first = true;
  for (const auto& a : model.per_node_analysis()) {
    os << (first ? "" : ",") << "\n  {\"name\": " << json_quote(a.name)
       << ", \"regime\": " << json_quote(to_string(a.load_regime))
       << ", \"arrival_bytes_per_sec\": "
       << json_number(a.arrival_rate.in_bytes_per_sec())
       << ", \"service_bytes_per_sec\": "
       << json_number(a.service_rate.in_bytes_per_sec())
       << ", \"delay_seconds\": " << json_number(a.delay.in_seconds())
       << ", \"backlog_bytes\": " << json_number(a.backlog.in_bytes())
       << "}";
    first = false;
  }
  os << "],\n \"paths\": [";
  first = true;
  for (const auto& p : model.per_path_analysis()) {
    os << (first ? "" : ",") << "\n  {\"nodes\": [";
    for (std::size_t i = 0; i < p.nodes.size(); ++i) {
      os << (i > 0 ? ", " : "") << json_quote(dag.nodes[p.nodes[i]].name);
    }
    os << "], \"delay_seconds\": " << json_number(p.delay.in_seconds())
       << "}";
    first = false;
  }
  os << "]}\n";
  return os.str();
}

}  // namespace

std::string run_report_json(const Spec& spec, const util::Context& ctx,
                            double epsilon) {
  SC_OBS_SPAN("cli", "analyze");
  if (spec.is_dag()) return dag_report_json(spec, ctx, epsilon);

  const netcalc::PipelineModel model(spec.nodes, spec.source, spec.policy);
  certify::postflight_pipeline("analyze", model, ctx);

  std::ostringstream os;
  os << "{\"kind\": \"chain\", \"stages\": " << spec.nodes.size()
     << ", \"regime\": " << json_quote(to_string(model.load_regime()))
     << ", \"bottleneck\": "
     << json_quote(spec.nodes[model.bottleneck()].name) << ",\n \"bounds\": {"
     << "\"delay_seconds\": "
     << json_number(model.delay_bound().value.in_seconds())
     << ", \"backlog_bytes\": "
     << json_number(model.backlog_bound().value.in_bytes())
     << ", \"total_latency_seconds\": "
     << json_number(model.total_latency().in_seconds());
  const auto tb = model.throughput_bounds(spec.analysis.horizon);
  os << ", \"throughput_lower_bytes_per_sec\": "
     << json_number(tb.lower.in_bytes_per_sec())
     << ", \"throughput_upper_bytes_per_sec\": "
     << json_number(tb.upper.in_bytes_per_sec()) << "},\n";
  if (epsilon >= 0.0) {
    const bool explicit_model = !spec.stoch_source.model.empty();
    const stochcalc::Arrival arrival =
        per_user_arrival(spec, model.arrival_curve())
            .aggregate(spec.stoch_source.users);
    os << " \"stochastic\": "
       << stochastic_json(epsilon,
                          explicit_model ? model.delay_bound(epsilon, arrival)
                                         : model.delay_bound(epsilon),
                          explicit_model
                              ? model.backlog_bound(epsilon, arrival)
                              : model.backlog_bound(epsilon))
       << ",\n";
  }
  os << " \"per_node\": [";
  bool first = true;
  for (const auto& a : model.per_node_analysis()) {
    os << (first ? "" : ",") << "\n  {\"name\": " << json_quote(a.name)
       << ", \"regime\": " << json_quote(to_string(a.load_regime))
       << ", \"arrival_bytes_per_sec\": "
       << json_number(a.arrival_rate.in_bytes_per_sec())
       << ", \"service_bytes_per_sec\": "
       << json_number(a.service_rate.in_bytes_per_sec())
       << ", \"delay_seconds\": " << json_number(a.delay.in_seconds())
       << ", \"backlog_bytes\": " << json_number(a.backlog.in_bytes())
       << "}";
    first = false;
  }
  os << "]";
  if (spec.analysis.simulate) {
    streamsim::SimConfig cfg;
    cfg.horizon = spec.analysis.horizon;
    cfg.warmup = spec.analysis.horizon / 5.0;
    cfg.seed = spec.analysis.seed;
    cfg.queue_capacity = spec.analysis.queue_capacity;
    const auto sim = streamsim::simulate(spec.nodes, spec.source, cfg);
    os << ",\n \"simulation\": {\"seed\": " << spec.analysis.seed
       << ", \"throughput_bytes_per_sec\": "
       << json_number(sim.throughput.in_bytes_per_sec())
       << ", \"max_delay_seconds\": "
       << json_number(sim.max_delay.in_seconds())
       << ", \"max_backlog_bytes\": "
       << json_number(sim.max_backlog.in_bytes())
       << ", \"delay_within_bound\": "
       << (sim.max_delay <= model.delay_bound().value ? "true" : "false")
       << ", \"backlog_within_bound\": "
       << (sim.max_backlog <= model.backlog_bound().value ? "true" : "false")
       << "}";
  }
  os << "}\n";
  return os.str();
}

std::string run_stoch_report(const Spec& spec, double epsilon, bool json) {
  using util::format_duration;
  using util::format_rate;
  using util::format_size;

  SC_OBS_SPAN("cli", "stoch");
  util::require(!spec.is_dag(), "stoch applies to chain specs only");

  const netcalc::PipelineModel model(spec.nodes, spec.source, spec.policy);
  const double users = spec.stoch_source.users;
  const stochcalc::Arrival per_user =
      per_user_arrival(spec, model.arrival_curve());
  const stochcalc::Arrival arrival = per_user.aggregate(users);
  const stochcalc::Service service =
      stochcalc::Service::from_curve(model.service_curve());
  const bool explicit_model = !spec.stoch_source.model.empty();

  const netcalc::DelayReport det_d = model.delay_bound();
  const netcalc::BacklogReport det_b = model.backlog_bound();
  const netcalc::DelayReport sd =
      explicit_model
          ? clamp_by_sure(model.delay_bound(epsilon, arrival), det_d)
          : model.delay_bound(epsilon);
  const netcalc::BacklogReport sb =
      explicit_model
          ? clamp_by_sure(model.backlog_bound(epsilon, arrival), det_b)
          : model.backlog_bound(epsilon);
  const double tmax = stochcalc::theta_max(arrival, service);

  std::vector<double> ns{1.0, 10.0, 100.0, 1000.0};
  if (users > 1.0 &&
      std::find(ns.begin(), ns.end(), users) == ns.end()) {
    ns.push_back(users);
    std::sort(ns.begin(), ns.end());
  }
  // Sweep against the *per-user slice* of the pipeline's service: N users
  // share the N-scaled slice, so N = `users` reproduces this pipeline and
  // the gain column isolates pure statistical multiplexing (a base of the
  // full service would fit any single user's peak and pin every gain at
  // 1). With one declared user the slice is the pipeline itself.
  const stochcalc::Service slice =
      users > 1.0 ? service.scaled(1.0 / users) : service;
  const std::vector<stochcalc::ScalingPoint> scaling =
      stochcalc::aggregation_scaling(per_user, slice, epsilon, ns);

  std::ostringstream os;
  if (json) {
    os << "{\"kind\": \"stoch\", \"stages\": " << spec.nodes.size()
       << ", \"source_model\": "
       << json_quote(explicit_model ? spec.stoch_source.model : "leaky")
       << ", \"users\": " << json_number(users)
       << ", \"mean_rate_bytes_per_sec\": "
       << json_number(arrival.mean_rate().in_bytes_per_sec())
       << ", \"peak_rate_bytes_per_sec\": "
       << json_number(arrival.peak_rate().in_bytes_per_sec())
       << ",\n \"service\": {\"rate_bytes_per_sec\": "
       << json_number(service.rate().in_bytes_per_sec())
       << ", \"latency_seconds\": "
       << json_number(service.latency().in_seconds())
       << ", \"theta_max\": " << json_number(tmax) << "},\n"
       << " \"worst_case\": {\"delay_seconds\": "
       << json_number(det_d.value.in_seconds()) << ", \"backlog_bytes\": "
       << json_number(det_b.value.in_bytes()) << "},\n"
       << " \"stochastic\": " << stochastic_json(epsilon, sd, sb) << ",\n"
       << " \"scaling\": [";
    bool first = true;
    for (const stochcalc::ScalingPoint& p : scaling) {
      os << (first ? "" : ",") << "\n  {\"n\": " << json_number(p.n)
         << ", \"delay_seconds\": " << json_number(p.delay.value)
         << ", \"gain\": " << json_number(p.gain) << "}";
      first = false;
    }
    os << "]}\n";
    return os.str();
  }

  os << "stochastic tier: " << spec.nodes.size() << " stages, source "
     << stoch_source_label(spec) << "\n";
  os << "  mean rate " << format_rate(arrival.mean_rate()) << ", peak "
     << format_rate(arrival.peak_rate()) << "\n";
  os << "  service minorant: rate " << format_rate(service.rate())
     << ", latency " << format_duration(service.latency())
     << ", theta domain (0, " << util::format_significant(tmax, 3) << ")\n\n";

  os << "bounds at P(violation) <= " << util::format_significant(epsilon, 3)
     << ":\n";
  util::Table t({"quantity", "worst case", "stochastic", "method"},
                {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                 util::Align::kLeft});
  t.add_row({"delay", format_duration(det_d.value), format_duration(sd.value),
             provenance_label(sd.provenance)});
  t.add_row({"backlog", format_size(det_b.value), format_size(sb.value),
             provenance_label(sb.provenance)});
  os << t.render();

  os << "\naggregation scaling (N users on an N-scaled server):\n";
  util::Table s({"N", "delay", "gain"},
                {util::Align::kRight, util::Align::kRight,
                 util::Align::kRight});
  for (const stochcalc::ScalingPoint& p : scaling) {
    s.add_row({util::format_significant(p.n, 6),
               format_duration(util::Duration::seconds(p.delay.value)),
               util::format_significant(p.gain, 3) + "x"});
  }
  os << s.render();
  return os.str();
}

namespace {

/// Reads a spec file (or stdin for "-") into `text`. False + stderr
/// message when the file cannot be opened.
bool read_spec_text(const std::string& path, std::string& text) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
    return true;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  text = ss.str();
  return true;
}

}  // namespace

int run_analyze(const Options& opts) {
  const std::string& path = opts.paths.front();
  std::string text;
  if (!read_spec_text(path, text)) return 1;

  try {
    const Spec spec = parse_spec(text);
    diagnostics::preflight(path, lint_spec(spec),
                           diagnostics::lint_mode(opts.ctx));
    const std::string report =
        opts.json ? run_report_json(spec, opts.ctx, opts.epsilon)
                  : run_report(spec, opts.ctx, opts.epsilon);
    std::fputs(report.c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

int run_stoch(const Options& opts) {
  const std::string& path = opts.paths.front();
  std::string text;
  if (!read_spec_text(path, text)) return 1;

  // --epsilon absent: stoch still needs a violation probability to report
  // against, so it defaults to one-in-a-million.
  const double epsilon = opts.epsilon >= 0.0 ? opts.epsilon : 1e-6;
  try {
    const Spec spec = parse_spec(text);
    diagnostics::preflight(path, lint_spec(spec),
                           diagnostics::lint_mode(opts.ctx));
    const std::string report = run_stoch_report(spec, epsilon, opts.json);
    std::fputs(report.c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace streamcalc::cli
