// Structured diagnostics for the model static analyzer (`nclint`).
//
// A Diagnostic is one finding about a model: a stable code (NCxxx, see the
// registry in diagnostic.cpp and DESIGN.md §8), a severity, the graph
// location it refers to (a node name, "source", "policy", "topology"), a
// human message, and an optional fix-it hint. LintReport collects the
// findings of all analysis passes over one model, keeps them in a stable
// order, and renders them compiler-style:
//
//   model.scspec: warning [NC101] node 'seed_match': sustained arrival rate
//       353.0 MiB/s exceeds guaranteed service rate 176.5 MiB/s (rho = 2.00)
//       hint: lower the source rate below the bottleneck or set a finite job
//
// Severity semantics:
//   kError   — the model cannot be evaluated (build would throw or crash);
//   kWarning — evaluation succeeds but the bounds are degenerate or
//              unsound (infinite delay, unstable node, unsound policy);
//   kInfo    — heuristic observation worth a look (unit plausibility,
//              near-critical load); never fails a strict run.
//
// "Clean" means no findings at kWarning or above; kInfo findings alone
// leave a model clean (they are heuristics, and valid models — including
// every generator-produced scenario — must lint clean).
#pragma once

#include <string>
#include <vector>

namespace streamcalc::diagnostics {

enum class Severity {
  kInfo,
  kWarning,
  kError,
};

const char* to_string(Severity s);

/// One finding. `code` is a stable "NCxxx" identifier from the registry.
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kWarning;
  /// Where in the model graph: a node name, "source", "policy",
  /// "topology", or "model" for whole-model findings.
  std::string location;
  std::string message;
  /// Optional suggested fix; empty when there is no mechanical suggestion.
  std::string hint;
};

/// Short registry title for a code ("unstable node", ...), or nullptr for
/// an unknown code. Golden tests pin the registry.
const char* code_title(const std::string& code);

/// Findings of all lint passes over one model.
class LintReport {
 public:
  void add(Diagnostic d);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// No findings at kWarning or above (kInfo findings are allowed).
  bool clean() const;
  bool has_errors() const;
  /// True when any finding carries `code`.
  bool has_code(const std::string& code) const;
  /// Count of findings at exactly `severity`.
  std::size_t count(Severity severity) const;

  /// Appends `other`'s findings (pass composition).
  void merge(const LintReport& other);

  /// Compiler-style rendering, one finding per line (plus hint lines);
  /// `context` prefixes every line (typically the spec file name). Empty
  /// string when there are no findings.
  std::string render(const std::string& context) const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace streamcalc::diagnostics
