#include "diagnostics/diagnostic.hpp"

#include <algorithm>
#include <sstream>

namespace streamcalc::diagnostics {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

namespace {

struct CodeEntry {
  const char* code;
  const char* title;
};

// The diagnostic code registry. Codes are stable identifiers: never reuse
// or renumber one — retire it and allocate the next free number in its
// block. Blocks (see DESIGN.md §8):
//   NC0xx  structural validity (model cannot be built)
//   NC1xx  stability / load regime
//   NC2xx  curve shape (causality, tail slopes)
//   NC3xx  DAG topology and flow conservation
//   NC4xx  unit-coherence heuristics (always kInfo)
//   NC5xx  modeling-policy sanity
//   NC6xx  certification (src/certify: proof-carrying bound checking)
constexpr CodeEntry kRegistry[] = {
    {"NC001", "invalid node specification"},
    {"NC002", "non-causal latency override"},
    {"NC003", "invalid source specification"},
    {"NC101", "unstable node (rho >= 1)"},
    {"NC102", "near-critical node load"},
    {"NC201", "non-causal arrival curve"},
    {"NC202", "tail-slope incompatibility"},
    {"NC301", "flow conservation violated"},
    {"NC302", "flow mass leaves the modeled system"},
    {"NC303", "topology contains a cycle"},
    {"NC304", "node receives no flow"},
    {"NC305", "residual service vanishes on a shared path"},
    {"NC401", "implausible block size"},
    {"NC402", "implausible rate magnitude"},
    {"NC403", "implausible duration magnitude"},
    {"NC501", "unsound service-rate basis"},
    {"NC502", "max-service basis below service basis"},
    {"NC601", "bound fails certification"},
    {"NC602", "unsound derivation step"},
    {"NC603", "witness does not attain the bound"},
    {"NC604", "parameter box contains instability"},
    {"NC605", "kernel result diverges from certified bound"},
};

}  // namespace

const char* code_title(const std::string& code) {
  for (const CodeEntry& e : kRegistry) {
    if (code == e.code) return e.title;
  }
  return nullptr;
}

void LintReport::add(Diagnostic d) { diags_.push_back(std::move(d)); }

bool LintReport::clean() const {
  return std::none_of(diags_.begin(), diags_.end(), [](const Diagnostic& d) {
    return d.severity != Severity::kInfo;
  });
}

bool LintReport::has_errors() const {
  return std::any_of(diags_.begin(), diags_.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

bool LintReport::has_code(const std::string& code) const {
  return std::any_of(diags_.begin(), diags_.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

std::size_t LintReport::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(), [&](const Diagnostic& d) {
        return d.severity == severity;
      }));
}

void LintReport::merge(const LintReport& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

std::string LintReport::render(const std::string& context) const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    os << context << ": " << to_string(d.severity) << " [" << d.code << "] ";
    if (!d.location.empty() && d.location != "model") {
      os << d.location << ": ";
    }
    os << d.message << "\n";
    if (!d.hint.empty()) {
      os << context << ":   hint: " << d.hint << "\n";
    }
  }
  return os.str();
}

}  // namespace streamcalc::diagnostics
