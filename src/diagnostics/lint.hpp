// nclint: static analysis passes over network-calculus models.
//
// Every pass runs *before* numeric evaluation and costs O(nodes + edges) —
// no curve algebra — so it is cheap enough to run unconditionally as a
// pre-flight check in every driver. The passes catch the model-level
// mistakes that otherwise surface as infinite bounds, non-convergent
// closures, or exceptions thrown deep inside the curve kernels:
//
//   * structural validity (NC0xx): node/source specs a build would reject,
//     plus non-causal latency overrides a build would only reject deep
//     inside Curve::rate_latency;
//   * stability (NC1xx): the paper's rho < 1 condition, checked per node
//     with the same scalar volume-normalization and upstream-clipping
//     recurrence the model builder uses;
//   * curve shape (NC2xx): causality of supplied arrival envelopes and the
//     tail-slope compatibility that predicts whether deconvolution-based
//     output bounds converge;
//   * topology (NC3xx): flow conservation at fan-out, cycles, nodes that
//     receive no flow (which crash the DAG builder), vanishing residual
//     service on shared paths;
//   * unit coherence (NC4xx, always info): magnitudes that suggest a
//     bytes-vs-MiB or per-second-vs-per-cycle mixup;
//   * policy sanity (NC5xx): rate-basis choices that make the "guarantee"
//     unsound.
//
// Entry points mirror the two model shapes (chain, DAG) plus a curve-level
// check for callers supplying custom arrival envelopes. preflight() wires
// a report into a driver: print findings in warn mode (the default), throw
// in strict mode (STREAMCALC_LINT=strict), do nothing when off.
#pragma once

#include <string>
#include <vector>

#include "diagnostics/diagnostic.hpp"
#include "minplus/curve.hpp"
#include "netcalc/dag.hpp"
#include "netcalc/node.hpp"
#include "netcalc/pipeline.hpp"
#include "util/context.hpp"

namespace streamcalc::diagnostics {

/// Lints a chain pipeline (the PipelineModel input form).
LintReport lint_pipeline(const std::vector<netcalc::NodeSpec>& nodes,
                         const netcalc::SourceSpec& source,
                         const netcalc::ModelPolicy& policy = {});

/// Lints a DAG (the DagModel input form).
LintReport lint_dag(const netcalc::DagSpec& dag,
                    const netcalc::SourceSpec& source,
                    const netcalc::ModelPolicy& policy = {});

/// Lints a caller-supplied arrival envelope against a service curve
/// (PipelineModel::with_arrival users): causality at t = 0 and tail-slope
/// compatibility of the deconvolution alpha (/) beta.
LintReport lint_flow(const minplus::Curve& arrival,
                     const minplus::Curve& service,
                     const std::string& location = "flow");

// --- Pre-flight wiring ----------------------------------------------------

enum class LintMode {
  kOff,    ///< skip linting entirely
  kWarn,   ///< print findings to stderr, continue (default)
  kStrict  ///< print findings and throw when the model is not clean
};

/// Maps a Context's lint policy onto the local mode enum.
LintMode lint_mode(const util::Context& ctx);

/// Deprecated shim: forwards to Context::active().lint (which still
/// honours STREAMCALC_LINT when no Context is installed) and prints a
/// one-time deprecation note. New code should build a util::Context and
/// pass it to the preflight entry points below.
LintMode lint_mode_from_env();

/// Applies the mode policy to a finished report: renders findings to
/// stderr (prefixed with `context`) unless off, and throws
/// PreconditionError in strict mode when the report is not clean. The
/// two-argument overload resolves the mode from Context::active().
void preflight(const std::string& context, const LintReport& report,
               LintMode mode);
void preflight(const std::string& context, const LintReport& report);

/// Convenience: lint + preflight in one call. The Context overloads are
/// preferred; the shorter forms resolve the mode from Context::active().
void preflight_pipeline(const std::string& context,
                        const std::vector<netcalc::NodeSpec>& nodes,
                        const netcalc::SourceSpec& source,
                        const netcalc::ModelPolicy& policy,
                        const util::Context& ctx);
void preflight_pipeline(const std::string& context,
                        const std::vector<netcalc::NodeSpec>& nodes,
                        const netcalc::SourceSpec& source,
                        const netcalc::ModelPolicy& policy = {});
void preflight_dag(const std::string& context, const netcalc::DagSpec& dag,
                   const netcalc::SourceSpec& source,
                   const netcalc::ModelPolicy& policy,
                   const util::Context& ctx);
void preflight_dag(const std::string& context, const netcalc::DagSpec& dag,
                   const netcalc::SourceSpec& source,
                   const netcalc::ModelPolicy& policy = {});

}  // namespace streamcalc::diagnostics
