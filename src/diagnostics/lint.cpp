#include "diagnostics/lint.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>

#include "obs/obs.hpp"
#include "util/context.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/units.hpp"

namespace streamcalc::diagnostics {

namespace {

using netcalc::DagEdge;
using netcalc::DagSpec;
using netcalc::ModelPolicy;
using netcalc::NodeSpec;
using netcalc::RateBasis;
using netcalc::SourceSpec;
using util::DataRate;
using util::DataSize;
using util::Duration;

// Load thresholds for NC101/NC102. A node at rho in [kNearCritical, 1) is
// stable but its bounds blow up as 1/(1 - rho); worth a heads-up.
constexpr double kNearCritical = 0.95;

// Unit-plausibility thresholds (NC4xx, info only). Generous on purpose:
// these exist to catch a forgotten unit suffix (bytes where MiB was meant,
// a per-cycle count where a per-second rate was meant), not to police
// unusual-but-real hardware.
constexpr double kTinyBlockBytes = 64.0;
constexpr double kHugeBlockBytes = 1024.0 * 1024.0 * 1024.0;  // 1 GiB
constexpr double kTinyRate = 1024.0;                          // 1 KiB/s
constexpr double kHugeRate = 1024.0 * 1024.0 * 1024.0 * 1024.0;  // 1 TiB/s
constexpr double kHugeTimeSeconds = 100.0;

double pick_rate(const NodeSpec& node, RateBasis basis) {
  switch (basis) {
    case RateBasis::kMin:
      return node.rate_min().in_bytes_per_sec();
    case RateBasis::kAvg:
      return node.rate_avg().in_bytes_per_sec();
    case RateBasis::kMax:
      return node.rate_max().in_bytes_per_sec();
  }
  return node.rate_min().in_bytes_per_sec();
}

const char* basis_name(RateBasis basis) {
  switch (basis) {
    case RateBasis::kMin:
      return "min";
    case RateBasis::kAvg:
      return "avg";
    case RateBasis::kMax:
      return "max";
  }
  return "?";
}

/// NC001/NC002 + NC4xx for one node. Returns false when the spec is
/// structurally invalid (downstream passes that divide by its fields must
/// skip the model).
bool lint_node(const NodeSpec& node, LintReport& report) {
  bool ok = true;
  try {
    node.validate();
  } catch (const util::Error& e) {
    report.add({"NC001", Severity::kError, node.name, e.what(),
                "fix the node measurements; see NodeSpec::validate"});
    ok = false;
  }
  if (node.latency_override < Duration::seconds(0)) {
    report.add({"NC002", Severity::kError, node.name,
                "latency override " +
                    util::format_duration(node.latency_override) +
                    " is negative: a service curve cannot promise output "
                    "before input (non-causal)",
                "set latency >= 0, or omit it to use time_max"});
    ok = false;
  }
  if (!ok) return false;

  // Unit-coherence heuristics. Info only: they must never dirty a valid
  // model (the generator lint-clean property depends on that).
  if (node.block_in.in_bytes() < kTinyBlockBytes ||
      node.block_in.in_bytes() > kHugeBlockBytes) {
    report.add({"NC401", Severity::kInfo, node.name,
                "block_in = " + util::format_size(node.block_in) +
                    " is outside the plausible range [64 B, 1 GiB]",
                "check the unit suffix (B vs KiB vs MiB)"});
  }
  if (node.rate_min().in_bytes_per_sec() < kTinyRate ||
      node.rate_max().in_bytes_per_sec() > kHugeRate) {
    report.add({"NC402", Severity::kInfo, node.name,
                "service rate range " + util::format_rate(node.rate_min()) +
                    " .. " + util::format_rate(node.rate_max()) +
                    " is outside the plausible range [1 KiB/s, 1 TiB/s]",
                "check the rate unit (per second, not per cycle or per "
                "block)"});
  }
  if (node.time_max.in_seconds() > kHugeTimeSeconds) {
    report.add({"NC403", Severity::kInfo, node.name,
                "time_max = " + util::format_duration(node.time_max) +
                    " exceeds 100 s per block",
                "check the duration unit (us vs ms vs s)"});
  }
  return true;
}

/// NC003 + NC4xx for the source. Returns false when unusable.
bool lint_source(const SourceSpec& source, LintReport& report) {
  bool ok = true;
  if (!(source.rate > DataRate::bytes_per_sec(0)) ||
      !source.rate.is_finite()) {
    report.add({"NC003", Severity::kError, "source",
                "source rate must be positive and finite",
                "set [source] rate to the sustained input rate"});
    ok = false;
  }
  if (source.burst < DataSize::bytes(0) || !source.burst.is_finite()) {
    report.add({"NC003", Severity::kError, "source",
                "source burst must be non-negative and finite", ""});
    ok = false;
  }
  if (source.job_volume.is_finite() &&
      !(source.job_volume > DataSize::bytes(0))) {
    report.add({"NC003", Severity::kError, "source",
                "finite job volume must be positive", ""});
    ok = false;
  }
  if (ok && (source.rate.in_bytes_per_sec() < kTinyRate ||
             source.rate.in_bytes_per_sec() > kHugeRate)) {
    report.add({"NC402", Severity::kInfo, "source",
                "source rate " + util::format_rate(source.rate) +
                    " is outside the plausible range [1 KiB/s, 1 TiB/s]",
                "check the rate unit"});
  }
  return ok;
}

/// NC501/NC502: rate-basis sanity.
void lint_policy(const ModelPolicy& policy, LintReport& report) {
  if (policy.service_basis == RateBasis::kMax) {
    report.add({"NC501", Severity::kWarning, "policy",
                "service_basis = max builds the guarantee from best-case "
                "rates; the resulting delay/backlog bounds are not "
                "worst-case bounds",
                "use service_basis = min (sound) or avg (the paper's BITW "
                "study)"});
  }
  const auto rank = [](RateBasis b) {
    return b == RateBasis::kMin ? 0 : b == RateBasis::kAvg ? 1 : 2;
  };
  if (rank(policy.max_service_basis) < rank(policy.service_basis)) {
    report.add({"NC502", Severity::kInfo, "policy",
                std::string("max_service_basis = ") +
                    basis_name(policy.max_service_basis) +
                    " lies below service_basis = " +
                    basis_name(policy.service_basis) +
                    ": the ceiling curve can undercut the guarantee",
                "use a max_service_basis at or above the service basis"});
  }
}

/// NC101/NC102 for one node given its sustained (upstream-clipped)
/// normalized arrival rate and its normalized guaranteed rate.
void lint_load(const NodeSpec& node, double sustained_norm, double rate_norm,
               bool finite_job, LintReport& report) {
  if (rate_norm <= 0.0 || !std::isfinite(rate_norm)) return;
  const double rho = sustained_norm / rate_norm;
  if (rho >= 1.0) {
    std::string msg =
        "sustained arrival rate " +
        util::format_rate(DataRate::bytes_per_sec(sustained_norm)) +
        " reaches guaranteed service rate " +
        util::format_rate(DataRate::bytes_per_sec(rate_norm)) +
        " (rho = " + util::format_significant(rho) +
        ", input-normalized): asymptotic delay/backlog bounds are infinite";
    if (finite_job) {
      msg += "; the finite job volume keeps finite-horizon bounds usable";
    }
    report.add({"NC101", Severity::kWarning, node.name, std::move(msg),
                "lower the source rate below the bottleneck, speed up the "
                "stage, or set a finite [source] job volume"});
  } else if (rho >= kNearCritical) {
    report.add({"NC102", Severity::kInfo, node.name,
                "rho = " + util::format_significant(rho) +
                    " is near critical load; bounds grow as 1/(1 - rho)",
                ""});
  }
}

}  // namespace

LintReport lint_pipeline(const std::vector<NodeSpec>& nodes,
                         const SourceSpec& source,
                         const ModelPolicy& policy) {
  SC_OBS_SPAN("lint", "preflight");
  SC_OBS_COUNT("lint.passes", 1);
  LintReport report;
  if (nodes.empty()) {
    report.add({"NC001", Severity::kError, "model",
                "pipeline has no nodes", "declare at least one [node]"});
    return report;
  }
  bool structural_ok = lint_source(source, report);
  for (const NodeSpec& n : nodes) {
    structural_ok &= lint_node(n, report);
  }
  lint_policy(policy, report);
  if (!structural_ok) return report;

  // Stability: the same scalar recurrence PipelineModel::build uses —
  // worst-case volume normalization, then the sustained rate reaching each
  // node is the source rate clipped by every upstream guaranteed rate.
  const bool finite_job = source.job_volume.is_finite();
  double vol_worst = 1.0;
  double sustained = source.rate.in_bytes_per_sec();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) vol_worst *= nodes[i - 1].volume.max;
    const double rate_norm =
        pick_rate(nodes[i], policy.service_basis) / vol_worst;
    lint_load(nodes[i], sustained, rate_norm, finite_job, report);
    sustained = std::min(sustained, rate_norm);
  }
  return report;
}

LintReport lint_dag(const DagSpec& dag, const SourceSpec& source,
                    const ModelPolicy& policy) {
  SC_OBS_SPAN("lint", "preflight");
  SC_OBS_COUNT("lint.passes", 1);
  LintReport report;
  const std::size_t n = dag.nodes.size();
  if (n == 0) {
    report.add({"NC001", Severity::kError, "model", "DAG has no nodes",
                "declare at least one [node]"});
    return report;
  }
  bool structural_ok = lint_source(source, report);
  for (const NodeSpec& node : dag.nodes) {
    structural_ok &= lint_node(node, report);
  }
  lint_policy(policy, report);

  // Topology shape. Any indexing error makes the graph passes meaningless,
  // so bail out after reporting.
  bool indices_ok = true;
  for (const DagEdge& e : dag.edges) {
    if (e.from >= n || e.to >= n) {
      report.add({"NC301", Severity::kError, "topology",
                  "edge references a node index out of range", ""});
      indices_ok = false;
    } else if (e.from == e.to) {
      report.add({"NC303", Severity::kError, dag.nodes[e.from].name,
                  "self-loop edge", "remove the edge"});
      indices_ok = false;
    }
  }
  for (const DagEdge& e : dag.entries) {
    if (e.to >= n) {
      report.add({"NC301", Severity::kError, "topology",
                  "entry references a node index out of range", ""});
      indices_ok = false;
    }
  }
  if (dag.entries.empty()) {
    report.add({"NC301", Severity::kError, "topology",
                "DAG has no entries: no node is fed by the source",
                "add an 'entry = <node> [fraction]' line"});
    indices_ok = false;
  }
  if (!indices_ok) return report;

  // Flow conservation at fan-out (NC301/NC302) and at the source.
  std::vector<double> out_sum(n, 0.0);
  std::vector<bool> has_out(n, false);
  for (const DagEdge& e : dag.edges) {
    if (e.fraction <= 0.0 || e.fraction > 1.0) {
      report.add({"NC301", Severity::kError, dag.nodes[e.from].name,
                  "edge fraction " + util::format_significant(e.fraction) +
                      " is outside (0, 1]",
                  "route a positive share of the output, at most all of "
                  "it"});
      structural_ok = false;
    }
    out_sum[e.from] += e.fraction;
    has_out[e.from] = true;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (out_sum[i] > 1.0 + 1e-9) {
      report.add({"NC301", Severity::kError, dag.nodes[i].name,
                  "outgoing edge fractions sum to " +
                      util::format_significant(out_sum[i]) +
                      " > 1: the node would emit more flow than it "
                      "produces",
                  "scale the outgoing fractions to sum to at most 1"});
      structural_ok = false;
    } else if (has_out[i] && out_sum[i] < 1.0 - 1e-9) {
      report.add({"NC302", Severity::kInfo, dag.nodes[i].name,
                  "outgoing edge fractions sum to " +
                      util::format_significant(out_sum[i]) +
                      ": fraction " +
                      util::format_significant(1.0 - out_sum[i]) +
                      " of the output leaves the modeled system",
                  "intentional for filtered/dropped flow; otherwise add "
                  "the missing edge"});
    }
  }
  double entry_sum = 0.0;
  for (const DagEdge& e : dag.entries) {
    if (e.fraction <= 0.0 || e.fraction > 1.0) {
      report.add({"NC301", Severity::kError, "topology",
                  "entry fraction " + util::format_significant(e.fraction) +
                      " is outside (0, 1]",
                  ""});
      structural_ok = false;
    }
    entry_sum += e.fraction;
  }
  if (entry_sum > 1.0 + 1e-9) {
    report.add({"NC301", Severity::kError, "topology",
                "entry fractions sum to " +
                    util::format_significant(entry_sum) +
                    " > 1: more flow enters than the source produces",
                "scale the entry fractions to sum to at most 1"});
    structural_ok = false;
  }

  // Cycles (NC303) and unfed nodes (NC304) via Kahn's algorithm — the
  // builder's topological_order, but reporting *which* nodes are stuck
  // instead of throwing a blanket error. An unfed node (no entry, no
  // incoming edge) passes the builder's validation yet crashes its volume
  // propagation, so it is an error here.
  std::vector<std::size_t> indegree(n, 0);
  std::vector<bool> entry_fed(n, false);
  for (const DagEdge& e : dag.edges) ++indegree[e.to];
  for (const DagEdge& e : dag.entries) entry_fed[e.to] = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0 && !entry_fed[i]) {
      report.add({"NC304", Severity::kError, dag.nodes[i].name,
                  "node is not an entry and has no incoming edges: it "
                  "receives no flow",
                  "add an entry or an edge feeding it, or remove the "
                  "node"});
      structural_ok = false;
    }
  }
  const auto order = dag.topological_order();
  if (order.size() < n) {
    std::vector<bool> placed(n, false);
    for (std::size_t i : order) placed[i] = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (!placed[i]) {
        report.add({"NC303", Severity::kError, dag.nodes[i].name,
                    "node lies on a cycle: network calculus over this "
                    "graph requires a DAG",
                    "break the cycle (feedback flows need a different "
                    "model)"});
        structural_ok = false;
      }
    }
  }
  if (!structural_ok) return report;

  // Stability in topological order (NC101/NC102), mirroring DagModel's
  // volume propagation: vol_in[i] is the worst-case bytes at node i's
  // input per source byte; throughput propagates source-normalized, each
  // node clipping its output at its own guaranteed rate. NC305 adds the
  // path-level consequence at fan-in nodes: once cross-traffic can absorb
  // the whole service rate, every per-path bound through the node is
  // infinite (the residual [beta - alpha_cross]^+ vanishes).
  const bool finite_job = source.job_volume.is_finite();
  std::vector<double> vol_in(n, 0.0);
  std::vector<double> vol_out(n, 0.0);
  std::vector<double> thru_in(n, 0.0);
  std::vector<double> thru_out(n, 0.0);
  std::vector<std::size_t> fan_in(n, 0);
  const double source_rate = source.rate.in_bytes_per_sec();
  for (const DagEdge& e : dag.entries) {
    vol_in[e.to] += e.fraction;
    thru_in[e.to] += e.fraction * source_rate;
    ++fan_in[e.to];
  }
  for (std::size_t i : order) {
    for (const DagEdge& e : dag.edges) {
      if (e.to == i) {
        vol_in[i] += e.fraction * vol_out[e.from];
        thru_in[i] += e.fraction * thru_out[e.from];
        ++fan_in[i];
      }
    }
    if (vol_in[i] <= 0.0) continue;  // unreachable; NC304 already fired
    vol_out[i] = vol_in[i] * dag.nodes[i].volume.max;
    const double rate_norm =
        pick_rate(dag.nodes[i], policy.service_basis) / vol_in[i];
    lint_load(dag.nodes[i], thru_in[i], rate_norm, finite_job, report);
    if (fan_in[i] >= 2 && thru_in[i] >= rate_norm) {
      report.add({"NC305", Severity::kWarning, dag.nodes[i].name,
                  "combined cross-traffic at this fan-in absorbs the "
                  "entire guaranteed rate: residual service for each "
                  "joining path vanishes and per-path delay bounds are "
                  "infinite",
                  "reduce upstream load or serve the joining flows from "
                  "separate resources"});
    }
    thru_out[i] = std::min(thru_in[i], rate_norm);
  }
  return report;
}

LintReport lint_flow(const minplus::Curve& arrival,
                     const minplus::Curve& service,
                     const std::string& location) {
  LintReport report;
  if (arrival.value(0.0) > 0.0) {
    report.add({"NC201", Severity::kWarning, location,
                "arrival envelope is positive at t = 0 (alpha(0) = " +
                    util::format_significant(arrival.value(0.0)) +
                    "): cumulative arrivals must start at 0 (causality); "
                    "bursts belong in the right limit alpha(0+)",
                "use Curve::affine(rate, burst), which places the burst "
                "at 0+"});
  }
  const double as = arrival.tail_slope();
  const double bs = service.tail_slope();
  if (as > bs + 1e-9 * (1.0 + std::fabs(bs))) {
    report.add({"NC202", Severity::kWarning, location,
                "arrival tail slope " +
                    util::format_rate(DataRate::bytes_per_sec(as)) +
                    " exceeds the service tail slope " +
                    util::format_rate(DataRate::bytes_per_sec(bs)) +
                    ": the deconvolution alpha (/) beta diverges, so "
                    "output and backlog bounds do not converge",
                "shape the arrival below the long-term service rate"});
  }
  return report;
}

LintMode lint_mode(const util::Context& ctx) {
  switch (ctx.lint) {
    case util::EnforceMode::kOff:
      return LintMode::kOff;
    case util::EnforceMode::kWarn:
      return LintMode::kWarn;
    case util::EnforceMode::kStrict:
      return LintMode::kStrict;
  }
  return LintMode::kWarn;
}

LintMode lint_mode_from_env() {
  util::warn_deprecated_once(
      "lint_mode_from_env(): build a util::Context (Context::from_env()) "
      "and pass it to the preflight entry points instead");
  return lint_mode(util::Context::active());
}

void preflight(const std::string& context, const LintReport& report,
               LintMode mode) {
  if (mode == LintMode::kOff) return;
  const std::string rendered = report.render(context);
  if (!rendered.empty()) std::cerr << rendered;
  if (mode == LintMode::kStrict && !report.clean()) {
    throw util::PreconditionError(
        context + ": model failed lint with " +
        std::to_string(report.count(Severity::kError)) + " error(s) and " +
        std::to_string(report.count(Severity::kWarning)) +
        " warning(s) (STREAMCALC_LINT=strict)");
  }
}

void preflight(const std::string& context, const LintReport& report) {
  preflight(context, report, lint_mode(util::Context::active()));
}

void preflight_pipeline(const std::string& context,
                        const std::vector<NodeSpec>& nodes,
                        const SourceSpec& source, const ModelPolicy& policy,
                        const util::Context& ctx) {
  preflight(context, lint_pipeline(nodes, source, policy), lint_mode(ctx));
}

void preflight_pipeline(const std::string& context,
                        const std::vector<NodeSpec>& nodes,
                        const SourceSpec& source,
                        const ModelPolicy& policy) {
  preflight_pipeline(context, nodes, source, policy,
                     util::Context::active());
}

void preflight_dag(const std::string& context, const DagSpec& dag,
                   const SourceSpec& source, const ModelPolicy& policy,
                   const util::Context& ctx) {
  preflight(context, lint_dag(dag, source, policy), lint_mode(ctx));
}

void preflight_dag(const std::string& context, const DagSpec& dag,
                   const SourceSpec& source, const ModelPolicy& policy) {
  preflight_dag(context, dag, source, policy, util::Context::active());
}

}  // namespace streamcalc::diagnostics
