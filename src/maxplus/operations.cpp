#include "maxplus/operations.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "minplus/detail/builder.hpp"
#include "minplus/detail/merge.hpp"
#include "minplus/operations.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace streamcalc::maxplus {

namespace {

using minplus::Segment;
using minplus::detail::kInf;

double add_inf(double a, double b) {
  if (a == kInf || b == kInf) return kInf;
  return a + b;
}

/// a - b for the infimum: -inf (returned as the clamp 0 by callers) when b
/// dominates; +inf when a is infinite.
double sub_inf(double a, double b) {
  if (a == kInf && b == kInf) return kInf;  // undefined piece; ignore (big)
  if (a == kInf) return kInf;
  if (b == kInf) return -kInf;
  return a - b;
}

double sup_at_impl(const Curve& f, const Curve& g, double t) {
  std::vector<double> ss{0.0, t};
  for (const Segment& s : f.segments()) {
    if (s.x <= t) ss.push_back(s.x);
  }
  for (const Segment& s : g.segments()) {
    if (s.x <= t) ss.push_back(t - s.x);
  }
  double best = 0.0;
  for (double s : ss) {
    if (s < 0.0 || s > t) continue;
    const double u = t - s;
    best = std::max(best, add_inf(f.value(s), g.value(u)));
    if (s < t) {
      best = std::max(best, add_inf(f.value_right(s), g.value_left(u)));
    }
    if (s > 0.0) {
      best = std::max(best, add_inf(f.value_left(s), g.value_right(u)));
    }
    if (best == kInf) break;
  }
  return best;
}

/// Replaces point values of an envelope with the exact evaluator's values
/// (see the min-plus twin in minplus/operations.cpp). Exact evaluations
/// are per-breakpoint independent and fan out to the pool on large
/// envelopes; the clamp chain stays serial.
template <typename AtFn>
Curve repair_point_values(const Curve& env, const AtFn& at) {
  std::vector<Segment> segs = env.segments();
  std::vector<double> exact(segs.size());
  minplus::detail::maybe_parallel_for(
      segs.size(), minplus::detail::kParallelGridThreshold,
      minplus::detail::kParallelGridGrain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) exact[i] = at(segs[i].x);
      });
  for (std::size_t i = 0; i < segs.size(); ++i) {
    Segment& s = segs[i];
    double lo = 0.0;
    if (i > 0) {
      const Segment& p = segs[i - 1];
      lo = p.value_after == kInf ? kInf
                                 : p.value_after + p.slope * (s.x - p.x);
    }
    if (lo != kInf && s.value_after < lo - 1e-9 * (1.0 + lo)) {
      // Degenerate envelope piece (see the min-plus twin): lift the point
      // to the left limit so the curve stays wide-sense increasing.
      s.value_at = lo;
      s.value_after = lo;
      continue;
    }
    s.value_at = std::min(std::max(exact[i], lo), s.value_after);
  }
  return Curve(std::move(segs));
}

}  // namespace

double convolve_at(const Curve& f, const Curve& g, double t) {
  util::require(t >= 0.0 && !std::isnan(t), "convolve_at requires t >= 0");
  return sup_at_impl(f, g, t);
}

Curve convolve(const Curve& f, const Curve& g) {
  SC_OBS_SPAN("maxplus", "convolve");
  SC_OBS_COUNT("maxplus.convolve.calls", 1);
  // Branch envelope, dual to min-plus convolve(): anchoring the split at a
  // breakpoint T of one operand contributes the whole curve
  // c + g(t - T) for t >= T (and 0 before, a safe under-estimate for a
  // supremum of non-negative curves). maximum() finds branch crossings
  // exactly; isolated point values are repaired afterwards.
  std::vector<Curve> branches;
  const auto add_branches = [&branches](const Curve& anchor,
                                        const Curve& shape) {
    for (const Segment& s : anchor.segments()) {
      // The largest legitimate contribution at/after the anchor dominates.
      const double c = s.value_after;
      if (c == kInf) {
        // Everything from this anchor on is +inf.
        std::vector<Segment> segs;
        if (s.x > 0.0) segs.push_back(Segment{0.0, 0.0, 0.0, 0.0});
        segs.push_back(Segment{s.x, s.value_at == kInf ? kInf : 0.0, kInf,
                               0.0});
        // A jump to +inf needs value_at >= previous limit; keep it simple
        // and conservative: 0 at the point unless truly infinite there.
        branches.push_back(Curve(std::move(segs)));
        continue;
      }
      Curve branch = shape;
      if (c > 0.0) branch = branch.plus_step(c);
      // plus_step leaves the origin value; lift it too so the constant is
      // applied uniformly (the repair pass fixes isolated points anyway).
      branches.push_back(branch.shift_right(s.x));
    }
  };
  add_branches(f, g);
  add_branches(g, f);
  // Tiled deterministic reduction, mirroring the min-plus general kernel:
  // fixed-size tiles fold locally (one pool task per tile), then the
  // per-tile envelopes fold through the pairwise reduction. Tile bounds
  // and tree shape depend only on the branch count, so parallel and serial
  // runs produce bit-identical envelopes.
  constexpr std::size_t kTile = 64;
  const std::size_t n_tiles = (branches.size() + kTile - 1) / kTile;
  std::vector<Curve> tile_env(n_tiles);
  minplus::detail::maybe_parallel_for(
      n_tiles, 2, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t ti = lo; ti < hi; ++ti) {
          const std::size_t b0 = ti * kTile;
          const std::size_t b1 = std::min(branches.size(), b0 + kTile);
          std::vector<Curve> tile(
              std::make_move_iterator(branches.begin() +
                                      static_cast<std::ptrdiff_t>(b0)),
              std::make_move_iterator(branches.begin() +
                                      static_cast<std::ptrdiff_t>(b1)));
          tile_env[ti] = minplus::detail::reduce_envelope(
              std::move(tile), [](const Curve& a, const Curve& b) {
                return minplus::detail::merge_maximum(a, b);
              });
        }
      });
  const Curve env = minplus::detail::reduce_envelope(
      std::move(tile_env), [](const Curve& a, const Curve& b) {
        return minplus::detail::merge_maximum(a, b);
      });
  return repair_point_values(env,
                             [&](double t) { return sup_at_impl(f, g, t); });
}

namespace {

/// Exact point (or right-limit) evaluation of the clamped max-plus
/// deconvolution.
double inf_at_impl(const Curve& f, const Curve& g, double t,
                   bool right_limit) {
  std::vector<double> ss{0.0};
  for (const Segment& s : g.segments()) ss.push_back(s.x);
  for (const Segment& s : f.segments()) {
    if (s.x >= t) ss.push_back(s.x - t);
  }
  ss.push_back(std::max(f.last_breakpoint(), g.last_breakpoint()) + 1.0);
  double best = kInf;
  for (double s : ss) {
    if (s < 0.0) continue;
    const double a = t + s;
    if (right_limit) {
      best = std::min(best, sub_inf(f.value_right(a), g.value(s)));
      best = std::min(best, sub_inf(f.value_right(a), g.value_right(s)));
      if (s > 0.0) {
        best = std::min(best, sub_inf(f.value(a), g.value_left(s)));
      }
    } else {
      best = std::min(best, sub_inf(f.value(a), g.value(s)));
      best = std::min(best, sub_inf(f.value_right(a), g.value_right(s)));
      if (s > 0.0) {
        best = std::min(best, sub_inf(f.value_left(a), g.value_left(s)));
      }
    }
  }
  return std::max(0.0, best);
}

}  // namespace

double deconvolve_at(const Curve& f, const Curve& g, double t) {
  util::require(t >= 0.0 && !std::isnan(t), "deconvolve_at requires t >= 0");
  if (f.tail_slope() < g.tail_slope()) return 0.0;  // diverges to -inf
  return inf_at_impl(f, g, t, /*right_limit=*/false);
}

Curve deconvolve(const Curve& f, const Curve& g) {
  SC_OBS_SPAN("maxplus", "deconvolve");
  SC_OBS_COUNT("maxplus.deconvolve.calls", 1);
  if (f.tail_slope() < g.tail_slope()) return Curve::zero();
  // Candidate breakpoints (differences of operand breakpoints) plus
  // adaptive refinement: the infimum envelope can kink where competing
  // branches cross, which bisection localizes to machine precision.
  std::vector<double> ts{0.0};
  for (const Segment& sf : f.segments()) {
    ts.push_back(sf.x);
    for (const Segment& sg : g.segments()) {
      if (sf.x - sg.x > 0.0) ts.push_back(sf.x - sg.x);
    }
  }
  for (const Segment& sg : g.segments()) ts.push_back(sg.x);
  // Far probe so the bisection refinement can reach kinks beyond the last
  // seeded candidate (past it the curve is affine).
  ts.push_back(f.last_breakpoint() + g.last_breakpoint() + 1.0);
  const auto at = [&](double t) {
    return inf_at_impl(f, g, t, /*right_limit=*/false);
  };
  const auto right = [&](double t) {
    return inf_at_impl(f, g, t, /*right_limit=*/true);
  };
  std::vector<double> grid = minplus::detail::canonical_candidates(ts);
  for (int round = 0; round < 40; ++round) {
    // Each interval's chord test needs the evaluator at both endpoints and
    // the midpoint; evaluate all points of the round concurrently (each
    // slot independent), then assemble the refined grid serially so the
    // result is independent of thread count.
    const std::size_t n = grid.size();
    std::vector<double> vals(n);
    std::vector<double> mid_vals(n - 1);
    minplus::detail::maybe_parallel_for(
        n, minplus::detail::kParallelGridThreshold,
        minplus::detail::kParallelGridGrain,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            vals[i] = at(grid[i]);
            if (i + 1 < n) mid_vals[i] = at(0.5 * (grid[i] + grid[i + 1]));
          }
        });
    std::vector<double> refined;
    bool changed = false;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      refined.push_back(grid[i]);
      const double mid = 0.5 * (grid[i] + grid[i + 1]);
      // Linear between neighbours? Compare the evaluator with the chord.
      const double vm = mid_vals[i];
      const double chord = 0.5 * (vals[i] + vals[i + 1]);
      if (std::isfinite(vm) && std::isfinite(chord) &&
          std::fabs(vm - chord) > 1e-9 * (1.0 + std::fabs(vm))) {
        refined.push_back(mid);
        changed = true;
      }
    }
    refined.push_back(grid.back());
    grid = std::move(refined);
    if (!changed) break;
  }
  return minplus::detail::build_from_evaluators(grid, at, right);
}

}  // namespace streamcalc::maxplus
