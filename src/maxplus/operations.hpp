// Max-plus algebra operations — the dual dioid the paper's background
// section introduces alongside min-plus ("in max-plus algebra, addition is
// replaced by the supremum and, once again, multiplication is replaced
// with addition").
//
//   (f (+) g)(t) = sup_{0 <= s <= t} f(s) + g(t - s)   (max-plus conv)
//   (f (-) g)(t) = inf_{s >= 0} f(t + s) - g(s)        (max-plus deconv)
//
// Max-plus convolution composes *lower* envelopes: if two stages each
// guarantee at least f(t)/g(t) cumulative output when fed greedily, their
// tandem guarantees at least (f (+) g)... see the duality tests for the
// exchange identity linking it to min-plus convolution through pseudo-
// inverses: (f (x) g)^{-1} = f^{-1} (+) g^{-1}.
//
// Both operators act on the same piecewise-linear Curve class as the
// min-plus layer and are exact.
#pragma once

#include "minplus/curve.hpp"

namespace streamcalc::maxplus {

using minplus::Curve;

/// Max-plus convolution (sup of split sums). Exact.
Curve convolve(const Curve& f, const Curve& g);

/// Evaluates (f (+) g)(t) directly.
double convolve_at(const Curve& f, const Curve& g, double t);

/// Max-plus deconvolution inf_{s>=0} [f(t+s) - g(s)], clamped below at 0.
/// If g eventually outgrows f the infimum diverges to -inf and the result
/// is identically 0 after clamping.
Curve deconvolve(const Curve& f, const Curve& g);

/// Evaluates the clamped max-plus deconvolution at one point.
double deconvolve_at(const Curve& f, const Curve& g, double t);

}  // namespace streamcalc::maxplus
