// Process-global metrics registry: counters, gauges, and log-scale
// histograms, exported as one JSON block.
//
// Counters and gauges are single atomics; histograms take a short mutex
// per observation. Instrumented sites resolve their instrument once (magic
// static in the SC_OBS_* macros) so the steady-state cost is the update
// itself. Instruments are never destroyed before process exit — the
// registry hands out references that stay valid for the program's
// lifetime, which is what lets hot paths cache them.
//
// The JSON export is deterministic (instruments sorted by name) so tests
// and bench emitters can diff it across runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace streamcalc::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, cache entries, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over non-negative values with fixed log-scale (power-of-two)
/// buckets: bucket i counts observations in (2^(i-1), 2^i] (bucket 0 is
/// [0, 1]); the last bucket is unbounded. Suited to the quantities we
/// track — curve piece counts, chunk counts, event batch sizes — whose
/// interesting structure is their order of magnitude.
class Histogram {
 public:
  /// Number of finite bucket upper bounds (1, 2, 4, ..., 2^(kBuckets-1));
  /// one more unbounded bucket catches everything larger.
  static constexpr std::size_t kBuckets = 33;

  void observe(double value);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< meaningful only when count > 0
    double max = 0.0;
    std::uint64_t buckets[kBuckets + 1] = {};
  };
  Snapshot snapshot() const;
  void reset();

  /// Upper bound of finite bucket `i` (1.0, 2.0, 4.0, ...).
  static double bucket_bound(std::size_t i);
  /// Index of the bucket `value` lands in.
  static std::size_t bucket_index(double value);

  /// Estimates the q-quantile (q in [0, 1]) of a snapshot by walking the
  /// cumulative bucket counts and interpolating linearly inside the
  /// selected bucket. Resolution is the bucket width — a factor of two —
  /// which is the intended fidelity for the latency percentiles the serve
  /// daemon reports (`stats` verb); precise percentiles come from
  /// client-side measurement (bench/serve_qps). Returns 0 when the
  /// snapshot is empty. The result is clamped to [snapshot.min,
  /// snapshot.max].
  static double estimate_quantile(const Snapshot& snapshot, double q);

 private:
  mutable util::Mutex mutex_;
  Snapshot data_ SC_GUARDED_BY(mutex_);
};

/// Name -> instrument registry. Lookup is mutex-guarded; hold the returned
/// reference (it lives for the process lifetime) rather than re-looking-up
/// on a hot path.
class Registry {
 public:
  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}. Names sorted; histograms render count / sum /
  /// min / max plus only their occupied buckets.
  std::string json() const;

  /// Name/value snapshot of scalar instruments, sorted by name — for
  /// emitters (bench --json) that flatten metrics into their own rows.
  struct NamedValue {
    std::string name;
    double value;
  };
  std::vector<NamedValue> counter_values() const;
  std::vector<NamedValue> gauge_values() const;

  /// Zeroes every registered instrument (references stay valid).
  void reset();

  /// Process-wide registry used by the SC_OBS_* macros.
  static Registry& global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace streamcalc::obs
