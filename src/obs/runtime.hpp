// Shared runtime state of the observability layer: the master enable
// switch, the monotonic clock anchor, and compact per-thread ids.
#pragma once

#include <cstdint>

namespace streamcalc::obs {

/// Master runtime switch. Initialized once, lazily, from the
/// STREAMCALC_OBS environment variable via the same strict
/// util::env_bool grammar as Context::from_env() ("on"/"1"/"true",
/// "off"/"0"/"false", unset = enabled; anything else throws naming the
/// variable). When false every instrumentation site reduces to this one
/// relaxed load.
bool enabled();

/// Flips the master switch at runtime (tests, Context installation).
void set_enabled(bool on);

/// Nanoseconds since the process-wide steady-clock anchor (first use).
std::uint64_t now_ns();

/// Small dense id for the calling thread (0, 1, 2, ... in first-use
/// order). Stable for the thread's lifetime; used as chrome-trace tid.
std::uint32_t thread_id();

}  // namespace streamcalc::obs
