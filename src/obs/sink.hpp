// Profiling hooks: a Sink observes every completed span and every metric
// update, so tests and benches can assert on instrumentation ("parallel
// convolve issued N subtasks", "cache hit ratio > X on repeated
// analysis") without scraping trace files.
//
// One sink may be installed at a time (an atomic pointer; install nullptr
// to remove). The caller owns the sink and must uninstall it before
// destroying it or letting instrumented threads outlive it. Sinks run
// inline on the instrumented thread — implementations must be thread-safe
// and cheap.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "obs/trace.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace streamcalc::obs {

class Sink {
 public:
  virtual ~Sink() = default;

  /// Called when an active span completes.
  virtual void on_span(const SpanRecord& span) = 0;

  /// Called on every SC_OBS_COUNT with the site's metric name and delta.
  virtual void on_metric(const std::string& name, double delta) = 0;
};

/// Installs `sink` (nullptr removes). Returns the previously installed
/// sink so callers can restore it.
Sink* set_sink(Sink* sink);

/// Currently installed sink, or nullptr.
Sink* sink();

/// Forwards a metric update to the installed sink, if any. Used by the
/// SC_OBS_COUNT macro; exposed for the obs library's own internals.
void notify_metric(const char* name, double delta);

/// Ready-made thread-safe sink that tallies spans by "category/name" and
/// metric deltas by name.
class CollectingSink : public Sink {
 public:
  void on_span(const SpanRecord& span) override;
  void on_metric(const std::string& name, double delta) override;

  /// Completed spans recorded under "category/name".
  std::uint64_t span_count(const std::string& category_slash_name) const;

  /// Sum of deltas recorded for `name` (0.0 when never seen).
  double metric_total(const std::string& name) const;

  /// Total spans seen across all names.
  std::uint64_t total_spans() const;

  void reset();

 private:
  mutable util::Mutex mutex_;
  std::map<std::string, std::uint64_t> spans_ SC_GUARDED_BY(mutex_);
  std::map<std::string, double> metrics_ SC_GUARDED_BY(mutex_);
  std::uint64_t total_spans_ SC_GUARDED_BY(mutex_) = 0;
};

}  // namespace streamcalc::obs
