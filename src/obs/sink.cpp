#include "obs/sink.hpp"

#include <atomic>

#include "obs/runtime.hpp"

namespace streamcalc::obs {

namespace {

std::atomic<Sink*> g_sink{nullptr};

}  // namespace

Sink* set_sink(Sink* s) {
  return g_sink.exchange(s, std::memory_order_acq_rel);
}

Sink* sink() { return g_sink.load(std::memory_order_acquire); }

void notify_metric(const char* name, double delta) {
  if (Sink* s = sink(); s != nullptr) s->on_metric(name, delta);
}

void CollectingSink::on_span(const SpanRecord& span) {
  util::MutexLock lock(mutex_);
  ++spans_[std::string(span.category) + "/" + span.name];
  ++total_spans_;
}

void CollectingSink::on_metric(const std::string& name, double delta) {
  util::MutexLock lock(mutex_);
  metrics_[name] += delta;
}

std::uint64_t CollectingSink::span_count(
    const std::string& category_slash_name) const {
  util::MutexLock lock(mutex_);
  const auto it = spans_.find(category_slash_name);
  return it == spans_.end() ? 0 : it->second;
}

double CollectingSink::metric_total(const std::string& name) const {
  util::MutexLock lock(mutex_);
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? 0.0 : it->second;
}

std::uint64_t CollectingSink::total_spans() const {
  util::MutexLock lock(mutex_);
  return total_spans_;
}

void CollectingSink::reset() {
  util::MutexLock lock(mutex_);
  spans_.clear();
  metrics_.clear();
  total_spans_ = 0;
}

}  // namespace streamcalc::obs
