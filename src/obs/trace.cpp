#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "obs/runtime.hpp"
#include "obs/sink.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace streamcalc::obs {

namespace {

/// Per-thread span nesting depth (entered spans not yet exited).
thread_local std::uint32_t t_depth = 0;

/// Cheap "does anyone want span records?" check shared by every Span
/// constructor: true while the global tracer is started. (A sink alone
/// also activates spans; that is checked separately because the sink
/// pointer is its own atomic.)
std::atomic<bool> g_tracing{false};

}  // namespace

struct Tracer::Impl {
  mutable util::Mutex mutex;
  std::vector<SpanRecord> ring SC_GUARDED_BY(mutex);
  std::size_t capacity SC_GUARDED_BY(mutex) = Tracer::kDefaultCapacity;
  std::size_t head SC_GUARDED_BY(mutex) = 0;  ///< index of oldest record
  std::size_t size SC_GUARDED_BY(mutex) = 0;
  std::uint64_t dropped SC_GUARDED_BY(mutex) = 0;
};

Tracer::Tracer() : impl_(std::make_unique<Impl>()) {}
Tracer::~Tracer() = default;

void Tracer::start(std::size_t capacity) {
  {
    util::MutexLock lock(impl_->mutex);
    impl_->capacity = std::max<std::size_t>(capacity, 1);
    impl_->ring.assign(impl_->capacity, SpanRecord{});
    impl_->head = 0;
    impl_->size = 0;
    impl_->dropped = 0;
  }
  g_tracing.store(enabled(), std::memory_order_relaxed);
}

void Tracer::stop() { g_tracing.store(false, std::memory_order_relaxed); }

bool Tracer::active() const {
  return g_tracing.load(std::memory_order_relaxed);
}

void Tracer::record(const SpanRecord& r) {
  util::MutexLock lock(impl_->mutex);
  if (impl_->ring.empty()) impl_->ring.assign(impl_->capacity, SpanRecord{});
  if (impl_->size < impl_->capacity) {
    impl_->ring[(impl_->head + impl_->size) % impl_->capacity] = r;
    ++impl_->size;
  } else {
    // Full: overwrite the oldest so the ring keeps the newest records.
    impl_->ring[impl_->head] = r;
    impl_->head = (impl_->head + 1) % impl_->capacity;
    ++impl_->dropped;
  }
}

std::vector<SpanRecord> Tracer::snapshot() const {
  util::MutexLock lock(impl_->mutex);
  std::vector<SpanRecord> out;
  out.reserve(impl_->size);
  for (std::size_t i = 0; i < impl_->size; ++i) {
    out.push_back(impl_->ring[(impl_->head + i) % impl_->capacity]);
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  util::MutexLock lock(impl_->mutex);
  return impl_->dropped;
}

void Tracer::clear() {
  util::MutexLock lock(impl_->mutex);
  impl_->head = 0;
  impl_->size = 0;
  impl_->dropped = 0;
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<SpanRecord> spans = snapshot();
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u, "
                  "\"args\": {\"depth\": %u}}",
                  i > 0 ? "," : "", s.name, s.category,
                  static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(s.duration_ns()) / 1e3, s.thread,
                  s.depth);
    os << buf;
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

std::string Tracer::summary() const {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const SpanRecord& s : snapshot()) {
    Agg& a = by_name[std::string(s.category) + "/" + s.name];
    ++a.count;
    a.total_ns += s.duration_ns();
    a.max_ns = std::max(a.max_ns, s.duration_ns());
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  std::ostringstream os;
  os << "span summary (by total time):\n";
  char buf[256];
  std::snprintf(buf, sizeof buf, "  %-32s %10s %12s %12s %12s\n", "span",
                "count", "total ms", "mean us", "max us");
  os << buf;
  for (const auto& [name, a] : rows) {
    const double count = static_cast<double>(a.count);
    std::snprintf(buf, sizeof buf,
                  "  %-32s %10llu %12.3f %12.3f %12.3f\n", name.c_str(),
                  static_cast<unsigned long long>(a.count),
                  static_cast<double>(a.total_ns) / 1e6,
                  static_cast<double>(a.total_ns) / 1e3 / count,
                  static_cast<double>(a.max_ns) / 1e3);
    os << buf;
  }
  if (const std::uint64_t d = dropped(); d > 0) {
    std::snprintf(buf, sizeof buf,
                  "  (%llu older span(s) dropped: ring buffer full)\n",
                  static_cast<unsigned long long>(d));
    os << buf;
  }
  return os.str();
}

Tracer& Tracer::global() {
  // Leaked for the same reason as Registry::global(): spans on detached
  // or late-exiting threads must never race tracer destruction.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Span::Span(const char* category, const char* name)
    : category_(category), name_(name) {
  if (!g_tracing.load(std::memory_order_relaxed) && sink() == nullptr) {
    return;  // dormant: two relaxed loads, nothing else
  }
  if (!enabled()) return;
  active_ = true;
  depth_ = t_depth++;
  start_ns_ = now_ns();
}

Span::~Span() {
  if (!active_) return;
  SpanRecord r;
  r.category = category_;
  r.name = name_;
  r.start_ns = start_ns_;
  r.end_ns = now_ns();
  r.thread = thread_id();
  r.depth = depth_;
  --t_depth;
  if (g_tracing.load(std::memory_order_relaxed)) {
    Tracer::global().record(r);
  }
  if (Sink* s = sink(); s != nullptr) s->on_span(r);
}

}  // namespace streamcalc::obs
