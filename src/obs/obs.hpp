// Observability umbrella: compile-time gate + instrumentation macros.
//
// The paper's analysis hinges on knowing where time and capacity go across
// heterogeneous pipeline stages; this subsystem gives the reproduction the
// same visibility into its *own* hot paths — which curve operations
// dominate, how well the operation cache memoizes, how the thread pool and
// the event loop spend their time (DESIGN.md §10).
//
// Three layers, smallest first:
//
//   * metrics.hpp — process-global registry of counters / gauges /
//     log-scale histograms, exported as one JSON block (`--stats`, bench
//     `--json` emitters).
//   * trace.hpp   — RAII `Span` + a bounded thread-safe ring buffer of
//     completed spans, exported as chrome://tracing JSON (`--trace <file>`)
//     or a human text summary.
//   * sink.hpp    — test hook: a registered Sink observes every completed
//     span and metric update, so tests and benches can assert on
//     instrumentation ("parallel convolve issued N subtasks").
//
// Cost model, from cheapest to most expensive configuration:
//
//   1. Compiled out (CMake -DSTREAMCALC_OBS=OFF, macro
//      STREAMCALC_OBS_DISABLED): every SC_OBS_* macro expands to nothing.
//      Zero overhead, verified by bench/micro_obs.
//   2. Runtime off (STREAMCALC_OBS=off / Context::obs == false): each site
//      is one relaxed atomic load and a branch.
//   3. Metrics on (default): counters are single relaxed atomic adds;
//      spans additionally check whether a tracer or sink wants them.
//   4. Tracing on (--trace/--stats, Tracer::start()): spans take two
//      steady_clock stamps and one short critical section on completion.
//
// Instrumented subsystems: min-plus/max-plus convolve/deconvolve/closure,
// CurveOpCache hits/misses, ThreadPool::parallel_for chunking and queue
// depth, the DES event loop, ReplicationRunner replications, and the
// nclint/certify pre/post-flight passes.
#pragma once

#if defined(STREAMCALC_OBS_DISABLED)
#define SC_OBS_ENABLED 0
#else
#define SC_OBS_ENABLED 1
#endif

#include "obs/metrics.hpp"
#include "obs/runtime.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"

#define SC_OBS_CONCAT_IMPL(a, b) a##b
#define SC_OBS_CONCAT(a, b) SC_OBS_CONCAT_IMPL(a, b)

#if SC_OBS_ENABLED

/// Opens a scoped span; closes (and records) when the scope exits.
/// `category` and `name` must be string literals (stored by pointer).
#define SC_OBS_SPAN(category, name)                                        \
  const ::streamcalc::obs::Span SC_OBS_CONCAT(sc_obs_span_, __LINE__) {    \
    category, name                                                         \
  }

/// Adds `delta` to the named process-global counter. The registry lookup
/// happens once per site (magic static); the steady state is one relaxed
/// atomic add.
#define SC_OBS_COUNT(metric, delta)                                        \
  do {                                                                     \
    if (::streamcalc::obs::enabled()) {                                    \
      static ::streamcalc::obs::Counter& SC_OBS_CONCAT(sc_obs_ctr_,        \
                                                       __LINE__) =         \
          ::streamcalc::obs::Registry::global().counter(metric);           \
      SC_OBS_CONCAT(sc_obs_ctr_, __LINE__)                                 \
          .add(static_cast<std::uint64_t>(delta));                         \
      ::streamcalc::obs::notify_metric(metric,                             \
                                       static_cast<double>(delta));        \
    }                                                                      \
  } while (0)

/// Sets the named process-global gauge to `value`.
#define SC_OBS_GAUGE(metric, value)                                        \
  do {                                                                     \
    if (::streamcalc::obs::enabled()) {                                    \
      static ::streamcalc::obs::Gauge& SC_OBS_CONCAT(sc_obs_gauge_,        \
                                                     __LINE__) =           \
          ::streamcalc::obs::Registry::global().gauge(metric);             \
      SC_OBS_CONCAT(sc_obs_gauge_, __LINE__)                               \
          .set(static_cast<double>(value));                                \
    }                                                                      \
  } while (0)

/// Records `value` into the named log-scale histogram.
#define SC_OBS_OBSERVE(metric, value)                                      \
  do {                                                                     \
    if (::streamcalc::obs::enabled()) {                                    \
      static ::streamcalc::obs::Histogram& SC_OBS_CONCAT(sc_obs_hist_,     \
                                                         __LINE__) =       \
          ::streamcalc::obs::Registry::global().histogram(metric);         \
      SC_OBS_CONCAT(sc_obs_hist_, __LINE__)                                \
          .observe(static_cast<double>(value));                            \
    }                                                                      \
  } while (0)

#else  // !SC_OBS_ENABLED — instrumentation compiled out entirely.

// The value expressions are consumed unevaluated (sizeof) so helper
// locals feeding instrumentation do not become unused-variable warnings
// in the compiled-out configuration.
#define SC_OBS_SPAN(category, name) \
  do {                              \
  } while (0)
#define SC_OBS_COUNT(metric, delta)           \
  do {                                        \
    (void)sizeof(delta); /* unevaluated */    \
  } while (0)
#define SC_OBS_GAUGE(metric, value)           \
  do {                                        \
    (void)sizeof(value); /* unevaluated */    \
  } while (0)
#define SC_OBS_OBSERVE(metric, value)         \
  do {                                        \
    (void)sizeof(value); /* unevaluated */    \
  } while (0)

#endif  // SC_OBS_ENABLED
