// Span tracer: RAII spans, a bounded thread-safe ring buffer of completed
// spans, chrome://tracing JSON export, and a human text summary.
//
// A Span brackets one unit of work (one convolution, one parallel_for, one
// replication). Construction checks two relaxed atomics — the master
// obs::enabled() switch and whether anyone (tracer ring or test sink)
// wants span records — and does nothing else when the answer is no, so
// dormant instrumentation stays off the profile. When active, the span
// stamps steady-clock times at entry/exit, tracks per-thread nesting
// depth, and on completion appends a SpanRecord to the Tracer ring and/or
// notifies the installed Sink.
//
// The ring buffer is fixed-capacity and keeps the *newest* records: when
// full, the oldest record is overwritten and `dropped()` increments. That
// matches how traces are used — the interesting spans are the ones nearest
// the point where you stopped tracing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace streamcalc::obs {

/// One completed span. `category` and `name` point at string literals
/// supplied at the instrumentation site.
struct SpanRecord {
  const char* category = "";
  const char* name = "";
  std::uint64_t start_ns = 0;  ///< obs::now_ns() at entry
  std::uint64_t end_ns = 0;    ///< obs::now_ns() at exit
  std::uint32_t thread = 0;    ///< obs::thread_id() of the executing thread
  std::uint32_t depth = 0;     ///< span nesting depth on that thread (0 = top)

  std::uint64_t duration_ns() const { return end_ns - start_ns; }
};

/// Process-global collector of completed spans.
class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts collecting, with a ring of `capacity` records. Clears any
  /// previous recording. Ignored (spans stay dormant) while the master
  /// obs::enabled() switch is off.
  void start(std::size_t capacity = kDefaultCapacity);

  /// Stops collecting; records collected so far remain readable.
  void stop();

  /// True while started (spans append to the ring).
  bool active() const;

  /// Completed spans, oldest first. At most `capacity` records; earlier
  /// ones beyond that were dropped (see dropped()).
  std::vector<SpanRecord> snapshot() const;

  /// Records overwritten because the ring was full.
  std::uint64_t dropped() const;

  /// Drops all records and resets the dropped counter (keeps tracing
  /// active if it was).
  void clear();

  /// chrome://tracing "trace event" JSON (complete events, microsecond
  /// timestamps): load the file via chrome://tracing or https://ui.perfetto.dev.
  std::string chrome_trace_json() const;

  /// Human summary: per (category, name) call count, total / mean / max
  /// duration, sorted by total time descending.
  std::string summary() const;

  /// Appends one record (called by ~Span; public for tests).
  void record(const SpanRecord& r);

  static Tracer& global();

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// RAII span handle. Cheap when dormant (see file comment).
class Span {
 public:
  Span(const char* category, const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is actually recording (tracer active or sink
  /// installed at construction time).
  bool active() const { return active_; }

 private:
  const char* category_;
  const char* name_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

}  // namespace streamcalc::obs
