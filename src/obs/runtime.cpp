#include "obs/runtime.hpp"

#include <atomic>
#include <chrono>

#include "util/env.hpp"

namespace streamcalc::obs {

namespace {

bool initial_enabled() {
  // Same strict grammar as Context::from_env() — both sides call
  // util::env_bool (header-only, so the below-util obs layer can use it),
  // and a garbage STREAMCALC_OBS throws a PreconditionError naming the
  // variable instead of silently enabling instrumentation. The first
  // enabled() call is lazy, so in the CLI drivers the Context built in
  // main rejects the value before any instrumentation runs.
  return util::env_bool("STREAMCALC_OBS").value_or(true);
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{initial_enabled()};
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point anchor = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           anchor)
          .count());
}

std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace streamcalc::obs
