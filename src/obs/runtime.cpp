#include "obs/runtime.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace streamcalc::obs {

namespace {

bool initial_enabled() {
  const char* raw = std::getenv("STREAMCALC_OBS");
  if (raw == nullptr || *raw == '\0') return true;
  // Lenient here on purpose: this runs during static-ish init where
  // throwing would abort the process. Context::from_env() re-parses the
  // variable strictly and rejects anything outside {on, off, 0, 1,
  // false, true}.
  return std::strcmp(raw, "off") != 0 && std::strcmp(raw, "0") != 0 &&
         std::strcmp(raw, "false") != 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{initial_enabled()};
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point anchor = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           anchor)
          .count());
}

std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace streamcalc::obs
