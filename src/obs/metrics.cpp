#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

namespace streamcalc::obs {

namespace {

/// Shortest round-trip double rendering; avoids "1e+06"-style noise for
/// the integral values metrics overwhelmingly hold.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void Histogram::observe(double value) {
  const std::size_t i = bucket_index(value);
  util::MutexLock lock(mutex_);
  if (data_.count == 0 || value < data_.min) data_.min = value;
  if (data_.count == 0 || value > data_.max) data_.max = value;
  ++data_.count;
  data_.sum += value;
  ++data_.buckets[i];
}

Histogram::Snapshot Histogram::snapshot() const {
  util::MutexLock lock(mutex_);
  return data_;
}

void Histogram::reset() {
  util::MutexLock lock(mutex_);
  data_ = Snapshot{};
}

double Histogram::bucket_bound(std::size_t i) {
  return std::ldexp(1.0, static_cast<int>(i));  // 2^i: 1, 2, 4, ...
}

std::size_t Histogram::bucket_index(double value) {
  if (!(value > 1.0)) return 0;  // [0, 1], negatives, and NaN
  for (std::size_t i = 1; i < kBuckets; ++i) {
    if (value <= bucket_bound(i)) return i;
  }
  return kBuckets;  // unbounded overflow bucket
}

double Histogram::estimate_quantile(const Snapshot& snapshot, double q) {
  if (snapshot.count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(snapshot.count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i <= kBuckets; ++i) {
    const double in_bucket = static_cast<double>(snapshot.buckets[i]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket < target) {
      cumulative += in_bucket;
      continue;
    }
    // Interpolate inside bucket i. The overflow bucket has no finite upper
    // bound; its observed maximum stands in.
    const double lo = i == 0 ? 0.0 : bucket_bound(i - 1);
    const double hi = i < kBuckets ? bucket_bound(i) : snapshot.max;
    const double frac =
        in_bucket > 0.0 ? (target - cumulative) / in_bucket : 1.0;
    const double est = lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    return std::min(snapshot.max, std::max(snapshot.min, est));
  }
  return snapshot.max;
}

struct Registry::Impl {
  mutable util::Mutex mutex;
  // std::map keeps names sorted, which makes json() deterministic.
  // Instruments are heap-allocated and never freed while the process
  // lives, so references handed out stay valid without holding the lock.
  std::map<std::string, std::unique_ptr<Counter>> counters
      SC_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Gauge>> gauges SC_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>> histograms
      SC_GUARDED_BY(mutex);
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Counter& Registry::counter(const std::string& name) {
  util::MutexLock lock(impl_->mutex);
  auto& slot = impl_->counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  util::MutexLock lock(impl_->mutex);
  auto& slot = impl_->gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  util::MutexLock lock(impl_->mutex);
  auto& slot = impl_->histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string Registry::json() const {
  util::MutexLock lock(impl_->mutex);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    os << (first ? "" : ",") << "\n    " << quote(name) << ": "
       << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : impl_->gauges) {
    os << (first ? "" : ",") << "\n    " << quote(name) << ": "
       << format_number(g->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    const Histogram::Snapshot s = h->snapshot();
    os << (first ? "" : ",") << "\n    " << quote(name) << ": {"
       << "\"count\": " << s.count << ", \"sum\": " << format_number(s.sum);
    if (s.count > 0) {
      os << ", \"min\": " << format_number(s.min)
         << ", \"max\": " << format_number(s.max);
    }
    os << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
      if (s.buckets[i] == 0) continue;
      os << (first_bucket ? "" : ", ") << "{\"le\": ";
      if (i < Histogram::kBuckets) {
        os << format_number(Histogram::bucket_bound(i));
      } else {
        os << "\"inf\"";
      }
      os << ", \"count\": " << s.buckets[i] << "}";
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}";
  return os.str();
}

std::vector<Registry::NamedValue> Registry::counter_values() const {
  util::MutexLock lock(impl_->mutex);
  std::vector<NamedValue> out;
  out.reserve(impl_->counters.size());
  for (const auto& kv : impl_->counters) {
    out.push_back({kv.first, static_cast<double>(kv.second->value())});
  }
  return out;
}

std::vector<Registry::NamedValue> Registry::gauge_values() const {
  util::MutexLock lock(impl_->mutex);
  std::vector<NamedValue> out;
  out.reserve(impl_->gauges.size());
  for (const auto& kv : impl_->gauges) {
    out.push_back({kv.first, kv.second->value()});
  }
  return out;
}

void Registry::reset() {
  util::MutexLock lock(impl_->mutex);
  for (const auto& kv : impl_->counters) kv.second->reset();
  for (const auto& kv : impl_->gauges) kv.second->reset();
  for (const auto& kv : impl_->histograms) kv.second->reset();
}

Registry& Registry::global() {
  // Leaked on purpose: instrumented sites cache instrument references in
  // function-local statics whose destruction order versus this registry
  // is unknowable; a leak makes every order safe.
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace streamcalc::obs
