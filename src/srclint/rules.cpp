#include "srclint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <sstream>

#include "srclint/scan.hpp"

namespace streamcalc::srclint {

namespace {

// --- path predicates -------------------------------------------------------

std::string normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

std::vector<std::string_view> segments(std::string_view path) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::size_t end = slash == std::string_view::npos ? path.size()
                                                            : slash;
    if (end > start) out.push_back(path.substr(start, end - start));
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
  return out;
}

bool has_segment(const std::vector<std::string_view>& segs,
                 std::string_view name) {
  return std::find(segs.begin(), segs.end(), name) != segs.end();
}

/// `path` names exactly `suffix` relative to some root: equal, or ends
/// with "/" + suffix.
bool path_is(std::string_view path, std::string_view suffix) {
  if (path == suffix) return true;
  if (path.size() <= suffix.size()) return false;
  return path[path.size() - suffix.size() - 1] == '/' &&
         path.substr(path.size() - suffix.size()) == suffix;
}

bool path_is_any(std::string_view path,
                 std::initializer_list<std::string_view> suffixes) {
  for (const std::string_view s : suffixes) {
    if (path_is(path, s)) return true;
  }
  return false;
}

// --- token predicates ------------------------------------------------------

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// The names that SC901 bans when reached through `std::`.
constexpr std::string_view kRawSyncNames[] = {
    "mutex",          "timed_mutex",      "recursive_mutex",
    "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
    "condition_variable", "condition_variable_any",
    "lock_guard",     "unique_lock",      "scoped_lock",
    "shared_lock",
};

/// The functions SC903 treats as environment reads.
constexpr std::string_view kEnvReaders[] = {
    "getenv", "env_raw", "env_uint", "env_uint_in", "env_bool",
};

struct FileContext {
  std::string path;                       // normalized, as given
  std::vector<std::string_view> segs;
  std::vector<Token> code;                // comments/directives stripped
  std::vector<Token> comments;
  bool mentions_project_mutex = false;    // any `Mutex` identifier in code
  std::vector<Finding>* findings = nullptr;

  const Token* at(std::size_t i) const {
    return i < code.size() ? &code[i] : nullptr;
  }

  void add(const std::string& code_id, int line, std::string message,
           std::string hint = "") const {
    findings->push_back(
        Finding{code_id, path, line, std::move(message), std::move(hint)});
  }
};

// --- SC901: raw standard synchronization primitives ------------------------
//
// std::mutex and friends are invisible to Clang's thread-safety analysis
// (they carry no capability attributes), so locking through them silently
// opts the surrounding code out of the -Werror=thread-safety gate. Only
// util/sync.hpp — which defines the annotated wrappers — may spell them.
void rule_sc901(const FileContext& f) {
  if (path_is(f.path, "src/util/sync.hpp")) return;
  for (std::size_t i = 0; i + 2 < f.code.size(); ++i) {
    if (!is_ident(f.code[i], "std") || !is_punct(f.code[i + 1], "::")) {
      continue;
    }
    const Token& name = f.code[i + 2];
    if (name.kind != TokenKind::kIdentifier) continue;
    for (const std::string_view banned : kRawSyncNames) {
      if (name.text == banned) {
        f.add("SC901", name.line,
              "raw std::" + name.text +
                  " is invisible to the thread-safety analysis",
              "use the annotated util::Mutex / util::MutexLock / "
              "util::CondVar from util/sync.hpp");
      }
    }
  }
}

// --- SC902: direct std::getenv ---------------------------------------------
//
// Every environment read funnels through util::env so malformed values
// fail loudly with the variable named (PR 3's env hardening). A direct
// getenv reintroduces the silent-fallback behavior that hardening removed.
void rule_sc902(const FileContext& f) {
  if (path_is(f.path, "src/util/env.hpp")) return;
  for (std::size_t i = 0; i + 1 < f.code.size(); ++i) {
    if (!is_ident(f.code[i], "getenv") || !is_punct(f.code[i + 1], "(")) {
      continue;
    }
    f.add("SC902", f.code[i].line,
          "direct getenv bypasses the strict util::env parsers",
          "use util::env_raw / env_uint / env_bool (util/env.hpp)");
  }
}

// --- SC903: STREAMCALC_* reads outside the facade --------------------------
//
// The Context facade (util/context) is the single authority on what each
// STREAMCALC_* variable means. A scattered read — even through the strict
// util::env helpers — can drift from the facade's grammar, which is
// exactly how obs/runtime.cpp's lenient STREAMCALC_OBS parse diverged
// from Context::from_env(). obs/runtime.cpp itself stays allowlisted: it
// sits *below* util in the link graph (the thread pool is instrumented),
// so it cannot consume Context and instead shares util/env.hpp's
// header-only strict parser; Context::install() overrides it as the
// authoritative source once a context exists.
//
// Scope: src/, tools/, bench/ — tests manipulate the raw environment to
// exercise the facade itself.
void rule_sc903(const FileContext& f) {
  if (!has_segment(f.segs, "src") && !has_segment(f.segs, "tools") &&
      !has_segment(f.segs, "bench")) {
    return;
  }
  if (path_is_any(f.path, {"src/util/context.cpp", "src/util/env.hpp",
                           "src/obs/runtime.cpp"})) {
    return;
  }
  for (std::size_t i = 0; i + 2 < f.code.size(); ++i) {
    bool reader = false;
    for (const std::string_view r : kEnvReaders) {
      if (is_ident(f.code[i], r)) reader = true;
    }
    if (!reader || !is_punct(f.code[i + 1], "(")) continue;
    const Token& arg = f.code[i + 2];
    if (arg.kind != TokenKind::kString ||
        arg.text.rfind("STREAMCALC_", 0) != 0) {
      continue;
    }
    f.add("SC903", arg.line,
          "reads " + arg.text + " outside the Context facade",
          "resolve the knob through streamcalc::util::Context (or add the "
          "parse to Context::from_env)");
  }
}

// --- SC904: equality with an inexact floating literal -----------------------
//
// The exact min-plus/max-plus kernels compare doubles with == by design —
// against values that are exactly representable (0.0, 0.5, kInf), where
// the comparison is well-defined. Equality against a literal like 0.1
// that has no exact binary representation can never hold the way it
// reads, so it is flagged unconditionally in the numeric kernels and the
// certification layer.
void rule_sc904(const FileContext& f) {
  if (!has_segment(f.segs, "src")) return;
  if (!has_segment(f.segs, "minplus") && !has_segment(f.segs, "maxplus") &&
      !has_segment(f.segs, "certify")) {
    return;
  }
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (!is_punct(f.code[i], "==") && !is_punct(f.code[i], "!=")) continue;
    for (const std::size_t j : {i - 1, i + 1}) {
      const Token* t = f.at(j);
      if (t != nullptr && t->kind == TokenKind::kNumber &&
          inexact_float_literal(t->text)) {
        f.add("SC904", f.code[i].line,
              "equality comparison with " + t->text +
                  ", which has no exact binary representation",
              "compare against a dyadic constant or use an explicit "
              "tolerance");
      }
    }
  }
}

// --- SC905: suppression hygiene --------------------------------------------
//
// A clang-tidy suppression marker must name the check it silences and say
// why — `(<check>): <reason>` — or the suppression outlives its cause and
// nobody can tell. (The marker spelling is built from pieces below so
// srclint's own sources pass their own gate.)
const std::string kMarker = std::string("NO") + "LINT";

bool valid_suppression_at(std::string_view text, std::size_t after_marker,
                          std::size_t* resume) {
  std::size_t i = after_marker;
  if (i >= text.size() || text[i] != '(') return false;
  const std::size_t close = text.find(')', i);
  if (close == std::string_view::npos) return false;
  const std::string_view checks = text.substr(i + 1, close - i - 1);
  if (checks.empty() || checks == "*") return false;
  i = close + 1;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  if (i >= text.size() || text[i] != ':') return false;
  ++i;
  // A non-empty reason on the same line.
  const std::size_t eol = text.find('\n', i);
  const std::string_view reason =
      text.substr(i, (eol == std::string_view::npos ? text.size() : eol) - i);
  if (reason.find_first_not_of(" \t") == std::string_view::npos) return false;
  *resume = close + 1;
  return true;
}

void rule_sc905(const FileContext& f) {
  for (const Token& comment : f.comments) {
    const std::string_view text = comment.text;
    std::size_t search = 0;
    while (true) {
      const std::size_t o = text.find(kMarker, search);
      if (o == std::string_view::npos) break;
      search = o + kMarker.size();
      // Part of a longer identifier-ish word (a prose mention such as
      // "NOLINTed", which this rule deliberately skips)? Real markers are
      // followed by '(', an all-caps variant keyword, or nothing.
      if (o > 0 && (std::isalnum(static_cast<unsigned char>(text[o - 1])) ||
                    text[o - 1] == '_')) {
        continue;
      }
      if (search < text.size() &&
          (std::islower(static_cast<unsigned char>(text[search])) ||
           std::isdigit(static_cast<unsigned char>(text[search])) ||
           text[search] == '_')) {
        continue;
      }
      std::size_t after = o + kMarker.size();
      const std::string_view rest = text.substr(after);
      if (rest.rfind("END", 0) == 0) continue;  // closes an annotated BEGIN
      if (rest.rfind("NEXTLINE", 0) == 0) after += 8;
      if (rest.rfind("BEGIN", 0) == 0) after += 5;
      std::size_t resume = after;
      if (valid_suppression_at(text, after, &resume)) {
        search = resume;
        continue;
      }
      const int line =
          comment.line +
          static_cast<int>(std::count(text.begin(),
                                      text.begin() + static_cast<long>(o),
                                      '\n'));
      f.add("SC905", line,
            "suppression does not name a check and a reason",
            "write " + kMarker + "(<check>): <why it is safe here>");
    }
  }
}

// --- SC906: unguarded mutable members near a mutex -------------------------
//
// Heuristic: in a file that declares a util::Mutex member, a `mutable`
// data member is almost always cross-thread shared state — that is why it
// is mutable — and must carry SC_GUARDED_BY so the thread-safety analysis
// covers it. Atomics and the lock objects themselves are exempt.
void rule_sc906(const FileContext& f) {
  if (!has_segment(f.segs, "src")) return;
  if (!f.mentions_project_mutex) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (!is_ident(f.code[i], "mutable")) continue;
    const Token* next = f.at(i + 1);
    if (next == nullptr || next->kind != TokenKind::kIdentifier) {
      continue;  // lambda `mutable` and other non-declaration uses
    }
    bool guarded = false;
    bool exempt = false;
    std::size_t j = i + 1;
    for (; j < f.code.size() && !is_punct(f.code[j], ";") &&
           !is_punct(f.code[j], "{");
         ++j) {
      const Token& t = f.code[j];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "SC_GUARDED_BY" || t.text == "SC_PT_GUARDED_BY") {
        guarded = true;
      }
      if (t.text == "Mutex" || t.text == "CondVar" || t.text == "atomic" ||
          t.text == "atomic_flag" || t.text == "thread_local") {
        exempt = true;
      }
    }
    if (guarded || exempt) continue;
    f.add("SC906", f.code[i].line,
          "mutable member in a mutex-guarded class has no SC_GUARDED_BY",
          "annotate with SC_GUARDED_BY(<mutex>) (or make it std::atomic "
          "if it is deliberately lock-free)");
  }
}

// --- SC907: raw threads outside the registries -----------------------------
//
// Every thread in the system is either a ThreadPool worker or a
// registered serve connection reader — that is what makes clean shutdown
// and the concurrency test suites exhaustive. A free-floating or detached
// std::thread escapes both.
void rule_sc907(const FileContext& f) {
  if (!has_segment(f.segs, "src") && !has_segment(f.segs, "tools")) return;
  if (path_is_any(f.path,
                  {"src/util/thread_pool.hpp", "src/util/thread_pool.cpp",
                   "src/serve/server.hpp", "src/serve/server.cpp"})) {
    return;
  }
  for (std::size_t i = 0; i + 2 < f.code.size(); ++i) {
    if (is_ident(f.code[i], "std") && is_punct(f.code[i + 1], "::") &&
        (is_ident(f.code[i + 2], "thread") ||
         is_ident(f.code[i + 2], "jthread"))) {
      // `std::thread::hardware_concurrency()` is a capacity query, not a
      // thread: skip when the name is immediately qualified further.
      const Token* qual = f.at(i + 3);
      if (qual != nullptr && is_punct(*qual, "::")) continue;
      f.add("SC907", f.code[i + 2].line,
            "raw std::" + f.code[i + 2].text +
                " outside ThreadPool and the serve reader registry",
            "run the work on util::ThreadPool, or register the thread "
            "like serve::Server's connection readers");
    }
    if ((is_punct(f.code[i], ".") || is_punct(f.code[i], "->")) &&
        is_ident(f.code[i + 1], "detach") && is_punct(f.code[i + 2], "(")) {
      f.add("SC907", f.code[i + 1].line,
            "detached thread can outlive every shutdown path",
            "keep the handle and join it, or hand the work to "
            "util::ThreadPool");
    }
  }
}

// --- SC908: bare doubles for unit-bearing quantities -----------------------
//
// The public netcalc/serve/apps surfaces pass delays, backlogs, and rates
// through util/units.hpp types (Duration, DataSize, DataRate) so the unit
// travels with the value — the seconds-vs-microseconds and bits-vs-bytes
// slips the paper's tables invite are then type errors. A bare `double
// arrival_rate` in a public header reopens that hole. The dimensionless
// min-plus/max-plus kernels are out of scope: curves deliberately carry no
// unit, and the netcalc layer is where units attach.
constexpr std::string_view kUnitSegments[] = {
    "backlog", "bandwidth", "burst", "delay", "latency", "rate", "throughput",
};

bool unit_bearing_name(std::string_view name) {
  std::size_t start = 0;
  while (start <= name.size()) {
    std::size_t end = name.find('_', start);
    if (end == std::string_view::npos) end = name.size();
    std::string_view seg = name.substr(start, end - start);
    if (seg.size() > 1 && seg.back() == 's') seg.remove_suffix(1);  // plural
    for (const std::string_view unit : kUnitSegments) {
      if (seg == unit) return true;
    }
    if (end == name.size()) break;
    start = end + 1;
  }
  return false;
}

void rule_sc908(const FileContext& f) {
  if (!has_segment(f.segs, "src")) return;
  if (!has_segment(f.segs, "netcalc") && !has_segment(f.segs, "serve") &&
      !has_segment(f.segs, "apps")) {
    return;
  }
  if (f.path.size() < 4 || f.path.substr(f.path.size() - 4) != ".hpp") {
    return;  // public surface only; .cpp internals may unpack to double
  }
  // bitw/blast mirror the paper's printed tables, whose columns are in
  // reporting units (us, ms, KiB, Mbit/s) by construction; their row
  // structs keep the table's own field spellings.
  if (path_is_any(f.path, {"src/apps/bitw.hpp", "src/apps/blast.hpp"})) {
    return;
  }
  for (std::size_t i = 0; i + 1 < f.code.size(); ++i) {
    if (!is_ident(f.code[i], "double") && !is_ident(f.code[i], "float")) {
      continue;
    }
    const Token& name = f.code[i + 1];
    if (name.kind != TokenKind::kIdentifier || !unit_bearing_name(name.text)) {
      continue;
    }
    f.add("SC908", name.line,
          "'" + name.text + "' is a bare " + f.code[i].text +
              " for a unit-bearing quantity in a public header",
          "carry the unit in the type: util::Duration / util::DataSize / "
          "util::DataRate (util/units.hpp)");
  }
}

}  // namespace

bool inexact_float_literal(std::string_view literal) {
  if (literal.size() > 1 && literal[0] == '0' &&
      (literal[1] == 'x' || literal[1] == 'X')) {
    return false;  // hex literals (including hex floats) are exact
  }
  std::string mantissa;
  long frac_digits = 0;
  long exponent = 0;
  bool seen_dot = false;
  bool seen_exp = false;
  bool single_precision = false;
  std::size_t i = 0;
  for (; i < literal.size(); ++i) {
    const char c = literal[i];
    if (c == '\'') continue;
    if (c >= '0' && c <= '9') {
      if (mantissa.size() < 32) mantissa += c;
      if (seen_dot) ++frac_digits;
      continue;
    }
    if (c == '.' && !seen_dot && !seen_exp) {
      seen_dot = true;
      continue;
    }
    if ((c == 'e' || c == 'E') && !seen_exp) {
      seen_exp = true;
      long sign = 1;
      std::size_t j = i + 1;
      if (j < literal.size() && (literal[j] == '+' || literal[j] == '-')) {
        if (literal[j] == '-') sign = -1;
        ++j;
      }
      long e = 0;
      for (; j < literal.size() && literal[j] >= '0' && literal[j] <= '9';
           ++j) {
        if (e < 1000) e = e * 10 + (literal[j] - '0');
      }
      exponent = sign * e;
      i = j - 1;
      continue;
    }
    if (c == 'f' || c == 'F') {
      single_precision = true;
      continue;
    }
    if (c == 'l' || c == 'L') continue;  // long double suffix
    return false;  // not a plain decimal literal — stay silent
  }
  if (!seen_dot && !seen_exp) return false;  // integer literal
  while (mantissa.size() > 1 && mantissa.front() == '0') {
    mantissa.erase(mantissa.begin());
  }
  if (mantissa.size() > 19) return true;  // beyond uint64: never exact
  std::uint64_t m = 0;
  for (const char c : mantissa) {
    m = m * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (m == 0) return false;  // zero is exact however it is spelled
  const std::uint64_t mantissa_limit =
      single_precision ? (1ull << 24) : (1ull << 53);
  long e = exponent - frac_digits;  // value = m * 10^e
  if (e >= 0) {
    // value = odd(m) * 5^e * 2^k: exact iff the odd part stays below the
    // mantissa limit. It only grows, so bail as soon as it crosses.
    std::uint64_t odd = m;
    while (odd % 2 == 0) odd /= 2;
    for (long k = 0; k < e; ++k) {
      if (odd >= mantissa_limit || odd > UINT64_MAX / 5) return true;
      odd *= 5;
    }
    return odd >= mantissa_limit;
  }
  long frac = -e;  // value = m / (2^frac * 5^frac)
  while (frac > 0 && m % 5 == 0) {
    m /= 5;
    --frac;
  }
  if (frac > 0) return true;  // residual factor of 5 in the denominator
  while (m % 2 == 0) m /= 2;
  return m >= mantissa_limit;
}

std::vector<Finding> check_source(const std::string& path,
                                  std::string_view content) {
  FileContext f;
  f.path = normalize(path);
  f.segs = segments(f.path);
  std::vector<Finding> findings;
  f.findings = &findings;
  for (Token& t : lex(content)) {
    if (t.kind == TokenKind::kComment) {
      f.comments.push_back(std::move(t));
    } else if (t.kind != TokenKind::kDirective) {
      if (t.kind == TokenKind::kIdentifier && t.text == "Mutex") {
        f.mentions_project_mutex = true;
      }
      f.code.push_back(std::move(t));
    }
  }
  rule_sc901(f);
  rule_sc902(f);
  rule_sc903(f);
  rule_sc904(f);
  rule_sc905(f);
  rule_sc906(f);
  rule_sc907(f);
  rule_sc908(f);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::string list_codes_text() {
  std::ostringstream os;
  for (const std::string& code : registered_codes()) {
    os << code << "  " << code_title(code) << "\n";
  }
  return os.str();
}

}  // namespace streamcalc::srclint
