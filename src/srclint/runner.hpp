// The srclint driver logic: argument parsing, tree walking, baseline
// application, and human/JSON reporting. tools/srclint.cpp is a thin main
// over run_srclint_cli so the exit-code tests can exercise the whole
// contract in-process (the same pattern as cli::run_lint).
//
// Exit codes follow the project convention:
//   0  no findings (after baseline suppression),
//   1  unreadable input path or unreadable/malformed baseline,
//   2  findings,
//   3  usage error.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace streamcalc::srclint {

struct RunOptions {
  /// Files or directories; directories are walked recursively for
  /// .cpp/.hpp sources (hidden directories skipped), in sorted order.
  std::vector<std::string> paths;
  /// Baseline file. Empty means "use ./srclint.baseline when present".
  std::string baseline_path;
  /// Layer declaration file for SC913. Empty means "use ./srclint.layers
  /// when present"; without a layers file SC913 is skipped.
  std::string layers_path;
  /// Graph emission mode: "" (normal scan), "lock-order", or "layers".
  /// Graph mode prints the requested graph instead of findings and exits
  /// 0/1 (the baseline does not apply to graphs).
  std::string graph;
  bool dot = false;  // emit Graphviz DOT instead of text (graph mode only)
  bool json = false;
  bool list_codes = false;
  bool help = false;
};

struct ParseResult {
  RunOptions options;
  std::string error;
  bool ok() const { return error.empty(); }
};

/// Parses srclint arguments (argv[0] excluded).
ParseResult parse_srclint_args(const std::vector<std::string>& args);

std::string help_text(const std::string& argv0);

/// Scans, reports to `out` (findings + summary, or the JSON document), and
/// sends errors/stale-baseline notes to `err`.
int run_srclint(const RunOptions& options, std::ostream& out,
                std::ostream& err);

/// parse + help/list-codes dispatch + run; usage errors print to `err`
/// and return 3.
int run_srclint_cli(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err);

}  // namespace streamcalc::srclint
