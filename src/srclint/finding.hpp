// srclint findings and the SC-code registry (DESIGN.md §13).
//
// A Finding is one violation of a project-wide source invariant: a stable
// code (SC9xx), the file and 1-based line it anchors to, a human message,
// and an optional fix-it hint. Codes are stable identifiers exactly like
// nclint's NCxxx block: never reuse or renumber one — retire it and
// allocate the next free number. The golden registry test pins the table.
//
// Unlike nclint (whose findings grade into info/warning/error against a
// model), every srclint finding is a hard violation of a convention the
// repository has committed to: there is no severity lattice, and one
// finding fails the gate. Deliberate exceptions are carried by the
// checked-in baseline file (see baseline.hpp), which ships empty.
#pragma once

#include <string>
#include <vector>

namespace streamcalc::srclint {

struct Finding {
  std::string code;     // stable "SC9xx" registry identifier
  std::string path;     // file as given on the command line
  int line = 0;         // 1-based
  std::string message;
  std::string hint;     // optional mechanical suggestion
};

/// Short registry title for a code ("raw standard mutex", ...), or nullptr
/// for an unknown code.
const char* code_title(const std::string& code);

/// Every registered code, in registry order (the selftest iterates this to
/// prove each code has a planted fixture that srclint detects).
std::vector<std::string> registered_codes();

/// Compiler-style rendering: `path:line: warning [SC901] message` plus an
/// indented hint line when present.
std::string render(const Finding& f);

/// `"code path:line"`, the key format used by the baseline file.
std::string baseline_key(const Finding& f);

}  // namespace streamcalc::srclint
