// Cross-file analyses over the structural IR (DESIGN.md §14): the global
// lock-acquisition-order graph (SC910), blocking-while-locked (SC911),
// pool re-entrancy (SC912), and the declared layer DAG (SC913), plus the
// text/DOT emitters behind `srclint --graph`.
//
// Scope. SC910/SC911/SC912 analyze files under src/ and tools/ — tests
// deliberately hold locks and park threads to exercise contention, and
// flagging the test harness would teach people to ignore the gate. SC913
// analyzes src/ only: the layer DAG is a property of the library, and
// tools/tests/bench sit above every layer by construction.
//
// Lock identity. Locks are named by their *declaration site* (class +
// member, lockdep-style), resolved from each `MutexLock(expr)` by the
// trailing identifier of the expression: prefer a declaration in the
// using function's own class, then one in the same file, then a
// project-wide unique name. An ambiguous name deliberately resolves to a
// file-local node instead of guessing — a false merge could fabricate a
// cycle, and SC910's contract is the opposite (over-approximate edges,
// never invented cycles).
#pragma once

#include <string>
#include <vector>

#include "srclint/finding.hpp"
#include "srclint/layers.hpp"
#include "srclint/structure.hpp"

namespace streamcalc::srclint {

/// The cross-file IR: one FileModel per input, in input order.
struct ProjectModel {
  std::vector<FileModel> files;
};

ProjectModel build_project_model(const std::vector<SourceFile>& files);

/// `src/<dir>/...` (anywhere in the path) -> `<dir>`; "" for files not
/// under a src/ subdirectory — the umbrella header and out-of-scope paths.
std::string layer_dir_of(const std::string& path);

/// One lock-order edge: `to` is acquired while `from` is held, at
/// `path:line` (`via` names the call chain for interprocedural edges).
struct LockEdge {
  std::string from;
  std::string to;
  std::string from_label;
  std::string to_label;
  std::string path;
  int line = 0;
  std::string via;
};

struct LockCycle {
  std::vector<LockEdge> chain;  // closed: chain.back().to == chain.front().from
};

/// A lock class: canonical declaration-site id plus a short display label
/// (`Owner::member` for members, `file::name` otherwise).
struct LockNode {
  std::string id;
  std::string label;
};

struct LockGraph {
  std::vector<LockNode> nodes;    // sorted by id
  std::vector<LockEdge> edges;    // deduped by (from, to), sorted
  std::vector<LockCycle> cycles;  // one representative cycle per SCC
};

/// Builds the global lock-order graph: direct nested acquisitions plus
/// interprocedural edges through name-resolved function summaries
/// (fixpoint over the call graph).
LockGraph build_lock_graph(const ProjectModel& project);

/// Runs SC910–SC913. `layers` may be null (SC913 is skipped: the layer
/// rule only exists relative to a declaration).
std::vector<Finding> check_project(const ProjectModel& project,
                                   const Layers* layers);

/// `--graph lock-order` emitters.
std::string lock_order_report(const ProjectModel& project, bool dot);

/// `--graph layers` emitters (declared strata + observed include edges).
std::string layers_report(const ProjectModel& project, const Layers& layers,
                          bool dot);

}  // namespace streamcalc::srclint
