#include "srclint/structure.hpp"

#include <algorithm>

#include "srclint/scan.hpp"

namespace streamcalc::srclint {

namespace {

bool is_keyword(std::string_view s) {
  static constexpr std::string_view kKeywords[] = {
      "if",        "while",      "for",          "switch",
      "return",    "sizeof",     "catch",        "throw",
      "new",       "delete",     "alignof",      "alignas",
      "decltype",  "noexcept",   "typeid",       "static_assert",
      "static_cast",             "dynamic_cast", "const_cast",
      "reinterpret_cast",        "requires",     "co_await",
      "co_yield",  "co_return",  "operator",     "defined",
  };
  return std::find(std::begin(kKeywords), std::end(kKeywords), s) !=
         std::end(kKeywords);
}

/// All-caps-with-underscores: an annotation/assertion macro such as
/// SC_REQUIRES or EXPECT_EQ. Used to keep trailing attribute macros from
/// stealing an armed function-definition candidate.
bool macro_like(std::string_view s) {
  bool has_alpha = false;
  for (const char c : s) {
    if (c >= 'a' && c <= 'z') return false;
    if (c >= 'A' && c <= 'Z') has_alpha = true;
  }
  return has_alpha;
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Parses `#include "target"` out of a directive token's text.
bool parse_quoted_include(std::string_view directive, std::string* target) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < directive.size() &&
           (directive[i] == ' ' || directive[i] == '\t')) {
      ++i;
    }
  };
  if (i < directive.size() && directive[i] == '#') ++i;
  skip_ws();
  if (directive.substr(i, 7) != "include") return false;
  i += 7;
  skip_ws();
  if (i >= directive.size() || directive[i] != '"') return false;
  const std::size_t close = directive.find('"', i + 1);
  if (close == std::string_view::npos) return false;
  *target = std::string(directive.substr(i + 1, close - i - 1));
  return true;
}

struct Walker {
  explicit Walker(const std::string& path) { model.path = path; }

  FileModel model;
  std::vector<Token> code;  // comments and directives stripped

  struct Scope {
    enum class Kind { kBlock, kClass, kFunction, kLambda };
    Kind kind = Kind::kBlock;
    std::string class_name;      // kClass only
    bool pool_task = false;      // kLambda in submit/parallel_for args
    std::size_t lock_floor = 0;  // kLambda: locks below are suspended
    int fn_index = -1;           // kFunction only
  };
  std::vector<Scope> scopes;

  struct LiveLock {
    std::string expr;
    std::size_t depth = 0;  // scopes.size() at acquisition
  };
  std::vector<LiveLock> locks;

  struct ParenFrame {
    bool pool_args = false;  // argument list of submit(...)/parallel_for(...)
  };
  std::vector<ParenFrame> parens;

  // A `class`/`struct` head seen; the next top-level `{` opens its body.
  bool pending_class = false;
  bool pending_class_base = false;  // past the `:` base clause
  std::string pending_class_name;

  // A `name(...)` signature seen at declaration scope; `{` opens the
  // body, `;` makes it a plain declaration.
  bool pending_fn = false;
  std::string pending_fn_name;
  std::string pending_fn_qual;
  int pending_fn_line = 0;

  // A lambda introducer seen; the `{` at this paren depth opens its body.
  bool pending_lambda = false;
  bool pending_lambda_pool = false;
  std::size_t pending_lambda_depth = 0;

  int current_fn() const {
    for (std::size_t i = scopes.size(); i > 0; --i) {
      const Scope& s = scopes[i - 1];
      if (s.kind == Scope::Kind::kFunction) return s.fn_index;
      if (s.kind == Scope::Kind::kLambda) {
        // Lambdas belong to their enclosing function; keep looking.
        continue;
      }
    }
    return -1;
  }

  bool in_function() const {
    for (const Scope& s : scopes) {
      if (s.kind == Scope::Kind::kFunction) return true;
    }
    return false;
  }

  std::string innermost_class() const {
    for (std::size_t i = scopes.size(); i > 0; --i) {
      if (scopes[i - 1].kind == Scope::Kind::kClass) {
        return scopes[i - 1].class_name;
      }
    }
    return {};
  }

  bool in_pool_task() const {
    for (const Scope& s : scopes) {
      if (s.kind == Scope::Kind::kLambda && s.pool_task) return true;
    }
    return false;
  }

  /// Locks visible at the current point: everything acquired since the
  /// innermost lambda barrier (a lambda body does not hold its creator's
  /// scoped locks).
  std::vector<std::string> held_locks() const {
    std::size_t floor = 0;
    for (std::size_t i = scopes.size(); i > 0; --i) {
      if (scopes[i - 1].kind == Scope::Kind::kLambda) {
        floor = scopes[i - 1].lock_floor;
        break;
      }
    }
    std::vector<std::string> held;
    for (std::size_t i = floor; i < locks.size(); ++i) {
      held.push_back(locks[i].expr);
    }
    return held;
  }

  FunctionModel* fn() {
    const int idx = current_fn();
    return idx < 0 ? nullptr
                   : &model.functions[static_cast<std::size_t>(idx)];
  }
};

/// Joins the tokens of a parenthesized expression into a compact string
/// ("tenant -> mutex" becomes "tenant->mutex").
std::string join_expr(const std::vector<Token>& code, std::size_t begin,
                      std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end; ++i) out += code[i].text;
  return out;
}

/// Index of the matching `)` for the `(` at `open` (or `}` for `{`),
/// tolerating nesting of both bracket kinds. Returns code.size() when
/// unbalanced.
std::size_t matching_close(const std::vector<Token>& code, std::size_t open) {
  const bool brace = is_punct(code[open], "{");
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (is_punct(code[i], brace ? "{" : "(")) ++depth;
    if (is_punct(code[i], brace ? "}" : ")")) {
      if (--depth == 0) return i;
    }
  }
  return code.size();
}

}  // namespace

FileModel build_file_model(const std::string& path,
                           std::string_view content) {
  Walker w(path);
  for (Token& t : lex(content)) {
    if (t.kind == TokenKind::kComment) continue;
    if (t.kind == TokenKind::kDirective) {
      std::string target;
      if (parse_quoted_include(t.text, &target)) {
        w.model.includes.push_back(IncludeRef{std::move(target), t.line});
      }
      continue;
    }
    w.code.push_back(std::move(t));
  }
  const std::vector<Token>& code = w.code;

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];

    // --- brace scopes ------------------------------------------------------
    if (is_punct(t, "{")) {
      Walker::Scope scope;
      if (w.pending_lambda && w.parens.size() == w.pending_lambda_depth) {
        scope.kind = Walker::Scope::Kind::kLambda;
        scope.pool_task = w.pending_lambda_pool;
        scope.lock_floor = w.locks.size();
        w.pending_lambda = false;
      } else if (w.pending_class && w.parens.empty()) {
        scope.kind = Walker::Scope::Kind::kClass;
        scope.class_name = w.pending_class_name;
        w.pending_class = false;
      } else if (w.pending_fn && w.parens.empty()) {
        scope.kind = Walker::Scope::Kind::kFunction;
        FunctionModel fm;
        fm.owner = !w.pending_fn_qual.empty() ? w.pending_fn_qual
                                              : w.innermost_class();
        fm.name = w.pending_fn_name;
        fm.line = w.pending_fn_line;
        scope.fn_index = static_cast<int>(w.model.functions.size());
        w.model.functions.push_back(std::move(fm));
      }
      // Whatever this brace opened, stale candidates must not leak into
      // the next one (a member brace-init would otherwise become a
      // phantom function body).
      w.pending_fn = false;
      w.pending_class = false;
      w.scopes.push_back(std::move(scope));
      continue;
    }
    if (is_punct(t, "}")) {
      if (!w.scopes.empty()) w.scopes.pop_back();
      while (!w.locks.empty() && w.locks.back().depth > w.scopes.size()) {
        w.locks.pop_back();
      }
      continue;
    }
    if (is_punct(t, "(")) {
      bool pool = false;
      if (i > 0 && code[i - 1].kind == TokenKind::kIdentifier &&
          (code[i - 1].text == "submit" ||
           code[i - 1].text == "parallel_for")) {
        pool = true;
      }
      w.parens.push_back(Walker::ParenFrame{pool});
      continue;
    }
    if (is_punct(t, ")")) {
      if (!w.parens.empty()) w.parens.pop_back();
      continue;
    }
    if (is_punct(t, ";") && w.parens.empty()) {
      w.pending_fn = false;
      w.pending_class = false;
      w.pending_lambda = false;
      continue;
    }

    // --- class heads -------------------------------------------------------
    if ((is_ident(t, "class") || is_ident(t, "struct")) && w.parens.empty() &&
        !(i > 0 && is_ident(code[i - 1], "enum"))) {
      w.pending_class = true;
      w.pending_class_base = false;
      w.pending_class_name.clear();
      continue;
    }
    if (w.pending_class) {
      if (is_punct(t, ":") && w.parens.empty()) {
        w.pending_class_base = true;
      } else if (t.kind == TokenKind::kIdentifier && !w.pending_class_base &&
                 w.parens.empty() && t.text != "final" &&
                 t.text != "alignas") {
        w.pending_class_name = t.text;
      }
      // Falls through: the head tokens get no other interpretation.
    }

    // --- lambda introducers ------------------------------------------------
    if (is_punct(t, "[") && w.in_function()) {
      const bool subscript =
          i > 0 && ((code[i - 1].kind == TokenKind::kIdentifier &&
                     !is_keyword(code[i - 1].text)) ||
                    is_punct(code[i - 1], "]") || is_punct(code[i - 1], ")"));
      if (!subscript) {
        // Find the matching `]` and require a lambda-ish continuation.
        int depth = 0;
        std::size_t j = i;
        for (; j < code.size(); ++j) {
          if (is_punct(code[j], "[")) ++depth;
          if (is_punct(code[j], "]") && --depth == 0) break;
        }
        if (j + 1 < code.size() &&
            (is_punct(code[j + 1], "(") || is_punct(code[j + 1], "{") ||
             is_ident(code[j + 1], "mutable") ||
             is_ident(code[j + 1], "noexcept") ||
             is_punct(code[j + 1], "->"))) {
          w.pending_lambda = true;
          w.pending_lambda_depth = w.parens.size();
          bool pool = w.in_pool_task();
          for (const Walker::ParenFrame& frame : w.parens) {
            if (frame.pool_args) pool = true;
          }
          w.pending_lambda_pool = pool;
        }
      }
      continue;
    }

    if (t.kind != TokenKind::kIdentifier) continue;

    // --- util::Mutex declarations -----------------------------------------
    if (t.text == "Mutex" && i + 2 < code.size() &&
        code[i + 1].kind == TokenKind::kIdentifier &&
        is_punct(code[i + 2], ";")) {
      MutexDecl decl;
      decl.owner = w.innermost_class();
      if (decl.owner.empty()) {
        const FunctionModel* f = w.fn();
        if (f != nullptr) decl.owner = f->name;
      }
      decl.name = code[i + 1].text;
      decl.line = code[i + 1].line;
      w.model.mutexes.push_back(std::move(decl));
      continue;
    }

    // --- SC_GUARDED_BY slots ----------------------------------------------
    if ((t.text == "SC_GUARDED_BY" || t.text == "SC_PT_GUARDED_BY") &&
        i + 1 < code.size() && is_punct(code[i + 1], "(") && i > 0 &&
        code[i - 1].kind == TokenKind::kIdentifier) {
      const std::size_t close = matching_close(code, i + 1);
      GuardedMember g;
      g.owner = w.innermost_class();
      g.member = code[i - 1].text;
      g.mutex_expr = join_expr(code, i + 2, close);
      g.line = t.line;
      w.model.guarded.push_back(std::move(g));
      // Skip the argument so its tokens are not re-interpreted.
      i = close;
      continue;
    }

    // --- MutexLock acquisitions -------------------------------------------
    if (t.text == "MutexLock" && i + 2 < code.size() &&
        code[i + 1].kind == TokenKind::kIdentifier &&
        (is_punct(code[i + 2], "(") || is_punct(code[i + 2], "{"))) {
      const std::size_t close = matching_close(code, i + 2);
      const std::string expr = join_expr(code, i + 3, close);
      FunctionModel* f = w.fn();
      if (f != nullptr && !expr.empty()) {
        const int line = code[i + 1].line;
        for (const std::string& outer : w.held_locks()) {
          f->nested.push_back(NestedAcquire{outer, expr, line});
        }
        f->acquires.push_back(LockAcquire{expr, line});
        w.locks.push_back(Walker::LiveLock{expr, w.scopes.size()});
      }
      i = close;
      continue;
    }

    // --- calls and function-definition candidates --------------------------
    if (i + 1 < code.size() && is_punct(code[i + 1], "(") &&
        !is_keyword(t.text)) {
      const bool member =
          i > 0 && (is_punct(code[i - 1], ".") || is_punct(code[i - 1], "->"));
      std::string qual;
      bool global_colon = false;
      if (i > 0 && is_punct(code[i - 1], "::")) {
        if (i > 1 && code[i - 2].kind == TokenKind::kIdentifier) {
          qual = code[i - 2].text;
        } else {
          global_colon = true;
        }
      } else if (member && i > 1 &&
                 code[i - 2].kind == TokenKind::kIdentifier) {
        qual = code[i - 2].text;
      }
      if (w.in_function()) {
        CallSite call;
        call.name = t.text;
        call.qual = qual;
        call.member = member;
        call.global_colon = global_colon;
        call.line = t.line;
        call.held = w.held_locks();
        call.in_pool_task = w.in_pool_task();
        FunctionModel* f = w.fn();
        if (f != nullptr) f->calls.push_back(std::move(call));
      } else if (!member && w.parens.empty()) {
        // Possible function definition: arm (or keep) the candidate — but
        // only at zero paren depth, or `std::function<void()>` inside a
        // parameter list would overwrite the real name with `void`. A
        // trailing annotation macro (SC_REQUIRES, ...) must not steal an
        // armed candidate's name either.
        if (!w.pending_fn || !macro_like(t.text)) {
          w.pending_fn = true;
          std::string name = t.text;
          std::string fq = qual;
          if (i > 0 && is_punct(code[i - 1], "~")) {
            name = "~" + name;
            if (i > 2 && is_punct(code[i - 2], "::") &&
                code[i - 3].kind == TokenKind::kIdentifier) {
              fq = code[i - 3].text;
            }
          }
          w.pending_fn_name = name;
          w.pending_fn_qual = fq;
          w.pending_fn_line = t.line;
        }
      }
      continue;
    }
  }
  return w.model;
}

}  // namespace streamcalc::srclint
