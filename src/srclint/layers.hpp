// The declared layer DAG for SC913 (DESIGN.md §14).
//
// `srclint.layers` declares the architecture's strata as `<` chains over
// the directories of src/:
//
//     # lower layers first; `/` groups directories of the same stratum
//     util / srclint < obs < minplus / maxplus
//     minplus < netcalc
//
// Semantics: `a < b` means a is strictly below b, so files under src/b/
// may include from src/a/ but never the reverse. Names joined by `/` are
// the same stratum (they may include each other freely). `<` constraints
// are transitive, and a name may appear on several lines — the relation
// is the union of every chain. A cycle in the declared constraints (or a
// name placed both in a group and above/below itself) is a parse error:
// a cyclic "DAG" would make every include legal.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace streamcalc::srclint {

struct Layers {
  /// Every declared layer name, in first-appearance order.
  std::vector<std::string> names;
  /// name -> representative stratum index (names in one `/` group share
  /// a stratum).
  std::map<std::string, std::size_t> stratum_of;
  /// below[a][b] (stratum indices): a is strictly below b (transitive).
  std::vector<std::vector<bool>> below;
  /// Directly declared stratum constraints (lower, upper), for export.
  std::vector<std::pair<std::size_t, std::size_t>> edges;

  bool declared(std::string_view name) const {
    return stratum_of.count(std::string(name)) != 0;
  }

  /// True when `lower` may be included from `upper`: same stratum, or
  /// strictly below it.
  bool allows_include(std::string_view upper, std::string_view lower) const;
};

/// Parses layers text. Structural problems (bad tokens, a cycle in the
/// declaration itself) are appended to `errors`; the returned relation
/// reflects only the parseable part.
Layers parse_layers(std::string_view text, std::vector<std::string>* errors);

/// Cross-checks the declared names against the directories that actually
/// exist under src/ — a typoed layer name would otherwise silently
/// constrain nothing. Returns one message per unknown name.
std::vector<std::string> validate_layer_names(
    const Layers& layers, const std::set<std::string>& known_dirs);

}  // namespace streamcalc::srclint
