// The srclint baseline: a checked-in list of findings the project has
// explicitly decided to tolerate, one `SCxxx path:line` key per line
// (# comments and blank lines ignored).
//
// Policy (DESIGN.md §13): the shipped baseline is EMPTY. The file exists
// so that a future, justified exception has a reviewed, diffable home —
// adding a line is a code-review event, exactly like adding an inline
// suppression with a reason. A baseline entry that no longer matches any
// finding is reported as stale so the file can only shrink back toward
// empty, never silently rot.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "srclint/finding.hpp"

namespace streamcalc::srclint {

struct Baseline {
  std::vector<std::string> keys;  // "SCxxx path:line", file order
};

/// Parses baseline text. Unparseable lines (not `SCxxx path:line`) are
/// reported in `errors` so a typo cannot silently suppress nothing.
Baseline parse_baseline(std::string_view text, std::vector<std::string>* errors);

/// Splits `findings` into kept (returned) and suppressed (appended to
/// `suppressed`); baseline keys that matched nothing are appended to
/// `stale`.
std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const Baseline& baseline,
                                    std::vector<Finding>* suppressed,
                                    std::vector<std::string>* stale);

}  // namespace streamcalc::srclint
