// The srclint baseline: a checked-in list of findings the project has
// explicitly decided to tolerate, one `SCxxx path:line  # reason` per
// line (blank lines and whole-line # comments ignored).
//
// Policy (DESIGN.md §13-§14): every shipped entry carries a same-line
// `# reason` saying why the exception is sound — adding a line is a
// code-review event, exactly like adding an inline suppression with a
// reason, and the clean-tree test rejects reasonless entries. A baseline
// entry that no longer matches any finding is reported as stale so the
// file can only shrink back toward empty, never silently rot.
//
// Path matching is suffix-tolerant: an entry's `src/util/foo.cpp` matches
// a finding at `/abs/checkout/src/util/foo.cpp` (and vice versa), so one
// checked-in baseline serves both CI's relative scan roots and the test
// suite's absolute ones.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "srclint/finding.hpp"

namespace streamcalc::srclint {

struct Baseline {
  std::vector<std::string> keys;  // "SCxxx path:line", file order
  /// key -> the same-line `# reason` text ("" when the entry has none).
  std::map<std::string, std::string> reasons;
};

/// Parses baseline text. Unparseable lines (not `SCxxx path:line`) are
/// reported in `errors` so a typo cannot silently suppress nothing.
Baseline parse_baseline(std::string_view text, std::vector<std::string>* errors);

/// Splits `findings` into kept (returned) and suppressed (appended to
/// `suppressed`); baseline keys that matched nothing are appended to
/// `stale`.
std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const Baseline& baseline,
                                    std::vector<Finding>* suppressed,
                                    std::vector<std::string>* stale);

}  // namespace streamcalc::srclint
