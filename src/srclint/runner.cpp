#include "srclint/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "srclint/baseline.hpp"
#include "srclint/layers.hpp"
#include "srclint/project.hpp"
#include "srclint/rules.hpp"

namespace streamcalc::srclint {

namespace fs = std::filesystem;

namespace {

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool hidden(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.size() > 1 && name[0] == '.';
}

/// Expands `paths` (files or directories) to a sorted list of source
/// files. Returns false — after reporting to `err` — when a path does not
/// exist.
bool collect_files(const std::vector<std::string>& paths,
                   std::vector<std::string>* files, std::ostream& err) {
  bool ok = true;
  for (const std::string& path : paths) {
    std::error_code ec;
    const fs::file_status status = fs::status(path, ec);
    if (ec || status.type() == fs::file_type::not_found) {
      err << "error: cannot open '" << path << "'\n";
      ok = false;
      continue;
    }
    if (fs::is_directory(status)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_directory() && hidden(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && is_source_file(it->path()) &&
            !hidden(it->path())) {
          files->push_back(it->path().generic_string());
        }
      }
    } else {
      files->push_back(fs::path(path).generic_string());
    }
  }
  std::sort(files->begin(), files->end());
  files->erase(std::unique(files->begin(), files->end()), files->end());
  return ok;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

std::string finding_json(const Finding& f) {
  std::ostringstream os;
  const char* title = code_title(f.code);
  os << "{\"code\": " << json_quote(f.code)
     << ", \"title\": " << json_quote(title != nullptr ? title : "")
     << ", \"path\": " << json_quote(f.path) << ", \"line\": " << f.line
     << ", \"message\": " << json_quote(f.message)
     << ", \"hint\": " << json_quote(f.hint) << "}";
  return os.str();
}

}  // namespace

ParseResult parse_srclint_args(const std::vector<std::string>& args) {
  ParseResult result;
  RunOptions& opts = result.options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--list-codes") {
      opts.list_codes = true;
    } else if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--baseline") {
      if (i + 1 >= args.size()) {
        result.error = "--baseline requires a file argument";
        return result;
      }
      opts.baseline_path = args[++i];
    } else if (arg == "--layers") {
      if (i + 1 >= args.size()) {
        result.error = "--layers requires a file argument";
        return result;
      }
      opts.layers_path = args[++i];
    } else if (arg == "--graph") {
      if (i + 1 >= args.size()) {
        result.error = "--graph requires 'lock-order' or 'layers'";
        return result;
      }
      opts.graph = args[++i];
      if (opts.graph != "lock-order" && opts.graph != "layers") {
        result.error = "unknown graph '" + opts.graph +
                       "' (expected 'lock-order' or 'layers')";
        return result;
      }
    } else if (arg == "--dot") {
      opts.dot = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      result.error = "unknown option '" + arg + "'";
      return result;
    } else {
      opts.paths.push_back(arg);
    }
  }
  if (opts.dot && opts.graph.empty()) {
    result.error = "--dot requires --graph";
    return result;
  }
  if (!opts.help && !opts.list_codes && opts.paths.empty()) {
    result.error = "no input paths (expected files or directories to scan)";
  }
  return result;
}

std::string help_text(const std::string& argv0) {
  std::ostringstream os;
  os << "usage: " << argv0 << " [options] <path>...\n"
     << "\n"
     << "Static analysis of the streamcalc sources themselves: the per-file\n"
     << "rules SC901-SC908 (DESIGN.md section 13) plus the whole-project\n"
     << "concurrency and layering analyses SC910-SC913 (section 14) over\n"
     << "the given files or directories (recursively, .cpp/.hpp).\n"
     << "\n"
     << "options:\n"
     << "  --json             machine-readable report on stdout\n"
     << "  --baseline <file>  suppression file (default: ./srclint.baseline\n"
     << "                     when present; entries carry '# reason' text)\n"
     << "  --layers <file>    layer DAG declaration for SC913 (default:\n"
     << "                     ./srclint.layers when present; without one\n"
     << "                     SC913 is skipped)\n"
     << "  --graph <which>    print a graph instead of findings and exit\n"
     << "                     0/1: 'lock-order' (the global mutex\n"
     << "                     acquisition-order graph, cycles marked) or\n"
     << "                     'layers' (declared strata plus observed\n"
     << "                     include edges); the baseline does not apply\n"
     << "  --dot              emit Graphviz DOT from --graph\n"
     << "  --list-codes       print the rule registry and exit\n"
     << "  --help             this table\n"
     << "\n"
     << "exit codes: 0 clean, 1 unreadable input, baseline, or layers file,\n"
     << "2 findings, 3 usage error\n";
  return os.str();
}

int run_srclint(const RunOptions& options, std::ostream& out,
                std::ostream& err) {
  bool read_failure = false;
  const bool graph_mode = !options.graph.empty();

  Baseline baseline;
  if (!graph_mode) {
    std::string baseline_path = options.baseline_path;
    if (baseline_path.empty() && fs::exists("srclint.baseline")) {
      baseline_path = "srclint.baseline";
    }
    if (!baseline_path.empty()) {
      std::ifstream in(baseline_path);
      if (!in) {
        err << "error: cannot open baseline '" << baseline_path << "'\n";
        read_failure = true;
      } else {
        std::ostringstream text;
        text << in.rdbuf();
        std::vector<std::string> errors;
        baseline = parse_baseline(text.str(), &errors);
        for (const std::string& e : errors) {
          err << "error: " << baseline_path << ": " << e << "\n";
          read_failure = true;
        }
      }
    }
  }

  // The layer declaration: explicit flag, else the checked-in default.
  // SC913 (and --graph layers) only exist relative to a declaration.
  Layers layers;
  bool have_layers = false;
  std::string layers_path = options.layers_path;
  if (layers_path.empty() && fs::exists("srclint.layers")) {
    layers_path = "srclint.layers";
  }
  if (layers_path.empty() && options.graph == "layers") {
    err << "error: --graph layers needs a layers file (--layers <file> or "
           "./srclint.layers)\n";
    read_failure = true;
  }
  if (!layers_path.empty()) {
    std::ifstream in(layers_path);
    if (!in) {
      err << "error: cannot open layers '" << layers_path << "'\n";
      read_failure = true;
    } else {
      std::ostringstream text;
      text << in.rdbuf();
      std::vector<std::string> errors;
      layers = parse_layers(text.str(), &errors);
      for (const std::string& e : errors) {
        err << "error: " << layers_path << ": " << e << "\n";
        read_failure = true;
      }
      have_layers = errors.empty();
    }
  }

  std::vector<std::string> files;
  if (!collect_files(options.paths, &files, err)) read_failure = true;

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      err << "error: cannot open '" << file << "'\n";
      read_failure = true;
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    sources.push_back(SourceFile{file, text.str()});
  }

  if (graph_mode) {
    if (read_failure) return 1;
    const ProjectModel project = build_project_model(sources);
    if (options.graph == "lock-order") {
      out << lock_order_report(project, options.dot);
    } else {
      out << layers_report(project, layers, options.dot);
    }
    return 0;
  }

  std::vector<Finding> findings;
  for (const SourceFile& source : sources) {
    std::vector<Finding> file_findings =
        check_source(source.path, source.content);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }

  const ProjectModel project = build_project_model(sources);
  if (have_layers) {
    // A typoed layer name would silently constrain nothing; warn (the scan
    // may deliberately cover a subset of src/, so this cannot be fatal).
    std::set<std::string> known_dirs;
    for (const FileModel& f : project.files) {
      const std::string dir = layer_dir_of(f.path);
      if (!dir.empty()) known_dirs.insert(dir);
    }
    if (!known_dirs.empty()) {
      for (const std::string& problem :
           validate_layer_names(layers, known_dirs)) {
        err << "warning: " << layers_path << ": " << problem << "\n";
      }
    }
  }
  std::vector<Finding> project_findings =
      check_project(project, have_layers ? &layers : nullptr);
  findings.insert(findings.end(),
                  std::make_move_iterator(project_findings.begin()),
                  std::make_move_iterator(project_findings.end()));
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.path != b.path) return a.path < b.path;
                     return a.line < b.line;
                   });

  std::vector<Finding> suppressed;
  std::vector<std::string> stale;
  findings = apply_baseline(std::move(findings), baseline, &suppressed,
                            &stale);
  for (const std::string& key : stale) {
    err << "warning: stale baseline entry '" << key
        << "' matches no finding — remove it\n";
  }

  const int code = read_failure ? 1 : (findings.empty() ? 0 : 2);
  if (options.json) {
    out << "{\"command\": \"srclint\",\n \"files_scanned\": " << files.size()
        << ",\n \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      out << (i == 0 ? "" : ",") << "\n   " << finding_json(findings[i]);
    }
    out << "],\n \"suppressed\": [";
    for (std::size_t i = 0; i < suppressed.size(); ++i) {
      out << (i == 0 ? "" : ",") << "\n   " << finding_json(suppressed[i]);
    }
    out << "],\n \"stale_baseline\": [";
    for (std::size_t i = 0; i < stale.size(); ++i) {
      out << (i == 0 ? "" : ",") << "\n   " << json_quote(stale[i]);
    }
    out << "],\n \"exit_code\": " << code << "}\n";
  } else {
    for (const Finding& f : findings) out << render(f);
    out << "srclint: " << files.size() << " file(s) scanned, "
        << findings.size() << " finding(s)";
    if (!suppressed.empty()) {
      out << " (" << suppressed.size() << " suppressed by baseline)";
    }
    out << "\n";
  }
  return code;
}

int run_srclint_cli(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  const ParseResult parsed = parse_srclint_args(args);
  if (!parsed.ok()) {
    err << "error: " << parsed.error << "\n" << help_text("srclint");
    return 3;
  }
  if (parsed.options.help) {
    out << help_text("srclint");
    return 0;
  }
  if (parsed.options.list_codes) {
    out << list_codes_text();
    return 0;
  }
  return run_srclint(parsed.options, out, err);
}

}  // namespace streamcalc::srclint
