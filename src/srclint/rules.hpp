// The srclint rule set: lexical checks of the repository's cross-cutting
// source invariants (SC901–SC907, DESIGN.md §13).
//
// Each rule is a pattern over the token stream plus a *scope* (which tree
// roots it applies to) and an *allowlist* (the files that implement the
// very facility the rule protects — util/sync.hpp may spell std::mutex,
// nothing else may). Scopes and allowlists are part of the rule
// definition, not configuration: a deliberate, reviewed exception belongs
// here with a rationale; an unreviewed one belongs in the baseline file
// and the tree ships with that file empty.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "srclint/finding.hpp"

namespace streamcalc::srclint {

/// Runs every rule over one file's contents. `path` should be
/// repo-relative (the CLI passes paths as given); scoping and allowlists
/// match on path segments and suffixes, so absolute paths that contain the
/// repository layout also work.
std::vector<Finding> check_source(const std::string& path,
                                  std::string_view content);

/// True when a decimal floating literal (as spelled in source, suffixes
/// included) is NOT exactly representable in its IEEE-754 type — i.e. an
/// equality comparison against it can never be meant literally. Exposed
/// for the SC904 unit tests.
bool inexact_float_literal(std::string_view literal);

/// Human-readable registry table for `--list-codes`.
std::string list_codes_text();

}  // namespace streamcalc::srclint
