#include "srclint/baseline.hpp"

#include <algorithm>
#include <set>

namespace streamcalc::srclint {

namespace {

std::string_view trim(std::string_view s) {
  const std::size_t first = s.find_first_not_of(" \t\r");
  if (first == std::string_view::npos) return {};
  const std::size_t last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

bool looks_like_key(std::string_view line) {
  // "SCnnn path:line" — a code, one space, and a path with a line number.
  if (line.size() < 8 || line.substr(0, 2) != "SC") return false;
  const std::size_t space = line.find(' ');
  if (space == std::string_view::npos) return false;
  const std::size_t colon = line.rfind(':');
  if (colon == std::string_view::npos || colon < space) return false;
  const std::string_view num = line.substr(colon + 1);
  return !num.empty() &&
         num.find_first_not_of("0123456789") == std::string_view::npos;
}

/// True when `a` and `b` name the same file relative to possibly different
/// roots: equal, or one is a `/`-aligned suffix of the other.
bool same_file(std::string_view a, std::string_view b) {
  if (a == b) return true;
  const std::string_view longer = a.size() > b.size() ? a : b;
  const std::string_view shorter = a.size() > b.size() ? b : a;
  if (longer.size() <= shorter.size()) return false;
  return longer[longer.size() - shorter.size() - 1] == '/' &&
         longer.substr(longer.size() - shorter.size()) == shorter;
}

/// Splits a baseline key into (code, path, line-text).
bool split_key(std::string_view key, std::string_view* code,
               std::string_view* path, std::string_view* line) {
  const std::size_t space = key.find(' ');
  const std::size_t colon = key.rfind(':');
  if (space == std::string_view::npos || colon == std::string_view::npos ||
      colon < space) {
    return false;
  }
  *code = key.substr(0, space);
  *path = key.substr(space + 1, colon - space - 1);
  *line = key.substr(colon + 1);
  return true;
}

}  // namespace

Baseline parse_baseline(std::string_view text,
                        std::vector<std::string>* errors) {
  Baseline baseline;
  std::size_t start = 0;
  int line_no = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
    ++line_no;
    std::string_view line = trim(text.substr(start, end - start));
    std::string reason;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      reason = std::string(trim(line.substr(hash + 1)));
      line = trim(line.substr(0, hash));
    }
    if (!line.empty()) {
      if (looks_like_key(line)) {
        baseline.keys.emplace_back(line);
        baseline.reasons[baseline.keys.back()] = reason;
      } else if (errors != nullptr) {
        errors->push_back("baseline line " + std::to_string(line_no) +
                          ": expected 'SCxxx path:line', got '" +
                          std::string(line) + "'");
      }
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return baseline;
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const Baseline& baseline,
                                    std::vector<Finding>* suppressed,
                                    std::vector<std::string>* stale) {
  std::set<std::string> keys(baseline.keys.begin(), baseline.keys.end());
  std::set<std::string> used;
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    const std::string key = baseline_key(f);
    std::string matched;
    if (keys.count(key) != 0) {
      matched = key;
    } else {
      // Suffix-tolerant fallback: the same file named relative to a
      // different root (see the header comment).
      const std::string line_text = std::to_string(f.line);
      for (const std::string& candidate : baseline.keys) {
        std::string_view code;
        std::string_view path;
        std::string_view line;
        if (!split_key(candidate, &code, &path, &line)) continue;
        if (code == f.code && line == line_text && same_file(path, f.path)) {
          matched = candidate;
          break;
        }
      }
    }
    if (!matched.empty()) {
      used.insert(matched);
      if (suppressed != nullptr) suppressed->push_back(std::move(f));
    } else {
      kept.push_back(std::move(f));
    }
  }
  if (stale != nullptr) {
    for (const std::string& key : baseline.keys) {
      if (used.count(key) == 0) stale->push_back(key);
    }
  }
  return kept;
}

}  // namespace streamcalc::srclint
