#include "srclint/baseline.hpp"

#include <algorithm>
#include <set>

namespace streamcalc::srclint {

namespace {

std::string_view trim(std::string_view s) {
  const std::size_t first = s.find_first_not_of(" \t\r");
  if (first == std::string_view::npos) return {};
  const std::size_t last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

bool looks_like_key(std::string_view line) {
  // "SCnnn path:line" — a code, one space, and a path with a line number.
  if (line.size() < 8 || line.substr(0, 2) != "SC") return false;
  const std::size_t space = line.find(' ');
  if (space == std::string_view::npos) return false;
  const std::size_t colon = line.rfind(':');
  if (colon == std::string_view::npos || colon < space) return false;
  const std::string_view num = line.substr(colon + 1);
  return !num.empty() &&
         num.find_first_not_of("0123456789") == std::string_view::npos;
}

}  // namespace

Baseline parse_baseline(std::string_view text,
                        std::vector<std::string>* errors) {
  Baseline baseline;
  std::size_t start = 0;
  int line_no = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
    ++line_no;
    std::string_view line = trim(text.substr(start, end - start));
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = trim(line.substr(0, hash));
    if (!line.empty()) {
      if (looks_like_key(line)) {
        baseline.keys.emplace_back(line);
      } else if (errors != nullptr) {
        errors->push_back("baseline line " + std::to_string(line_no) +
                          ": expected 'SCxxx path:line', got '" +
                          std::string(line) + "'");
      }
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return baseline;
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const Baseline& baseline,
                                    std::vector<Finding>* suppressed,
                                    std::vector<std::string>* stale) {
  std::set<std::string> keys(baseline.keys.begin(), baseline.keys.end());
  std::set<std::string> used;
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    const std::string key = baseline_key(f);
    if (keys.count(key) != 0) {
      used.insert(key);
      if (suppressed != nullptr) suppressed->push_back(std::move(f));
    } else {
      kept.push_back(std::move(f));
    }
  }
  if (stale != nullptr) {
    for (const std::string& key : baseline.keys) {
      if (used.count(key) == 0) stale->push_back(key);
    }
  }
  return kept;
}

}  // namespace streamcalc::srclint
