// Lexical scanner for srclint (the project-invariant analyzer, DESIGN.md
// §13). Produces a flat token stream from C++ source text with exactly the
// classification the rules need:
//
//   * comments and string/character literals are their own token kinds, so
//     a rule matching `std::mutex` never fires on a mention inside a doc
//     comment or a diagnostic message string;
//   * preprocessor directives are swallowed whole (one kDirective token per
//     logical line, backslash continuations included) — `#include <mutex>`
//     must not look like an identifier `mutex`;
//   * everything else becomes identifiers, numbers, and punctuators with
//     1-based line provenance.
//
// This is deliberately not a C++ parser. The rules it feeds are lexical
// invariants ("this token sequence may only appear in that file"), which is
// what keeps srclint dependency-free, fast over the whole tree, and immune
// to the header/flag configuration problems of AST-level tools.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace streamcalc::srclint {

enum class TokenKind {
  kIdentifier,   // identifiers and keywords, including `mutable`, `std`
  kNumber,       // integer and floating literals (suffixes attached)
  kString,       // "..." / R"tag(...)tag" — text excludes the quotes
  kChar,         // '...'
  kPunct,        // operators and punctuation, longest-match (`==`, `::`)
  kComment,      // // and /* */ bodies — text excludes the delimiters
  kDirective,    // one whole preprocessor logical line, `#` included
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  /// The token's text. For kString/kChar/kComment this is the *content*
  /// (delimiters stripped) so rules can inspect comment bodies directly.
  std::string text;
  /// 1-based line of the token's first character.
  int line = 1;
};

/// Tokenizes `source`. Never throws on malformed input: an unterminated
/// comment or literal simply extends to end of input (srclint findings must
/// degrade gracefully on code that the real compiler would reject anyway).
std::vector<Token> lex(std::string_view source);

}  // namespace streamcalc::srclint
