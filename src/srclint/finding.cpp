#include "srclint/finding.hpp"

#include <sstream>

namespace streamcalc::srclint {

namespace {

struct CodeEntry {
  const char* code;
  const char* title;
};

// The srclint code registry. Two blocks:
//   SC901-SC908  per-file lexical invariants (concurrency hygiene,
//                configuration, numerics, suppression hygiene, units)
//   SC910-SC913  whole-project graph analyses over the structural IR
//                (lock order, blocking-under-lock, pool re-entrancy,
//                layer DAG) — see DESIGN.md §14
// SC909 is unallocated (kept free between the blocks). Titles are short
// noun phrases; the long-form rationale for each rule lives in DESIGN.md
// §13-§14.
constexpr CodeEntry kRegistry[] = {
    {"SC901", "raw standard synchronization primitive"},
    {"SC902", "direct std::getenv call"},
    {"SC903", "STREAMCALC_* environment read outside the facade"},
    {"SC904", "equality comparison with an inexact floating-point literal"},
    {"SC905", "lint suppression without a named check and reason"},
    {"SC906", "mutable member near a mutex lacking SC_GUARDED_BY"},
    {"SC907", "raw thread construction outside the thread registries"},
    {"SC908", "bare double for a unit-bearing quantity in a public header"},
    {"SC910", "lock-acquisition-order cycle (potential deadlock)"},
    {"SC911", "blocking call while a MutexLock is held"},
    {"SC912", "thread-pool re-entrancy from inside a pool task"},
    {"SC913", "include edge that violates the declared layer DAG"},
};

}  // namespace

const char* code_title(const std::string& code) {
  for (const CodeEntry& e : kRegistry) {
    if (code == e.code) return e.title;
  }
  return nullptr;
}

std::vector<std::string> registered_codes() {
  std::vector<std::string> codes;
  for (const CodeEntry& e : kRegistry) codes.emplace_back(e.code);
  return codes;
}

std::string render(const Finding& f) {
  std::ostringstream os;
  os << f.path << ":" << f.line << ": warning [" << f.code << "] "
     << f.message << "\n";
  if (!f.hint.empty()) {
    os << f.path << ":" << f.line << ":   hint: " << f.hint << "\n";
  }
  return os.str();
}

std::string baseline_key(const Finding& f) {
  return f.code + " " + f.path + ":" + std::to_string(f.line);
}

}  // namespace streamcalc::srclint
