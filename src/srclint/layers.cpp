#include "srclint/layers.hpp"

#include <algorithm>

namespace streamcalc::srclint {

namespace {

std::string_view trim(std::string_view s) {
  const std::size_t first = s.find_first_not_of(" \t\r");
  if (first == std::string_view::npos) return {};
  const std::size_t last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

bool valid_name(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Splits `text` on `sep`, trimming each piece.
std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(sep, start);
    const std::size_t end = pos == std::string_view::npos ? text.size() : pos;
    out.push_back(trim(text.substr(start, end - start)));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

struct UnionFind {
  std::map<std::string, std::string> parent;

  void add(const std::string& x) {
    if (parent.count(x) == 0) parent[x] = x;
  }
  std::string find(const std::string& x) {
    std::string root = x;
    while (parent[root] != root) root = parent[root];
    return root;
  }
  void unite(const std::string& a, const std::string& b) {
    parent[find(a)] = find(b);
  }
};

}  // namespace

bool Layers::allows_include(std::string_view upper,
                            std::string_view lower) const {
  const auto u = stratum_of.find(std::string(upper));
  const auto l = stratum_of.find(std::string(lower));
  if (u == stratum_of.end() || l == stratum_of.end()) return false;
  if (u->second == l->second) return true;
  return below[l->second][u->second];
}

Layers parse_layers(std::string_view text,
                    std::vector<std::string>* errors) {
  Layers layers;
  auto fail = [&](int line_no, const std::string& what) {
    if (errors != nullptr) {
      errors->push_back("layers line " + std::to_string(line_no) + ": " +
                        what);
    }
  };

  // Pass 1: collect names, same-stratum unions, and raw chain constraints.
  UnionFind uf;
  std::vector<std::pair<std::string, std::string>> raw_edges;
  std::size_t start = 0;
  int line_no = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
    ++line_no;
    std::string_view line = trim(text.substr(start, end - start));
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = trim(line.substr(0, hash));
    if (nl == std::string_view::npos) {
      start = text.size() + 1;
    } else {
      start = nl + 1;
    }
    if (line.empty()) continue;

    std::vector<std::vector<std::string>> chain;
    bool line_ok = true;
    for (const std::string_view group_text : split(line, '<')) {
      std::vector<std::string> group;
      for (const std::string_view name : split(group_text, '/')) {
        if (!valid_name(name)) {
          fail(line_no, "expected a layer name, got '" + std::string(name) +
                            "' (names are letters, digits, '_', '-')");
          line_ok = false;
          continue;
        }
        group.emplace_back(name);
      }
      if (!group.empty()) chain.push_back(std::move(group));
    }
    if (!line_ok) continue;
    for (const auto& group : chain) {
      for (const std::string& name : group) {
        uf.add(name);
        if (std::find(layers.names.begin(), layers.names.end(), name) ==
            layers.names.end()) {
          layers.names.push_back(name);
        }
        uf.unite(name, group.front());
      }
    }
    for (std::size_t g = 0; g + 1 < chain.size(); ++g) {
      raw_edges.emplace_back(chain[g].front(), chain[g + 1].front());
    }
  }

  // Pass 2: number the strata from the final union-find roots.
  std::map<std::string, std::size_t> root_index;
  for (const std::string& name : layers.names) {
    const std::string root = uf.find(name);
    const auto it = root_index.find(root);
    std::size_t idx;
    if (it == root_index.end()) {
      idx = root_index.size();
      root_index.emplace(root, idx);
    } else {
      idx = it->second;
    }
    layers.stratum_of[name] = idx;
  }
  const std::size_t n = root_index.size();
  layers.below.assign(n, std::vector<bool>(n, false));
  for (const auto& [lower, upper] : raw_edges) {
    const std::size_t l = layers.stratum_of[lower];
    const std::size_t u = layers.stratum_of[upper];
    if (l == u) {
      fail(0, "cycle in layer declaration: '" + lower +
                  "' is both below and level with '" + upper + "'");
      continue;
    }
    layers.below[l][u] = true;
    layers.edges.emplace_back(l, u);
  }

  // Transitive closure, then a cycle check: below must be a strict order.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!layers.below[i][k]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (layers.below[k][j]) layers.below[i][j] = true;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!layers.below[i][i]) continue;
    for (const auto& [name, idx] : layers.stratum_of) {
      if (idx == i) {
        fail(0, "cycle in layer declaration involving '" + name + "'");
        break;
      }
    }
    break;  // one report is enough; the file needs fixing either way
  }
  return layers;
}

std::vector<std::string> validate_layer_names(
    const Layers& layers, const std::set<std::string>& known_dirs) {
  std::vector<std::string> problems;
  for (const std::string& name : layers.names) {
    if (known_dirs.count(name) == 0) {
      problems.push_back("layer '" + name +
                         "' does not name a directory under src/");
    }
  }
  return problems;
}

}  // namespace streamcalc::srclint
