// Structural pass for srclint's cross-file analyses (DESIGN.md §14).
//
// Consumes the lexical token stream (scan.hpp) and tracks braces, class
// scopes, function bodies, and parenthesis nesting to extract the per-TU
// facts the project-level rules need:
//
//   * `#include "..."` references (the project include graph, SC913);
//   * `util::Mutex` declarations with their owning class (the lock-class
//     table SC910 canonicalizes against) and `SC_GUARDED_BY` slots;
//   * every `util::MutexLock` acquisition, the set of locks lexically
//     live around it (nested-acquisition edges), and every call site with
//     the lock set held at the call (SC910 interprocedural edges, SC911);
//   * lambda bodies passed to `submit`/`parallel_for` argument lists —
//     pool-task regions — so SC912 can flag pool re-entrancy.
//
// Like the scanner, this is deliberately NOT a C++ parser: it is a
// single forward pass over tokens with a scope stack. The recognizers are
// heuristic (constructor initializer lists, for example, are treated as
// part of the body — harmless, since brace tracking stays balanced), and
// the analyses built on top are designed to tolerate over-approximate
// *edges* but never to invent lock merges that could fabricate a cycle.
//
// Lambda bodies suspend the enclosing lock set: a lambda generally runs
// later, on another thread, where the creator's scoped locks are not
// held. Locks acquired *inside* the lambda body are tracked normally.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace streamcalc::srclint {

/// One file handed to the project-level analyses: path as given on the
/// command line plus its full contents.
struct SourceFile {
  std::string path;
  std::string content;
};

/// A quoted `#include "target"` (angle includes are system headers and
/// carry no layering information).
struct IncludeRef {
  std::string target;
  int line = 0;
};

/// A `util::Mutex` (or bare `Mutex`) variable declaration. `owner` is the
/// innermost class for members, the enclosing function for locals, and
/// empty for globals.
struct MutexDecl {
  std::string owner;
  std::string name;
  int line = 0;
};

/// A member annotated `SC_GUARDED_BY(mutex_expr)`.
struct GuardedMember {
  std::string owner;
  std::string member;
  std::string mutex_expr;
  int line = 0;
};

/// One `util::MutexLock guard(expr)` acquisition inside a function body.
struct LockAcquire {
  std::string expr;  // argument text, e.g. "mutex_" or "tenant->mutex"
  int line = 0;
};

/// `inner` acquired while `outer` was (lexically) still live.
struct NestedAcquire {
  std::string outer;
  std::string inner;
  int line = 0;  // line of the inner acquisition
};

/// A call site inside a function body.
struct CallSite {
  std::string name;  // unqualified callee (last identifier before `(`)
  std::string qual;  // `Foo::bar(` -> "Foo"; `obj.bar(` -> "obj"; else ""
  bool member = false;        // reached via `.` or `->`
  bool global_colon = false;  // spelled `::name(` (global qualification)
  int line = 0;
  std::vector<std::string> held;  // lock exprs live at the call
  bool in_pool_task = false;      // inside a lambda in submit/parallel_for args
};

/// One function (or method, or TEST-macro body) definition.
struct FunctionModel {
  std::string owner;  // class: explicit `Foo::` qualifier or enclosing class
  std::string name;
  int line = 0;
  std::vector<LockAcquire> acquires;
  std::vector<NestedAcquire> nested;
  std::vector<CallSite> calls;
};

/// Everything the project-level analyses use from one translation unit.
struct FileModel {
  std::string path;
  std::vector<IncludeRef> includes;
  std::vector<MutexDecl> mutexes;
  std::vector<GuardedMember> guarded;
  std::vector<FunctionModel> functions;
};

/// Runs the structural pass over one file. Never throws on malformed
/// input — unbalanced braces simply truncate the affected scopes.
FileModel build_file_model(const std::string& path, std::string_view content);

}  // namespace streamcalc::srclint
