#include "srclint/scan.hpp"

#include <cctype>
#include <cstddef>

namespace streamcalc::srclint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// The multi-character punctuators we must not split: rules match `::`
/// exactly, and `!=` must not decay into `!` `=`. Longest match first.
constexpr std::string_view kPuncts3[] = {"<<=", ">>=", "...", "->*"};
constexpr std::string_view kPuncts2[] = {"::", "==", "!=", "<=", ">=", "->",
                                         "&&", "||", "<<", ">>", "+=", "-=",
                                         "*=", "/=", "%=", "&=", "|=", "^=",
                                         "++", "--", ".*"};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        lex_directive();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
      } else if (c == '/' && peek(1) == '*') {
        lex_block_comment();
      } else if (is_ident_start(c)) {
        lex_identifier_or_prefixed_literal();
      } else if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        lex_number();
      } else if (c == '"') {
        lex_string(pos_);
      } else if (c == '\'') {
        lex_char(pos_);
      } else {
        lex_punct();
      }
    }
    return std::move(tokens_);
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void add(TokenKind kind, std::string text, int line) {
    tokens_.push_back(Token{kind, std::move(text), line});
  }

  /// Counts newlines in the consumed range [from, pos_).
  void bump_lines(std::size_t from) {
    for (std::size_t i = from; i < pos_; ++i) {
      if (src_[i] == '\n') ++line_;
    }
  }

  void lex_directive() {
    const int start_line = line_;
    const std::size_t start = pos_;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && peek(1) == '\n') {
        pos_ += 2;  // logical-line continuation
        continue;
      }
      if (src_[pos_] == '\n') break;  // newline stays for the main loop
      ++pos_;
    }
    std::size_t end = pos_;
    bump_lines(start);
    add(TokenKind::kDirective, std::string(src_.substr(start, end - start)),
        start_line);
  }

  void lex_line_comment() {
    const std::size_t start = pos_ + 2;
    pos_ = start;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    add(TokenKind::kComment, std::string(src_.substr(start, pos_ - start)),
        line_);
  }

  void lex_block_comment() {
    const int start_line = line_;
    const std::size_t start = pos_ + 2;
    pos_ = start;
    while (pos_ < src_.size() &&
           !(src_[pos_] == '*' && peek(1) == '/')) {
      ++pos_;
    }
    const std::size_t end = pos_;
    if (pos_ < src_.size()) pos_ += 2;
    bump_lines(start);
    add(TokenKind::kComment, std::string(src_.substr(start, end - start)),
        start_line);
  }

  /// Identifiers, with the literal-prefix special cases: `R"(..)"`,
  /// `u8"x"`, `L'c'` must become string/char tokens, not an identifier
  /// glued to a literal.
  void lex_identifier_or_prefixed_literal() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    const std::string_view word = src_.substr(start, pos_ - start);
    if (pos_ < src_.size()) {
      const bool string_prefix = word == "R" || word == "u8" || word == "u" ||
                                 word == "U" || word == "L" || word == "u8R" ||
                                 word == "uR" || word == "UR" || word == "LR";
      if (string_prefix && src_[pos_] == '"') {
        if (word.back() == 'R') {
          lex_raw_string(start);
        } else {
          lex_string(start);
        }
        return;
      }
      if (string_prefix && word.back() != 'R' && src_[pos_] == '\'') {
        lex_char(start);
        return;
      }
    }
    add(TokenKind::kIdentifier, std::string(word), line_);
  }

  void lex_number() {
    const std::size_t start = pos_;
    if (src_[pos_] == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      pos_ += 2;
      while (pos_ < src_.size() &&
             (std::isxdigit(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '\'' || src_[pos_] == '.' || src_[pos_] == 'p' ||
              src_[pos_] == 'P')) {
        // Hex-float exponents are signed: 0x1p-3.
        if ((src_[pos_] == 'p' || src_[pos_] == 'P') &&
            (peek(1) == '+' || peek(1) == '-')) {
          ++pos_;
        }
        ++pos_;
      }
    } else {
      while (pos_ < src_.size() &&
             (is_digit(src_[pos_]) || src_[pos_] == '\'' ||
              src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E')) {
        if ((src_[pos_] == 'e' || src_[pos_] == 'E') &&
            (peek(1) == '+' || peek(1) == '-')) {
          ++pos_;
        }
        ++pos_;
      }
    }
    // Literal suffixes (f, F, l, L, u, U, z, ll, ull, ...).
    while (pos_ < src_.size() &&
           std::isalpha(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
    add(TokenKind::kNumber, std::string(src_.substr(start, pos_ - start)),
        line_);
  }

  /// Ordinary (escaped) string literal; `prefix_start` points at the start
  /// of any encoding prefix so it is consumed with the literal.
  void lex_string(std::size_t prefix_start) {
    const int start_line = line_;
    while (pos_ < src_.size() && src_[pos_] != '"') ++pos_;  // skip prefix
    ++pos_;  // opening quote
    const std::size_t body = pos_;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    const std::size_t end = pos_;
    if (pos_ < src_.size()) ++pos_;  // closing quote
    add(TokenKind::kString, std::string(src_.substr(body, end - body)),
        start_line);
    static_cast<void>(prefix_start);
  }

  void lex_raw_string(std::size_t prefix_start) {
    const int start_line = line_;
    while (pos_ < src_.size() && src_[pos_] != '"') ++pos_;  // skip prefix
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    ++pos_;  // '('
    const std::string closer = ")" + delim + "\"";
    const std::size_t body = pos_;
    const std::size_t found = src_.find(closer, pos_);
    const std::size_t end = found == std::string_view::npos ? src_.size()
                                                            : found;
    pos_ = found == std::string_view::npos ? src_.size()
                                           : found + closer.size();
    bump_lines(body);
    add(TokenKind::kString, std::string(src_.substr(body, end - body)),
        start_line);
    static_cast<void>(prefix_start);
  }

  void lex_char(std::size_t prefix_start) {
    while (pos_ < src_.size() && src_[pos_] != '\'') ++pos_;  // skip prefix
    ++pos_;  // opening quote
    const std::size_t body = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      ++pos_;
    }
    const std::size_t end = pos_;
    if (pos_ < src_.size()) ++pos_;  // closing quote
    add(TokenKind::kChar, std::string(src_.substr(body, end - body)), line_);
    static_cast<void>(prefix_start);
  }

  void lex_punct() {
    const std::string_view rest = src_.substr(pos_);
    for (const std::string_view p : kPuncts3) {
      if (rest.substr(0, 3) == p) {
        add(TokenKind::kPunct, std::string(p), line_);
        pos_ += 3;
        return;
      }
    }
    for (const std::string_view p : kPuncts2) {
      if (rest.substr(0, 2) == p) {
        add(TokenKind::kPunct, std::string(p), line_);
        pos_ += 2;
        return;
      }
    }
    add(TokenKind::kPunct, std::string(1, src_[pos_]), line_);
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace streamcalc::srclint
