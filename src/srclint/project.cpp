#include "srclint/project.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace streamcalc::srclint {

namespace {

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// `"tenant->mutex"` -> `"mutex"`; `"state.m"` -> `"m"`; `"mu()"` -> `""`.
std::string trailing_ident(std::string_view expr) {
  std::size_t i = expr.size();
  while (i > 0 && ident_char(expr[i - 1])) --i;
  return std::string(expr.substr(i));
}

std::string basename_of(std::string_view path) {
  const std::size_t slash = path.find_last_of("/\\");
  return std::string(slash == std::string_view::npos ? path
                                                     : path.substr(slash + 1));
}

std::vector<std::string> split_path(std::string_view path) {
  std::vector<std::string> segs;
  std::string cur;
  for (const char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) segs.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) segs.push_back(cur);
  return segs;
}

bool has_segment(const std::vector<std::string>& segs, std::string_view s) {
  return std::find(segs.begin(), segs.end(), s) != segs.end();
}

bool concurrency_scope(const std::string& path) {
  const std::vector<std::string> segs = split_path(path);
  return has_segment(segs, "src") || has_segment(segs, "tools");
}

/// First segment of a quoted include target with at least one directory
/// component (`"util/sync.hpp"` -> `"util"`; `"streamcalc.hpp"` -> "").
std::string include_dir_of(const std::string& target) {
  const std::vector<std::string> segs = split_path(target);
  return segs.size() >= 2 ? segs.front() : std::string();
}

bool blocking_call(const CallSite& c) {
  // POSIX socket/file primitives count only in their `::name(` spelling —
  // a member `.read()` is usually an in-memory accessor, and flagging it
  // would drown the signal.
  static const std::set<std::string> kGlobalPosix = {
      "accept", "connect", "poll", "read", "recv", "select", "send", "write"};
  static const std::set<std::string> kSleeps = {"nanosleep", "sleep_for",
                                                "sleep_until", "usleep"};
  static const std::set<std::string> kPool = {"parallel_for", "submit",
                                              "wait_idle"};
  static const std::set<std::string> kClientRpc = {"recv_frame", "request",
                                                   "request_raw", "send_bytes"};
  if (c.global_colon && kGlobalPosix.count(c.name) != 0) return true;
  if (kSleeps.count(c.name) != 0) return true;
  if (kPool.count(c.name) != 0) return true;
  if (c.member && (c.name == "join" || kClientRpc.count(c.name) != 0)) {
    return true;
  }
  // CondVar::wait is deliberately absent: blocking on a condition variable
  // with the lock is the one sanctioned blocking-under-lock shape.
  return false;
}

bool pool_call(const CallSite& c) {
  return c.name == "submit" || c.name == "parallel_for" ||
         c.name == "wait_idle";
}

std::string display_call(const CallSite& c) {
  std::string s;
  if (c.global_colon) {
    s += "::";
  } else if (!c.qual.empty()) {
    s += c.qual + (c.member ? "." : "::");
  }
  s += c.name + "()";
  return s;
}

struct DeclSite {
  const FileModel* file = nullptr;
  const MutexDecl* decl = nullptr;
};

std::string decl_id(const DeclSite& d) {
  if (d.decl->owner.empty()) return d.file->path + "::" + d.decl->name;
  return d.file->path + "::" + d.decl->owner + "::" + d.decl->name;
}

std::string decl_label(const DeclSite& d) {
  if (d.decl->owner.empty()) {
    return basename_of(d.file->path) + "::" + d.decl->name;
  }
  return d.decl->owner + "::" + d.decl->name;
}

/// Canonical-id resolution plus the interprocedural lock-summary fixpoint
/// over one set of files (see the header comment for the policy).
class LockAnalysis {
 public:
  struct Resolved {
    std::string id;
    std::string label;
  };

  explicit LockAnalysis(std::vector<const FileModel*> files);

  Resolved resolve(const std::string& expr, const FunctionModel& fn,
                   const FileModel& file) const;
  LockGraph graph() const;

 private:
  struct FnRef {
    const FileModel* file = nullptr;
    const FunctionModel* fn = nullptr;
  };
  struct SummaryEntry {
    std::string label;
  };

  std::vector<std::size_t> resolve_callees(const CallSite& call) const;

  std::vector<const FileModel*> files_;
  std::map<std::string, std::vector<DeclSite>> decls_by_name_;
  std::vector<FnRef> fns_;
  std::map<std::string, std::vector<std::size_t>> fns_by_name_;
  // Per function: every lock (canonical id) it may acquire, directly or
  // through calls, to fixpoint.
  std::vector<std::map<std::string, SummaryEntry>> summaries_;
};

LockAnalysis::LockAnalysis(std::vector<const FileModel*> files)
    : files_(std::move(files)) {
  for (const FileModel* file : files_) {
    for (const MutexDecl& decl : file->mutexes) {
      decls_by_name_[decl.name].push_back(DeclSite{file, &decl});
    }
    for (const FunctionModel& fn : file->functions) {
      fns_by_name_[fn.name].push_back(fns_.size());
      fns_.push_back(FnRef{file, &fn});
    }
  }

  summaries_.resize(fns_.size());
  for (std::size_t i = 0; i < fns_.size(); ++i) {
    for (const LockAcquire& a : fns_[i].fn->acquires) {
      const Resolved r = resolve(a.expr, *fns_[i].fn, *fns_[i].file);
      summaries_[i].emplace(r.id, SummaryEntry{r.label});
    }
  }
  // Propagate callee acquisitions up the (name-resolved) call graph until
  // nothing changes. Monotone and bounded by the lock-id universe.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < fns_.size(); ++i) {
      for (const CallSite& call : fns_[i].fn->calls) {
        for (const std::size_t j : resolve_callees(call)) {
          if (j == i) continue;
          for (const auto& [id, entry] : summaries_[j]) {
            if (summaries_[i].emplace(id, entry).second) changed = true;
          }
        }
      }
    }
  }
}

LockAnalysis::Resolved LockAnalysis::resolve(const std::string& expr,
                                             const FunctionModel& fn,
                                             const FileModel& file) const {
  const std::string name = trailing_ident(expr);
  const auto synthetic = [&]() {
    return Resolved{file.path + "::" + expr,
                    basename_of(file.path) + "::" + expr};
  };
  const auto it = decls_by_name_.find(name);
  if (name.empty() || it == decls_by_name_.end()) return synthetic();
  const std::vector<DeclSite>& cands = it->second;

  // 1. A declaration owned by the using function's class, or local to the
  //    function itself.
  std::vector<const DeclSite*> owned;
  for (const DeclSite& d : cands) {
    if (d.decl->owner.empty()) continue;
    if ((!fn.owner.empty() && d.decl->owner == fn.owner) ||
        d.decl->owner == fn.name) {
      owned.push_back(&d);
    }
  }
  if (owned.size() == 1) return {decl_id(*owned[0]), decl_label(*owned[0])};
  if (owned.size() > 1) return synthetic();

  // 2. A declaration in the same file.
  std::vector<const DeclSite*> local;
  for (const DeclSite& d : cands) {
    if (d.file == &file) local.push_back(&d);
  }
  if (local.size() == 1) return {decl_id(*local[0]), decl_label(*local[0])};
  if (local.size() > 1) return synthetic();

  // 3. A project-wide unique name.
  if (cands.size() == 1) return {decl_id(cands[0]), decl_label(cands[0])};
  return synthetic();
}

std::vector<std::size_t> LockAnalysis::resolve_callees(
    const CallSite& call) const {
  const auto it = fns_by_name_.find(call.name);
  if (it == fns_by_name_.end()) return {};
  if (!call.qual.empty() && !call.member) {
    // `Foo::bar(...)` — prefer definitions owned by Foo; a namespace
    // qualifier matches nothing and falls through to the name set.
    std::vector<std::size_t> owned;
    for (const std::size_t j : it->second) {
      if (fns_[j].fn->owner == call.qual) owned.push_back(j);
    }
    if (!owned.empty()) return owned;
  }
  if (call.member) {
    // `obj->name(...)` with definitions of `name` in more than one class:
    // the receiver's type is unknowable lexically, and guessing the wrong
    // class can close a cycle that does not exist (Catalog::publish calls
    // CatalogSnapshot::epoch(), not the self-locking Catalog::epoch()).
    // Propagating nothing only costs an edge; the contract tolerates
    // missed edges but never invented cycles.
    std::set<std::string> owners;
    for (const std::size_t j : it->second) owners.insert(fns_[j].fn->owner);
    if (owners.size() > 1) return {};
  }
  return it->second;
}

LockGraph LockAnalysis::graph() const {
  std::map<std::string, std::string> labels;
  std::map<std::pair<std::string, std::string>, LockEdge> edge_map;
  const auto note = [&](const Resolved& r) { labels.emplace(r.id, r.label); };
  const auto add_edge = [&](const Resolved& from, const Resolved& to,
                            const std::string& path, int line,
                            std::string via) {
    note(from);
    note(to);
    edge_map.emplace(
        std::make_pair(from.id, to.id),
        LockEdge{from.id, to.id, from.label, to.label, path, line,
                 std::move(via)});
  };

  for (std::size_t i = 0; i < fns_.size(); ++i) {
    const FileModel& file = *fns_[i].file;
    const FunctionModel& fn = *fns_[i].fn;
    for (const LockAcquire& a : fn.acquires) note(resolve(a.expr, fn, file));
    for (const NestedAcquire& na : fn.nested) {
      add_edge(resolve(na.outer, fn, file), resolve(na.inner, fn, file),
               file.path, na.line, "");
    }
    for (const CallSite& call : fn.calls) {
      if (call.held.empty()) continue;
      for (const std::size_t j : resolve_callees(call)) {
        if (j == i) continue;
        for (const auto& [id, entry] : summaries_[j]) {
          for (const std::string& held : call.held) {
            // A self-edge (holding a lock while calling something that
            // re-acquires it) is a genuine one-lock deadlock; keep it.
            add_edge(resolve(held, fn, file), Resolved{id, entry.label},
                     file.path, call.line, "via " + display_call(call));
          }
        }
      }
    }
  }

  LockGraph g;
  std::map<std::string, std::size_t> index_of;
  for (const auto& [id, label] : labels) {
    index_of.emplace(id, g.nodes.size());
    g.nodes.push_back(LockNode{id, label});
  }
  for (const auto& [key, edge] : edge_map) g.edges.push_back(edge);

  // Adjacency over node indices; edge_map iteration is (from, to) sorted,
  // so every adjacency list comes out sorted too.
  std::vector<std::vector<std::size_t>> adj(g.nodes.size());
  for (const LockEdge& e : g.edges) {
    adj[index_of.at(e.from)].push_back(index_of.at(e.to));
  }

  // Tarjan SCCs; any SCC with more than one node (or a self-edge) holds at
  // least one cycle.
  const std::size_t n = g.nodes.size();
  std::vector<std::size_t> order(n, 0);
  std::vector<std::size_t> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> sccs;
  std::size_t counter = 0;
  std::function<void(std::size_t)> strongconnect = [&](std::size_t u) {
    seen[u] = true;
    order[u] = low[u] = counter++;
    stack.push_back(u);
    on_stack[u] = true;
    for (const std::size_t v : adj[u]) {
      if (!seen[v]) {
        strongconnect(v);
        low[u] = std::min(low[u], low[v]);
      } else if (on_stack[v]) {
        low[u] = std::min(low[u], order[v]);
      }
    }
    if (low[u] == order[u]) {
      std::vector<std::size_t> scc;
      while (true) {
        const std::size_t v = stack.back();
        stack.pop_back();
        on_stack[v] = false;
        scc.push_back(v);
        if (v == u) break;
      }
      std::sort(scc.begin(), scc.end());
      sccs.push_back(std::move(scc));
    }
  };
  for (std::size_t u = 0; u < n; ++u) {
    if (!seen[u]) strongconnect(u);
  }
  // Process SCCs by smallest node index = lexicographically smallest id.
  std::sort(sccs.begin(), sccs.end());

  const auto edge_between = [&](std::size_t a, std::size_t b) {
    return edge_map.at(std::make_pair(g.nodes[a].id, g.nodes[b].id));
  };
  for (const std::vector<std::size_t>& scc : sccs) {
    const std::set<std::size_t> members(scc.begin(), scc.end());
    const std::size_t s = scc.front();
    const bool self_loop =
        std::find(adj[s].begin(), adj[s].end(), s) != adj[s].end();
    if (scc.size() < 2 && !self_loop) continue;

    // One representative cycle through the smallest node: DFS inside the
    // SCC until an edge closes back to `s`. Strong connectivity guarantees
    // one exists.
    std::vector<std::size_t> path{s};
    std::set<std::size_t> visited{s};
    bool found = false;
    LockCycle cycle;
    std::function<void(std::size_t)> dfs = [&](std::size_t u) {
      for (const std::size_t v : adj[u]) {
        if (found) return;
        if (members.count(v) == 0) continue;
        if (v == s) {
          for (std::size_t k = 0; k + 1 < path.size(); ++k) {
            cycle.chain.push_back(edge_between(path[k], path[k + 1]));
          }
          cycle.chain.push_back(edge_between(u, s));
          found = true;
          return;
        }
        if (visited.count(v) != 0) continue;
        visited.insert(v);
        path.push_back(v);
        dfs(v);
        if (found) return;
        path.pop_back();
      }
    };
    dfs(s);
    if (found) g.cycles.push_back(std::move(cycle));
  }
  return g;
}

std::string dot_escape(std::string_view s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string cycle_label(const LockCycle& c) {
  std::string s = c.chain.front().from_label;
  for (const LockEdge& e : c.chain) s += " -> " + e.to_label;
  return s;
}

std::string cycle_sites(const LockCycle& c) {
  std::string s;
  for (const LockEdge& e : c.chain) {
    if (!s.empty()) s += "; ";
    s += e.path + ":" + std::to_string(e.line) + ": " + e.from_label +
         " -> " + e.to_label;
    if (!e.via.empty()) s += " (" + e.via + ")";
  }
  return s;
}

}  // namespace

std::string layer_dir_of(const std::string& path) {
  const std::vector<std::string> segs = split_path(path);
  for (std::size_t i = segs.size(); i-- > 0;) {
    if (segs[i] == "src" && i + 2 < segs.size()) return segs[i + 1];
  }
  return {};
}

ProjectModel build_project_model(const std::vector<SourceFile>& files) {
  ProjectModel project;
  project.files.reserve(files.size());
  for (const SourceFile& f : files) {
    project.files.push_back(build_file_model(f.path, f.content));
  }
  return project;
}

LockGraph build_lock_graph(const ProjectModel& project) {
  std::vector<const FileModel*> all;
  all.reserve(project.files.size());
  for (const FileModel& f : project.files) all.push_back(&f);
  return LockAnalysis(std::move(all)).graph();
}

std::vector<Finding> check_project(const ProjectModel& project,
                                   const Layers* layers) {
  std::vector<Finding> out;

  std::vector<const FileModel*> scoped;
  for (const FileModel& f : project.files) {
    if (concurrency_scope(f.path)) scoped.push_back(&f);
  }
  LockAnalysis analysis(scoped);

  // SC910: one finding per lock-order cycle, anchored at the edge leaving
  // the lexicographically-smallest lock in the cycle.
  const LockGraph g = analysis.graph();
  for (const LockCycle& c : g.cycles) {
    Finding f;
    f.code = "SC910";
    f.path = c.chain.front().path;
    f.line = c.chain.front().line;
    f.message = "lock-acquisition-order cycle: " + cycle_label(c) +
                " (potential deadlock)";
    f.hint = "acquisition sites: " + cycle_sites(c) +
             " — pick one global order and take the locks in it everywhere";
    out.push_back(std::move(f));
  }

  // SC911 blocking-under-lock and SC912 pool re-entrancy are per call site.
  for (const FileModel* file : scoped) {
    for (const FunctionModel& fn : file->functions) {
      for (const CallSite& call : fn.calls) {
        if (!call.held.empty() && blocking_call(call)) {
          std::string held_labels;
          for (const std::string& h : call.held) {
            if (!held_labels.empty()) held_labels += ", ";
            held_labels += analysis.resolve(h, fn, *file).label;
          }
          Finding f;
          f.code = "SC911";
          f.path = file->path;
          f.line = call.line;
          f.message = "blocking call " + display_call(call) + " while '" +
                      held_labels + "' is held";
          f.hint =
              "release the MutexLock before blocking; CondVar::wait(lock) "
              "is the one sanctioned blocking-under-lock primitive";
          out.push_back(std::move(f));
        }
        if (call.in_pool_task && pool_call(call)) {
          Finding f;
          f.code = "SC912";
          f.path = file->path;
          f.line = call.line;
          f.message = "'" + call.name +
                      "' called from inside a pool task — re-entrant "
                      "submission can deadlock a bounded pool";
          f.hint =
              "hoist the nested submission out of the task (one flat "
              "parallel_for), or hand the work to the caller";
          out.push_back(std::move(f));
        }
      }
    }
  }

  // SC913: the include graph must respect the declared layer DAG.
  if (layers != nullptr) {
    for (const FileModel& file : project.files) {
      const std::string dir = layer_dir_of(file.path);
      if (dir.empty()) continue;  // umbrella header or out of src/ scope
      if (!layers->declared(dir)) {
        Finding f;
        f.code = "SC913";
        f.path = file.path;
        f.line = 1;
        f.message =
            "directory 'src/" + dir + "' is not declared in srclint.layers";
        f.hint = "add '" + dir +
                 "' to a stratum in srclint.layers so its dependencies are "
                 "checked";
        out.push_back(std::move(f));
        continue;
      }
      for (const IncludeRef& inc : file.includes) {
        const std::string tdir = include_dir_of(inc.target);
        if (tdir.empty() || tdir == dir || !layers->declared(tdir)) continue;
        if (layers->allows_include(dir, tdir)) continue;
        Finding f;
        f.code = "SC913";
        f.path = file.path;
        f.line = inc.line;
        f.message = "include \"" + inc.target +
                    "\" reaches up the layer DAG: '" + tdir +
                    "' is not below '" + dir + "'";
        f.hint =
            "depend downward only, or move the shared piece into a lower "
            "layer (srclint.layers declares the order)";
        out.push_back(std::move(f));
      }
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.path != b.path) return a.path < b.path;
                     if (a.line != b.line) return a.line < b.line;
                     return a.code < b.code;
                   });
  return out;
}

std::string lock_order_report(const ProjectModel& project, bool dot) {
  const LockGraph g = build_lock_graph(project);
  std::ostringstream os;
  if (dot) {
    std::set<std::pair<std::string, std::string>> hot;
    for (const LockCycle& c : g.cycles) {
      for (const LockEdge& e : c.chain) hot.emplace(e.from, e.to);
    }
    os << "digraph lock_order {\n"
       << "  rankdir=LR;\n"
       << "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";
    for (const LockNode& n : g.nodes) {
      os << "  \"" << dot_escape(n.id) << "\" [label=\""
         << dot_escape(n.label) << "\"];\n";
    }
    for (const LockEdge& e : g.edges) {
      os << "  \"" << dot_escape(e.from) << "\" -> \"" << dot_escape(e.to)
         << "\" [label=\"" << dot_escape(e.path + ":" + std::to_string(e.line))
         << "\"";
      if (hot.count(std::make_pair(e.from, e.to)) != 0) {
        os << ", color=red, penwidth=2.0";
      }
      os << "];\n";
    }
    os << "}\n";
  } else {
    os << "lock-order graph: " << g.nodes.size() << " lock(s), "
       << g.edges.size() << " edge(s), " << g.cycles.size() << " cycle(s)\n";
    for (const LockEdge& e : g.edges) {
      os << "  " << e.from_label << " -> " << e.to_label << "  (" << e.path
         << ":" << e.line;
      if (!e.via.empty()) os << ", " << e.via;
      os << ")\n";
    }
    for (const LockCycle& c : g.cycles) {
      os << "  cycle: " << cycle_label(c) << "\n";
    }
  }
  return os.str();
}

std::string layers_report(const ProjectModel& project, const Layers& layers,
                          bool dot) {
  // Observed directory-level include edges among declared layers, with the
  // first witnessing include of each.
  struct Observed {
    std::string path;
    int line = 0;
    bool ok = true;
  };
  std::map<std::pair<std::string, std::string>, Observed> observed;
  for (const FileModel& file : project.files) {
    const std::string dir = layer_dir_of(file.path);
    if (dir.empty() || !layers.declared(dir)) continue;
    for (const IncludeRef& inc : file.includes) {
      const std::string tdir = include_dir_of(inc.target);
      if (tdir.empty() || tdir == dir || !layers.declared(tdir)) continue;
      observed.emplace(
          std::make_pair(dir, tdir),
          Observed{file.path, inc.line, layers.allows_include(dir, tdir)});
    }
  }

  // Display height of each stratum: the number of strata strictly below it
  // (a valid topological rank, since `below` is transitively closed).
  const std::size_t n = layers.below.size();
  std::vector<std::size_t> height(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (layers.below[j][i]) ++height[i];
    }
  }
  std::vector<std::vector<std::string>> members(n);
  for (const std::string& name : layers.names) {
    members[layers.stratum_of.at(name)].push_back(name);
  }
  for (std::vector<std::string>& m : members) std::sort(m.begin(), m.end());
  std::vector<std::size_t> strata;
  for (std::size_t i = 0; i < n; ++i) {
    if (!members[i].empty()) strata.push_back(i);
  }
  std::sort(strata.begin(), strata.end(),
            [&](std::size_t a, std::size_t b) {
              if (height[a] != height[b]) return height[a] < height[b];
              return members[a].front() < members[b].front();
            });

  std::ostringstream os;
  if (dot) {
    os << "digraph layers {\n"
       << "  rankdir=TB;\n"
       << "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";
    for (const std::size_t i : strata) {
      os << "  { rank=same;";
      for (const std::string& name : members[i]) {
        os << " \"" << dot_escape(name) << "\";";
      }
      os << " }\n";
    }
    for (const auto& [key, obs] : observed) {
      os << "  \"" << dot_escape(key.first) << "\" -> \""
         << dot_escape(key.second) << "\"";
      if (obs.ok) {
        os << " [color=gray50]";
      } else {
        os << " [color=red, penwidth=2.0, label=\""
           << dot_escape(obs.path + ":" + std::to_string(obs.line)) << "\"]";
      }
      os << ";\n";
    }
    os << "}\n";
  } else {
    os << "layer DAG: " << layers.names.size() << " layer(s) in "
       << strata.size() << " stratum(s), low to high:\n";
    for (const std::size_t i : strata) {
      os << "  ";
      for (std::size_t k = 0; k < members[i].size(); ++k) {
        if (k > 0) os << " / ";
        os << members[i][k];
      }
      os << "\n";
    }
    os << "observed include edges:\n";
    for (const auto& [key, obs] : observed) {
      os << "  " << key.first << " -> " << key.second << "  "
         << (obs.ok ? "ok" : "VIOLATION") << " (" << obs.path << ":"
         << obs.line << ")\n";
    }
  }
  return os.str();
}

}  // namespace streamcalc::srclint
