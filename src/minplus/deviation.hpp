// Horizontal and vertical deviations between curves.
//
// For an arrival curve alpha and a service curve beta these are the two
// fundamental performance bounds of network calculus (Le Boudec & Thiran,
// ch. 1):
//
//   backlog bound  x = v(alpha, beta) = sup_t [alpha(t) - beta(t)]
//   delay bound    d = h(alpha, beta)
//                    = sup_t inf{ d >= 0 : alpha(t) <= beta(t + d) }
//
// Both are computed exactly for piecewise-linear curves and return +inf
// when the deviation diverges (alpha's long-run rate exceeding beta's).
#pragma once

#include "minplus/curve.hpp"

namespace streamcalc::minplus {

/// sup_{t >= 0} [f(t) - g(t)], clamped below at 0; +inf if divergent.
double vertical_deviation(const Curve& f, const Curve& g);

/// sup_{t >= 0} inf{ d >= 0 : f(t) <= g(t + d) }; +inf if divergent.
double horizontal_deviation(const Curve& f, const Curve& g);

}  // namespace streamcalc::minplus
