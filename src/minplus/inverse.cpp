#include "minplus/inverse.hpp"

#include "minplus/detail/builder.hpp"

namespace streamcalc::minplus {

Curve lower_inverse_curve(const Curve& f) {
  // Breakpoints of the inverse sit at f's value levels (value_at and
  // value_after of every segment); between adjacent levels the inverse is
  // linear (slope 1/m) or constant (across f's jumps).
  std::vector<double> levels;
  levels.reserve(2 * f.segments().size() + 1);
  for (const Segment& s : f.segments()) {
    if (s.value_at != detail::kInf) levels.push_back(s.value_at);
    if (s.value_after != detail::kInf) levels.push_back(s.value_after);
  }
  const std::vector<double> grid =
      detail::canonical_candidates(std::move(levels));
  return detail::build_from_evaluators(
      grid, [&](double y) { return f.lower_inverse(y); },
      [&](double y) { return f.upper_inverse(y); });
}

}  // namespace streamcalc::minplus
