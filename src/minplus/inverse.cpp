#include "minplus/inverse.hpp"

#include "minplus/detail/builder.hpp"

namespace streamcalc::minplus {

Curve lower_inverse_curve(const Curve& f) {
  const std::vector<Segment>& fs = f.segments();
  if (f.shape().piecewise_constant) {
    // Staircase fast path: the lower inverse of a piecewise-constant
    // transient + affine tail is itself a staircase with runs and rises
    // swapped — each riser (level w_{i-1} -> w_i at abscissa x_i) maps to
    // a flat inverse piece at value x_i over the level interval
    // (w_{i-1}, w_i], and the affine tail of slope m inverts to slope 1/m.
    // Direct O(n) construction, no evaluator probes.
    std::vector<Segment> out;
    out.reserve(fs.size() + 1);
    out.push_back(Segment{0.0, 0.0, 0.0, 0.0});
    for (std::size_t i = 1; i < fs.size(); ++i) {
      const double level = fs[i - 1].value_after;  // left limit at fs[i].x
      if (level <= out.back().x) {
        // This riser starts at the previous breakpoint's level (origin
        // plateau at level 0, or a point-only jump): levels just above it
        // are first reached at fs[i].x.
        out.back().value_after = fs[i].x;
        continue;
      }
      out.push_back(Segment{level, fs[i - 1].x, fs[i].x, 0.0});
    }
    const Segment& tail = fs.back();
    if (tail.value_after != detail::kInf) {
      // Levels above the tail's start value: reached on the affine tail
      // (slope 1/m), or never (flat finite tail -> +inf).
      const double w_top = tail.value_after;
      const double after = tail.slope > 0.0 ? tail.x : detail::kInf;
      const double slope = tail.slope > 0.0 ? 1.0 / tail.slope : 0.0;
      if (w_top > out.back().x) {
        out.push_back(Segment{w_top, tail.x, after, slope});
      } else {
        out.back().value_after = after;
        out.back().slope = slope;
      }
    }
    return Curve(std::move(out));
  }
  // Breakpoints of the inverse sit at f's value levels (value_at and
  // value_after of every segment); between adjacent levels the inverse is
  // linear (slope 1/m) or constant (across f's jumps).
  std::vector<double> levels;
  levels.reserve(2 * f.segments().size() + 1);
  for (const Segment& s : f.segments()) {
    if (s.value_at != detail::kInf) levels.push_back(s.value_at);
    if (s.value_after != detail::kInf) levels.push_back(s.value_after);
  }
  const std::vector<double> grid =
      detail::canonical_candidates(std::move(levels));
  return detail::build_from_evaluators(
      grid, [&](double y) { return f.lower_inverse(y); },
      [&](double y) { return f.upper_inverse(y); });
}

}  // namespace streamcalc::minplus
