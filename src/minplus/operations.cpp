#include "minplus/operations.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "minplus/detail/builder.hpp"
#include "minplus/detail/merge.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace streamcalc::minplus {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double add_inf(double a, double b) {
  if (a == kInf || b == kInf) return kInf;
  return a + b;
}

/// a - b for the deconvolution sup: +inf beats everything; a -inf
/// contribution (b == +inf with finite a) can never be the sup, and the
/// caller skips it by checking the return for NaN-free semantics here.
/// Returns -inf when b == +inf (and a finite) so max() ignores it.
double sub_inf(double a, double b) {
  if (a == kInf && b == kInf) return -kInf;  // undefined piece; ignore
  if (a == kInf) return kInf;
  if (b == kInf) return -kInf;
  return a - b;
}

std::vector<double> breakpoints(const Curve& c) {
  std::vector<double> xs;
  xs.reserve(c.segments().size());
  for (const Segment& s : c.segments()) xs.push_back(s.x);
  return xs;
}

/// Adds the crossing abscissae of f and g (where f - g changes sign inside
/// a linear piece) to `xs`, which must already contain all breakpoints of
/// both curves.
void add_crossings(const Curve& f, const Curve& g, std::vector<double>& xs) {
  const std::vector<double> grid = detail::canonical_candidates(xs);
  auto crossing_in = [&](double x1, double x2_or_inf) {
    const double vf = f.value_right(x1);
    const double vg = g.value_right(x1);
    if (vf == kInf || vg == kInf) return;
    double mf, mg;
    if (std::isfinite(x2_or_inf)) {
      const double lf = f.value_left(x2_or_inf);
      const double lg = g.value_left(x2_or_inf);
      if (lf == kInf || lg == kInf) return;
      mf = (lf - vf) / (x2_or_inf - x1);
      mg = (lg - vg) / (x2_or_inf - x1);
    } else {
      mf = f.tail_slope();
      mg = g.tail_slope();
      if (mf == kInf || mg == kInf) return;
    }
    const double d0 = vf - vg;
    const double ms = mf - mg;
    // Nearly-parallel pieces have no numerically meaningful crossing; the
    // division below would fabricate a breakpoint at an absurd abscissa.
    if (std::fabs(ms) <= 1e-9 * (std::fabs(mf) + std::fabs(mg))) return;
    const double t = x1 - d0 / ms;
    // A crossing at (or within rounding distance of) an interval endpoint
    // adds nothing — and keeping it would make the later dedup drop the
    // true breakpoint (losing any jump there) in favour of the crossing.
    // The margin sits just above canonical_candidates' dedup tolerance
    // (1e-12 relative): any coarser and steep pieces lose real kinks that
    // sit barely inside the interval (slope ~1e9 turns an 1e-10 abscissa
    // gap into an O(1) value change).
    const double tol = 4e-12 * (1.0 + std::fabs(t));
    if (t <= x1 + tol) return;
    if (std::isfinite(x2_or_inf) && t >= x2_or_inf - tol) return;
    xs.push_back(t);
  };
  for (std::size_t i = 0; i + 1 < grid.size(); ++i) {
    crossing_in(grid[i], grid[i + 1]);
  }
  crossing_in(grid.back(), kInf);
}

template <typename Op>
Curve pointwise(const Curve& f, const Curve& g, const Op& op,
                const std::vector<double>* slope_set = nullptr) {
  std::vector<double> xs = breakpoints(f);
  const std::vector<double> gx = breakpoints(g);
  xs.insert(xs.end(), gx.begin(), gx.end());
  const std::vector<double> grid = detail::canonical_candidates(std::move(xs));
  return detail::build_from_evaluators(
      grid, [&](double t) { return op(f.value(t), g.value(t)); },
      [&](double t) { return op(f.value_right(t), g.value_right(t)); },
      slope_set);
}

/// Returns the latency T if the curve is exactly delta_T, else a negative
/// sentinel.
double pure_delay_latency(const Curve& c) {
  const auto& segs = c.segments();
  if (segs.size() == 1) {
    const Segment& s = segs.front();
    if (s.value_at == 0.0 && s.value_after == kInf) return 0.0;
    return -1.0;
  }
  if (segs.size() == 2 && segs[0] == Segment{0.0, 0.0, 0.0, 0.0}) {
    const Segment& s = segs[1];
    if (s.value_at == 0.0 && s.value_after == kInf) return s.x;
  }
  return -1.0;
}

/// Slope-sorted convolution of two finite convex curves.
Curve convolve_convex(const Curve& f, const Curve& g) {
  struct Piece {
    double slope;
    double length;  // kInf for the final segment
  };
  auto pieces_of = [](const Curve& c) {
    std::vector<Piece> ps;
    const auto& segs = c.segments();
    for (std::size_t i = 0; i < segs.size(); ++i) {
      const double len =
          (i + 1 < segs.size()) ? segs[i + 1].x - segs[i].x : kInf;
      ps.push_back(Piece{segs[i].slope, len});
    }
    return ps;
  };
  std::vector<Piece> pieces = pieces_of(f);
  const std::vector<Piece> gp = pieces_of(g);
  pieces.insert(pieces.end(), gp.begin(), gp.end());
  std::stable_sort(pieces.begin(), pieces.end(),
                   [](const Piece& a, const Piece& b) {
                     return a.slope < b.slope;
                   });

  std::vector<Segment> segs;
  double x = 0.0;
  double y = f.value(0.0) + g.value(0.0);
  for (const Piece& p : pieces) {
    if (segs.empty() || x > segs.back().x) {
      segs.push_back(Segment{x, y, y, p.slope});
    } else {
      // The previous piece's width rounded away at this magnitude; the
      // region belongs to this piece's slope.
      segs.back().slope = p.slope;
    }
    if (p.length == kInf) break;  // all later pieces are steeper; unused
    x += p.length;
    y += p.slope * p.length;
  }
  return Curve(std::move(segs));
}

/// t -> c + g(t) (also lifting the origin value). c may be +inf.
Curve plus_const(const Curve& g, double c) {
  if (c == kInf) {
    return Curve({Segment{0.0, kInf, kInf, 0.0}});
  }
  std::vector<Segment> out = g.segments();
  for (Segment& s : out) {
    s.value_at = add_inf(s.value_at, c);
    s.value_after = add_inf(s.value_after, c);
  }
  return Curve(std::move(out));
}

/// Branch of the convolution infimum anchored at split point s = T with
/// f-contribution c: exactly c + g(t - T) for t >= T, and the safe plateau
/// c + g(0) on [0, T). (Safe because conv(t) <= f(t) + g(0) <= c + g(0)
/// there whenever c is a value f takes at or after t.)
Curve conv_branch(const Curve& g, double T, double c) {
  if (c == kInf) return plus_const(g, c);
  std::vector<Segment> out;
  const double plateau = add_inf(g.value(0.0), c);
  if (T > 0.0) out.push_back(Segment{0.0, plateau, plateau, 0.0});
  for (const Segment& s : g.segments()) {
    const double x = s.x + T;
    if (!out.empty() && x <= out.back().x) continue;  // ulp collision
    out.push_back(Segment{x, add_inf(s.value_at, c),
                          add_inf(s.value_after, c), s.slope});
  }
  detail::rechord_translated(out);
  return Curve(std::move(out));
}

/// Replaces each breakpoint's value_at with the exact evaluator's value
/// (clamped into [left limit, right limit] so rounding noise cannot break
/// monotonicity). The envelope construction is exact on open intervals and
/// at right limits, but at isolated breakpoints the true value can differ
/// from the branch minimum/maximum; this repairs those points. The exact
/// evaluations are independent per breakpoint and fan out to the pool on
/// large envelopes (each writes its own slot; the clamp chain stays
/// serial).
template <typename AtFn>
Curve repair_point_values(const Curve& env, const AtFn& at) {
  std::vector<Segment> segs = env.segments();
  std::vector<double> exact(segs.size());
  detail::maybe_parallel_for(
      segs.size(), detail::kParallelGridThreshold, detail::kParallelGridGrain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) exact[i] = at(segs[i].x);
      });
  for (std::size_t i = 0; i < segs.size(); ++i) {
    Segment& s = segs[i];
    double lo = 0.0;
    if (i > 0) {
      const Segment& p = segs[i - 1];
      lo = p.value_after == kInf ? kInf
                                 : p.value_after + p.slope * (s.x - p.x);
    }
    if (i > 0 && lo != kInf && exact[i] < lo &&
        exact[i] >= segs[i - 1].value_after) {
      // The previous piece overextends past this breakpoint's exact
      // value: its abscissa rounded beyond the true crossing, so the
      // stored slope's extrapolation overshoots. Rechord the previous
      // piece down to the exact value rather than clamping the exact
      // value up to the stale extrapolation (which would bake the
      // overshoot into the entire tail).
      Segment& p = segs[i - 1];
      p.slope = (exact[i] - p.value_after) / (s.x - p.x);
      lo = exact[i];
    }
    if (lo != kInf && s.value_after < lo - 1e-9 * (1.0 + lo)) {
      // Degenerate envelope piece: the previous segment's extrapolation
      // overshoots this breakpoint's right limit by more than the curve
      // tolerance (normalize() merges collinear pieces with a tolerance,
      // so the stored slope can drift over long near-flat spans). Lift
      // the point to the left limit to keep the curve wide-sense
      // increasing; the bump stays within the merge tolerance.
      s.value_at = lo;
      s.value_after = lo;
      continue;
    }
    s.value_at = std::min(std::max(exact[i], lo), s.value_after);
  }
  return Curve(std::move(segs));
}

/// Branch of the deconvolution supremum anchored at t + s = X with
/// f-contribution c: max(0, c - g(X - t)) on [0, X], constant after (safe
/// because deconv(t) >= f(t) - g(0) >= c - g(0) for t >= X).
///
/// Built directly from g's segments. Re-evaluating g at fl(X - t) for a
/// candidate t = fl(X - x_j) rounds twice and can land an ulp past the
/// jump at x_j, which both misses the jump value and lets the midpoint
/// probe fabricate a wrong slope; carrying g's exact values to the
/// reflected breakpoints avoids re-evaluation entirely.
Curve deconv_reflected_branch(const Curve& g, double X, double c) {
  const std::vector<Segment>& gs = g.segments();
  // Raw (unclamped) reflected breakpoints, ascending in t. t_j = X - x_j
  // reverses g's pieces: the slope right of t_j is the slope of g's piece
  // left of x_j, and the right limit in t is g's left limit in u.
  struct Raw {
    double t, at, after, slope;
  };
  std::vector<Raw> raw;
  raw.reserve(gs.size() + 1);
  std::size_t m = 0;  // last segment whose abscissa lies in [0, X]
  while (m + 1 < gs.size() && gs[m + 1].x <= X) ++m;
  {
    const double at = sub_inf(c, g.value(X));
    const double after = X > 0.0 ? sub_inf(c, g.value_left(X)) : at;
    double slope = 0.0;  // X == 0: the branch is constant
    if (X > gs[m].x) {
      slope = gs[m].slope;  // u = X - t starts inside segment m
    } else if (m > 0) {
      slope = gs[m - 1].slope;  // X == x_m: u immediately enters piece m-1
    }
    raw.push_back(Raw{0.0, at, after, slope});
  }
  for (std::size_t jj = m + 1; jj-- > 0;) {
    const Segment& sj = gs[jj];
    const double tj = X - sj.x;
    if (tj <= 0.0) continue;  // coincides with the start point
    const double at = sub_inf(c, sj.value_at);
    double after, slope;
    if (jj > 0) {
      after = sub_inf(c, g.value_left(sj.x));
      slope = gs[jj - 1].slope;
    } else {
      after = at;  // constant plateau past t = X
      slope = 0.0;
    }
    if (tj <= raw.back().t) {
      // Micro-gap breakpoints collapsed by abscissa rounding: merge.
      raw.back().after = std::max(raw.back().after, after);
      raw.back().slope = slope;
      continue;
    }
    raw.push_back(Raw{tj, at, after, slope});
  }
  // Clamp at 0. A piece whose raw line starts below zero stays flat at 0
  // up to the crossing and only then takes g's slope.
  std::vector<Segment> out;
  out.reserve(raw.size() + 1);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const Raw& r = raw[i];
    const double at = std::max(0.0, r.at);
    double slope = r.slope;
    if (r.after == kInf) slope = 0.0;
    if (r.after < 0.0) {
      out.push_back(Segment{r.t, at, 0.0, 0.0});
      if (std::isfinite(r.after) && slope > 0.0 && slope != kInf) {
        const double t_cross = r.t - r.after / slope;
        const double next_t = i + 1 < raw.size() ? raw[i + 1].t : kInf;
        if (t_cross > r.t && t_cross < next_t) {
          out.push_back(Segment{t_cross, 0.0, 0.0, slope});
        }
      }
      continue;
    }
    out.push_back(Segment{r.t, at, r.after, slope});
  }
  detail::rechord_translated(out);
  return Curve(std::move(out));
}

double conv_at_impl(const Curve& f, const Curve& g, double t) {
  // Candidate splits (s, u) with s + u == t up to one rounding. Each split
  // keeps the anchoring operand's breakpoint abscissa EXACT and rounds
  // only the complement: recomputing u = t - s after s = t - b.x already
  // rounded can land one ulp past b.x and miss the operand's pre-jump
  // point value there.
  //
  // This runs once per envelope breakpoint during repair, so its cost
  // multiplies into every general convolution. As the anchoring breakpoint
  // abscissa ascends, the complement t - x descends monotonically, so one
  // backward cursor into the other operand replaces a binary search per
  // evaluation, and the anchoring operand's one-sided values are read
  // straight off its segment (no lookup at all).
  const std::vector<Segment>& fsg = f.segments();
  const std::vector<Segment>& gsg = g.segments();
  const auto ext = [](double v, double m, double dx) {
    return v == kInf ? kInf : v + m * dx;
  };
  double best = kInf;

  // Splits anchored at f's breakpoints: s = a.x exact, u = t - s.
  {
    std::size_t j = gsg.size() - 1;
    for (std::size_t i = 0; i < fsg.size(); ++i) {
      const Segment& a = fsg[i];
      if (a.x > t) break;
      const double u = t - a.x;
      while (j > 0 && gsg[j].x > u) --j;
      const Segment& bs = gsg[j];
      const double g_interior = ext(bs.value_after, bs.slope, u - bs.x);
      best = std::min(
          best, add_inf(a.value_at, u == bs.x ? bs.value_at : g_interior));
      if (u > 0.0) {
        // u == bs.x > 0 implies j > 0 (g's first breakpoint sits at 0).
        const double g_left =
            u == bs.x ? ext(gsg[j - 1].value_after, gsg[j - 1].slope,
                            u - gsg[j - 1].x)
                      : g_interior;
        best = std::min(best, add_inf(a.value_after, g_left));
      }
      double f_left = a.value_at;
      if (a.x > 0.0) {
        const Segment& p = fsg[i - 1];
        f_left = ext(p.value_after, p.slope, a.x - p.x);
        const double g_right = u == bs.x ? bs.value_after : g_interior;
        best = std::min(best, add_inf(f_left, g_right));
      }
      // Breakpoint pairs whose rounded sum lands exactly on t. The
      // envelope construction places result breakpoints at fl(x_f + x_g);
      // the split complement above recomputes t - x, which can round one
      // ulp past the other operand's jump and miss its point value — and
      // does so differently for (f, g) and (g, f). Evaluating the pair
      // directly is symmetric in the operands and anchors the jump at the
      // representable breakpoint. Only b.x within one rounding of t - a.x
      // qualifies — a slack window around the cursor.
      const double slack = 4.0 * std::numeric_limits<double>::epsilon() *
                           (std::fabs(t) + std::fabs(a.x) + 1.0);
      const auto pair_eval = [&](std::size_t k) {
        const Segment& b = gsg[k];
        if (a.x + b.x != t) return;
        best = std::min(best, add_inf(a.value_at, b.value_at));
        if (a.x > 0.0) {
          best = std::min(best, add_inf(f_left, b.value_after));
        }
        if (b.x > 0.0) {
          const double g_left = ext(gsg[k - 1].value_after, gsg[k - 1].slope,
                                    b.x - gsg[k - 1].x);
          best = std::min(best, add_inf(a.value_after, g_left));
        }
      };
      for (std::size_t k = j; gsg[k].x >= u - slack; --k) {
        pair_eval(k);
        if (k == 0) break;
      }
      for (std::size_t k = j + 1; k < gsg.size() && gsg[k].x <= u + slack;
           ++k) {
        pair_eval(k);
      }
    }
  }

  // Splits anchored at g's breakpoints: u = b.x exact, s = t - u.
  {
    std::size_t i = fsg.size() - 1;
    for (std::size_t k = 0; k < gsg.size(); ++k) {
      const Segment& b = gsg[k];
      if (b.x > t) break;
      const double s = t - b.x;
      while (i > 0 && fsg[i].x > s) --i;
      const Segment& as = fsg[i];
      const double f_interior = ext(as.value_after, as.slope, s - as.x);
      best = std::min(
          best, add_inf(s == as.x ? as.value_at : f_interior, b.value_at));
      if (b.x > 0.0) {
        const double f_right = s == as.x ? as.value_after : f_interior;
        const double g_left = ext(gsg[k - 1].value_after, gsg[k - 1].slope,
                                  b.x - gsg[k - 1].x);
        best = std::min(best, add_inf(f_right, g_left));
      }
      if (s > 0.0) {
        // s == as.x > 0 implies i > 0 (f's first breakpoint sits at 0).
        const double f_left =
            s == as.x ? ext(fsg[i - 1].value_after, fsg[i - 1].slope,
                            s - fsg[i - 1].x)
                      : f_interior;
        best = std::min(best, add_inf(f_left, b.value_after));
      }
    }
  }
  return best;
}

double deconv_at_impl(const Curve& f, const Curve& g, double t,
                      bool right_limit) {
  std::vector<double> ss{0.0};
  for (const Segment& s : g.segments()) ss.push_back(s.x);
  for (const Segment& s : f.segments()) {
    if (s.x >= t) ss.push_back(s.x - t);
  }
  // One probe beyond every breakpoint: past it the difference is affine
  // with non-positive slope (callers rule out the unbounded case first),
  // so no larger value exists further out.
  ss.push_back(std::max(f.last_breakpoint(), g.last_breakpoint()) + 1.0);

  double best = 0.0;  // deconvolution of cumulative curves clamps at 0
  for (double s : ss) {
    if (s < 0.0) continue;
    const double a = t + s;
    if (right_limit) {
      best = std::max(best, sub_inf(f.value_right(a), g.value(s)));
      best = std::max(best, sub_inf(f.value_right(a), g.value_right(s)));
      best = std::max(best, sub_inf(f.value(a), g.value(s)));
      if (s > 0.0) {
        best = std::max(best, sub_inf(f.value(a), g.value_left(s)));
      }
    } else {
      best = std::max(best, sub_inf(f.value(a), g.value(s)));
      best = std::max(best, sub_inf(f.value_right(a), g.value_right(s)));
      if (s > 0.0) {
        best = std::max(best, sub_inf(f.value_left(a), g.value_left(s)));
      }
    }
    if (best == kInf) break;
  }
  if (best == kInf) return best;
  // Dual of the pair scan in conv_at_impl: result breakpoints sit at
  // fl(x_f - x_g), and recomputing t + s can round past a jump of f.
  // Evaluate pairs whose rounded difference is exactly t directly; only
  // b.x within one rounding of a.x - t qualifies, found by binary search.
  const std::vector<Segment>& gsegs = g.segments();
  for (const Segment& a : f.segments()) {
    const double target = a.x - t;
    const double slack = 4.0 * std::numeric_limits<double>::epsilon() *
                         (std::fabs(t) + std::fabs(a.x) + 1.0);
    if (target < -slack) continue;
    auto it = std::lower_bound(
        gsegs.begin(), gsegs.end(), target - slack,
        [](const Segment& s, double v) { return s.x < v; });
    for (; it != gsegs.end() && it->x <= target + slack; ++it) {
      const Segment& b = *it;
      if (a.x - b.x != t) continue;
      best = std::max(best, sub_inf(f.value(a.x), g.value(b.x)));
      best = std::max(best, sub_inf(f.value_right(a.x), g.value_right(b.x)));
      if (right_limit) {
        best = std::max(best, sub_inf(f.value_right(a.x), g.value(b.x)));
        if (b.x > 0.0) {
          best = std::max(best, sub_inf(f.value(a.x), g.value_left(b.x)));
        }
      } else if (b.x > 0.0) {
        best = std::max(best, sub_inf(f.value_left(a.x), g.value_left(b.x)));
      }
    }
  }
  return best;
}

/// Branch descriptor for the convolution envelope: the branch curve is
/// c + shape(t - T) (with conv_branch's plateau before T).
struct ConvBranchDesc {
  const Curve* shape;
  double T;
  double c;
};

/// Anchor branches at every breakpoint of `anchor` (both the point value
/// and, where it differs, the left limit — jumps contribute one-sided
/// values to the infimum).
void add_conv_anchors(std::vector<ConvBranchDesc>& descs, const Curve& anchor,
                      const Curve& shape) {
  for (const Segment& s : anchor.segments()) {
    descs.push_back(ConvBranchDesc{&shape, s.x, s.value_at});
    const double left = anchor.value_left(s.x);
    if (left != s.value_at) {
      descs.push_back(ConvBranchDesc{&shape, s.x, left});
    }
  }
}

/// Builds every branch, folds them to their pointwise-minimum envelope,
/// and repairs isolated point values against the exact (f, g) evaluator.
///
/// Parallel structure: branches are processed in fixed-size tiles; each
/// tile builds its branches and folds them locally in one pool task (good
/// locality, one live tile of curves per worker instead of the whole
/// branch set), then the per-tile envelopes fold through the deterministic
/// pairwise reduction. Tile boundaries depend only on the branch count, so
/// the merge tree — and therefore the result, bit for bit — is identical
/// whatever the thread count.
Curve conv_envelope(const std::vector<ConvBranchDesc>& descs, const Curve& f,
                    const Curve& g) {
  constexpr std::size_t kTile = 64;
  const std::size_t n_tiles = (descs.size() + kTile - 1) / kTile;
  std::vector<Curve> tile_env(n_tiles);
  detail::maybe_parallel_for(
      n_tiles, 2, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t ti = lo; ti < hi; ++ti) {
          const std::size_t b0 = ti * kTile;
          const std::size_t b1 = std::min(descs.size(), b0 + kTile);
          std::vector<Curve> branches(b1 - b0);
          for (std::size_t i = b0; i < b1; ++i) {
            branches[i - b0] =
                conv_branch(*descs[i].shape, descs[i].T, descs[i].c);
          }
          tile_env[ti] = detail::reduce_envelope(
              std::move(branches), [](const Curve& a, const Curve& b) {
                return detail::merge_minimum(a, b);
              });
        }
      });
  const Curve env = detail::reduce_envelope(
      std::move(tile_env), [](const Curve& a, const Curve& b) {
        return detail::merge_minimum(a, b);
      });
  return repair_point_values(env,
                             [&](double t) { return conv_at_impl(f, g, t); });
}

/// Constant other(0): convolving with the zero curve takes the whole
/// budget at s = t, so (0 (x) g)(t) = g(0) for every t.
Curve convolve_zero(const Curve& other) {
  const double c = other.value(0.0);
  if (c == kInf) return Curve({Segment{0.0, kInf, kInf, 0.0}});
  return Curve({Segment{0.0, c, c, 0.0}});
}

/// Single-segment f = {0, a0, b0, m} against convex finite g:
///
///   (f (x) g)(t) = min(a0 + g(t), b0 + (rate_m (x) g)(t))
///
/// — the s = 0 split keeps f's origin value; every s > 0 split pays the
/// origin jump b0 plus the convex convolution of the pure rate m with g.
/// Convex finite curves are continuous, so no one-sided combinations are
/// missed and no point repair is needed. This catches the ubiquitous
/// leaky-bucket (x) rate-latency pair, which is neither convex (x) convex
/// (the burst jumps at 0) nor concave (x) concave.
Curve convolve_affine_convex(const Curve& f, const Curve& g) {
  const Segment& s = f.segments().front();
  const Curve ramp = convolve_convex(Curve::rate(s.slope), g);
  return detail::merge_minimum(plus_const(g, s.value_at),
                               plus_const(ramp, s.value_after));
}

/// Staircase kernel: f has a piecewise-constant transient (exactly flat
/// pieces) and one affine tail. The general construction would anchor a
/// full K-piece copy of f at each of g's m breakpoints — O(K·m) segments
/// of branch curves that the envelope then grinds down. But a branch
/// G_j(t) = g(y_j) + f(t - y_j) evaluated where t - y_j lands in a *flat*
/// piece (x_k, x_{k+1}) of f is dominated by the f-anchored branch at
/// x_{k+1} with the left-limit constant w_k (= f's value on that piece):
/// w_k + g(t - x_{k+1}) <= g(y_j) + w_k because t - x_{k+1} < y_j and g is
/// increasing. Only the affine tail of f can genuinely win from a
/// g-anchored branch, so those branches carry a 2-piece "tail shape"
/// (plateau at f(x_T), then f's tail) instead of all of f: the branch set
/// shrinks from O(K·m + K·m) to O(K·m + m) segments. Isolated point
/// values (where the plateau over-estimates) are repaired against the
/// exact evaluator as usual.
Curve convolve_staircase(const Curve& f, const Curve& g) {
  const Segment& tail = f.segments().back();
  std::vector<Segment> tail_segs;
  tail_segs.push_back(Segment{0.0, tail.value_at, tail.value_at, 0.0});
  tail_segs.push_back(tail);
  const Curve f_tail(std::move(tail_segs));
  std::vector<ConvBranchDesc> descs;
  add_conv_anchors(descs, f, g);
  add_conv_anchors(descs, g, f_tail);
  return conv_envelope(descs, f, g);
}

/// True when the staircase kernel applies with `c` as the stair side.
bool staircase_eligible(const Curve& c) {
  return c.shape().piecewise_constant && c.segments().size() >= 4;
}

}  // namespace

Curve add(const Curve& f, const Curve& g) {
  // A piece of f + g lies on the sum of one piece of each operand.
  std::vector<double> slopes;
  for (const Segment& a : f.segments()) {
    if (a.slope == kInf) continue;
    for (const Segment& b : g.segments()) {
      if (b.slope != kInf) slopes.push_back(a.slope + b.slope);
    }
  }
  return pointwise(f, g, [](double a, double b) { return add_inf(a, b); },
                   &slopes);
}

Curve minimum(const Curve& f, const Curve& g) {
  return detail::merge_minimum(f, g);
}

Curve maximum(const Curve& f, const Curve& g) {
  return detail::merge_maximum(f, g);
}

Curve subtract_clamped(const Curve& f, const Curve& g) {
  const auto diff = [](double a, double b) {
    if (a == kInf) return kInf;
    if (b == kInf) return 0.0;
    return std::max(a - b, 0.0);
  };
  std::vector<double> xs = breakpoints(f);
  const std::vector<double> gx = breakpoints(g);
  xs.insert(xs.end(), gx.begin(), gx.end());
  add_crossings(f, g, xs);
  const std::vector<double> grid = detail::canonical_candidates(std::move(xs));

  // Built by hand rather than through the generic builder: that builder
  // clamps away monotonicity violations, but a residual curve that is not
  // wide-sense increasing is simply not a valid service curve (Le Boudec
  // Thm. 6.2.1's proviso) and silently raising it would be unsound.
  std::vector<Segment> segs;
  segs.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double x = grid[i];
    const double at = diff(f.value(x), g.value(x));
    double after = diff(f.value_right(x), g.value_right(x));
    // A downward jump (cross-traffic burst) makes the residual invalid.
    util::require(after >= at - 1e-9 * (1.0 + std::fabs(at)),
                  "subtract_clamped: [f - g]^+ is not wide-sense "
                  "increasing and is not a valid residual service curve");
    after = std::max(after, at);
    double slope = 0.0;
    if (after != kInf) {
      const double probe_x = (i + 1 < grid.size())
                                 ? 0.5 * (x + grid[i + 1])
                                 : x + std::max(1.0, x);
      const double probe = diff(f.value(probe_x), g.value(probe_x));
      slope = (probe - after) / (probe_x - x);
      util::require(slope >= -1e-9 * (1.0 + std::fabs(probe)),
                    "subtract_clamped: [f - g]^+ is not wide-sense "
                    "increasing and is not a valid residual service curve");
      slope = std::max(0.0, slope);
    }
    if (!segs.empty()) {
      const Segment& p = segs.back();
      const double left =
          p.value_after == kInf ? kInf : p.value_after + p.slope * (x - p.x);
      util::require(left == kInf || at >= left - 1e-9 * (1.0 + left),
                    "subtract_clamped: [f - g]^+ is not wide-sense "
                    "increasing and is not a valid residual service curve");
    }
    segs.push_back(Segment{x, at, after, slope});
  }
  return Curve(std::move(segs));
}

double convolve_at(const Curve& f, const Curve& g, double t) {
  util::require(t >= 0.0 && !std::isnan(t), "convolve_at requires t >= 0");
  return conv_at_impl(f, g, t);
}

Curve convolve(const Curve& f, const Curve& g) {
  SC_OBS_SPAN("minplus", "convolve");
  SC_OBS_COUNT("minplus.convolve.calls", 1);
  SC_OBS_OBSERVE("minplus.convolve.operand_pieces",
                 f.segments().size() + g.segments().size());
  // Shape dispatch (DESIGN.md §11): classify once from the cached shape
  // metadata, count which kernel fired, and route.
  const detail::ConvKernel kernel = detail::classify_convolve(f, g);
  Curve out = [&]() -> Curve {
    switch (kernel) {
      case detail::ConvKernel::kDelay: {
        SC_OBS_COUNT("minplus.convolve.kernel.delay", 1);
        // delta_T is the shift operator — but only for curves that start
        // at 0: delta_T (x) g equals g(0) on [0, T), not 0, so a curve
        // with g(0) > 0 takes the general path (whose T-anchored branch
        // produces exactly that plateau).
        if (const double tf = pure_delay_latency(f); tf >= 0.0) {
          return g.shift_right(tf);
        }
        return f.shift_right(pure_delay_latency(g));
      }
      case detail::ConvKernel::kZero:
        SC_OBS_COUNT("minplus.convolve.kernel.zero", 1);
        return convolve_zero(f.is_zero() ? g : f);
      case detail::ConvKernel::kConvex:
        SC_OBS_COUNT("minplus.convolve.kernel.convex", 1);
        return convolve_convex(f, g);
      case detail::ConvKernel::kConcave:
        SC_OBS_COUNT("minplus.convolve.kernel.concave", 1);
        return detail::merge_minimum(f, g);
      case detail::ConvKernel::kAffineConvex:
        SC_OBS_COUNT("minplus.convolve.kernel.affine_convex", 1);
        if (f.segments().size() == 1 && f.is_finite() && g.is_convex() &&
            g.is_finite()) {
          return convolve_affine_convex(f, g);
        }
        return convolve_affine_convex(g, f);
      case detail::ConvKernel::kStaircase: {
        SC_OBS_COUNT("minplus.convolve.kernel.staircase", 1);
        // Prune the side with more flat pieces; either qualifies.
        const bool f_side =
            staircase_eligible(f) &&
            (!staircase_eligible(g) ||
             f.segments().size() >= g.segments().size());
        return f_side ? convolve_staircase(f, g) : convolve_staircase(g, f);
      }
      case detail::ConvKernel::kGeneral:
        break;
    }
    SC_OBS_COUNT("minplus.convolve.kernel.general", 1);
    return detail::convolve_general(f, g);
  }();
  SC_OBS_OBSERVE("minplus.convolve.result_pieces", out.segments().size());
  return out;
}

double deconvolve_at(const Curve& f, const Curve& g, double t) {
  util::require(t >= 0.0 && !std::isnan(t), "deconvolve_at requires t >= 0");
  if (detail::tail_diverges(f, g)) return kInf;
  return deconv_at_impl(f, g, t, /*right_limit=*/false);
}

Curve deconvolve(const Curve& f, const Curve& g) {
  SC_OBS_SPAN("minplus", "deconvolve");
  SC_OBS_COUNT("minplus.deconvolve.calls", 1);
  SC_OBS_OBSERVE("minplus.deconvolve.operand_pieces",
                 f.segments().size() + g.segments().size());
  const detail::DeconvKernel kernel = detail::classify_deconvolve(f, g);
  Curve out = [&]() -> Curve {
    switch (kernel) {
      case detail::DeconvKernel::kDivergent:
        SC_OBS_COUNT("minplus.deconvolve.kernel.divergent", 1);
        // The supremum diverges for every t: the deconvolution is +inf
        // everywhere (the flow cannot be bounded by any arrival curve).
        return Curve({Segment{0.0, kInf, kInf, 0.0}});
      case detail::DeconvKernel::kDelay:
        SC_OBS_COUNT("minplus.deconvolve.kernel.delay", 1);
        // g = delta_T contributes 0 on [0, T] and -inf after: the supremum
        // sits at s = T, so (f (/) delta_T)(t) = f(t + T).
        return f.shift_left(pure_delay_latency(g));
      case detail::DeconvKernel::kGeneral:
        break;
    }
    SC_OBS_COUNT("minplus.deconvolve.kernel.general", 1);
    return detail::deconvolve_general(f, g);
  }();
  SC_OBS_OBSERVE("minplus.deconvolve.result_pieces", out.segments().size());
  return out;
}

Curve subadditive_closure(const Curve& f, int max_terms) {
  SC_OBS_SPAN("minplus", "closure");
  SC_OBS_COUNT("minplus.closure.calls", 1);
  util::require(max_terms >= 1, "subadditive_closure requires max_terms >= 1");
  Curve closure = minimum(Curve::delta(0.0), f);
  Curve power = f;
  for (int i = 1; i < max_terms; ++i) {
    power = convolve(power, f);
    Curve next = minimum(closure, power);
    if (next == closure) return closure;
    closure = std::move(next);
  }
  return closure;
}

namespace detail {

const char* kernel_name(ConvKernel k) {
  switch (k) {
    case ConvKernel::kDelay:
      return "delay";
    case ConvKernel::kZero:
      return "zero";
    case ConvKernel::kConvex:
      return "convex";
    case ConvKernel::kConcave:
      return "concave";
    case ConvKernel::kAffineConvex:
      return "affine_convex";
    case ConvKernel::kStaircase:
      return "staircase";
    case ConvKernel::kGeneral:
      break;
  }
  return "general";
}

const char* kernel_name(DeconvKernel k) {
  switch (k) {
    case DeconvKernel::kDivergent:
      return "divergent";
    case DeconvKernel::kDelay:
      return "delay";
    case DeconvKernel::kGeneral:
      break;
  }
  return "general";
}

ConvKernel classify_convolve(const Curve& f, const Curve& g) {
  if (const double tf = pure_delay_latency(f); tf >= 0.0) {
    if (g.value(0.0) == 0.0) return ConvKernel::kDelay;
  } else if (const double tg = pure_delay_latency(g); tg >= 0.0) {
    if (f.value(0.0) == 0.0) return ConvKernel::kDelay;
  }
  if (f.is_zero() || g.is_zero()) return ConvKernel::kZero;
  if (f.is_finite() && g.is_finite() && f.is_convex() && g.is_convex()) {
    return ConvKernel::kConvex;
  }
  if (f.is_concave_from_origin() && g.is_concave_from_origin()) {
    return ConvKernel::kConcave;
  }
  if ((f.segments().size() == 1 && f.is_finite() && g.is_convex() &&
       g.is_finite()) ||
      (g.segments().size() == 1 && g.is_finite() && f.is_convex() &&
       f.is_finite())) {
    return ConvKernel::kAffineConvex;
  }
  if (staircase_eligible(f) || staircase_eligible(g)) {
    return ConvKernel::kStaircase;
  }
  return ConvKernel::kGeneral;
}

DeconvKernel classify_deconvolve(const Curve& f, const Curve& g) {
  if (tail_diverges(f, g)) return DeconvKernel::kDivergent;
  if (pure_delay_latency(g) >= 0.0) return DeconvKernel::kDelay;
  return DeconvKernel::kGeneral;
}

Curve convolve_general(const Curve& f, const Curve& g) {
  // The infimum over the split point s is attained (or approached) where s
  // or t - s sits at an operand breakpoint; each such anchoring yields a
  // whole *branch curve* in t — a shifted copy of one operand plus a
  // constant from the other. The convolution is the pointwise minimum of
  // all branches; crossing kinks come from the direct segment merge, and
  // isolated point values are repaired from the exact evaluator.
  std::vector<ConvBranchDesc> descs;
  add_conv_anchors(descs, f, g);
  add_conv_anchors(descs, g, f);
  return conv_envelope(descs, f, g);
}

Curve deconvolve_general(const Curve& f, const Curve& g) {
  // Reflected-branch envelope, dual to convolve_general(): the supremum
  // over s is attained (or approached) where s sits at a breakpoint of g
  // or where t + s sits at a breakpoint of f. Each anchoring is a whole
  // curve in t; the deconvolution is their pointwise maximum, with
  // isolated point values repaired afterwards.
  //
  // Same tiled parallel structure as conv_envelope(): each tile builds and
  // locally folds its branches in one pool task, tile boundaries depend
  // only on the branch count, and the cross-tile fold is the deterministic
  // pairwise reduction — bit-identical results whatever the thread count.
  struct BranchDesc {
    double s;     ///< g-anchor abscissa (shift), or f-anchor abscissa
    double c;     ///< constant contribution
    bool from_f;  ///< true: reflected branch anchored at an f breakpoint
  };
  std::vector<BranchDesc> descs;
  const auto add_g_anchor = [&](double s) {
    for (double c : {g.value(s), g.value_left(s)}) {
      if (c == kInf) continue;
      descs.push_back(BranchDesc{s, c, /*from_f=*/false});
    }
  };
  for (const Segment& sg : g.segments()) add_g_anchor(sg.x);
  // One anchor beyond all breakpoints: past it the difference decays (the
  // unbounded case was excluded by dispatch), so the tail is fully covered.
  add_g_anchor(std::max(f.last_breakpoint(), g.last_breakpoint()) + 1.0);
  for (const Segment& sf : f.segments()) {
    descs.push_back(BranchDesc{sf.x, f.value_right(sf.x), /*from_f=*/true});
  }
  constexpr std::size_t kTile = 64;
  const std::size_t n = descs.size() + 1;  // slot 0 is the zero floor
  const std::size_t n_tiles = (n + kTile - 1) / kTile;
  std::vector<Curve> tile_env(n_tiles);
  maybe_parallel_for(n_tiles, 2, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t ti = lo; ti < hi; ++ti) {
      const std::size_t b0 = ti * kTile;
      const std::size_t b1 = std::min(n, b0 + kTile);
      std::vector<Curve> branches(b1 - b0);
      for (std::size_t i = b0; i < b1; ++i) {
        if (i == 0) {
          branches[0] = Curve::zero();  // the deconvolution clamps at 0
          continue;
        }
        const BranchDesc& d = descs[i - 1];
        branches[i - b0] = d.from_f
                               ? deconv_reflected_branch(g, d.s, d.c)
                               : f.shift_left(d.s).minus_clamped(d.c);
      }
      tile_env[ti] = reduce_envelope(
          std::move(branches),
          [](const Curve& a, const Curve& b) { return merge_maximum(a, b); });
    }
  });
  const Curve env = reduce_envelope(
      std::move(tile_env),
      [](const Curve& a, const Curve& b) { return merge_maximum(a, b); });
  return repair_point_values(env, [&](double t) {
    return deconv_at_impl(f, g, t, /*right_limit=*/false);
  });
}

}  // namespace detail

}  // namespace streamcalc::minplus
