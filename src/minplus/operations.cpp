#include "minplus/operations.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "minplus/detail/builder.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace streamcalc::minplus {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double add_inf(double a, double b) {
  if (a == kInf || b == kInf) return kInf;
  return a + b;
}

/// a - b for the deconvolution sup: +inf beats everything; a -inf
/// contribution (b == +inf with finite a) can never be the sup, and the
/// caller skips it by checking the return for NaN-free semantics here.
/// Returns -inf when b == +inf (and a finite) so max() ignores it.
double sub_inf(double a, double b) {
  if (a == kInf && b == kInf) return -kInf;  // undefined piece; ignore
  if (a == kInf) return kInf;
  if (b == kInf) return -kInf;
  return a - b;
}

std::vector<double> breakpoints(const Curve& c) {
  std::vector<double> xs;
  xs.reserve(c.segments().size());
  for (const Segment& s : c.segments()) xs.push_back(s.x);
  return xs;
}

/// Adds the crossing abscissae of f and g (where f - g changes sign inside
/// a linear piece) to `xs`, which must already contain all breakpoints of
/// both curves.
void add_crossings(const Curve& f, const Curve& g, std::vector<double>& xs) {
  const std::vector<double> grid = detail::canonical_candidates(xs);
  auto crossing_in = [&](double x1, double x2_or_inf) {
    const double vf = f.value_right(x1);
    const double vg = g.value_right(x1);
    if (vf == kInf || vg == kInf) return;
    double mf, mg;
    if (std::isfinite(x2_or_inf)) {
      const double lf = f.value_left(x2_or_inf);
      const double lg = g.value_left(x2_or_inf);
      if (lf == kInf || lg == kInf) return;
      mf = (lf - vf) / (x2_or_inf - x1);
      mg = (lg - vg) / (x2_or_inf - x1);
    } else {
      mf = f.tail_slope();
      mg = g.tail_slope();
      if (mf == kInf || mg == kInf) return;
    }
    const double d0 = vf - vg;
    const double ms = mf - mg;
    // Nearly-parallel pieces have no numerically meaningful crossing; the
    // division below would fabricate a breakpoint at an absurd abscissa.
    if (std::fabs(ms) <= 1e-9 * (std::fabs(mf) + std::fabs(mg))) return;
    const double t = x1 - d0 / ms;
    // A crossing at (or within rounding distance of) an interval endpoint
    // adds nothing — and keeping it would make the later dedup drop the
    // true breakpoint (losing any jump there) in favour of the crossing.
    // The margin sits just above canonical_candidates' dedup tolerance
    // (1e-12 relative): any coarser and steep pieces lose real kinks that
    // sit barely inside the interval (slope ~1e9 turns an 1e-10 abscissa
    // gap into an O(1) value change).
    const double tol = 4e-12 * (1.0 + std::fabs(t));
    if (t <= x1 + tol) return;
    if (std::isfinite(x2_or_inf) && t >= x2_or_inf - tol) return;
    xs.push_back(t);
  };
  for (std::size_t i = 0; i + 1 < grid.size(); ++i) {
    crossing_in(grid[i], grid[i + 1]);
  }
  crossing_in(grid.back(), kInf);
}

/// Finite slopes a min/max of f and g can take: every piece of the result
/// lies on a piece of one operand.
std::vector<double> operand_slopes(const Curve& f, const Curve& g) {
  std::vector<double> ms;
  ms.reserve(f.segments().size() + g.segments().size());
  for (const Curve* c : {&f, &g}) {
    for (const Segment& s : c->segments()) {
      if (s.slope != kInf) ms.push_back(s.slope);
    }
  }
  return ms;
}

template <typename Op>
Curve pointwise(const Curve& f, const Curve& g, const Op& op,
                bool needs_crossings,
                const std::vector<double>* slope_set = nullptr) {
  std::vector<double> xs = breakpoints(f);
  const std::vector<double> gx = breakpoints(g);
  xs.insert(xs.end(), gx.begin(), gx.end());
  if (needs_crossings) add_crossings(f, g, xs);
  const std::vector<double> grid = detail::canonical_candidates(std::move(xs));
  return detail::build_from_evaluators(
      grid, [&](double t) { return op(f.value(t), g.value(t)); },
      [&](double t) { return op(f.value_right(t), g.value_right(t)); },
      slope_set);
}

/// Returns the latency T if the curve is exactly delta_T, else a negative
/// sentinel.
double pure_delay_latency(const Curve& c) {
  const auto& segs = c.segments();
  if (segs.size() == 1) {
    const Segment& s = segs.front();
    if (s.value_at == 0.0 && s.value_after == kInf) return 0.0;
    return -1.0;
  }
  if (segs.size() == 2 && segs[0] == Segment{0.0, 0.0, 0.0, 0.0}) {
    const Segment& s = segs[1];
    if (s.value_at == 0.0 && s.value_after == kInf) return s.x;
  }
  return -1.0;
}

/// Slope-sorted convolution of two finite convex curves.
Curve convolve_convex(const Curve& f, const Curve& g) {
  struct Piece {
    double slope;
    double length;  // kInf for the final segment
  };
  auto pieces_of = [](const Curve& c) {
    std::vector<Piece> ps;
    const auto& segs = c.segments();
    for (std::size_t i = 0; i < segs.size(); ++i) {
      const double len =
          (i + 1 < segs.size()) ? segs[i + 1].x - segs[i].x : kInf;
      ps.push_back(Piece{segs[i].slope, len});
    }
    return ps;
  };
  std::vector<Piece> pieces = pieces_of(f);
  const std::vector<Piece> gp = pieces_of(g);
  pieces.insert(pieces.end(), gp.begin(), gp.end());
  std::stable_sort(pieces.begin(), pieces.end(),
                   [](const Piece& a, const Piece& b) {
                     return a.slope < b.slope;
                   });

  std::vector<Segment> segs;
  double x = 0.0;
  double y = f.value(0.0) + g.value(0.0);
  for (const Piece& p : pieces) {
    if (segs.empty() || x > segs.back().x) {
      segs.push_back(Segment{x, y, y, p.slope});
    } else {
      // The previous piece's width rounded away at this magnitude; the
      // region belongs to this piece's slope.
      segs.back().slope = p.slope;
    }
    if (p.length == kInf) break;  // all later pieces are steeper; unused
    x += p.length;
    y += p.slope * p.length;
  }
  return Curve(std::move(segs));
}

/// t -> c + g(t) (also lifting the origin value). c may be +inf.
Curve plus_const(const Curve& g, double c) {
  if (c == kInf) {
    return Curve({Segment{0.0, kInf, kInf, 0.0}});
  }
  std::vector<Segment> out = g.segments();
  for (Segment& s : out) {
    s.value_at = add_inf(s.value_at, c);
    s.value_after = add_inf(s.value_after, c);
  }
  return Curve(std::move(out));
}

/// Branch of the convolution infimum anchored at split point s = T with
/// f-contribution c: exactly c + g(t - T) for t >= T, and the safe plateau
/// c + g(0) on [0, T). (Safe because conv(t) <= f(t) + g(0) <= c + g(0)
/// there whenever c is a value f takes at or after t.)
Curve conv_branch(const Curve& g, double T, double c) {
  if (c == kInf) return plus_const(g, c);
  std::vector<Segment> out;
  const double plateau = add_inf(g.value(0.0), c);
  if (T > 0.0) out.push_back(Segment{0.0, plateau, plateau, 0.0});
  for (const Segment& s : g.segments()) {
    const double x = s.x + T;
    if (!out.empty() && x <= out.back().x) continue;  // ulp collision
    out.push_back(Segment{x, add_inf(s.value_at, c),
                          add_inf(s.value_after, c), s.slope});
  }
  detail::rechord_translated(out);
  return Curve(std::move(out));
}

/// Replaces each breakpoint's value_at with the exact evaluator's value
/// (clamped into [left limit, right limit] so rounding noise cannot break
/// monotonicity). The envelope construction is exact on open intervals and
/// at right limits, but at isolated breakpoints the true value can differ
/// from the branch minimum/maximum; this repairs those points. The exact
/// evaluations are independent per breakpoint and fan out to the pool on
/// large envelopes (each writes its own slot; the clamp chain stays
/// serial).
template <typename AtFn>
Curve repair_point_values(const Curve& env, const AtFn& at) {
  std::vector<Segment> segs = env.segments();
  std::vector<double> exact(segs.size());
  detail::maybe_parallel_for(
      segs.size(), detail::kParallelGridThreshold, detail::kParallelGridGrain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) exact[i] = at(segs[i].x);
      });
  for (std::size_t i = 0; i < segs.size(); ++i) {
    Segment& s = segs[i];
    double lo = 0.0;
    if (i > 0) {
      const Segment& p = segs[i - 1];
      lo = p.value_after == kInf ? kInf
                                 : p.value_after + p.slope * (s.x - p.x);
    }
    if (i > 0 && lo != kInf && exact[i] < lo &&
        exact[i] >= segs[i - 1].value_after) {
      // The previous piece overextends past this breakpoint's exact
      // value: its abscissa rounded beyond the true crossing, so the
      // stored slope's extrapolation overshoots. Rechord the previous
      // piece down to the exact value rather than clamping the exact
      // value up to the stale extrapolation (which would bake the
      // overshoot into the entire tail).
      Segment& p = segs[i - 1];
      p.slope = (exact[i] - p.value_after) / (s.x - p.x);
      lo = exact[i];
    }
    if (lo != kInf && s.value_after < lo - 1e-9 * (1.0 + lo)) {
      // Degenerate envelope piece: the previous segment's extrapolation
      // overshoots this breakpoint's right limit by more than the curve
      // tolerance (normalize() merges collinear pieces with a tolerance,
      // so the stored slope can drift over long near-flat spans). Lift
      // the point to the left limit to keep the curve wide-sense
      // increasing; the bump stays within the merge tolerance.
      s.value_at = lo;
      s.value_after = lo;
      continue;
    }
    s.value_at = std::min(std::max(exact[i], lo), s.value_after);
  }
  return Curve(std::move(segs));
}

/// Branch of the deconvolution supremum anchored at t + s = X with
/// f-contribution c: max(0, c - g(X - t)) on [0, X], constant after (safe
/// because deconv(t) >= f(t) - g(0) >= c - g(0) for t >= X).
///
/// Built directly from g's segments. Re-evaluating g at fl(X - t) for a
/// candidate t = fl(X - x_j) rounds twice and can land an ulp past the
/// jump at x_j, which both misses the jump value and lets the midpoint
/// probe fabricate a wrong slope; carrying g's exact values to the
/// reflected breakpoints avoids re-evaluation entirely.
Curve deconv_reflected_branch(const Curve& g, double X, double c) {
  const std::vector<Segment>& gs = g.segments();
  // Raw (unclamped) reflected breakpoints, ascending in t. t_j = X - x_j
  // reverses g's pieces: the slope right of t_j is the slope of g's piece
  // left of x_j, and the right limit in t is g's left limit in u.
  struct Raw {
    double t, at, after, slope;
  };
  std::vector<Raw> raw;
  raw.reserve(gs.size() + 1);
  std::size_t m = 0;  // last segment whose abscissa lies in [0, X]
  while (m + 1 < gs.size() && gs[m + 1].x <= X) ++m;
  {
    const double at = sub_inf(c, g.value(X));
    const double after = X > 0.0 ? sub_inf(c, g.value_left(X)) : at;
    double slope = 0.0;  // X == 0: the branch is constant
    if (X > gs[m].x) {
      slope = gs[m].slope;  // u = X - t starts inside segment m
    } else if (m > 0) {
      slope = gs[m - 1].slope;  // X == x_m: u immediately enters piece m-1
    }
    raw.push_back(Raw{0.0, at, after, slope});
  }
  for (std::size_t jj = m + 1; jj-- > 0;) {
    const Segment& sj = gs[jj];
    const double tj = X - sj.x;
    if (tj <= 0.0) continue;  // coincides with the start point
    const double at = sub_inf(c, sj.value_at);
    double after, slope;
    if (jj > 0) {
      after = sub_inf(c, g.value_left(sj.x));
      slope = gs[jj - 1].slope;
    } else {
      after = at;  // constant plateau past t = X
      slope = 0.0;
    }
    if (tj <= raw.back().t) {
      // Micro-gap breakpoints collapsed by abscissa rounding: merge.
      raw.back().after = std::max(raw.back().after, after);
      raw.back().slope = slope;
      continue;
    }
    raw.push_back(Raw{tj, at, after, slope});
  }
  // Clamp at 0. A piece whose raw line starts below zero stays flat at 0
  // up to the crossing and only then takes g's slope.
  std::vector<Segment> out;
  out.reserve(raw.size() + 1);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const Raw& r = raw[i];
    const double at = std::max(0.0, r.at);
    double slope = r.slope;
    if (r.after == kInf) slope = 0.0;
    if (r.after < 0.0) {
      out.push_back(Segment{r.t, at, 0.0, 0.0});
      if (std::isfinite(r.after) && slope > 0.0 && slope != kInf) {
        const double t_cross = r.t - r.after / slope;
        const double next_t = i + 1 < raw.size() ? raw[i + 1].t : kInf;
        if (t_cross > r.t && t_cross < next_t) {
          out.push_back(Segment{t_cross, 0.0, 0.0, slope});
        }
      }
      continue;
    }
    out.push_back(Segment{r.t, at, r.after, slope});
  }
  detail::rechord_translated(out);
  return Curve(std::move(out));
}

double conv_at_impl(const Curve& f, const Curve& g, double t) {
  // Candidate splits (s, u) with s + u == t up to one rounding. Each split
  // keeps the anchoring operand's breakpoint abscissa EXACT and rounds
  // only the complement: recomputing u = t - s after s = t - b.x already
  // rounded can land one ulp past b.x and miss the operand's pre-jump
  // point value there.
  struct Split {
    double s, u;
  };
  std::vector<Split> ss{{0.0, t}, {t, 0.0}};
  for (const Segment& a : f.segments()) {
    if (a.x <= t) ss.push_back(Split{a.x, t - a.x});
  }
  for (const Segment& b : g.segments()) {
    if (b.x <= t) ss.push_back(Split{t - b.x, b.x});
  }
  double best = kInf;
  for (const Split& sp : ss) {
    if (sp.s < 0.0 || sp.u < 0.0) continue;
    best = std::min(best, add_inf(f.value(sp.s), g.value(sp.u)));
    if (sp.u > 0.0) {
      best = std::min(best, add_inf(f.value_right(sp.s), g.value_left(sp.u)));
    }
    if (sp.s > 0.0) {
      best = std::min(best, add_inf(f.value_left(sp.s), g.value_right(sp.u)));
    }
  }
  // Breakpoint pairs whose rounded sum lands exactly on t. The envelope
  // construction places result breakpoints at fl(x_f + x_g); the split
  // candidates above recompute t - x, which can round one ulp past the
  // other operand's jump and miss its point value — and does so
  // differently for (f, g) and (g, f). Evaluating the pair directly is
  // symmetric in the operands and anchors the jump at the representable
  // breakpoint.
  for (const Segment& a : f.segments()) {
    if (a.x > t) break;
    for (const Segment& b : g.segments()) {
      if (b.x > t) break;
      if (a.x + b.x != t) continue;
      best = std::min(best, add_inf(f.value(a.x), g.value(b.x)));
      if (a.x > 0.0) {
        best = std::min(best, add_inf(f.value_left(a.x), g.value_right(b.x)));
      }
      if (b.x > 0.0) {
        best = std::min(best, add_inf(f.value_right(a.x), g.value_left(b.x)));
      }
    }
  }
  return best;
}

double deconv_at_impl(const Curve& f, const Curve& g, double t,
                      bool right_limit) {
  std::vector<double> ss{0.0};
  for (const Segment& s : g.segments()) ss.push_back(s.x);
  for (const Segment& s : f.segments()) {
    if (s.x >= t) ss.push_back(s.x - t);
  }
  // One probe beyond every breakpoint: past it the difference is affine
  // with non-positive slope (callers rule out the unbounded case first),
  // so no larger value exists further out.
  ss.push_back(std::max(f.last_breakpoint(), g.last_breakpoint()) + 1.0);

  double best = 0.0;  // deconvolution of cumulative curves clamps at 0
  for (double s : ss) {
    if (s < 0.0) continue;
    const double a = t + s;
    if (right_limit) {
      best = std::max(best, sub_inf(f.value_right(a), g.value(s)));
      best = std::max(best, sub_inf(f.value_right(a), g.value_right(s)));
      best = std::max(best, sub_inf(f.value(a), g.value(s)));
      if (s > 0.0) {
        best = std::max(best, sub_inf(f.value(a), g.value_left(s)));
      }
    } else {
      best = std::max(best, sub_inf(f.value(a), g.value(s)));
      best = std::max(best, sub_inf(f.value_right(a), g.value_right(s)));
      if (s > 0.0) {
        best = std::max(best, sub_inf(f.value_left(a), g.value_left(s)));
      }
    }
    if (best == kInf) break;
  }
  if (best == kInf) return best;
  // Dual of the pair scan in conv_at_impl: result breakpoints sit at
  // fl(x_f - x_g), and recomputing t + s can round past a jump of f.
  // Evaluate pairs whose rounded difference is exactly t directly.
  for (const Segment& a : f.segments()) {
    for (const Segment& b : g.segments()) {
      if (b.x > a.x) break;
      if (a.x - b.x != t) continue;
      best = std::max(best, sub_inf(f.value(a.x), g.value(b.x)));
      best = std::max(best, sub_inf(f.value_right(a.x), g.value_right(b.x)));
      if (right_limit) {
        best = std::max(best, sub_inf(f.value_right(a.x), g.value(b.x)));
        if (b.x > 0.0) {
          best = std::max(best, sub_inf(f.value(a.x), g.value_left(b.x)));
        }
      } else if (b.x > 0.0) {
        best = std::max(best, sub_inf(f.value_left(a.x), g.value_left(b.x)));
      }
    }
  }
  return best;
}

}  // namespace

Curve add(const Curve& f, const Curve& g) {
  // A piece of f + g lies on the sum of one piece of each operand.
  std::vector<double> slopes;
  for (const Segment& a : f.segments()) {
    if (a.slope == kInf) continue;
    for (const Segment& b : g.segments()) {
      if (b.slope != kInf) slopes.push_back(a.slope + b.slope);
    }
  }
  return pointwise(f, g, [](double a, double b) { return add_inf(a, b); },
                   /*needs_crossings=*/false, &slopes);
}

Curve minimum(const Curve& f, const Curve& g) {
  const std::vector<double> slopes = operand_slopes(f, g);
  return pointwise(f, g, [](double a, double b) { return std::min(a, b); },
                   /*needs_crossings=*/true, &slopes);
}

Curve maximum(const Curve& f, const Curve& g) {
  const std::vector<double> slopes = operand_slopes(f, g);
  return pointwise(f, g, [](double a, double b) { return std::max(a, b); },
                   /*needs_crossings=*/true, &slopes);
}

Curve subtract_clamped(const Curve& f, const Curve& g) {
  const auto diff = [](double a, double b) {
    if (a == kInf) return kInf;
    if (b == kInf) return 0.0;
    return std::max(a - b, 0.0);
  };
  std::vector<double> xs = breakpoints(f);
  const std::vector<double> gx = breakpoints(g);
  xs.insert(xs.end(), gx.begin(), gx.end());
  add_crossings(f, g, xs);
  const std::vector<double> grid = detail::canonical_candidates(std::move(xs));

  // Built by hand rather than through the generic builder: that builder
  // clamps away monotonicity violations, but a residual curve that is not
  // wide-sense increasing is simply not a valid service curve (Le Boudec
  // Thm. 6.2.1's proviso) and silently raising it would be unsound.
  std::vector<Segment> segs;
  segs.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double x = grid[i];
    const double at = diff(f.value(x), g.value(x));
    double after = diff(f.value_right(x), g.value_right(x));
    // A downward jump (cross-traffic burst) makes the residual invalid.
    util::require(after >= at - 1e-9 * (1.0 + std::fabs(at)),
                  "subtract_clamped: [f - g]^+ is not wide-sense "
                  "increasing and is not a valid residual service curve");
    after = std::max(after, at);
    double slope = 0.0;
    if (after != kInf) {
      const double probe_x = (i + 1 < grid.size())
                                 ? 0.5 * (x + grid[i + 1])
                                 : x + std::max(1.0, x);
      const double probe = diff(f.value(probe_x), g.value(probe_x));
      slope = (probe - after) / (probe_x - x);
      util::require(slope >= -1e-9 * (1.0 + std::fabs(probe)),
                    "subtract_clamped: [f - g]^+ is not wide-sense "
                    "increasing and is not a valid residual service curve");
      slope = std::max(0.0, slope);
    }
    if (!segs.empty()) {
      const Segment& p = segs.back();
      const double left =
          p.value_after == kInf ? kInf : p.value_after + p.slope * (x - p.x);
      util::require(left == kInf || at >= left - 1e-9 * (1.0 + left),
                    "subtract_clamped: [f - g]^+ is not wide-sense "
                    "increasing and is not a valid residual service curve");
    }
    segs.push_back(Segment{x, at, after, slope});
  }
  return Curve(std::move(segs));
}

double convolve_at(const Curve& f, const Curve& g, double t) {
  util::require(t >= 0.0 && !std::isnan(t), "convolve_at requires t >= 0");
  return conv_at_impl(f, g, t);
}

Curve convolve(const Curve& f, const Curve& g) {
  SC_OBS_SPAN("minplus", "convolve");
  SC_OBS_COUNT("minplus.convolve.calls", 1);
  SC_OBS_OBSERVE("minplus.convolve.operand_pieces",
                 f.segments().size() + g.segments().size());
  // delta_T is the shift operator — but only for curves that start at 0:
  // delta_T (x) g equals g(0) on [0, T), not 0, so a curve with g(0) > 0
  // must take the general path (whose T-anchored branch produces exactly
  // that plateau).
  if (const double tf = pure_delay_latency(f); tf >= 0.0) {
    if (g.value(0.0) == 0.0) return g.shift_right(tf);
  } else if (const double tg = pure_delay_latency(g); tg >= 0.0) {
    if (f.value(0.0) == 0.0) return f.shift_right(tg);
  }
  // Closed forms.
  if (f.is_finite() && g.is_finite() && f.is_convex() && g.is_convex()) {
    return convolve_convex(f, g);
  }
  if (f.is_concave_from_origin() && g.is_concave_from_origin()) {
    return minimum(f, g);
  }
  // General exact algorithm. The infimum over the split point s is attained
  // (or approached) where s or t - s sits at an operand breakpoint; each
  // such anchoring yields a whole *branch curve* in t — a shifted copy of
  // one operand plus a constant from the other. The convolution is the
  // pointwise minimum of all branches, and minimum() finds the crossing
  // kinks between branches exactly. Isolated point values are then repaired
  // from the direct evaluator.
  //
  // Parallel structure: anchors are enumerated serially (cheap, and fixes
  // the branch order), branch curves are built concurrently into their own
  // slots, and the envelope is folded by a balanced pairwise reduction
  // whose shape depends only on the branch count — so the result is
  // bit-identical whatever the thread count.
  struct BranchDesc {
    const Curve* shape;
    double T;
    double c;
  };
  std::vector<BranchDesc> descs;
  const auto add_branches = [&descs](const Curve& anchor,
                                     const Curve& shape) {
    for (const Segment& s : anchor.segments()) {
      descs.push_back(BranchDesc{&shape, s.x, s.value_at});
      const double left = anchor.value_left(s.x);
      if (left != s.value_at) {
        descs.push_back(BranchDesc{&shape, s.x, left});
      }
    }
  };
  add_branches(f, g);
  add_branches(g, f);
  std::vector<Curve> branches(descs.size());
  detail::maybe_parallel_for(
      descs.size(), detail::kParallelBranchThreshold,
      detail::kParallelBranchGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          branches[i] = conv_branch(*descs[i].shape, descs[i].T, descs[i].c);
        }
      });
  const Curve env = detail::reduce_envelope(
      std::move(branches),
      [](const Curve& a, const Curve& b) { return minimum(a, b); });
  Curve out = repair_point_values(
      env, [&](double t) { return conv_at_impl(f, g, t); });
  SC_OBS_OBSERVE("minplus.convolve.result_pieces", out.segments().size());
  return out;
}

double deconvolve_at(const Curve& f, const Curve& g, double t) {
  util::require(t >= 0.0 && !std::isnan(t), "deconvolve_at requires t >= 0");
  if (detail::tail_diverges(f, g)) return kInf;
  return deconv_at_impl(f, g, t, /*right_limit=*/false);
}

Curve deconvolve(const Curve& f, const Curve& g) {
  SC_OBS_SPAN("minplus", "deconvolve");
  SC_OBS_COUNT("minplus.deconvolve.calls", 1);
  SC_OBS_OBSERVE("minplus.deconvolve.operand_pieces",
                 f.segments().size() + g.segments().size());
  if (detail::tail_diverges(f, g)) {
    // The supremum diverges for every t: the deconvolution is +inf
    // everywhere (the flow cannot be bounded by any arrival curve).
    return Curve({Segment{0.0, kInf, kInf, 0.0}});
  }
  // Branch-envelope construction, dual to convolve(): the supremum over s
  // is attained (or approached) where s sits at a breakpoint of g or where
  // t + s sits at a breakpoint of f. Each anchoring is a whole curve in t;
  // the deconvolution is their pointwise maximum (maximum() finds crossing
  // kinks exactly), with isolated point values repaired afterwards.
  //
  // Same parallel structure as convolve(): serial anchor enumeration fixes
  // the branch order, branch curves build concurrently, and the envelope
  // folds through the deterministic pairwise reduction.
  struct BranchDesc {
    double s;     ///< g-anchor abscissa (shift), or f-anchor abscissa
    double c;     ///< constant contribution
    bool from_f;  ///< true: reflected branch anchored at an f breakpoint
  };
  std::vector<BranchDesc> descs;
  const auto add_g_anchor = [&](double s) {
    for (double c : {g.value(s), g.value_left(s)}) {
      if (c == kInf) continue;
      descs.push_back(BranchDesc{s, c, /*from_f=*/false});
    }
  };
  for (const Segment& sg : g.segments()) add_g_anchor(sg.x);
  // One anchor beyond all breakpoints: past it the difference decays (the
  // unbounded case was excluded above), so the tail is fully covered.
  add_g_anchor(std::max(f.last_breakpoint(), g.last_breakpoint()) + 1.0);
  for (const Segment& sf : f.segments()) {
    descs.push_back(BranchDesc{sf.x, f.value_right(sf.x), /*from_f=*/true});
  }
  std::vector<Curve> branches(descs.size() + 1);
  branches.front() = Curve::zero();
  detail::maybe_parallel_for(
      descs.size(), detail::kParallelBranchThreshold,
      detail::kParallelBranchGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const BranchDesc& d = descs[i];
          branches[i + 1] =
              d.from_f ? deconv_reflected_branch(g, d.s, d.c)
                       : f.shift_left(d.s).minus_clamped(d.c);
        }
      });
  const Curve env = detail::reduce_envelope(
      std::move(branches),
      [](const Curve& a, const Curve& b) { return maximum(a, b); });
  Curve out = repair_point_values(env, [&](double t) {
    return deconv_at_impl(f, g, t, /*right_limit=*/false);
  });
  SC_OBS_OBSERVE("minplus.deconvolve.result_pieces", out.segments().size());
  return out;
}

Curve subadditive_closure(const Curve& f, int max_terms) {
  SC_OBS_SPAN("minplus", "closure");
  SC_OBS_COUNT("minplus.closure.calls", 1);
  util::require(max_terms >= 1, "subadditive_closure requires max_terms >= 1");
  Curve closure = minimum(Curve::delta(0.0), f);
  Curve power = f;
  for (int i = 1; i < max_terms; ++i) {
    power = convolve(power, f);
    Curve next = minimum(closure, power);
    if (next == closure) return closure;
    closure = std::move(next);
  }
  return closure;
}

}  // namespace streamcalc::minplus
