// Pseudo-inverse curves: switching between the time domain ("how much data
// by time t") and the data domain ("by when is byte x through").
//
// For a wide-sense-increasing curve f, the lower pseudo-inverse
//
//   f^{-1}(y) = inf{ t >= 0 : f(t) >= y }
//
// is itself a wide-sense-increasing piecewise-linear curve of the data
// amount y: jumps of f become plateaus of f^{-1} and plateaus become
// jumps. Service curves inverted this way answer "the latest time the
// first y bytes are served" — the max-plus view of network calculus that
// the paper's background section mentions alongside min-plus.
#pragma once

#include "minplus/curve.hpp"

namespace streamcalc::minplus {

/// The lower pseudo-inverse of `f` as a curve over data (x axis: bytes,
/// values: seconds). Requires f to be unbounded (finite tail slope > 0) or
/// the inverse becomes +inf past sup f — both cases are representable and
/// handled. For f with an infinite tail (delta curves), the inverse is
/// capped at the jump abscissa.
Curve lower_inverse_curve(const Curve& f);

}  // namespace streamcalc::minplus
