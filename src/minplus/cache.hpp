// Memoization cache for curve operations.
//
// Network-calculus analyses re-apply the same exact operators to the same
// operands over and over: an end-to-end sweep re-convolves identical
// per-stage service curves at every sweep point, and DAG path analysis
// re-derives the same residual-service compositions per path. The operators
// are pure, so the results can be memoized.
//
// The cache is keyed by a structural hash of both operands' segment vectors
// plus an operation tag; entries keep a copy of the operand segments, so a
// hash collision is detected by exact comparison and treated as a miss —
// a hit always returns exactly what the underlying operator would have
// produced. Bounded LRU, thread-safe (results may be computed by pool
// workers concurrently; the first inserted entry wins), with hit/miss
// counters for observability.
//
// The global() instance's capacity comes from the STREAMCALC_CURVE_CACHE
// environment variable (entries; default 4096; 0 disables caching).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "minplus/curve.hpp"
#include "util/context.hpp"

namespace streamcalc::minplus {

/// Operation tag mixed into the cache key.
enum class CacheOp : std::uint8_t {
  kConvolve = 1,
  kDeconvolve = 2,
  kMinimum = 3,
  kMaximum = 4,
  kAdd = 5,
  kSubtractClamped = 6,
};

class CurveOpCache {
 public:
  /// A cache holding at most `capacity` results (0 = caching disabled;
  /// every call computes).
  explicit CurveOpCache(std::size_t capacity);

  /// A cache sized from `ctx.curve_cache` (the preferred constructor:
  /// pass the Context you built at startup).
  explicit CurveOpCache(const util::Context& ctx);
  ~CurveOpCache();

  CurveOpCache(const CurveOpCache&) = delete;
  CurveOpCache& operator=(const CurveOpCache&) = delete;

  /// Returns op(f, g), serving from the cache when the exact operand pair
  /// was seen before and computing + inserting otherwise. `compute` must be
  /// a pure function of its arguments.
  Curve get_or_compute(
      CacheOp op, const Curve& f, const Curve& g,
      const std::function<Curve(const Curve&, const Curve&)>& compute);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
  };
  Stats stats() const;

  /// Drops all entries (counters are kept).
  void clear();

  /// Process-wide cache, lazily created; capacity from the active
  /// Context (STREAMCALC_CURVE_CACHE when none is installed; default
  /// 4096 entries).
  static CurveOpCache& global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Structural hash of a curve's segment vector (bit patterns of x,
/// value_at, value_after, slope), suitable as a cache key component.
std::uint64_t structural_hash(const Curve& c);

// --- Cached wrappers over the global cache -------------------------------
// Drop-in replacements for the operators in operations.hpp; used by the
// netcalc composition layers where operand reuse is high.

Curve cached_convolve(const Curve& f, const Curve& g);
Curve cached_deconvolve(const Curve& f, const Curve& g);
Curve cached_minimum(const Curve& f, const Curve& g);
Curve cached_maximum(const Curve& f, const Curve& g);

}  // namespace streamcalc::minplus
