#include "minplus/cache.hpp"

#include <cstring>
#include <list>
#include <unordered_map>
#include <vector>

#include "minplus/operations.hpp"
#include "obs/obs.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace streamcalc::minplus {

namespace {

/// splitmix64 finalizer — strong enough mixing for a hash table key.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_combine(std::uint64_t h, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return mix(h ^ (bits + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2)));
}

}  // namespace

std::uint64_t structural_hash(const Curve& c) {
  std::uint64_t h = 0xD6E8FEB86659FD93ULL;
  for (const Segment& s : c.segments()) {
    h = hash_combine(h, s.x);
    h = hash_combine(h, s.value_at);
    h = hash_combine(h, s.value_after);
    h = hash_combine(h, s.slope);
  }
  return h;
}

struct CurveOpCache::Impl {
  struct Entry {
    std::uint64_t key;
    Curve f;  ///< operand copies: exact collision check on lookup
    Curve g;
    Curve result;
  };

  explicit Impl(std::size_t cap) : capacity(cap) {}

  const std::size_t capacity;
  mutable util::Mutex mutex;
  /// Front = most recently used.
  std::list<Entry> lru SC_GUARDED_BY(mutex);
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index
      SC_GUARDED_BY(mutex);
  std::uint64_t hits SC_GUARDED_BY(mutex) = 0;
  std::uint64_t misses SC_GUARDED_BY(mutex) = 0;
};

CurveOpCache::CurveOpCache(std::size_t capacity)
    : impl_(std::make_unique<Impl>(capacity)) {}

CurveOpCache::CurveOpCache(const util::Context& ctx)
    : CurveOpCache(ctx.curve_cache) {}

CurveOpCache::~CurveOpCache() = default;

Curve CurveOpCache::get_or_compute(
    CacheOp op, const Curve& f, const Curve& g,
    const std::function<Curve(const Curve&, const Curve&)>& compute) {
  if (impl_->capacity == 0) return compute(f, g);
  // Curves are canonicalized (breakpoint-minimized) at construction, so
  // structurally equivalent representations already hash identically. On
  // top of that, commutative operators key the unordered operand pair:
  // the hash combines symmetrically and the collision check accepts the
  // transposed pair, so (f, g) and (g, f) share one entry.
  const bool commutative = op == CacheOp::kConvolve ||
                           op == CacheOp::kMinimum ||
                           op == CacheOp::kMaximum || op == CacheOp::kAdd;
  std::uint64_t ha = structural_hash(f);
  std::uint64_t hb = structural_hash(g);
  if (commutative && hb < ha) std::swap(ha, hb);
  const std::uint64_t key =
      mix((ha * 0x2545F4914F6CDD1DULL) ^ (hb + 0x9E3779B97F4A7C15ULL) ^
          (static_cast<std::uint64_t>(op) << 56));
  {
    util::MutexLock lock(impl_->mutex);
    const auto it = impl_->index.find(key);
    if (it != impl_->index.end() &&
        ((it->second->f == f && it->second->g == g) ||
         (commutative && it->second->f == g && it->second->g == f))) {
      ++impl_->hits;
      impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
      SC_OBS_COUNT("cache.hits", 1);
      switch (f.shape_class()) {
        case ShapeClass::kConvex:
          SC_OBS_COUNT("cache.hits.shape.convex", 1);
          break;
        case ShapeClass::kConcave:
          SC_OBS_COUNT("cache.hits.shape.concave", 1);
          break;
        case ShapeClass::kStaircase:
          SC_OBS_COUNT("cache.hits.shape.staircase", 1);
          break;
        case ShapeClass::kGeneral:
          SC_OBS_COUNT("cache.hits.shape.general", 1);
          break;
      }
      return it->second->result;
    }
    ++impl_->misses;
  }
  SC_OBS_COUNT("cache.misses", 1);
  // Compute outside the lock: operators are expensive and may themselves
  // fan out to the thread pool (or consult the cache re-entrantly).
  // Concurrent duplicate computation of the same pair is benign — both
  // threads produce the identical result; the insert below keeps one.
  Curve result = compute(f, g);
  {
    util::MutexLock lock(impl_->mutex);
    const auto it = impl_->index.find(key);
    if (it != impl_->index.end()) {
      // Either a concurrent computation of the same pair landed first, or
      // the slot holds a hash-colliding pair; replace with the newest.
      impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
      it->second->f = f;
      it->second->g = g;
      it->second->result = result;
      return result;
    }
    impl_->lru.push_front(Impl::Entry{key, f, g, result});
    impl_->index.emplace(key, impl_->lru.begin());
    while (impl_->lru.size() > impl_->capacity) {
      impl_->index.erase(impl_->lru.back().key);
      impl_->lru.pop_back();
    }
    SC_OBS_GAUGE("cache.entries", impl_->lru.size());
  }
  return result;
}

CurveOpCache::Stats CurveOpCache::stats() const {
  util::MutexLock lock(impl_->mutex);
  return Stats{impl_->hits, impl_->misses, impl_->lru.size(),
               impl_->capacity};
}

void CurveOpCache::clear() {
  util::MutexLock lock(impl_->mutex);
  impl_->index.clear();
  impl_->lru.clear();
}

CurveOpCache& CurveOpCache::global() {
  // Strict parse via Context: a typoed STREAMCALC_CURVE_CACHE must not
  // silently fall back to the default capacity (see util/env.hpp).
  static CurveOpCache cache(util::Context::active().curve_cache);
  return cache;
}

Curve cached_convolve(const Curve& f, const Curve& g) {
  return CurveOpCache::global().get_or_compute(
      CacheOp::kConvolve, f, g,
      [](const Curve& a, const Curve& b) { return convolve(a, b); });
}

Curve cached_deconvolve(const Curve& f, const Curve& g) {
  return CurveOpCache::global().get_or_compute(
      CacheOp::kDeconvolve, f, g,
      [](const Curve& a, const Curve& b) { return deconvolve(a, b); });
}

Curve cached_minimum(const Curve& f, const Curve& g) {
  return CurveOpCache::global().get_or_compute(
      CacheOp::kMinimum, f, g,
      [](const Curve& a, const Curve& b) { return minimum(a, b); });
}

Curve cached_maximum(const Curve& f, const Curve& g) {
  return CurveOpCache::global().get_or_compute(
      CacheOp::kMaximum, f, g,
      [](const Curve& a, const Curve& b) { return maximum(a, b); });
}

}  // namespace streamcalc::minplus
