// Internal: direct segment-arithmetic envelopes (pointwise minimum and
// maximum) of two curves in O(n + m), shared by the operation
// implementations. Not part of the public API.
//
// This is the workhorse behind the shape-aware kernels (DESIGN.md §11):
// the general min-plus convolution reduces O(n) branch curves through a
// pairwise minimum tree, so the cost of one two-curve minimum multiplies
// into everything. The evaluator-based builder (builder.hpp) recovers each
// piece from point probes — several binary searches and midpoint samples
// per candidate breakpoint. The merge below instead sweeps both operand
// segment lists with two cursors and emits the winning line per interval
// directly: values and slopes are copied bit-exactly from the winning
// operand (no slope recovery, no snapping), and at most one crossing
// breakpoint is synthesized per interval from the closed-form intersection
// of the two lines.
//
// Numerical guards mirror the evaluator path so downstream tolerances keep
// working:
//   * nearly-parallel lines (slope gap at noise level relative to the
//     slopes) produce no crossing — the division would fabricate an absurd
//     abscissa;
//   * a crossing within rounding distance of an interval endpoint is
//     folded into the endpoint (the post-crossing line rules the interval);
//   * emitted slopes are rechorded against the next breakpoint's exact
//     value, so independent rounding of crossing abscissae cannot make a
//     piece overextend past validation tolerances.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "minplus/curve.hpp"
#include "minplus/detail/builder.hpp"

namespace streamcalc::minplus::detail {

/// One operand's affine state on the interval right of a grid point.
struct MergeLine {
  double at = 0.0;     ///< value at the grid point
  double after = 0.0;  ///< right limit at the grid point
  double slope = 0.0;  ///< slope on the open interval (until the next point)
};

template <bool kMin>
Curve merge_envelope(const Curve& A, const Curve& B) {
  const std::vector<Segment>& as = A.segments();
  const std::vector<Segment>& bs = B.segments();
  std::vector<Segment> out;
  out.reserve(as.size() + bs.size() + 4);

  const auto op = [](double x, double y) {
    return kMin ? std::min(x, y) : std::max(x, y);
  };
  const auto line_of = [](const std::vector<Segment>& segs, std::size_t i,
                          double x) {
    const Segment& s = segs[i];
    MergeLine ln;
    if (x == s.x) {
      ln.at = s.value_at;
      ln.after = s.value_after;
    } else {
      const double v = s.value_after == kInf
                           ? kInf
                           : s.value_after + s.slope * (x - s.x);
      ln.at = v;
      ln.after = v;
    }
    ln.slope = s.slope;
    return ln;
  };

  std::size_t ia = 0, ib = 0;  // segment containing the current grid point
  double x = 0.0;
  while (true) {
    const MergeLine a = line_of(as, ia, x);
    const MergeLine b = line_of(bs, ib, x);
    const double na = ia + 1 < as.size() ? as[ia + 1].x : kInf;
    const double nb = ib + 1 < bs.size() ? bs[ib + 1].x : kInf;
    const double nx = std::min(na, nb);

    const double out_at = op(a.at, b.at);
    const double out_after = op(a.after, b.after);

    // The winning line on (x, nx), and at most one crossing inside it.
    double slope = 0.0;
    double cross_t = -1.0;
    double cross_slope = 0.0;
    double cross_base = 0.0;  ///< post-crossing winner's right limit at x
    if (out_after != kInf) {
      if (a.after == kInf) {
        slope = b.slope;  // only reachable for kMin: B rules the interval
      } else if (b.after == kInf) {
        slope = a.slope;
      } else {
        const double d0 = a.after - b.after;
        const double ds = a.slope - b.slope;
        // Ties are tolerance-aware, matching the curve canonicalization:
        // normalize() nudges breakpoint values by rounding noise (left-limit
        // monotonicity lifts), so two branches of the same envelope can
        // differ by an ulp where they are mathematically equal. Breaking
        // such a "tie" by value sign would hand the interval to the wrong
        // line (e.g. a ramp beating the flat piece it just met), so at noise
        // level the slope decides: the flatter line is the minimum (steeper
        // the maximum) immediately to the right.
        const double vtol =
            1e-9 * (1.0 + std::max(std::fabs(a.after), std::fabs(b.after)));
        const bool tie = std::fabs(d0) <= vtol;
        const bool a_wins = tie ? (kMin ? a.slope <= b.slope
                                        : a.slope >= b.slope)
                                : (kMin ? d0 < 0.0 : d0 > 0.0);
        slope = a_wins ? a.slope : b.slope;
        // The loser overtakes where the lines intersect. t > x requires the
        // sign combination that makes the loser catch up, so any t ahead of
        // x is a genuine winner switch. Nearly-parallel lines have no
        // numerically meaningful crossing (the division fabricates an
        // absurd abscissa); a crossing within rounding distance of x means
        // the post-crossing line rules the whole interval.
        if (!tie &&
            std::fabs(ds) > 1e-9 * (std::fabs(a.slope) + std::fabs(b.slope))) {
          const double t = x - d0 / ds;
          const double tol = 4e-12 * (1.0 + std::fabs(t));
          if (t > x + tol && t < nx - tol) {
            cross_t = t;
            cross_slope = a_wins ? b.slope : a.slope;
            cross_base = a_wins ? b.after : a.after;
          } else if (t > x && t <= x + tol) {
            slope = a_wins ? b.slope : a.slope;
          }
        }
      }
    }

    out.push_back(Segment{x, out_at, out_after,
                          out_after == kInf ? 0.0 : slope});
    if (cross_t > 0.0) {
      // Incoming winner's extension and outgoing winner's line, evaluated
      // the way validation re-derives them (absolute abscissa difference).
      // Rounding cross_t to an absolute abscissa costs ~eps*|x|, which a
      // steep incoming slope amplifies: its extension can land measurably
      // above the outgoing (flatter) line, and the outgoing piece would
      // then dip below the crossing value by the next grid point. Anchor
      // the crossing on the outgoing line in that case and re-chord the
      // incoming piece so both transitions stay inside validation
      // tolerance.
      const double dx = cross_t - x;
      const double la = out_after + slope * dx;
      const double lb = cross_base + cross_slope * dx;
      double v = la;
      if (!(la <= lb + 1e-10 * (1.0 + std::fabs(lb)))) {
        v = std::max(lb, out.back().value_after);
        Segment& prev = out.back();
        prev.slope = std::max(0.0, (v - prev.value_after) / dx);
      }
      out.push_back(Segment{cross_t, v, v, cross_slope});
    }
    if (nx == kInf) break;
    x = nx;
    while (ia + 1 < as.size() && as[ia + 1].x <= x) ++ia;
    while (ib + 1 < bs.size() && bs[ib + 1].x <= x) ++ib;
  }
  // Crossing abscissae round independently of the grid values; lower any
  // slope whose extrapolation overshoots the next exact value (never
  // raised: that would erase a jump).
  rechord_translated(out);
  return Curve(std::move(out));
}

/// Pointwise minimum of two curves by direct segment merge, O(n + m).
inline Curve merge_minimum(const Curve& a, const Curve& b) {
  return merge_envelope<true>(a, b);
}

/// Pointwise maximum of two curves by direct segment merge, O(n + m).
inline Curve merge_maximum(const Curve& a, const Curve& b) {
  return merge_envelope<false>(a, b);
}

}  // namespace streamcalc::minplus::detail
