// Internal: reconstruction of piecewise-linear curves from exact point
// evaluators, shared by the operation implementations. Not part of the
// public API.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "minplus/curve.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace streamcalc::minplus::detail {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

// Size thresholds above which the exact kernels fan work out to the global
// thread pool. Work partitioning depends only on the input (never on the
// thread count or scheduling), so crossing a threshold changes *where* a
// chunk runs but not *what* it computes: parallel results are bit-identical
// to serial-mode results.
inline constexpr std::size_t kParallelGridThreshold = 192;
inline constexpr std::size_t kParallelGridGrain = 64;
inline constexpr std::size_t kParallelBranchThreshold = 64;
inline constexpr std::size_t kParallelBranchGrain = 16;
inline constexpr std::size_t kParallelMergeSegments = 512;

/// Runs fn(lo, hi) over [0, n), on the global pool when n >= threshold and
/// inline otherwise. Chunking is identical either way.
template <typename Fn>
void maybe_parallel_for(std::size_t n, std::size_t threshold,
                        std::size_t grain, const Fn& fn) {
  if (n >= threshold) {
    util::ThreadPool::global().parallel_for(
        0, n, grain, [&fn](std::size_t lo, std::size_t hi) { fn(lo, hi); });
  } else {
    fn(0, n);
  }
}

/// Deterministic balanced pairwise reduction of a branch envelope: level k
/// merges neighbours (2i, 2i+1), carrying an odd tail element through. The
/// tree shape depends only on curves.size(), so the result is independent
/// of thread count; levels whose total segment count is large are merged in
/// parallel (each pair writes its own slot).
template <typename Merge>
Curve reduce_envelope(std::vector<Curve> level, const Merge& merge) {
  SC_ASSERT(!level.empty());
  while (level.size() > 1) {
    const std::size_t pairs = level.size() / 2;
    std::vector<Curve> next(pairs + level.size() % 2);
    std::size_t total_segments = 0;
    for (const Curve& c : level) total_segments += c.segments().size();
    const auto merge_range = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        next[i] = merge(level[2 * i], level[2 * i + 1]);
      }
    };
    if (pairs >= 2 && total_segments >= kParallelMergeSegments) {
      util::ThreadPool::global().parallel_for(0, pairs, 1, merge_range);
    } else {
      merge_range(0, pairs);
    }
    if (level.size() % 2 != 0) next.back() = std::move(level.back());
    level = std::move(next);
  }
  return std::move(level.front());
}

/// Tolerant tail-slope divergence test shared by deconvolution and the
/// deviation bounds. Tail slopes of composed results carry accumulated
/// rounding (translated breakpoints, rechorded pieces), so an excess at
/// noise level means "equal tails", not divergence; a genuine divergence
/// has a slope gap at the operands' own scale.
inline bool tail_diverges(const Curve& f, const Curve& g) {
  const double fs = f.tail_slope();
  const double gs = g.tail_slope();
  return fs > gs + 1e-9 * (1.0 + std::fabs(gs));
}

/// Repairs segment slopes after breakpoint abscissae were translated
/// (shift, branch anchoring): each x rounds independently, which perturbs
/// the gap between close breakpoints, and a steep slope carried over
/// unchanged then extrapolates past the next value_at and fails
/// validation. In a valid source curve the chord between adjacent
/// breakpoints is always >= the stored slope (a genuine jump makes it
/// larger), so chord < slope is purely the rounding artifact — lower the
/// slope to the exact chord; never raise it (that would erase a jump).
inline void rechord_translated(std::vector<Segment>& segs) {
  for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
    Segment& cur = segs[i];
    const Segment& next = segs[i + 1];
    if (cur.value_after == kInf || next.value_at == kInf) continue;
    const double chord =
        (next.value_at - cur.value_after) / (next.x - cur.x);
    if (chord < cur.slope) cur.slope = std::max(0.0, chord);
  }
}

/// Sorts, dedups (with a relative tolerance so candidate points computed
/// with rounding error collapse onto true breakpoints), drops negatives,
/// and ensures 0 is present.
inline std::vector<double> canonical_candidates(std::vector<double> xs) {
  xs.push_back(0.0);
  std::sort(xs.begin(), xs.end());
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    if (x < 0.0) continue;
    if (!out.empty() && x - out.back() <= 1e-12 * (1.0 + std::fabs(x))) {
      continue;
    }
    out.push_back(x);
  }
  SC_ASSERT(!out.empty() && out.front() == 0.0);
  return out;
}

/// Builds a curve from point evaluators. `at(t)` gives f(t), `right(t)`
/// gives the right limit. The evaluators must be exact on the candidate
/// grid (the function must be linear between adjacent candidates); the
/// builder recovers each linear piece from a midpoint sample and the final
/// infinite segment from a probe one span past the last candidate.
///
/// `slope_set`, when given, lists every slope the result can possibly
/// take (for min/max/add of piecewise-linear curves each linear piece
/// lies on an operand piece or a sum of them, so the set is known
/// exactly). Recovered chord slopes within rounding distance of a member
/// snap to it bit-exactly — without this, a tail slope one ulp above the
/// true operand slope makes downstream divergence tests (deconvolution's
/// tail-slope comparison) misfire.
template <typename AtFn, typename RightFn>
Curve build_from_evaluators(const std::vector<double>& candidates,
                            const AtFn& at, const RightFn& right,
                            const std::vector<double>* slope_set = nullptr) {
  const std::size_t n = candidates.size();
  // Phase 1 — per-candidate evaluation: value, right limit, and the slope
  // recovered from a midpoint probe. Every slot depends only on the
  // candidate grid and the evaluators, so large grids fan out to the pool.
  std::vector<double> v_at(n), v_after(n), v_slope(n);
  maybe_parallel_for(
      n, kParallelGridThreshold, kParallelGridGrain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const double x = candidates[i];
          const double value_at = at(x);
          double value_after = std::max(right(x), value_at);
          double slope = 0.0;
          if (value_after != kInf) {
            double probe_x1, probe_x2;
            if (i + 1 < n) {
              const double span = candidates[i + 1] - x;
              probe_x1 = x + 0.5 * span;
              probe_x2 = x + 0.75 * span;
            } else {
              const double span = std::max(1.0, x);
              probe_x1 = x + span;
              probe_x2 = x + 2.0 * span;
            }
            const double p1 = at(probe_x1);
            if (p1 == kInf) {
              // The function reaches +inf between this candidate and the
              // probe. Candidates cover every breakpoint, so the only way
              // to get here is an inf transition within the dedup
              // tolerance of x (two constructed breakpoints one ulp
              // apart, collapsed onto x by canonical_candidates).
              // Canonicalize the sliver away: jump to +inf at x itself.
              v_at[i] = value_at;
              v_after[i] = kInf;
              v_slope[i] = 0.0;
              continue;
            }
            const double p2 = at(probe_x2);
            double rise = p1 - value_after;
            double run = probe_x1 - x;
            if (p2 != kInf) {
              // Two probes per piece: if the candidate-to-probe chord and
              // the probe-to-probe chord disagree, a kink sits between x
              // and the first probe — a real crossing that fell inside the
              // candidate dedup tolerance of x and was collapsed into it.
              // A single probe would then fabricate an averaged slope
              // whose downstream crossing searches land at absurd
              // abscissae. Take the post-kink slope from the probe pair
              // and fold the kink into x by lifting the right limit to
              // the probe line's back-extrapolation.
              const double s01 = rise / run;
              const double s12 = (p2 - p1) / (probe_x2 - probe_x1);
              const double kink_noise =
                  64.0 * std::numeric_limits<double>::epsilon() *
                      (std::fabs(p1) + std::fabs(p2) +
                       std::fabs(value_after)) /
                      (probe_x2 - probe_x1) +
                  1e-9 * std::max(std::fabs(s01), std::fabs(s12));
              if (std::fabs(s12 - s01) > kink_noise) {
                const double post = std::max(0.0, s12);
                const double extrap = p1 - post * (probe_x1 - x);
                value_after =
                    std::max(value_after, std::min(extrap, p1));
                rise = p1 - value_after;
                // Recompute over the probe pair: better conditioned than
                // dividing the adjusted rise by the half span.
                slope = post;
              }
            }
            if (value_after != kInf && slope == 0.0) {
              slope = std::max(0.0, rise / run);
            }
            // A probe within rounding distance of value_after is a flat
            // piece: dividing the ulp-level residue by the span would
            // fabricate a tiny nonzero slope, and downstream crossing
            // searches against a genuinely flat curve would then place a
            // kink at an absurd abscissa (~|value| / noise) where the
            // noise has accumulated into a real divergence.
            const double noise = 64.0 *
                                 std::numeric_limits<double>::epsilon() *
                                 (std::fabs(p1) + std::fabs(value_after)) /
                                 run;
            if (slope <= noise) {
              slope = 0.0;
            } else if (slope_set != nullptr) {
              double best = slope;
              double best_d = kInf;
              for (const double cand : *slope_set) {
                const double d = std::fabs(slope - cand);
                if (d <= noise + 1e-12 * std::fabs(cand) && d < best_d) {
                  best = cand;
                  best_d = d;
                }
              }
              slope = best;
            }
          }
          v_at[i] = value_at;
          v_after[i] = value_after;
          v_slope[i] = slope;
        }
      });
  // Phase 2 — serial assembly with the monotonicity guard, which chains
  // each breakpoint to its predecessor and therefore stays sequential.
  std::vector<Segment> segs;
  segs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = candidates[i];
    double value_at = v_at[i];
    double value_after = v_after[i];
    // Guard against rounding-induced monotonicity violations.
    if (!segs.empty()) {
      Segment& p = segs.back();
      const double left_limit =
          p.value_after == kInf ? kInf
                                : p.value_after + p.slope * (x - p.x);
      if (left_limit != kInf && value_at < left_limit) {
        if (value_at >= p.value_after) {
          // The previous piece overextends: its breakpoint rounded past
          // the true crossing (or a kink within the dedup tolerance of
          // this candidate was dropped), so the stored slope runs above
          // the exact value here. The value is the trustworthy quantity —
          // rechord the previous piece down to it instead of lifting the
          // value to the stale extrapolation (which would propagate the
          // overshoot into the whole tail via this same guard).
          p.slope = (value_at - p.value_after) / (x - p.x);
        } else {
          value_at = left_limit;
          value_after = std::max(value_after, value_at);
        }
      }
    }
    segs.push_back(Segment{x, value_at, value_after, v_slope[i]});
  }
  return Curve(std::move(segs));
}

}  // namespace streamcalc::minplus::detail
