// Internal: reconstruction of piecewise-linear curves from exact point
// evaluators, shared by the operation implementations. Not part of the
// public API.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "minplus/curve.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace streamcalc::minplus::detail {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

// Size thresholds above which the exact kernels fan work out to the global
// thread pool. Work partitioning depends only on the input (never on the
// thread count or scheduling), so crossing a threshold changes *where* a
// chunk runs but not *what* it computes: parallel results are bit-identical
// to serial-mode results.
inline constexpr std::size_t kParallelGridThreshold = 192;
inline constexpr std::size_t kParallelGridGrain = 64;
inline constexpr std::size_t kParallelBranchThreshold = 64;
inline constexpr std::size_t kParallelBranchGrain = 16;
inline constexpr std::size_t kParallelMergeSegments = 512;

/// Runs fn(lo, hi) over [0, n), on the global pool when n >= threshold and
/// inline otherwise. Chunking is identical either way.
template <typename Fn>
void maybe_parallel_for(std::size_t n, std::size_t threshold,
                        std::size_t grain, const Fn& fn) {
  if (n >= threshold) {
    util::ThreadPool::global().parallel_for(
        0, n, grain, [&fn](std::size_t lo, std::size_t hi) { fn(lo, hi); });
  } else {
    fn(0, n);
  }
}

/// Deterministic balanced pairwise reduction of a branch envelope: level k
/// merges neighbours (2i, 2i+1), carrying an odd tail element through. The
/// tree shape depends only on curves.size(), so the result is independent
/// of thread count; levels whose total segment count is large are merged in
/// parallel (each pair writes its own slot).
template <typename Merge>
Curve reduce_envelope(std::vector<Curve> level, const Merge& merge) {
  SC_ASSERT(!level.empty());
  while (level.size() > 1) {
    const std::size_t pairs = level.size() / 2;
    std::vector<Curve> next(pairs + level.size() % 2);
    std::size_t total_segments = 0;
    for (const Curve& c : level) total_segments += c.segments().size();
    const auto merge_range = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        next[i] = merge(level[2 * i], level[2 * i + 1]);
      }
    };
    if (pairs >= 2 && total_segments >= kParallelMergeSegments) {
      util::ThreadPool::global().parallel_for(0, pairs, 1, merge_range);
    } else {
      merge_range(0, pairs);
    }
    if (level.size() % 2 != 0) next.back() = std::move(level.back());
    level = std::move(next);
  }
  return std::move(level.front());
}

/// Sorts, dedups (with a relative tolerance so candidate points computed
/// with rounding error collapse onto true breakpoints), drops negatives,
/// and ensures 0 is present.
inline std::vector<double> canonical_candidates(std::vector<double> xs) {
  xs.push_back(0.0);
  std::sort(xs.begin(), xs.end());
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    if (x < 0.0) continue;
    if (!out.empty() && x - out.back() <= 1e-12 * (1.0 + std::fabs(x))) {
      continue;
    }
    out.push_back(x);
  }
  SC_ASSERT(!out.empty() && out.front() == 0.0);
  return out;
}

/// Builds a curve from point evaluators. `at(t)` gives f(t), `right(t)`
/// gives the right limit. The evaluators must be exact on the candidate
/// grid (the function must be linear between adjacent candidates); the
/// builder recovers each linear piece from a midpoint sample and the final
/// infinite segment from a probe one span past the last candidate.
template <typename AtFn, typename RightFn>
Curve build_from_evaluators(const std::vector<double>& candidates,
                            const AtFn& at, const RightFn& right) {
  const std::size_t n = candidates.size();
  // Phase 1 — per-candidate evaluation: value, right limit, and the slope
  // recovered from a midpoint probe. Every slot depends only on the
  // candidate grid and the evaluators, so large grids fan out to the pool.
  std::vector<double> v_at(n), v_after(n), v_slope(n);
  maybe_parallel_for(
      n, kParallelGridThreshold, kParallelGridGrain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const double x = candidates[i];
          const double value_at = at(x);
          const double value_after = std::max(right(x), value_at);
          double slope = 0.0;
          if (value_after != kInf) {
            double probe_x;
            if (i + 1 < n) {
              probe_x = 0.5 * (x + candidates[i + 1]);
            } else {
              probe_x = x + std::max(1.0, x);
            }
            const double probe = at(probe_x);
            if (probe == kInf) {
              // The function reaches +inf strictly inside what we assumed
              // was a linear piece; candidates were supposed to cover all
              // breakpoints.
              SC_ASSERT(false);
            }
            slope = std::max(0.0, (probe - value_after) / (probe_x - x));
          }
          v_at[i] = value_at;
          v_after[i] = value_after;
          v_slope[i] = slope;
        }
      });
  // Phase 2 — serial assembly with the monotonicity guard, which chains
  // each breakpoint to its predecessor and therefore stays sequential.
  std::vector<Segment> segs;
  segs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = candidates[i];
    double value_at = v_at[i];
    double value_after = v_after[i];
    // Guard against rounding-induced monotonicity violations.
    if (!segs.empty()) {
      const Segment& p = segs.back();
      const double left_limit =
          p.value_after == kInf ? kInf
                                : p.value_after + p.slope * (x - p.x);
      if (left_limit != kInf && value_at < left_limit) {
        value_at = left_limit;
        value_after = std::max(value_after, value_at);
      }
    }
    segs.push_back(Segment{x, value_at, value_after, v_slope[i]});
  }
  return Curve(std::move(segs));
}

}  // namespace streamcalc::minplus::detail
