// Internal: reconstruction of piecewise-linear curves from exact point
// evaluators, shared by the operation implementations. Not part of the
// public API.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "minplus/curve.hpp"
#include "util/error.hpp"

namespace streamcalc::minplus::detail {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Sorts, dedups (with a relative tolerance so candidate points computed
/// with rounding error collapse onto true breakpoints), drops negatives,
/// and ensures 0 is present.
inline std::vector<double> canonical_candidates(std::vector<double> xs) {
  xs.push_back(0.0);
  std::sort(xs.begin(), xs.end());
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    if (x < 0.0) continue;
    if (!out.empty() && x - out.back() <= 1e-12 * (1.0 + std::fabs(x))) {
      continue;
    }
    out.push_back(x);
  }
  SC_ASSERT(!out.empty() && out.front() == 0.0);
  return out;
}

/// Builds a curve from point evaluators. `at(t)` gives f(t), `right(t)`
/// gives the right limit. The evaluators must be exact on the candidate
/// grid (the function must be linear between adjacent candidates); the
/// builder recovers each linear piece from a midpoint sample and the final
/// infinite segment from a probe one span past the last candidate.
template <typename AtFn, typename RightFn>
Curve build_from_evaluators(const std::vector<double>& candidates,
                            const AtFn& at, const RightFn& right) {
  std::vector<Segment> segs;
  segs.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double x = candidates[i];
    double value_at = at(x);
    double value_after = std::max(right(x), value_at);
    double slope = 0.0;
    if (value_after != kInf) {
      double probe_x;
      if (i + 1 < candidates.size()) {
        probe_x = 0.5 * (x + candidates[i + 1]);
      } else {
        probe_x = x + std::max(1.0, x);
      }
      const double probe = at(probe_x);
      if (probe == kInf) {
        // The function reaches +inf strictly inside what we assumed was a
        // linear piece; candidates were supposed to cover all breakpoints.
        SC_ASSERT(false);
      }
      slope = std::max(0.0, (probe - value_after) / (probe_x - x));
    }
    // Guard against rounding-induced monotonicity violations.
    if (!segs.empty()) {
      const Segment& p = segs.back();
      const double left_limit =
          p.value_after == kInf ? kInf
                                : p.value_after + p.slope * (x - p.x);
      if (left_limit != kInf && value_at < left_limit) {
        value_at = left_limit;
        value_after = std::max(value_after, value_at);
      }
    }
    segs.push_back(Segment{x, value_at, value_after, slope});
  }
  return Curve(std::move(segs));
}

}  // namespace streamcalc::minplus::detail
