#include "minplus/curve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "minplus/detail/builder.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace streamcalc::minplus {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// a + b where either may be +inf (never produces NaN for our inputs).
double add(double a, double b) {
  if (a == kInf || b == kInf) return kInf;
  return a + b;
}

/// Linear extension value_after + slope * dt, +inf-aware. dt >= 0.
double extend(double value_after, double slope, double dt) {
  if (value_after == kInf) return kInf;
  return value_after + slope * dt;
}

bool valid_value(double v) { return !std::isnan(v) && v >= 0.0; }

/// Full-precision point values of piece `i`, for validation diagnostics:
/// a rejected curve is only debuggable if the message pinpoints the piece
/// and reproduces the exact numbers that broke the invariant.
std::string piece_str(const std::vector<Segment>& segs, std::size_t i) {
  const Segment& s = segs[i];
  std::ostringstream os;
  os << "piece " << i << " of " << segs.size() << ": {x="
     << util::format_significant(s.x, 17)
     << ", value_at=" << util::format_significant(s.value_at, 17)
     << ", value_after=" << util::format_significant(s.value_after, 17)
     << ", slope=" << util::format_significant(s.slope, 17) << "}";
  return os.str();
}

/// Relative closeness used for structural classification and segment
/// merging (values synthesized by chained operations carry rounding noise).
bool nearly_equal(double a, double b) {
  if (a == kInf || b == kInf) return a == b;
  return std::fabs(a - b) <=
         1e-9 * (1.0 + std::max(std::fabs(a), std::fabs(b)));
}

}  // namespace

const char* shape_class_name(ShapeClass c) {
  switch (c) {
    case ShapeClass::kConvex:
      return "convex";
    case ShapeClass::kConcave:
      return "concave";
    case ShapeClass::kStaircase:
      return "staircase";
    case ShapeClass::kGeneral:
      break;
  }
  return "general";
}

Curve::Curve() : segs_{Segment{0.0, 0.0, 0.0, 0.0}} { compute_shape(); }

Curve::Curve(std::vector<Segment> segments) : segs_(std::move(segments)) {
  validate();
  normalize();
  compute_shape();
}

void Curve::validate() const {
  // Error messages are built lazily: this runs on every construction, and
  // the formatting (ostringstream per piece) costs orders of magnitude
  // more than the checks themselves. Eagerly-built messages used to
  // dominate the entire min-plus engine's profile.
  util::require(!segs_.empty(), "Curve requires at least one segment");
  if (segs_.front().x != 0.0) {
    util::require(false,
                  "Curve must start at x = 0 (" + piece_str(segs_, 0) + ")");
  }
  bool seen_inf = false;
  for (std::size_t i = 0; i < segs_.size(); ++i) {
    const Segment& s = segs_[i];
    if (!(!std::isnan(s.x) && std::isfinite(s.x) && s.x >= 0.0)) {
      util::require(false, "Curve breakpoint x must be finite and >= 0 (" +
                               piece_str(segs_, i) + ")");
    }
    if (!(valid_value(s.value_at) && valid_value(s.value_after))) {
      util::require(false, "Curve values must be >= 0 and not NaN (" +
                               piece_str(segs_, i) + ")");
    }
    if (!(std::isfinite(s.slope) && s.slope >= 0.0)) {
      util::require(false,
                    "Curve slopes must be finite and >= 0 (+inf is expressed "
                    "through values, not slopes) (" +
                        piece_str(segs_, i) + ")");
    }
    if (!(s.value_at <= s.value_after)) {
      util::require(false,
                    "Curve jumps must be upward (value_at <= value_after) (" +
                        piece_str(segs_, i) + ")");
    }
    if (i > 0) {
      const Segment& p = segs_[i - 1];
      if (!(s.x > p.x)) {
        util::require(false, "Curve breakpoints must be strictly increasing (" +
                                 piece_str(segs_, i - 1) + "; " +
                                 piece_str(segs_, i) + ")");
      }
      const double left_limit = extend(p.value_after, p.slope, s.x - p.x);
      if (!(s.value_at >= left_limit - 1e-9 * (1.0 + left_limit) ||
            left_limit == kInf)) {
        util::require(
            false,
            "Curve must be wide-sense increasing across breakpoints "
            "(left limit " +
                util::format_significant(left_limit, 17) + " from " +
                piece_str(segs_, i - 1) + " exceeds " + piece_str(segs_, i) +
                ")");
      }
      if (!(left_limit != kInf || s.value_at == kInf)) {
        util::require(false, "Curve cannot return from +inf (" +
                                 piece_str(segs_, i) + ")");
      }
    }
    if (seen_inf && s.value_at != kInf) {
      util::require(false, "Curve cannot return from +inf (" +
                               piece_str(segs_, i) + ")");
    }
    if (s.value_at == kInf && s.value_after != kInf) {
      util::require(false, "Curve cannot return from +inf (" +
                               piece_str(segs_, i) + ")");
    }
    if (s.value_after == kInf) seen_inf = true;
  }
}

void Curve::normalize() {
  // Canonicalize: an infinite segment carries slope 0, and breakpoints that
  // merely continue the previous segment are merged away. The merge uses a
  // small relative tolerance: chained min-plus operations synthesize
  // breakpoints whose values and slopes carry rounding noise (catastrophic
  // cancellation in slope recovery), and exact-equality merging would let
  // segment counts grow exponentially through model pipelines.
  const auto close = [](double a, double b) { return nearly_equal(a, b); };
  for (Segment& s : segs_) {
    if (s.value_after == kInf) s.slope = 0.0;
  }
  std::vector<Segment> out;
  out.reserve(segs_.size());
  out.push_back(segs_.front());
  for (std::size_t i = 1; i < segs_.size(); ++i) {
    const Segment& s = segs_[i];
    Segment& p = out.back();
    const double left_limit = extend(p.value_after, p.slope, s.x - p.x);
    // Slopes "continue" when equal within tolerance, or when the slope
    // mismatch integrated over this segment's span is value-negligible
    // (absorbing micro-slope noise pieces left behind by chained
    // operations, whose spurious far-field crossings otherwise compound).
    bool slope_continues = close(s.slope, p.slope);
    if (!slope_continues && i + 1 < segs_.size() && s.value_at != kInf) {
      const double span = segs_[i + 1].x - s.x;
      slope_continues = std::fabs(s.slope - p.slope) * span <=
                        1e-9 * (1.0 + std::fabs(s.value_at));
    }
    const bool continues = close(s.value_at, left_limit) &&
                           close(s.value_after, s.value_at) &&
                           slope_continues;
    if (!continues) {
      Segment kept = s;
      // Keep evaluation monotone when the previous extension overshoots
      // this breakpoint's value by rounding noise.
      if (left_limit != kInf && kept.value_at < left_limit &&
          close(kept.value_at, left_limit)) {
        kept.value_at = left_limit;
        kept.value_after = std::max(kept.value_after, kept.value_at);
      }
      out.push_back(kept);
    }
  }
  segs_ = std::move(out);
}

Curve Curve::zero() { return Curve(); }

Curve Curve::constant(double c) {
  util::require(valid_value(c), "constant() requires c >= 0");
  return Curve({Segment{0.0, 0.0, c, 0.0}});
}

Curve Curve::affine(double rate_, double burst) {
  util::require(rate_ >= 0.0 && std::isfinite(rate_),
                "affine() requires finite rate >= 0");
  util::require(valid_value(burst), "affine() requires burst >= 0");
  return Curve({Segment{0.0, 0.0, burst, rate_}});
}

Curve Curve::rate_latency(double rate_, double latency) {
  util::require(rate_ >= 0.0 && std::isfinite(rate_),
                "rate_latency() requires finite rate >= 0");
  util::require(latency >= 0.0 && std::isfinite(latency),
                "rate_latency() requires finite latency >= 0");
  if (latency == 0.0) return rate(rate_);
  return Curve(
      {Segment{0.0, 0.0, 0.0, 0.0}, Segment{latency, 0.0, 0.0, rate_}});
}

Curve Curve::rate(double rate_) {
  util::require(rate_ >= 0.0 && std::isfinite(rate_),
                "rate() requires finite rate >= 0");
  return Curve({Segment{0.0, 0.0, 0.0, rate_}});
}

Curve Curve::delta(double latency) {
  util::require(latency >= 0.0 && std::isfinite(latency),
                "delta() requires finite latency >= 0");
  if (latency == 0.0) return Curve({Segment{0.0, 0.0, kInf, 0.0}});
  return Curve(
      {Segment{0.0, 0.0, 0.0, 0.0}, Segment{latency, 0.0, kInf, 0.0}});
}

Curve Curve::step(double height, double at) {
  util::require(valid_value(height), "step() requires height >= 0");
  util::require(at > 0.0 && std::isfinite(at), "step() requires at > 0");
  return Curve({Segment{0.0, 0.0, 0.0, 0.0}, Segment{at, 0.0, height, 0.0}});
}

Curve Curve::staircase(double height, double period, double latency,
                       int steps) {
  util::require(height >= 0.0 && std::isfinite(height),
                "staircase() requires finite height >= 0");
  util::require(period > 0.0 && std::isfinite(period),
                "staircase() requires finite period > 0");
  util::require(latency >= 0.0 && std::isfinite(latency),
                "staircase() requires finite latency >= 0");
  util::require(steps >= 1, "staircase() requires steps >= 1");
  std::vector<Segment> segs;
  if (latency > 0.0) segs.push_back(Segment{0.0, 0.0, 0.0, 0.0});
  // Step k completes at latency + k*period; the value on
  // (latency + k*period, latency + (k+1)*period] is (k+1)*height: we model
  // the k-th riser as an upward jump at its period boundary.
  for (int k = 0; k < steps; ++k) {
    const double x = latency + static_cast<double>(k) * period;
    const double level = static_cast<double>(k) * height;
    segs.push_back(Segment{x, level, level + height, 0.0});
  }
  // Continue with the long-run average slope after the materialized steps.
  const double x_tail = latency + static_cast<double>(steps) * period;
  const double level_tail = static_cast<double>(steps) * height;
  segs.push_back(Segment{x_tail, level_tail, level_tail, height / period});
  if (segs.front().x != 0.0) {
    segs.insert(segs.begin(), Segment{0.0, 0.0, 0.0, 0.0});
  }
  return Curve(std::move(segs));
}

Curve Curve::affine(util::DataRate r, util::DataSize burst) {
  return affine(r.in_bytes_per_sec(), burst.in_bytes());
}

Curve Curve::rate_latency(util::DataRate r, util::Duration latency) {
  return rate_latency(r.in_bytes_per_sec(), latency.in_seconds());
}

std::size_t Curve::segment_index(double t) const {
  util::require(t >= 0.0 && !std::isnan(t), "Curve evaluation requires t >= 0");
  // Last segment with x <= t.
  auto it = std::upper_bound(
      segs_.begin(), segs_.end(), t,
      [](double lhs, const Segment& s) { return lhs < s.x; });
  SC_ASSERT(it != segs_.begin());
  return static_cast<std::size_t>(it - segs_.begin()) - 1;
}

double Curve::value(double t) const {
  const Segment& s = segs_[segment_index(t)];
  if (t == s.x) return s.value_at;
  return extend(s.value_after, s.slope, t - s.x);
}

double Curve::value_right(double t) const {
  const Segment& s = segs_[segment_index(t)];
  if (t == s.x) return s.value_after;
  return extend(s.value_after, s.slope, t - s.x);
}

double Curve::value_left(double t) const {
  if (t == 0.0) return segs_.front().value_at;
  const std::size_t i = segment_index(t);
  const Segment& s = segs_[i];
  if (t > s.x) return extend(s.value_after, s.slope, t - s.x);
  // t sits exactly on breakpoint i (> 0): the left limit comes from the
  // previous segment's extension.
  SC_ASSERT(i > 0);
  const Segment& p = segs_[i - 1];
  return extend(p.value_after, p.slope, t - p.x);
}

double Curve::lower_inverse(double y) const {
  util::require(valid_value(y), "lower_inverse() requires y >= 0");
  if (y <= segs_.front().value_at) return 0.0;
  for (std::size_t i = 0; i < segs_.size(); ++i) {
    const Segment& s = segs_[i];
    if (s.value_at >= y) return s.x;
    if (s.value_after >= y) return s.x;  // the jump crosses y; inf is at x
    const double next_x =
        (i + 1 < segs_.size()) ? segs_[i + 1].x : kInf;
    if (s.slope > 0.0) {
      const double t_hit = s.x + (y - s.value_after) / s.slope;
      if (t_hit < next_x ||
          (i + 1 == segs_.size() && std::isfinite(t_hit))) {
        return t_hit;
      }
    }
  }
  return kInf;
}

double Curve::upper_inverse(double y) const {
  util::require(valid_value(y), "upper_inverse() requires y >= 0");
  for (std::size_t i = 0; i < segs_.size(); ++i) {
    const Segment& s = segs_[i];
    if (s.value_after > y) return s.x;  // jump (or start value) exceeds y
    const double next_x = (i + 1 < segs_.size()) ? segs_[i + 1].x : kInf;
    if (s.slope > 0.0) {
      const double t_hit = s.x + (y - s.value_after) / s.slope;
      if (t_hit < next_x) return std::max(t_hit, s.x);
    }
  }
  return kInf;
}

double Curve::tail_slope() const {
  const Segment& s = segs_.back();
  if (s.value_after == kInf) return kInf;
  return s.slope;
}

bool Curve::is_finite() const {
  return segs_.back().value_after != kInf;  // inf persists once reached
}

namespace {

bool segs_convex(const std::vector<Segment>& segs) {
  double prev_slope = -1.0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const Segment& s = segs[i];
    if (s.value_at == kInf) break;  // a final jump to +inf stays convex
    const bool last_and_infinite =
        s.value_after == kInf && i + 1 == segs.size();
    if (!nearly_equal(s.value_at, s.value_after) && !last_and_infinite) {
      return false;  // interior jump
    }
    if (i > 0) {
      const Segment& p = segs[i - 1];
      const double left_limit = extend(p.value_after, p.slope, s.x - p.x);
      if (!nearly_equal(s.value_at, left_limit)) {
        return false;  // jump across breakpoint
      }
    }
    if (!last_and_infinite) {
      if (s.slope < prev_slope && !nearly_equal(s.slope, prev_slope)) {
        return false;
      }
      prev_slope = s.slope;
    }
  }
  return true;
}

bool segs_concave_from_origin(const std::vector<Segment>& segs) {
  if (segs.front().value_at != 0.0) return false;
  if (segs.back().value_after == kInf) return false;
  double prev_slope = kInf;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const Segment& s = segs[i];
    // Only the origin may jump.
    if (i > 0) {
      const Segment& p = segs[i - 1];
      const double left_limit = extend(p.value_after, p.slope, s.x - p.x);
      if (!nearly_equal(s.value_at, left_limit) ||
          !nearly_equal(s.value_at, s.value_after)) {
        return false;
      }
    }
    if (s.slope > prev_slope && !nearly_equal(s.slope, prev_slope)) {
      return false;
    }
    prev_slope = s.slope;
  }
  return true;
}

}  // namespace

void Curve::compute_shape() {
  shape_ = ShapeInfo{};
  shape_.convex = segs_convex(segs_);
  shape_.concave_from_origin = segs_concave_from_origin(segs_);

  // Piecewise-constant transient + affine tail: the gate for the staircase
  // convolution kernel. Flatness must be *exact* — the kernel's branch
  // pruning argument relies on f being constant between risers.
  const std::size_t n = segs_.size();
  if (n >= 2) {
    bool pc = true;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (segs_[i].slope != 0.0 || segs_[i].value_after == kInf) {
        pc = false;
        break;
      }
    }
    shape_.piecewise_constant = pc;
  }
  if (!shape_.piecewise_constant) return;

  // Uniform staircase (UPP transient+period form): optional leading flat
  // piece, then equally spaced risers of equal height, then the
  // average-rate tail — the pattern Curve::staircase() produces. Spacing
  // and heights are compared with the classification tolerance because
  // riser abscissae synthesized by latency + k*period round per-step.
  std::size_t first = 0;
  if (n >= 3 && segs_[0].value_at == segs_[0].value_after &&
      segs_[0].value_at == 0.0 && segs_[1].value_at == 0.0) {
    first = 1;
  }
  const std::size_t tail = n - 1;
  if (tail <= first) return;
  const Segment& r0 = segs_[first];
  const double height = r0.value_after - r0.value_at;
  if (!(height > 0.0) || r0.value_at != 0.0) return;
  double period = 0.0;
  if (tail - first >= 2) {
    period = segs_[first + 1].x - r0.x;
  } else {
    // A single materialized riser: infer the period from the tail slope.
    const double m = segs_[tail].slope;
    if (!(m > 0.0)) return;
    period = height / m;
  }
  if (!(period > 0.0)) return;
  for (std::size_t i = first; i < tail; ++i) {
    const Segment& s = segs_[i];
    const std::size_t k = i - first;
    if (!nearly_equal(s.x, r0.x + static_cast<double>(k) * period)) return;
    if (!nearly_equal(s.value_at, static_cast<double>(k) * height)) return;
    if (!nearly_equal(s.value_after - s.value_at, height)) return;
  }
  const Segment& t = segs_[tail];
  if (t.value_after == kInf) return;
  if (!nearly_equal(t.x, r0.x + static_cast<double>(tail - first) * period)) {
    return;
  }
  if (!nearly_equal(t.slope, height / period)) return;
  if (!nearly_equal(t.value_at, t.value_after)) return;
  shape_.uniform_staircase = true;
  shape_.height = height;
  shape_.period = period;
  shape_.latency = r0.x;
  shape_.steps = static_cast<int>(tail - first);
}

ShapeClass Curve::shape_class() const {
  if (shape_.piecewise_constant) return ShapeClass::kStaircase;
  if (shape_.concave_from_origin) return ShapeClass::kConcave;
  if (shape_.convex) return ShapeClass::kConvex;
  return ShapeClass::kGeneral;
}

bool Curve::is_zero() const {
  return segs_.size() == 1 && segs_.front() == Segment{0.0, 0.0, 0.0, 0.0};
}

Curve Curve::scale_value(double c) const {
  util::require(c >= 0.0 && std::isfinite(c),
                "scale_value() requires finite c >= 0");
  if (c == 0.0) return zero();
  std::vector<Segment> out = segs_;
  for (Segment& s : out) {
    s.value_at = s.value_at == kInf ? kInf : s.value_at * c;
    s.value_after = s.value_after == kInf ? kInf : s.value_after * c;
    s.slope *= c;
  }
  return Curve(std::move(out));
}

Curve Curve::scale_time(double c) const {
  util::require(c > 0.0 && std::isfinite(c),
                "scale_time() requires finite c > 0");
  std::vector<Segment> out = segs_;
  for (Segment& s : out) {
    s.x *= c;
    s.slope /= c;
  }
  return Curve(std::move(out));
}

Curve Curve::shift_right(double T) const {
  util::require(T >= 0.0 && std::isfinite(T),
                "shift_right() requires finite T >= 0");
  if (T == 0.0) return *this;
  std::vector<Segment> out;
  out.reserve(segs_.size() + 1);
  // On [0, T) the shifted curve is 0; at T it takes f(0).
  out.push_back(Segment{0.0, 0.0, 0.0, 0.0});
  for (const Segment& s : segs_) {
    out.push_back(Segment{s.x + T, s.value_at, s.value_after, s.slope});
  }
  // Seam: value at T is f(0) = segs_[0].value_at, which must be >= 0 — fine.
  // Each x + T rounds independently, perturbing gaps between close
  // breakpoints; restore slope consistency.
  detail::rechord_translated(out);
  return Curve(std::move(out));
}

Curve Curve::shift_left(double T) const {
  util::require(T >= 0.0 && std::isfinite(T),
                "shift_left() requires finite T >= 0");
  if (T == 0.0) return *this;
  std::vector<Segment> out;
  const std::size_t i0 = segment_index(T);
  const Segment& s0 = segs_[i0];
  // The new origin sits inside (or at the start of) segment i0.
  if (T == s0.x) {
    out.push_back(Segment{0.0, s0.value_at, s0.value_after, s0.slope});
  } else {
    const double v = extend(s0.value_after, s0.slope, T - s0.x);
    out.push_back(Segment{0.0, v, v, s0.slope});
  }
  for (std::size_t i = i0 + 1; i < segs_.size(); ++i) {
    const Segment& s = segs_[i];
    out.push_back(Segment{s.x - T, s.value_at, s.value_after, s.slope});
  }
  detail::rechord_translated(out);
  return Curve(std::move(out));
}

Curve Curve::plus_step(double h) const {
  util::require(valid_value(h) && std::isfinite(h),
                "plus_step() requires finite h >= 0");
  if (h == 0.0) return *this;
  std::vector<Segment> out = segs_;
  for (std::size_t i = 0; i < out.size(); ++i) {
    Segment& s = out[i];
    if (i > 0) s.value_at = add(s.value_at, h);
    s.value_after = add(s.value_after, h);
  }
  return Curve(std::move(out));
}

Curve Curve::minus_clamped(double c) const {
  util::require(valid_value(c) && std::isfinite(c),
                "minus_clamped() requires finite c >= 0");
  if (c == 0.0) return *this;
  std::vector<Segment> out;
  for (std::size_t i = 0; i < segs_.size(); ++i) {
    const Segment& s = segs_[i];
    const double next_x = (i + 1 < segs_.size()) ? segs_[i + 1].x : kInf;
    const double at = s.value_at == kInf ? kInf : std::max(0.0, s.value_at - c);
    const double after =
        s.value_after == kInf ? kInf : std::max(0.0, s.value_after - c);
    if (s.value_after >= c || s.value_after == kInf) {
      out.push_back(Segment{s.x, at, after, s.slope});
      continue;
    }
    // The segment starts below the clamp; find where (if at all) it crosses.
    if (s.slope == 0.0) {
      out.push_back(Segment{s.x, at, 0.0, 0.0});
      continue;
    }
    const double t_cross = s.x + (c - s.value_after) / s.slope;
    if (t_cross >= next_x) {
      out.push_back(Segment{s.x, at, 0.0, 0.0});
      continue;
    }
    out.push_back(Segment{s.x, at, 0.0, 0.0});
    if (t_cross > s.x) {
      out.push_back(Segment{t_cross, 0.0, 0.0, s.slope});
    } else {
      // Crossing exactly at the breakpoint: fold into the first piece.
      out.back().slope = s.slope;
    }
  }
  return Curve(std::move(out));
}

std::string Curve::describe() const {
  using util::format_significant;
  if (is_zero()) return "zero";
  if (segs_.size() == 1) {
    const Segment& s = segs_.front();
    if (s.value_at == 0.0 && s.value_after == kInf) return "delta(0)";
    if (s.value_at == 0.0 && s.value_after == 0.0) {
      return "rate(" + format_significant(s.slope) + ")";
    }
    if (s.value_at == 0.0) {
      return "affine(rate=" + format_significant(s.slope) +
             ", burst=" + format_significant(s.value_after) + ")";
    }
  }
  if (segs_.size() == 2 && segs_[0] == Segment{0.0, 0.0, 0.0, 0.0}) {
    const Segment& s = segs_[1];
    if (s.value_at == 0.0 && s.value_after == kInf) {
      return "delta(" + format_significant(s.x) + ")";
    }
    if (s.value_at == 0.0 && s.value_after == 0.0) {
      return "rate_latency(rate=" + format_significant(s.slope) +
             ", latency=" + format_significant(s.x) + ")";
    }
  }
  std::ostringstream os;
  os << "pl[";
  for (std::size_t i = 0; i < segs_.size(); ++i) {
    const Segment& s = segs_[i];
    if (i) os << "; ";
    os << "(x=" << format_significant(s.x)
       << ", f=" << format_significant(s.value_at)
       << ", f+=" << format_significant(s.value_after)
       << ", m=" << format_significant(s.slope) << ")";
  }
  os << "]";
  return os.str();
}

}  // namespace streamcalc::minplus
