// Piecewise-linear wide-sense-increasing curves on [0, +inf).
//
// This is the numeric foundation of the network calculus layer. A Curve
// represents a function f : [0, inf) -> [0, inf] that is
//
//   * piecewise linear with finitely many breakpoints,
//   * wide-sense increasing (upward jumps at breakpoints are allowed —
//     needed for leaky-bucket arrival curves, which jump from f(0) = 0 to a
//     burst b immediately after 0),
//   * eventually affine (the last segment's slope extends to +inf), and
//   * possibly +inf from some point on (needed for the burst-delay curve
//     delta_T, the identity of min-plus convolution).
//
// Representation follows the RTC/Nancy convention: each breakpoint carries
// both the value *at* the point and the right limit *after* it, so jump
// discontinuities are represented exactly rather than approximated:
//
//   f(t) = value_at                                  if t == x_i
//   f(t) = value_after + slope * (t - x_i)           if x_i < t < x_{i+1}
//
// All operations in operations.hpp / deviation.hpp are exact on this class
// (no sampling); tests validate them against brute-force evaluation.
#pragma once

#include <string>
#include <vector>

#include "util/units.hpp"

namespace streamcalc::minplus {

/// One breakpoint of a piecewise-linear curve; see file comment for
/// semantics. Values may be +inf (never -inf, never NaN).
struct Segment {
  double x = 0.0;            ///< Start abscissa of the segment.
  double value_at = 0.0;     ///< f(x).
  double value_after = 0.0;  ///< lim_{t -> x+} f(t).
  double slope = 0.0;        ///< Slope on the open interval (x, next.x).

  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Coarse structural class of a curve, derived from its cached ShapeInfo.
/// This is the "shape lattice" the operation dispatcher keys on
/// (DESIGN.md §11); kGeneral means no specialized kernel applies.
enum class ShapeClass { kGeneral, kConvex, kConcave, kStaircase };

/// Stable lowercase name for a ShapeClass ("convex", "staircase", ...),
/// used in obs counter names and diagnostics.
const char* shape_class_name(ShapeClass c);

/// Structural classification of a curve, computed once at construction and
/// cached. The flags gate the specialized min-plus kernels; the staircase
/// fields are the UPP-style transient+period description (Nancy, arXiv
/// 2205.11449): a uniform staircase is fully described by (latency, period,
/// height, steps) plus the average-rate tail.
struct ShapeInfo {
  bool convex = false;                ///< see Curve::is_convex()
  bool concave_from_origin = false;   ///< see Curve::is_concave_from_origin()
  /// Every piece before the final (tail) segment is exactly flat
  /// (slope == 0.0) with finite values: a piecewise-constant transient
  /// followed by one affine (possibly +inf) tail. This is the eligibility
  /// gate for the staircase convolution kernel — it does NOT require
  /// uniform risers.
  bool piecewise_constant = false;
  /// The transient is a uniform staircase: equal `height` jumps every
  /// `period` starting at `latency`, `steps` risers, then the average-rate
  /// tail (the exact pattern Curve::staircase() produces).
  bool uniform_staircase = false;
  double height = 0.0;   ///< riser height (uniform_staircase only)
  double period = 0.0;   ///< riser spacing (uniform_staircase only)
  double latency = 0.0;  ///< abscissa of the first riser (uniform_staircase)
  int steps = 0;         ///< number of materialized risers (uniform_staircase)
};

/// A piecewise-linear, wide-sense-increasing curve on [0, inf).
class Curve {
 public:
  /// The identically-zero curve.
  Curve();

  /// Builds a curve from explicit segments. Requirements (else throws
  /// PreconditionError): non-empty; segs[0].x == 0; x strictly increasing;
  /// all values finite-or-+inf, non-negative; wide-sense increasing
  /// (value_at <= value_after, slope >= 0, and each breakpoint's value_at is
  /// >= the left limit of the previous segment); once a value is +inf the
  /// curve stays +inf.
  explicit Curve(std::vector<Segment> segments);

  // --- Named constructors for the standard curve families ----------------

  /// f(t) = 0.
  static Curve zero();

  /// f(t) = c for t > 0, f(0) = 0 (the "burst only" curve).
  static Curve constant(double c);

  /// Leaky-bucket / affine arrival curve: f(0) = 0, f(t) = burst + rate*t
  /// for t > 0. Requires rate >= 0, burst >= 0.
  static Curve affine(double rate, double burst);

  /// Rate-latency service curve: f(t) = max(0, rate * (t - latency)).
  /// Requires rate >= 0, latency >= 0.
  static Curve rate_latency(double rate, double latency);

  /// Pure rate: f(t) = rate * t.
  static Curve rate(double rate);

  /// Burst-delay curve delta_T: 0 on [0, T], +inf after. delta(0) is the
  /// identity of min-plus convolution.
  static Curve delta(double latency);

  /// Step of height h at time `at` (> 0): 0 on [0, at], h after.
  static Curve step(double height, double at);

  /// Staircase curve: f(t) = height * ceil((t - latency) / period) clamped
  /// below at 0 — the cumulative curve of a packetized flow emitting
  /// `height` bytes every `period` seconds after `latency`. The staircase is
  /// materialized for `steps` periods and continues with its average slope
  /// (height/period) afterwards, staying a lower bound of the true infinite
  /// staircase's upper envelope. Requires steps >= 1.
  static Curve staircase(double height, double period, double latency,
                         int steps);

  // --- Unit-aware conveniences used by the netcalc layer ------------------

  /// affine() with typed units: f in bytes over seconds.
  static Curve affine(util::DataRate rate, util::DataSize burst);
  /// rate_latency() with typed units.
  static Curve rate_latency(util::DataRate rate, util::Duration latency);

  // --- Evaluation ----------------------------------------------------------

  /// f(t). Requires t >= 0.
  double value(double t) const;
  /// lim_{s -> t+} f(s). Requires t >= 0.
  double value_right(double t) const;
  /// lim_{s -> t-} f(s) for t > 0; value(0) for t == 0.
  double value_left(double t) const;

  /// Lower pseudo-inverse: inf{ t >= 0 : f(t) >= y }. Returns +inf when f
  /// never reaches y. Requires y >= 0.
  double lower_inverse(double y) const;

  /// Upper pseudo-inverse: inf{ t >= 0 : f(t) > y } (equivalently the end
  /// of the plateau at level y). Returns +inf when f never exceeds y.
  /// Requires y >= 0.
  double upper_inverse(double y) const;

  // --- Structure -----------------------------------------------------------

  const std::vector<Segment>& segments() const { return segs_; }

  /// Abscissa of the last breakpoint (the curve is affine from here on).
  double last_breakpoint() const { return segs_.back().x; }

  /// Slope of the final (infinite) segment; +inf if the curve reaches +inf.
  double tail_slope() const;

  /// The value f would have at t if extended affinely from its last
  /// breakpoint — i.e. exact evaluation for t >= last_breakpoint().
  bool is_finite() const;  ///< True if f(t) < inf for all finite t.

  /// True if the curve is continuous on (0, inf) and its slopes are
  /// non-decreasing (a convex function; a final jump to +inf is allowed,
  /// so delta_T counts as convex). Cached at construction.
  bool is_convex() const { return shape_.convex; }

  /// True if f(0) == 0 and f is concave on (0, inf) (an initial jump at 0 is
  /// allowed): the class of "good" arrival curves for which
  /// f (x) g = min(f, g) under min-plus convolution. Cached at construction.
  bool is_concave_from_origin() const { return shape_.concave_from_origin; }

  /// Cached structural classification (computed once at construction).
  const ShapeInfo& shape() const { return shape_; }

  /// Coarsest shape-lattice class this curve belongs to, for dispatch
  /// accounting: staircase beats convex/concave beats general.
  ShapeClass shape_class() const;

  /// True if f(t) == 0 for all t.
  bool is_zero() const;

  // --- Pointwise transforms (exact) ---------------------------------------

  /// c * f (vertical scaling). Requires c >= 0.
  Curve scale_value(double c) const;
  /// f(t / c) (horizontal scaling). Requires c > 0.
  Curve scale_time(double c) const;
  /// t -> f(t - T) extended by 0 on [0, T): shift right. Requires T >= 0.
  Curve shift_right(double T) const;
  /// t -> f(t + T): shift left (the part of f before T is discarded).
  /// Requires T >= 0.
  Curve shift_left(double T) const;
  /// f + h * 1_{t > 0}: adds a step at 0 (the packetizer's arrival-curve
  /// adjustment). Requires h >= 0.
  Curve plus_step(double h) const;
  /// [f - c]^+ : max(f - c, 0) (the packetizer's service-curve adjustment).
  /// Requires c >= 0.
  Curve minus_clamped(double c) const;

  /// Human-readable description, e.g. "affine(rate=3, burst=2)" falls back
  /// to a breakpoint listing for general curves.
  std::string describe() const;

  /// Equality is structural on the (normalized) segment list; the cached
  /// ShapeInfo is derived from it and deliberately excluded.
  friend bool operator==(const Curve& a, const Curve& b) {
    return a.segs_ == b.segs_;
  }

 private:
  /// Index of the segment containing t (last segment with x <= t).
  std::size_t segment_index(double t) const;
  void validate() const;
  void normalize();
  void compute_shape();

  std::vector<Segment> segs_;
  ShapeInfo shape_;
};

}  // namespace streamcalc::minplus
