#include "minplus/deviation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "minplus/detail/builder.hpp"
#include "util/error.hpp"

namespace streamcalc::minplus {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double sub_inf(double a, double b) {
  if (a == kInf && b == kInf) return -kInf;  // both infinite: no deviation
  if (a == kInf) return kInf;
  if (b == kInf) return -kInf;
  return a - b;
}

std::vector<double> shared_candidates(const Curve& f, const Curve& g) {
  std::vector<double> ts{0.0};
  for (const Segment& s : f.segments()) ts.push_back(s.x);
  for (const Segment& s : g.segments()) ts.push_back(s.x);
  // One probe beyond all breakpoints: there both curves are affine, so the
  // deviation is monotone and its supremum over the tail sits at the probe
  // (callers handle the divergent-tail case separately).
  ts.push_back(std::max(f.last_breakpoint(), g.last_breakpoint()) + 1.0);
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
  return ts;
}

/// Slope of the piece governing f immediately to the right of t. Called
/// once per candidate abscissa, so a linear scan would make the deviation
/// bounds quadratic in the piece count; binary-search the segment instead.
double right_slope(const Curve& f, double t) {
  const std::vector<Segment>& segs = f.segments();
  auto it = std::upper_bound(
      segs.begin(), segs.end(), t,
      [](double lhs, const Segment& s) { return lhs < s.x; });
  if (it != segs.begin()) --it;
  return it->slope;
}

}  // namespace

double vertical_deviation(const Curve& f, const Curve& g) {
  if (detail::tail_diverges(f, g)) return kInf;
  double best = 0.0;
  for (double t : shared_candidates(f, g)) {
    best = std::max(best, sub_inf(f.value(t), g.value(t)));
    best = std::max(best, sub_inf(f.value_right(t), g.value_right(t)));
    if (t > 0.0) {
      best = std::max(best, sub_inf(f.value_left(t), g.value_left(t)));
    }
    if (best == kInf) break;
  }
  return best;
}

double horizontal_deviation(const Curve& f, const Curve& g) {
  if (detail::tail_diverges(f, g)) return kInf;

  // Candidate abscissae where the delay d(t) = g^{-1}(f(t)) - t can peak:
  // breakpoints of f, instants where f crosses the value levels of g's
  // breakpoints, and one probe past all breakpoints (beyond which d(t) is
  // affine non-increasing given the tail-slope check above).
  std::vector<double> ts = shared_candidates(f, g);
  for (const Segment& s : g.segments()) {
    for (double level : {s.value_at, s.value_after}) {
      if (level == kInf) continue;
      const double t = f.lower_inverse(level);
      if (std::isfinite(t)) ts.push_back(t);
    }
  }
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end()), ts.end());

  double best = 0.0;
  for (double t : ts) {
    for (double level : {f.value(t), f.value_right(t)}) {
      if (level == kInf) return kInf;  // f demands more than g ever serves
      if (level <= 0.0) continue;
      const double reach = g.lower_inverse(level);
      if (reach == kInf) return kInf;
      best = std::max(best, reach - t);
    }
    // The supremum can be approached without being attained: where f
    // strictly rises past a level at which g is flat, the delay jumps to
    // the *end* of g's flat piece as soon as t leaves the crossing
    // (classically: f(t) demands level+, and g only exceeds the level
    // past the flat). The right-limit candidate is inf{d : g(d) > f(t+)},
    // taken whenever f actually rises to the right of t.
    const double lr = f.value_right(t);
    if (lr != kInf && right_slope(f, t) > 0.0) {
      const double reach = g.upper_inverse(lr);
      // f exceeds lr immediately right of t while g never does: the
      // demand f(t') > lr is unmet for every d, so the delay diverges.
      if (reach == kInf) return kInf;
      best = std::max(best, reach - t);
    }
  }
  return best;
}

}  // namespace streamcalc::minplus
