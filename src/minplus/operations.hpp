// Exact operations on piecewise-linear curves: the (min, +) dioid.
//
// Min-plus convolution and deconvolution are the two workhorses of network
// calculus:
//
//   (f (x) g)(t) = inf_{0 <= s <= t} f(s) + g(t - s)     (convolution)
//   (f (/) g)(t) = sup_{s >= 0}      f(t + s) - g(s)     (deconvolution)
//
// Convolution dispatches to closed forms where they exist (Le Boudec &
// Thiran, "Network Calculus", ch. 3):
//   * delta_T is the shift operator: f (x) delta_T = f shifted right by T;
//   * convex (x) convex = slope-sorted concatenation of segments;
//   * concave-from-origin (x) concave-from-origin = pointwise minimum;
// and otherwise falls back to an exact breakpoint-enumeration algorithm
// (the result of convolving piecewise-linear curves is piecewise linear
// with breakpoints contained in the Minkowski sum of the operand
// breakpoints; we evaluate the infimum exactly at those candidates and at
// interval midpoints, which pins down every linear piece).
//
// All functions are exact — no sampling error; the test suite validates
// them against brute-force evaluation on dense grids.
#pragma once

#include "minplus/curve.hpp"

namespace streamcalc::minplus {

/// Pointwise sum f + g.
Curve add(const Curve& f, const Curve& g);

/// Pointwise minimum min(f, g) — which is also the min-plus "addition" of
/// the (min, +) dioid.
Curve minimum(const Curve& f, const Curve& g);

/// Pointwise maximum max(f, g).
Curve maximum(const Curve& f, const Curve& g);

/// Pointwise clamped difference [f - g]^+ = max(f - g, 0). The workhorse
/// of residual ("leftover") service curves: a server guaranteeing beta
/// that also carries cross-traffic bounded by alpha_cross leaves at least
/// [beta - alpha_cross]^+ for the flow of interest.
Curve subtract_clamped(const Curve& f, const Curve& g);

/// Min-plus convolution (f (x) g). Exact; see file comment.
Curve convolve(const Curve& f, const Curve& g);

/// Min-plus deconvolution (f (/) g), clamped below at 0 (the deconvolution
/// of cumulative curves is an arrival bound and is never meaningfully
/// negative). If f grows asymptotically faster than g the deconvolution is
/// +inf everywhere; the returned curve is identically +inf (check with
/// Curve::is_finite()).
Curve deconvolve(const Curve& f, const Curve& g);

/// Evaluates (f (x) g)(t) directly without building the full result curve.
double convolve_at(const Curve& f, const Curve& g, double t);

/// Evaluates (f (/) g)(t) directly (clamped at 0) without building the full
/// result curve. May return +inf.
double deconvolve_at(const Curve& f, const Curve& g, double t);

/// Sub-additive closure f* = min(delta_0, f, f(x)f, f(x)f(x)f, ...).
/// Iterates until a fixpoint or `max_terms` self-convolutions; for the
/// curve families used in this library the fixpoint is reached in one or
/// two iterations. Requires max_terms >= 1.
Curve subadditive_closure(const Curve& f, int max_terms = 16);

namespace detail {

// Shape-dispatch introspection (DESIGN.md §11). convolve()/deconvolve()
// classify their operands once and route to a specialized kernel; the
// classifiers and the general kernels are exposed here so the property
// suite can assert every specialized kernel pointwise-equals the general
// one, and so obs counters can record which kernel fired.

/// Which kernel convolve() routes a given operand pair to.
enum class ConvKernel {
  kDelay,         ///< one operand is delta_T: shift the other
  kZero,          ///< one operand is the zero curve: constant other(0)
  kConvex,        ///< convex (x) convex: slope-sorted merge, O(n log n)
  kConcave,       ///< concave (x) concave from origin: pointwise minimum
  kAffineConvex,  ///< single-segment (x) convex: min of two closed forms
  kStaircase,     ///< piecewise-constant transient: pruned branch envelope
  kGeneral,       ///< no structure applies: full branch envelope
};

/// Which kernel deconvolve() routes a given operand pair to.
enum class DeconvKernel {
  kDivergent,  ///< tail of f outgrows g: +inf everywhere
  kDelay,      ///< g is delta_T: f shifted left by T
  kGeneral,    ///< full reflected-branch envelope
};

const char* kernel_name(ConvKernel k);
const char* kernel_name(DeconvKernel k);

/// The kernel convolve(f, g) will use (pure classification, no work).
ConvKernel classify_convolve(const Curve& f, const Curve& g);

/// The kernel deconvolve(f, g) will use (pure classification, no work).
DeconvKernel classify_deconvolve(const Curve& f, const Curve& g);

/// The shape-agnostic branch-envelope convolution — the reference the
/// specialized kernels are tested against. Exact for any operands.
Curve convolve_general(const Curve& f, const Curve& g);

/// The shape-agnostic reflected-branch-envelope deconvolution (assumes the
/// divergent case was excluded).
Curve deconvolve_general(const Curve& f, const Curve& g);

}  // namespace detail

}  // namespace streamcalc::minplus
