// Exact-rational re-evaluation of network-calculus bound definitions.
//
// This is the independent half of the proof-carrying verification layer
// (DESIGN.md §9). The fast kernels in minplus/operations.* compute
// convolutions and deviations on doubles with clever candidate pruning; a
// bug there would silently produce wrong bounds. This file re-evaluates
// the *definitions* only —
//
//   vertical deviation   sup_t [ alpha(t) - beta(t) ]          (backlog)
//   horizontal deviation sup_t inf{ d : alpha(t) <= beta(t+d) } (delay)
//
// — over exact rationals (util::Rational), converting the double
// breakpoints exactly (every finite double is dyadic). It deliberately
// shares NO code with minplus::operations: no convolution, no
// deconvolution, no kernel candidate pruning. The only shared knowledge is
// the Segment representation contract documented in minplus/curve.hpp,
// which both sides implement from the same written definition.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "minplus/curve.hpp"
#include "util/rational.hpp"

namespace streamcalc::certify {

/// util::Rational extended with +infinity. Curve values may be +inf (the
/// burst-delay curve delta_T); abscissae and slopes are always finite.
class ExtRat {
 public:
  ExtRat() = default;  ///< zero
  // NOLINTNEXTLINE(google-explicit-constructor): finite rationals embed in ExtRat
  ExtRat(util::Rational v) : value_(std::move(v)) {}
  static ExtRat infinity() {
    ExtRat r;
    r.inf_ = true;
    return r;
  }
  /// Exact value of `v`; +inf maps to infinity(). Requires v == v (no NaN)
  /// and v != -inf.
  static ExtRat from_double(double v);

  bool is_inf() const { return inf_; }
  /// Requires !is_inf().
  const util::Rational& finite() const;

  /// Total order with +inf as the unique maximum (inf compares equal to
  /// inf).
  int compare(const ExtRat& o) const;
  bool operator==(const ExtRat& o) const { return compare(o) == 0; }
  bool operator<(const ExtRat& o) const { return compare(o) < 0; }
  bool operator<=(const ExtRat& o) const { return compare(o) <= 0; }
  bool operator>(const ExtRat& o) const { return compare(o) > 0; }
  bool operator>=(const ExtRat& o) const { return compare(o) >= 0; }

  /// inf + finite = inf.
  ExtRat operator+(const util::Rational& o) const;
  /// inf - finite = inf.
  ExtRat operator-(const util::Rational& o) const;

  double approx() const;
  std::string to_string() const;

 private:
  bool inf_ = false;
  util::Rational value_;
};

/// One breakpoint of an exact curve; same semantics as minplus::Segment
/// (value at x, right limit after x, slope on the open interval).
struct ExactSegment {
  util::Rational x;
  ExtRat value_at;
  ExtRat value_after;
  util::Rational slope;  ///< always finite (curve invariant)
};

/// A piecewise-linear wide-sense-increasing curve with exact rational
/// breakpoints, converted losslessly from a minplus::Curve. Evaluation and
/// pseudo-inverses are implemented directly from the definitions in
/// minplus/curve.hpp — independently of the double code paths.
class ExactCurve {
 public:
  /// Lossless conversion: every finite double breakpoint becomes the
  /// dyadic rational it exactly represents; +inf values carry over.
  static ExactCurve from(const minplus::Curve& c);

  const std::vector<ExactSegment>& segments() const { return segs_; }
  const util::Rational& last_breakpoint() const { return segs_.back().x; }

  /// f(t). Requires t >= 0.
  ExtRat value(const util::Rational& t) const;
  /// lim_{s -> t+} f(s).
  ExtRat value_right(const util::Rational& t) const;
  /// lim_{s -> t-} f(s) for t > 0; value(0) at 0.
  ExtRat value_left(const util::Rational& t) const;

  /// Lower pseudo-inverse: inf{ t >= 0 : f(t) >= y } (ExtRat::infinity()
  /// when f never reaches y). For y = +inf this is inf_start().
  ExtRat lower_inverse(const ExtRat& y) const;
  /// Upper pseudo-inverse: inf{ t >= 0 : f(t) > y }. For y = +inf this is
  /// inf_start() (used by the delay check, where the demand "alpha = +inf"
  /// is met exactly where f reaches +inf).
  ExtRat upper_inverse(const ExtRat& y) const;

  /// Slope of the curve beyond the last breakpoint; +inf when the curve
  /// reaches +inf.
  ExtRat tail_slope() const;
  /// inf{ t : f is +inf at or immediately after t }; infinity() when the
  /// curve is finite everywhere.
  ExtRat inf_start() const;
  bool finite_everywhere() const { return !segs_.back().value_after.is_inf(); }

  /// Slope immediately to the right of t (the containing segment's slope).
  const util::Rational& right_slope(const util::Rational& t) const;

 private:
  std::size_t segment_index(const util::Rational& t) const;

  std::vector<ExactSegment> segs_;
};

/// Result of an exact deviation computation. When `infinite`, the bound
/// definitionally diverges; otherwise `value` is the exact supremum
/// (clamped below at 0) and `witness` is a time achieving it.
struct ExactBound {
  bool infinite = false;
  util::Rational value;
  util::Rational witness;
};

/// Pointwise deviation at one candidate time (used both to build the
/// supremum and to audit a certificate's recorded witness).
struct PointDev {
  bool defined = false;  ///< false when the difference is -inf everywhere
  bool infinite = false;
  util::Rational value;
};

/// max over the value/right-limit/left-limit variants of f - g at t.
PointDev exact_vertical_dev_at(const ExactCurve& f, const ExactCurve& g,
                               const util::Rational& t);
/// inf{ d >= 0 : f <= g(.+d) } demanded at t (value, right limit, and the
/// strict right-rise variant), per the kernel's definitional reading.
PointDev exact_horizontal_dev_at(const ExactCurve& f, const ExactCurve& g,
                                 const util::Rational& t);

/// sup_t [ f(t) - g(t) ], exact. Definitional backlog bound for f = alpha,
/// g = beta.
ExactBound exact_vertical_deviation(const ExactCurve& f, const ExactCurve& g);
/// sup_t inf{ d : f(t) <= g(t+d) }, exact. Definitional delay bound.
ExactBound exact_horizontal_deviation(const ExactCurve& f,
                                      const ExactCurve& g);

}  // namespace streamcalc::certify
