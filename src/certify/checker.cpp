#include "certify/checker.hpp"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "certify/exact.hpp"
#include "util/format.hpp"
#include "util/rational.hpp"

namespace streamcalc::certify {

namespace {

using diagnostics::Diagnostic;
using diagnostics::LintReport;
using diagnostics::Severity;
using util::Rational;

/// The library's relative modeling tolerance (Curve::validate grants the
/// same slack), as an exact rational around `scale`.
Rational rel_tol(double scale) {
  if (!std::isfinite(scale)) scale = 0.0;
  return Rational::from_double(1e-9 * (1.0 + std::fabs(scale)));
}

/// a <= b + rel_tol(b), with +inf as absorbing top.
bool leq_tol(const ExtRat& a, const ExtRat& b) {
  if (b.is_inf()) return true;
  if (a.is_inf()) return false;
  return a.finite() <= b.finite() + rel_tol(b.approx());
}

/// |a - b| <= rel_tol(b), with inf == inf.
bool eq_tol(const ExtRat& a, const ExtRat& b) {
  if (a.is_inf() || b.is_inf()) return a.is_inf() && b.is_inf();
  const Rational d = a.finite() - b.finite();
  const Rational t = rel_tol(b.approx());
  return (d.is_negative() ? -d : d) <= t;
}

void add_error(LintReport& report, const char* code,
               const std::string& location, std::string message,
               std::string hint = "") {
  report.add(Diagnostic{code, Severity::kError, location, std::move(message),
                        std::move(hint)});
}

/// Exact re-validation of the Segment representation contract
/// (minplus/curve.hpp): a checker must not trust that a mutated curve
/// still honors the invariants the double validator enforced.
void check_structure(const minplus::Curve& curve, const std::string& which,
                     const std::string& location, LintReport& report) {
  const auto& segs = curve.segments();
  if (segs.empty()) {
    add_error(report, "NC602", location, which + " curve has no segments");
    return;
  }
  const ExactCurve exact = ExactCurve::from(curve);
  const auto& e = exact.segments();
  if (!e.front().x.is_zero()) {
    add_error(report, "NC602", location,
              which + " curve does not start at t = 0");
  }
  bool reached_inf = false;
  for (std::size_t i = 0; i < e.size(); ++i) {
    if (i > 0 && !(e[i - 1].x < e[i].x)) {
      add_error(report, "NC602", location,
                which + " curve breakpoints are not strictly increasing");
      return;
    }
    if (e[i].slope.is_negative() || !(e[i].value_at <= e[i].value_after)) {
      add_error(report, "NC602", location,
                which + " curve decreases within a segment (not wide-sense "
                        "increasing)");
      return;
    }
    if (i > 0) {
      // Cross-breakpoint monotonicity, with the validator's 1e-9 slack:
      // the left limit must not exceed the value at the breakpoint.
      const ExtRat left = exact.value_left(e[i].x);
      if (!leq_tol(left, e[i].value_at)) {
        add_error(report, "NC602", location,
                  which + " curve jumps downward at t = " +
                      e[i].x.to_string());
        return;
      }
    }
    if (reached_inf && !e[i].value_at.is_inf()) {
      add_error(report, "NC602", location,
                which + " curve returns from +inf to a finite value");
      return;
    }
    reached_inf = reached_inf || e[i].value_after.is_inf();
  }
}

ExactBound exact_deviation(const BoundCertificate& cert, const ExactCurve& f,
                           const ExactCurve& g) {
  return cert.kind == BoundKind::kDelay ? exact_horizontal_deviation(f, g)
                                        : exact_vertical_deviation(f, g);
}

PointDev exact_dev_at(const BoundCertificate& cert, const ExactCurve& f,
                      const ExactCurve& g, const Rational& t) {
  return cert.kind == BoundKind::kDelay ? exact_horizontal_dev_at(f, g, t)
                                        : exact_vertical_dev_at(f, g, t);
}

/// The claimed-bound audit: domination, canonical rounding, witness.
void check_bound(const BoundCertificate& cert, const ExactCurve& f,
                 const ExactCurve& g, LintReport& report) {
  const ExactBound dev = exact_deviation(cert, f, g);
  const bool claim_inf = std::isinf(cert.claimed);
  if (claim_inf) {
    if (!dev.infinite) {
      add_error(report, "NC601", cert.context,
                std::string(to_string(cert.kind)) +
                    " bound claims divergence, but the exact definitional "
                    "deviation is finite (" +
                    dev.value.to_string() + ")");
    }
    return;
  }
  if (dev.infinite) {
    add_error(report, "NC601", cert.context,
              std::string(to_string(cert.kind)) + " bound claims " +
                  util::format_significant(cert.claimed) +
                  ", but the exact definitional deviation diverges");
    return;
  }
  const Rational claim = Rational::from_double(cert.claimed);
  if (claim < dev.value) {
    add_error(report, "NC601", cert.context,
              std::string(to_string(cert.kind)) + " bound " +
                  util::format_significant(cert.claimed) +
                  " is below the exact definitional deviation " +
                  dev.value.to_string() + " (~" +
                  util::format_significant(dev.value.approx()) + ")",
              "the optimized kernel under-approximated; this bound is "
              "unsound");
    return;
  }
  // Tightness: the claim must be the canonical upward rounding of the
  // exact supremum — anything larger was not produced by the emitter and
  // cannot be audited against the witness. This is exact, so a +1 ulp
  // perturbation is rejected here while -1 ulp fails domination above.
  if (cert.claimed != dev.value.round_up_double()) {
    add_error(report, "NC603", cert.context,
              std::string(to_string(cert.kind)) + " bound " +
                  util::format_significant(cert.claimed) +
                  " is not the canonical rounding of the exact supremum " +
                  dev.value.to_string());
    return;
  }
  if (!cert.has_witness) {
    add_error(report, "NC603", cert.context,
              std::string(to_string(cert.kind)) +
                  " certificate carries no witness for a finite bound");
    return;
  }
  if (!std::isfinite(cert.witness_time) || cert.witness_time < 0.0) {
    add_error(report, "NC603", cert.context,
              "witness time is not a finite non-negative value");
    return;
  }
  // The witness must attain the supremum. The recorded time is the exact
  // witness rounded onto the double grid, so allow the modeling tolerance.
  const PointDev at = exact_dev_at(cert, f, g,
                                   Rational::from_double(cert.witness_time));
  const Rational attained =
      !at.defined || at.infinite ? Rational(0) : at.value;
  if (at.infinite ||
      !leq_tol(ExtRat(dev.value), ExtRat(Rational::max(attained, Rational(0))))) {
    add_error(report, "NC603", cert.context,
              "witness t* = " + util::format_significant(cert.witness_time) +
                  " attains deviation " + attained.to_string() +
                  ", not the claimed supremum " + dev.value.to_string());
  }
}

/// Derivation side conditions for a concatenated service curve.
void check_derivation(const BoundCertificate& cert, LintReport& report) {
  if (cert.components.empty()) return;
  const ExactCurve service = ExactCurve::from(cert.service);

  std::vector<ExactCurve> comps;
  comps.reserve(cert.components.size());
  for (std::size_t i = 0; i < cert.components.size(); ++i) {
    const std::string which = "component " + std::to_string(i) + " service";
    check_structure(cert.components[i], which, cert.context, report);
    const ExactCurve c = ExactCurve::from(cert.components[i]);
    // value_right(0) covers both a positive value at 0 and an upward jump
    // immediately after it — either way the stage would emit output in
    // (0, eps) with no input yet.
    if (c.value_right(Rational(0)) > ExtRat(Rational(0))) {
      add_error(report, "NC602", cert.context,
                which + " is non-causal (positive at t = 0+): a service "
                        "guarantee cannot deliver output before input");
    }
    comps.push_back(c);
  }
  if (!report.clean()) return;

  // (1) Concatenation never promises more than any single stage:
  // beta_e2e <= beta_i pointwise, checked at every breakpoint of either
  // curve (value, right and left limits) plus a probe past both tails.
  for (std::size_t i = 0; i < comps.size(); ++i) {
    const ExactCurve& c = comps[i];
    std::vector<Rational> ts;
    for (const ExactSegment& s : service.segments()) ts.push_back(s.x);
    for (const ExactSegment& s : c.segments()) ts.push_back(s.x);
    ts.push_back(Rational::max(service.last_breakpoint(),
                               c.last_breakpoint()) +
                 Rational(1));
    bool ok = leq_tol(service.tail_slope(), c.tail_slope());
    for (const Rational& t : ts) {
      if (!ok) break;
      ok = leq_tol(service.value(t), c.value(t)) &&
           leq_tol(service.value_right(t), c.value_right(t)) &&
           (t.is_zero() || leq_tol(service.value_left(t), c.value_left(t)));
    }
    if (!ok) {
      add_error(report, "NC602", cert.context,
                "end-to-end service curve exceeds component " +
                    std::to_string(i) +
                    ": a concatenation cannot out-promise its stages");
    }
  }

  // (2) The concatenated long-term rate is the bottleneck's: tail slope of
  // the end-to-end curve equals the minimum component tail slope.
  ExtRat min_tail = ExtRat::infinity();
  for (const ExactCurve& c : comps) {
    if (c.tail_slope() < min_tail) min_tail = c.tail_slope();
  }
  if (!eq_tol(service.tail_slope(), min_tail)) {
    add_error(report, "NC602", cert.context,
              "end-to-end tail slope " + service.tail_slope().to_string() +
                  " does not match the bottleneck component tail slope " +
                  min_tail.to_string());
  }

  // (3) Latency accumulates: the end-to-end curve cannot become positive
  // before the sum of the component latencies ("pay bursts only once"
  // shortens bursts, never latencies).
  ExtRat latency_sum{Rational(0)};
  for (const ExactCurve& c : comps) {
    const ExtRat start = c.upper_inverse(ExtRat(Rational(0)));
    if (start.is_inf() || latency_sum.is_inf()) {
      latency_sum = ExtRat::infinity();
    } else {
      latency_sum = ExtRat(latency_sum.finite() + start.finite());
    }
  }
  const ExtRat e2e_start = service.upper_inverse(ExtRat(Rational(0)));
  if (!leq_tol(latency_sum, e2e_start)) {
    add_error(report, "NC602", cert.context,
              "end-to-end service becomes positive at t = " +
                  e2e_start.to_string() +
                  ", before the accumulated component latency " +
                  latency_sum.to_string());
  }
}

/// NC605: cross-check the double kernel's result against the certified
/// value. A mismatch does not invalidate the certificate (the certified
/// number is the exact one); it flags a kernel defect.
void check_kernel_agreement(const BoundCertificate& cert,
                            LintReport& report) {
  const bool claim_inf = std::isinf(cert.claimed);
  const bool kernel_inf = std::isinf(cert.kernel_value);
  bool agree;
  if (claim_inf || kernel_inf) {
    agree = claim_inf == kernel_inf;
  } else {
    agree = std::fabs(cert.kernel_value - cert.claimed) <=
            1e-6 * (1.0 + std::fabs(cert.claimed));
  }
  if (!agree) {
    report.add(Diagnostic{
        "NC605", Severity::kWarning, cert.context,
        std::string("double kernel computed ") +
            util::format_significant(cert.kernel_value) +
            " but the exact definitional " + to_string(cert.kind) +
            " bound certifies as " + util::format_significant(cert.claimed),
        "the certificate is sound; investigate the optimized kernel"});
  }
}

}  // namespace

LintReport check_certificate(const BoundCertificate& cert) {
  LintReport report;
  check_structure(cert.arrival, "arrival", cert.context, report);
  check_structure(cert.service, "service", cert.context, report);
  if (!report.clean()) return report;

  const ExactCurve f = ExactCurve::from(cert.arrival);
  const ExactCurve g = ExactCurve::from(cert.service);
  check_bound(cert, f, g, report);
  check_derivation(cert, report);
  check_kernel_agreement(cert, report);
  return report;
}

LintReport check_certificates(const std::vector<BoundCertificate>& certs) {
  LintReport report;
  for (const BoundCertificate& cert : certs) {
    report.merge(check_certificate(cert));
  }
  return report;
}

}  // namespace streamcalc::certify
