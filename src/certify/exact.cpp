#include "certify/exact.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/error.hpp"

namespace streamcalc::certify {

using util::Rational;

// --- ExtRat ----------------------------------------------------------------

ExtRat ExtRat::from_double(double v) {
  util::require(v == v, "ExtRat::from_double requires a non-NaN value");
  util::require(v != -std::numeric_limits<double>::infinity(),
                "ExtRat::from_double requires a value > -inf");
  if (std::isinf(v)) return infinity();
  return ExtRat(Rational::from_double(v));
}

const Rational& ExtRat::finite() const {
  util::require(!inf_, "ExtRat::finite called on +inf");
  return value_;
}

int ExtRat::compare(const ExtRat& o) const {
  if (inf_ || o.inf_) {
    if (inf_ && o.inf_) return 0;
    return inf_ ? 1 : -1;
  }
  return value_.compare(o.value_);
}

ExtRat ExtRat::operator+(const Rational& o) const {
  if (inf_) return *this;
  return ExtRat(value_ + o);
}

ExtRat ExtRat::operator-(const Rational& o) const {
  if (inf_) return *this;
  return ExtRat(value_ - o);
}

double ExtRat::approx() const {
  return inf_ ? std::numeric_limits<double>::infinity() : value_.approx();
}

std::string ExtRat::to_string() const {
  return inf_ ? "+inf" : value_.to_string();
}

// --- ExactCurve ------------------------------------------------------------

ExactCurve ExactCurve::from(const minplus::Curve& c) {
  ExactCurve out;
  out.segs_.reserve(c.segments().size());
  for (const minplus::Segment& s : c.segments()) {
    out.segs_.push_back(ExactSegment{
        Rational::from_double(s.x), ExtRat::from_double(s.value_at),
        ExtRat::from_double(s.value_after), Rational::from_double(s.slope)});
  }
  return out;
}

std::size_t ExactCurve::segment_index(const Rational& t) const {
  // Last segment with x <= t. Curves are tiny; linear scan is exact and
  // obviously correct, which is what this layer optimizes for.
  std::size_t i = 0;
  while (i + 1 < segs_.size() && segs_[i + 1].x <= t) ++i;
  return i;
}

ExtRat ExactCurve::value(const Rational& t) const {
  const ExactSegment& s = segs_[segment_index(t)];
  if (t == s.x) return s.value_at;
  return s.value_after + s.slope * (t - s.x);
}

ExtRat ExactCurve::value_right(const Rational& t) const {
  const ExactSegment& s = segs_[segment_index(t)];
  if (t == s.x) return s.value_after;
  return s.value_after + s.slope * (t - s.x);
}

ExtRat ExactCurve::value_left(const Rational& t) const {
  if (t.is_zero()) return value(t);
  // Last segment starting strictly before t.
  std::size_t i = 0;
  while (i + 1 < segs_.size() && segs_[i + 1].x < t) ++i;
  const ExactSegment& s = segs_[i];
  return s.value_after + s.slope * (t - s.x);
}

ExtRat ExactCurve::lower_inverse(const ExtRat& y) const {
  if (y.is_inf()) return inf_start();
  const Rational& level = y.finite();
  for (std::size_t i = 0; i < segs_.size(); ++i) {
    const ExactSegment& s = segs_[i];
    if (s.value_at >= ExtRat(level)) return ExtRat(s.x);
    if (s.value_after >= ExtRat(level)) return ExtRat(s.x);
    if (!s.slope.is_zero()) {
      // value_after is finite here (an inf value_after was caught above).
      const Rational cand = s.x + (level - s.value_after.finite()) / s.slope;
      if (i + 1 == segs_.size() || cand <= segs_[i + 1].x) return ExtRat(cand);
    }
  }
  return ExtRat::infinity();
}

ExtRat ExactCurve::upper_inverse(const ExtRat& y) const {
  if (y.is_inf()) return inf_start();
  const Rational& level = y.finite();
  for (std::size_t i = 0; i < segs_.size(); ++i) {
    const ExactSegment& s = segs_[i];
    if (s.value_at > ExtRat(level)) return ExtRat(s.x);
    if (s.value_after > ExtRat(level)) return ExtRat(s.x);
    if (!s.slope.is_zero()) {
      const Rational cand = s.x + (level - s.value_after.finite()) / s.slope;
      if (i + 1 == segs_.size() || cand < segs_[i + 1].x) return ExtRat(cand);
    }
  }
  return ExtRat::infinity();
}

ExtRat ExactCurve::tail_slope() const {
  const ExactSegment& last = segs_.back();
  if (last.value_after.is_inf()) return ExtRat::infinity();
  return ExtRat(last.slope);
}

ExtRat ExactCurve::inf_start() const {
  for (const ExactSegment& s : segs_) {
    if (s.value_at.is_inf() || s.value_after.is_inf()) return ExtRat(s.x);
  }
  return ExtRat::infinity();
}

const Rational& ExactCurve::right_slope(const Rational& t) const {
  return segs_[segment_index(t)].slope;
}

// --- Deviations ------------------------------------------------------------

namespace {

/// Folds one difference f_part - g_part into the running maximum.
/// inf - inf and finite - inf contribute -inf and are skipped.
void fold_diff(const ExtRat& fv, const ExtRat& gv, PointDev& best) {
  if (gv.is_inf()) return;
  if (fv.is_inf()) {
    best.defined = true;
    best.infinite = true;
    return;
  }
  const Rational d = fv.finite() - gv.finite();
  if (!best.defined || (!best.infinite && best.value < d)) {
    best.defined = true;
    best.value = d;
  }
}

/// Folds one delay candidate: the time g reaches the demanded level,
/// measured from t and clamped below at 0 (the deviation quantifies over
/// d >= 0).
void fold_delay(const ExtRat& reach, const Rational& t, PointDev& best) {
  if (reach.is_inf()) {
    best.defined = true;
    best.infinite = true;
    return;
  }
  Rational d = reach.finite() - t;
  if (d.is_negative()) d = Rational(0);
  if (!best.defined || (!best.infinite && best.value < d)) {
    best.defined = true;
    best.value = d;
  }
}

std::vector<Rational> sorted_unique(std::vector<Rational> ts) {
  std::sort(ts.begin(), ts.end(),
            [](const Rational& a, const Rational& b) { return a < b; });
  ts.erase(std::unique(ts.begin(), ts.end(),
                       [](const Rational& a, const Rational& b) {
                         return a == b;
                       }),
           ts.end());
  return ts;
}

ExactBound sup_over(const ExactCurve& f, const ExactCurve& g,
                    const std::vector<Rational>& ts,
                    PointDev (*dev_at)(const ExactCurve&, const ExactCurve&,
                                       const Rational&)) {
  ExactBound out;
  bool have = false;
  for (const Rational& t : ts) {
    const PointDev pd = dev_at(f, g, t);
    if (!pd.defined) continue;
    if (pd.infinite) {
      out.infinite = true;
      out.witness = t;
      return out;
    }
    if (!have || out.value < pd.value) {
      have = true;
      out.value = pd.value;
      out.witness = t;
    }
  }
  if (!have || out.value.is_negative()) out.value = Rational(0);
  return out;
}

}  // namespace

PointDev exact_vertical_dev_at(const ExactCurve& f, const ExactCurve& g,
                               const Rational& t) {
  PointDev best;
  fold_diff(f.value(t), g.value(t), best);
  if (best.infinite) return best;
  fold_diff(f.value_right(t), g.value_right(t), best);
  if (best.infinite) return best;
  if (!t.is_zero()) fold_diff(f.value_left(t), g.value_left(t), best);
  return best;
}

PointDev exact_horizontal_dev_at(const ExactCurve& f, const ExactCurve& g,
                                 const Rational& t) {
  PointDev best;
  fold_delay(g.lower_inverse(f.value(t)), t, best);
  if (best.infinite) return best;
  const ExtRat right = f.value_right(t);
  fold_delay(g.lower_inverse(right), t, best);
  if (best.infinite) return best;
  // Just after t the demand rises strictly; meeting it requires g to
  // strictly exceed the level, hence the upper pseudo-inverse.
  if (!f.right_slope(t).is_zero()) {
    fold_delay(g.upper_inverse(right), t, best);
  }
  return best;
}

ExactBound exact_vertical_deviation(const ExactCurve& f, const ExactCurve& g) {
  ExactBound out;
  if (!f.finite_everywhere() && g.finite_everywhere()) {
    out.infinite = true;
    return out;
  }
  const ExtRat tf = f.tail_slope();
  const ExtRat tg = g.tail_slope();
  if (!tf.is_inf() && !tg.is_inf() && tf > tg) {
    out.infinite = true;
    return out;
  }
  std::vector<Rational> ts;
  ts.push_back(Rational(0));
  for (const ExactSegment& s : f.segments()) ts.push_back(s.x);
  for (const ExactSegment& s : g.segments()) ts.push_back(s.x);
  ts.push_back(Rational::max(f.last_breakpoint(), g.last_breakpoint()) +
               Rational(1));
  return sup_over(f, g, sorted_unique(std::move(ts)),
                  &exact_vertical_dev_at);
}

ExactBound exact_horizontal_deviation(const ExactCurve& f,
                                      const ExactCurve& g) {
  ExactBound out;
  if (!f.finite_everywhere() && g.finite_everywhere()) {
    out.infinite = true;
    return out;
  }
  const ExtRat tf = f.tail_slope();
  const ExtRat tg = g.tail_slope();
  if (!tf.is_inf() && !tg.is_inf() && tf > tg) {
    out.infinite = true;
    return out;
  }
  std::vector<Rational> ts;
  ts.push_back(Rational(0));
  for (const ExactSegment& s : f.segments()) ts.push_back(s.x);
  for (const ExactSegment& s : g.segments()) ts.push_back(s.x);
  // The horizontal sup can also be attained where f crosses one of g's
  // breakpoint *levels*; pull those crossing times in via f's lower
  // pseudo-inverse.
  for (const ExactSegment& s : g.segments()) {
    for (const ExtRat* level : {&s.value_at, &s.value_after}) {
      if (level->is_inf()) continue;
      const ExtRat t = f.lower_inverse(*level);
      if (!t.is_inf()) ts.push_back(t.finite());
    }
  }
  Rational probe = Rational::max(f.last_breakpoint(), g.last_breakpoint());
  for (const Rational& t : ts) probe = Rational::max(probe, t);
  ts.push_back(probe + Rational(1));
  return sup_over(f, g, sorted_unique(std::move(ts)),
                  &exact_horizontal_dev_at);
}

}  // namespace streamcalc::certify
