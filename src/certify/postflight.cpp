#include "certify/postflight.hpp"

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "certify/checker.hpp"
#include "obs/obs.hpp"
#include "util/context.hpp"
#include "util/error.hpp"

namespace streamcalc::certify {

namespace {

using diagnostics::LintReport;
using minplus::Curve;

std::vector<DerivationStep> pipeline_steps(
    const netcalc::PipelineModel& model) {
  std::vector<DerivationStep> steps;
  steps.push_back({"source-arrival", model.arrival_curve().describe()});
  for (std::size_t i = 0; i < model.nodes().size(); ++i) {
    steps.push_back({"node-service",
                     model.nodes()[i].name + ": " +
                         model.node_service_curve(i).describe()});
  }
  steps.push_back({"concatenation",
                   "min-plus convolution of " +
                       std::to_string(model.nodes().size()) +
                       " per-node service curves (pay bursts only once)"});
  return steps;
}

std::string path_context(const netcalc::DagModel& model,
                         const std::vector<std::size_t>& nodes) {
  std::string out = "path ";
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    if (k > 0) out += "->";
    out += model.dag().nodes[nodes[k]].name;
  }
  return out;
}

}  // namespace

CertifyMode certify_mode(const util::Context& ctx) {
  switch (ctx.certify) {
    case util::EnforceMode::kOff:
      return CertifyMode::kOff;
    case util::EnforceMode::kWarn:
      return CertifyMode::kWarn;
    case util::EnforceMode::kStrict:
      return CertifyMode::kStrict;
  }
  return CertifyMode::kOff;
}

CertifyMode certify_mode_from_env() {
  util::warn_deprecated_once(
      "certify_mode_from_env(): build a util::Context (Context::from_env()) "
      "and pass it to the certify entry points instead");
  return certify_mode(util::Context::active());
}

std::vector<BoundCertificate> emit_pipeline_certificates(
    const netcalc::PipelineModel& model) {
  std::vector<BoundCertificate> certs;
  std::vector<Curve> components;
  components.reserve(model.nodes().size());
  for (std::size_t i = 0; i < model.nodes().size(); ++i) {
    components.push_back(model.node_service_curve(i));
  }
  const auto steps = pipeline_steps(model);
  certs.push_back(make_certificate(
      BoundKind::kDelay, "e2e", model.arrival_curve(), model.service_curve(),
      model.delay_bound().value.in_seconds(), components, steps));
  certs.push_back(make_certificate(
      BoundKind::kBacklog, "e2e", model.arrival_curve(),
      model.service_curve(), model.backlog_bound().value.in_bytes(), components,
      steps));
  const auto per_node = model.per_node_analysis();
  for (std::size_t i = 0; i < per_node.size(); ++i) {
    const std::string context = "node " + per_node[i].name;
    const std::vector<DerivationStep> node_steps = {
        {"propagated-arrival", model.node_arrival_curve(i).describe()},
        {"node-service", model.node_service_curve(i).describe()}};
    certs.push_back(make_certificate(
        BoundKind::kDelay, context, model.node_arrival_curve(i),
        model.node_service_curve(i), per_node[i].delay.in_seconds(), {},
        node_steps));
    certs.push_back(make_certificate(
        BoundKind::kBacklog, context, model.node_arrival_curve(i),
        model.node_service_curve(i), per_node[i].backlog.in_bytes(), {},
        node_steps));
  }
  return certs;
}

std::vector<BoundCertificate> emit_dag_certificates(
    const netcalc::DagModel& model) {
  std::vector<BoundCertificate> certs;
  const auto per_node = model.per_node_analysis();
  for (std::size_t i = 0; i < per_node.size(); ++i) {
    const std::string context = "node " + per_node[i].name;
    const std::vector<DerivationStep> node_steps = {
        {"merged-arrival", model.node_arrival(i).describe()},
        {"node-service", model.node_service(i).describe()}};
    certs.push_back(make_certificate(
        BoundKind::kDelay, context, model.node_arrival(i),
        model.node_service(i), per_node[i].delay.in_seconds(), {},
        node_steps));
    certs.push_back(make_certificate(
        BoundKind::kBacklog, context, model.node_arrival(i),
        model.node_service(i), per_node[i].backlog.in_bytes(), {},
        node_steps));
  }
  for (const netcalc::DagPathAnalysis& pa : model.per_path_analysis()) {
    if (!pa.residual_valid) continue;  // nclint reports NC305 for these
    std::vector<DerivationStep> steps = {
        {"path-flow", pa.flow.describe()},
        {"residual-concatenation",
         "min-plus convolution of " + std::to_string(pa.hop_residuals.size()) +
             " blind-multiplexing residual curves [beta - alpha_cross]^+"}};
    certs.push_back(make_certificate(
        BoundKind::kDelay, path_context(model, pa.nodes), pa.flow,
        pa.path_service, pa.delay.in_seconds(), pa.hop_residuals,
        std::move(steps)));
  }
  return certs;
}

LintReport certify_pipeline(const netcalc::PipelineModel& model) {
  SC_OBS_SPAN("certify", "postflight");
  const auto certs = emit_pipeline_certificates(model);
  SC_OBS_COUNT("certify.certificates", certs.size());
  return check_certificates(certs);
}

LintReport certify_dag(const netcalc::DagModel& model) {
  SC_OBS_SPAN("certify", "postflight");
  const auto certs = emit_dag_certificates(model);
  SC_OBS_COUNT("certify.certificates", certs.size());
  return check_certificates(certs);
}

void postflight(const std::string& context, const LintReport& report,
                CertifyMode mode) {
  if (mode == CertifyMode::kOff) return;
  const std::string rendered = report.render(context);
  if (!rendered.empty()) std::cerr << rendered;
  if (mode == CertifyMode::kStrict && !report.clean()) {
    throw util::PreconditionError(
        context + ": bound certification failed with " +
        std::to_string(report.count(diagnostics::Severity::kError)) +
        " error(s) and " +
        std::to_string(report.count(diagnostics::Severity::kWarning)) +
        " warning(s) (STREAMCALC_CERTIFY=strict)");
  }
}

void postflight(const std::string& context, const LintReport& report) {
  postflight(context, report, certify_mode(util::Context::active()));
}

void postflight_pipeline(const std::string& context,
                         const netcalc::PipelineModel& model,
                         const util::Context& ctx) {
  const CertifyMode mode = certify_mode(ctx);
  if (mode == CertifyMode::kOff) return;
  postflight(context, certify_pipeline(model), mode);
}

void postflight_pipeline(const std::string& context,
                         const netcalc::PipelineModel& model) {
  postflight_pipeline(context, model, util::Context::active());
}

void postflight_dag(const std::string& context, const netcalc::DagModel& model,
                    const util::Context& ctx) {
  const CertifyMode mode = certify_mode(ctx);
  if (mode == CertifyMode::kOff) return;
  postflight(context, certify_dag(model), mode);
}

void postflight_dag(const std::string& context,
                    const netcalc::DagModel& model) {
  postflight_dag(context, model, util::Context::active());
}

}  // namespace streamcalc::certify
