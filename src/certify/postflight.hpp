// Post-flight certification wiring (the counterpart of nclint's
// pre-flight, DESIGN.md §9).
//
// Pre-flight linting checks the *inputs* of an analysis before any curve
// algebra runs; post-flight certification checks its *outputs* after: it
// emits a proof-carrying certificate for every bound the model produced
// and hands each to the independent exact-rational checker. The knob is
// STREAMCALC_CERTIFY:
//
//   off     (default) — skip entirely; no exact arithmetic runs;
//   warn              — print NC6xx findings to stderr, continue;
//   strict            — print findings and throw when any bound fails to
//                       certify.
//
// Default-off is deliberate: certification re-evaluates every bound on
// arbitrary-precision rationals, which is orders of magnitude slower than
// the double kernels — the right default for benches and examples is to
// opt in (CI's certify job and the mutation/property suites run strict).
#pragma once

#include <string>
#include <vector>

#include "certify/certificate.hpp"
#include "diagnostics/diagnostic.hpp"
#include "netcalc/dag.hpp"
#include "netcalc/pipeline.hpp"
#include "util/context.hpp"

namespace streamcalc::certify {

enum class CertifyMode {
  kOff,    ///< skip certification entirely
  kWarn,   ///< print findings to stderr, continue
  kStrict  ///< print findings and throw when a bound fails to certify
};

/// Maps a Context's certify policy onto the local mode enum.
CertifyMode certify_mode(const util::Context& ctx);

/// Deprecated shim: forwards to Context::active().certify (which still
/// honours STREAMCALC_CERTIFY when no Context is installed) and prints a
/// one-time deprecation note. New code should build a util::Context and
/// pass it to the postflight entry points below.
CertifyMode certify_mode_from_env();

/// Emits certificates for every bound a PipelineModel reports: end-to-end
/// delay and backlog (with the per-node service curves as concatenation
/// provenance) plus per-node delay and backlog along the propagated
/// arrival chain.
std::vector<BoundCertificate> emit_pipeline_certificates(
    const netcalc::PipelineModel& model);

/// Emits certificates for a DagModel: per-node delay and backlog, plus a
/// delay certificate per source-to-sink path (with the hop residual
/// curves as provenance). Paths whose residual service vanished are
/// reported by nclint (NC305) and carry no finite bound to certify.
std::vector<BoundCertificate> emit_dag_certificates(
    const netcalc::DagModel& model);

/// Emit + check in one call.
diagnostics::LintReport certify_pipeline(const netcalc::PipelineModel& model);
diagnostics::LintReport certify_dag(const netcalc::DagModel& model);

/// Applies the mode policy to a finished report: renders findings to
/// stderr (prefixed with `context`) unless off, and throws
/// PreconditionError in strict mode when the report is not clean. The
/// two-argument overload resolves the mode from Context::active().
void postflight(const std::string& context,
                const diagnostics::LintReport& report, CertifyMode mode);
void postflight(const std::string& context,
                const diagnostics::LintReport& report);

/// Convenience drivers: no-ops (and no exact arithmetic) when the mode is
/// off. The Context overloads are preferred; the two-argument forms
/// resolve the mode from Context::active().
void postflight_pipeline(const std::string& context,
                         const netcalc::PipelineModel& model,
                         const util::Context& ctx);
void postflight_pipeline(const std::string& context,
                         const netcalc::PipelineModel& model);
void postflight_dag(const std::string& context,
                    const netcalc::DagModel& model,
                    const util::Context& ctx);
void postflight_dag(const std::string& context,
                    const netcalc::DagModel& model);

}  // namespace streamcalc::certify
