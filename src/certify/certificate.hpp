// Proof-carrying bound certificates (DESIGN.md §9).
//
// A BoundCertificate records everything an independent checker needs to
// re-establish one delay or backlog bound from first principles: the
// arrival and service curves the bound was computed from, the claimed
// bound itself, a witness time at which the deviation is attained, and —
// when the service curve was assembled by concatenation — the component
// service curves it was derived from, with a human-readable derivation
// trace.
//
// The claimed bound is *emitted* by this layer, not copied from the double
// kernel: make_certificate computes the exact definitional deviation on
// rationals and rounds it up onto the double grid (Rational::
// round_up_double), so the certified number never undercuts the exact
// supremum. The kernel's double result rides along as `kernel_value` and
// is cross-checked against the certified value (NC605) — a divergence
// there means a kernel bug even when the certificate itself is sound.
#pragma once

#include <string>
#include <vector>

#include "minplus/curve.hpp"

namespace streamcalc::certify {

enum class BoundKind {
  kDelay,    ///< horizontal deviation, seconds
  kBacklog,  ///< vertical deviation, input-normalized bytes
};

const char* to_string(BoundKind k);

/// One step of the service-curve derivation trace, e.g.
/// {"node-service", "lz4: rate_latency(rate=..., latency=...)"}.
struct DerivationStep {
  std::string rule;
  std::string detail;
};

/// A self-contained, independently checkable claim about one bound.
struct BoundCertificate {
  BoundKind kind = BoundKind::kDelay;
  /// Where the bound applies: "e2e", "node <name>", "path a->b->c".
  std::string context;

  /// The certified bound (seconds or bytes); +inf for divergent bounds.
  double claimed = 0.0;
  /// What the optimized double kernel computed for the same bound.
  double kernel_value = 0.0;

  /// Witness time t* at which the exact deviation attains the supremum.
  /// Always present for finite claims emitted by make_certificate.
  bool has_witness = false;
  double witness_time = 0.0;

  minplus::Curve arrival;
  minplus::Curve service;
  /// When non-empty: the per-stage service curves the end-to-end `service`
  /// was concatenated from. The checker verifies the concatenation's side
  /// conditions (domination, tail slope, latency accumulation) against
  /// these.
  std::vector<minplus::Curve> components;
  std::vector<DerivationStep> steps;

  /// One-line summary for logs and failure messages.
  std::string describe() const;
};

/// Emits a certificate for the bound of `arrival` against `service`:
/// computes the exact definitional deviation, rounds it up onto the double
/// grid, and records the witness. `kernel_value` is the double kernel's
/// result for the same bound, recorded for cross-checking only.
BoundCertificate make_certificate(BoundKind kind, std::string context,
                                  const minplus::Curve& arrival,
                                  const minplus::Curve& service,
                                  double kernel_value,
                                  std::vector<minplus::Curve> components = {},
                                  std::vector<DerivationStep> steps = {});

}  // namespace streamcalc::certify
