// Interval stability certification: abstract interpretation of the nclint
// stability recurrence over boxes of spec parameters (DESIGN.md §9).
//
// A ParamBox describes uncertainty in the model inputs — the source
// rate/burst and, per node, multiplicative scale intervals on the service
// rate and latency. certify_stability() propagates *interval* sustained
// arrival rates through the chain or DAG using exactly the recurrence
// diagnostics::lint_pipeline / lint_dag evaluates pointwise:
//
//   rate_norm = pick_rate(node) * scale / vol;  rho = sustained / rate_norm
//   sustained' = min(sustained, rate_norm)
//
// Because each parameter enters a given node's utilization monotonically
// (source rate and upstream service scales push rho up, the node's own
// service scale pushes it down), interval propagation here is *tight*: the
// rho interval of every node is exactly its range over the box, so the
// certificate is a proof, not an over-approximation. At a degenerate
// (zero-width) box the verdict coincides with nclint's per-point NC101
// decision — the property suite pins this agreement.
//
// Verdicts:
//   * stable everywhere  — rho_hi < 1 for all nodes: every model in the
//     box has finite asymptotic delay/backlog bounds (utilization < 1);
//   * violated           — some node has rho_hi >= 1: the certificate
//     names the violating face, i.e. the corner of the box (source rate
//     high, that node's service scale low, upstream scales high) that
//     attains the violation, and whether the *entire* box is unstable
//     (rho_lo >= 1) or only part of it.
//
// Burst and latency intervals are validated and carried in the box for
// completeness; utilization — hence stability of these models — depends
// only on rates, so they do not influence the verdict (they shift bound
// magnitudes, not finiteness).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "diagnostics/diagnostic.hpp"
#include "netcalc/dag.hpp"
#include "netcalc/node.hpp"
#include "netcalc/pipeline.hpp"

namespace streamcalc::certify {

/// A closed interval [lo, hi]. Degenerate (lo == hi) is allowed.
struct Interval {
  double lo = 1.0;
  double hi = 1.0;

  static Interval point(double v) { return {v, v}; }
  bool degenerate() const { return lo == hi; }
};

/// Per-node parameter uncertainty: multiplicative scales applied to the
/// basis-selected service rate and to the latency.
struct NodeBox {
  Interval service_scale{1.0, 1.0};
  Interval latency_scale{1.0, 1.0};
};

/// The parameter box: absolute intervals for the source, scale intervals
/// per node. `nodes` may be empty (all scales 1) or must match the model's
/// node count.
struct ParamBox {
  Interval source_rate;   ///< bytes/sec, absolute
  Interval source_burst{0.0, 0.0};  ///< bytes, absolute
  std::vector<NodeBox> nodes;

  /// A degenerate box at the spec's own parameters.
  static ParamBox at(const netcalc::SourceSpec& source,
                     std::size_t node_count);
};

/// Interval utilization of one node over the box.
struct NodeStability {
  std::string name;
  double rho_lo = 0.0;
  double rho_hi = 0.0;
};

/// The certification result for one box.
struct IntervalCertificate {
  /// rho_hi < 1 at every node: stability holds on the whole box.
  bool stable_everywhere = false;
  /// Some node has rho_lo >= 1: no point of the box is stable there.
  bool unstable_everywhere = false;
  /// Empty when stable_everywhere; otherwise the corner of the box that
  /// attains the worst utilization at the first violating node.
  std::string violating_face;
  std::vector<NodeStability> nodes;
  /// NC604 findings (warnings) for every violating node; clean iff
  /// stable_everywhere.
  diagnostics::LintReport report;
};

/// Certifies stability of a chain pipeline over `box`.
IntervalCertificate certify_stability(
    const std::vector<netcalc::NodeSpec>& nodes,
    const netcalc::SourceSpec& source, const netcalc::ModelPolicy& policy,
    const ParamBox& box);

/// Certifies stability of a DAG over `box`, propagating interval arrivals
/// along the topological order (splitter fractions scale both endpoints;
/// joins sum the incoming intervals).
IntervalCertificate certify_stability_dag(const netcalc::DagSpec& dag,
                                          const netcalc::SourceSpec& source,
                                          const netcalc::ModelPolicy& policy,
                                          const ParamBox& box);

}  // namespace streamcalc::certify
