// The independent certificate checker (DESIGN.md §9).
//
// check_certificate() re-establishes a BoundCertificate from first
// principles and reports every discrepancy as an NC6xx diagnostic:
//
//   NC601 (error)   the claimed bound is below the exact definitional
//                   deviation, or claims divergence that does not hold;
//   NC602 (error)   a derivation side condition fails: malformed curve
//                   structure, non-causal component service, end-to-end
//                   service exceeding a component, wrong concatenated tail
//                   slope, or under-accumulated latency;
//   NC603 (error)   the witness is missing, does not attain the supremum,
//                   or the claimed bound is not the canonical upward
//                   rounding of the witnessed supremum (catches +-1 ulp
//                   perturbations in either direction);
//   NC605 (warning) the optimized double kernel's result disagrees with
//                   the certified value beyond rounding noise — the
//                   certificate itself is sound, but the kernel is not.
//
// Independence: the checker evaluates curves and pseudo-inverses in exact
// rational arithmetic (certify/exact.*) using only the definitions; it
// never calls minplus::operations convolution/deconvolution or the double
// deviation kernels. Derivation *side conditions* use the library's 1e-9
// relative modeling tolerance (the same slack Curve::validate grants),
// because component curves were assembled in double arithmetic; the bound
// domination and canonical-rounding checks are exact with no tolerance.
#pragma once

#include "certify/certificate.hpp"
#include "diagnostics/diagnostic.hpp"

namespace streamcalc::certify {

/// Re-checks one certificate. The returned report is clean() iff the
/// certificate is accepted.
diagnostics::LintReport check_certificate(const BoundCertificate& cert);

/// Convenience: checks every certificate and merges the reports.
diagnostics::LintReport check_certificates(
    const std::vector<BoundCertificate>& certs);

}  // namespace streamcalc::certify
