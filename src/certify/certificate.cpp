#include "certify/certificate.hpp"

#include <limits>
#include <utility>

#include "certify/exact.hpp"
#include "util/format.hpp"

namespace streamcalc::certify {

const char* to_string(BoundKind k) {
  switch (k) {
    case BoundKind::kDelay:
      return "delay";
    case BoundKind::kBacklog:
      return "backlog";
  }
  return "?";
}

std::string BoundCertificate::describe() const {
  std::string out = std::string(to_string(kind)) + " bound at " + context +
                    ": " + util::format_significant(claimed);
  out += kind == BoundKind::kDelay ? " s" : " B";
  if (has_witness) {
    out += " (witness t* = " + util::format_significant(witness_time) + " s";
    if (!components.empty()) {
      out += ", " + std::to_string(components.size()) + " components";
    }
    out += ")";
  }
  return out;
}

BoundCertificate make_certificate(BoundKind kind, std::string context,
                                  const minplus::Curve& arrival,
                                  const minplus::Curve& service,
                                  double kernel_value,
                                  std::vector<minplus::Curve> components,
                                  std::vector<DerivationStep> steps) {
  BoundCertificate cert;
  cert.kind = kind;
  cert.context = std::move(context);
  cert.kernel_value = kernel_value;
  cert.arrival = arrival;
  cert.service = service;
  cert.components = std::move(components);
  cert.steps = std::move(steps);

  const ExactCurve f = ExactCurve::from(arrival);
  const ExactCurve g = ExactCurve::from(service);
  const ExactBound exact = kind == BoundKind::kDelay
                               ? exact_horizontal_deviation(f, g)
                               : exact_vertical_deviation(f, g);
  if (exact.infinite) {
    cert.claimed = std::numeric_limits<double>::infinity();
  } else {
    cert.claimed = exact.value.round_up_double();
    cert.has_witness = true;
    // Witness abscissae are sums/inverses of dyadic breakpoints; rounding
    // up keeps the stored double deterministic. The checker re-evaluates
    // the deviation at this (exactly converted) time.
    cert.witness_time = exact.witness.round_up_double();
  }
  return cert;
}

}  // namespace streamcalc::certify
