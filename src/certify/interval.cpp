#include "certify/interval.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.hpp"
#include "util/format.hpp"

namespace streamcalc::certify {

namespace {

using diagnostics::Diagnostic;
using diagnostics::Severity;
using netcalc::DagEdge;
using netcalc::NodeSpec;
using netcalc::RateBasis;

// Same basis selection as diagnostics::lint_* and the model builders; the
// degenerate-box agreement property depends on evaluating the identical
// expression.
double pick_rate(const NodeSpec& node, RateBasis basis) {
  switch (basis) {
    case RateBasis::kMin:
      return node.rate_min().in_bytes_per_sec();
    case RateBasis::kAvg:
      return node.rate_avg().in_bytes_per_sec();
    case RateBasis::kMax:
      return node.rate_max().in_bytes_per_sec();
  }
  return node.rate_min().in_bytes_per_sec();
}

void validate_interval(const Interval& iv, const char* what,
                       bool positive_lo) {
  util::require(iv.lo <= iv.hi,
                std::string(what) + " interval must have lo <= hi");
  util::require(std::isfinite(iv.lo) && std::isfinite(iv.hi),
                std::string(what) + " interval must be finite");
  if (positive_lo) {
    util::require(iv.lo > 0.0,
                  std::string(what) + " interval must be positive");
  } else {
    util::require(iv.lo >= 0.0,
                  std::string(what) + " interval must be non-negative");
  }
}

void validate_box(const ParamBox& box, std::size_t node_count) {
  validate_interval(box.source_rate, "source rate", /*positive_lo=*/true);
  validate_interval(box.source_burst, "source burst", /*positive_lo=*/false);
  util::require(box.nodes.empty() || box.nodes.size() == node_count,
                "ParamBox node count does not match the model");
  for (const NodeBox& nb : box.nodes) {
    validate_interval(nb.service_scale, "service scale", /*positive_lo=*/true);
    validate_interval(nb.latency_scale, "latency scale", /*positive_lo=*/true);
  }
}

NodeBox node_box(const ParamBox& box, std::size_t i) {
  return box.nodes.empty() ? NodeBox{} : box.nodes[i];
}

/// Records one node's rho interval and, on violation, the NC604 finding
/// with the corner of the box that attains it.
void record_node(const NodeSpec& node, std::size_t index, double rho_lo,
                 double rho_hi, const ParamBox& box, bool finite_job,
                 IntervalCertificate& cert) {
  cert.nodes.push_back(NodeStability{node.name, rho_lo, rho_hi});
  if (rho_hi < 1.0) return;
  const bool whole_box = rho_lo >= 1.0;
  if (whole_box) cert.unstable_everywhere = true;
  cert.stable_everywhere = false;
  const std::string face =
      "source.rate = " + util::format_significant(box.source_rate.hi) +
      " B/s, " + node.name + ".service_scale = " +
      util::format_significant(node_box(box, index).service_scale.lo) +
      ", upstream service scales at hi";
  if (cert.violating_face.empty()) cert.violating_face = face;
  std::string msg = std::string(whole_box ? "every point" : "part") +
                    " of the parameter box is unstable: rho ranges over [" +
                    util::format_significant(rho_lo) + ", " +
                    util::format_significant(rho_hi) +
                    "] and reaches 1 at the corner (" + face + ")";
  if (finite_job) {
    msg += "; the finite job volume keeps finite-horizon bounds usable";
  }
  cert.report.add(Diagnostic{
      "NC604", Severity::kWarning, node.name, std::move(msg),
      whole_box ? "shrink the source-rate interval below the bottleneck"
                : "split the box at the stability boundary to isolate the "
                  "safe region"});
}

}  // namespace

ParamBox ParamBox::at(const netcalc::SourceSpec& source,
                      std::size_t node_count) {
  ParamBox box;
  box.source_rate = Interval::point(source.rate.in_bytes_per_sec());
  box.source_burst = Interval::point(source.burst.in_bytes());
  box.nodes.assign(node_count, NodeBox{});
  return box;
}

IntervalCertificate certify_stability(const std::vector<NodeSpec>& nodes,
                                      const netcalc::SourceSpec& source,
                                      const netcalc::ModelPolicy& policy,
                                      const ParamBox& box) {
  util::require(!nodes.empty(),
                "certify_stability requires at least one node");
  validate_box(box, nodes.size());
  IntervalCertificate cert;
  cert.stable_everywhere = true;

  // Interval version of lint_pipeline's stability recurrence. At a
  // degenerate box both endpoints evaluate the exact expression lint_load
  // sees (scaling by 1.0 and interval min are bitwise identities), which
  // is what makes the per-point agreement property exact rather than
  // approximate.
  double vol_worst = 1.0;
  double sus_lo = box.source_rate.lo;
  double sus_hi = box.source_rate.hi;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) vol_worst *= nodes[i - 1].volume.max;
    const double base = pick_rate(nodes[i], policy.service_basis);
    const NodeBox nb = node_box(box, i);
    const double rn_lo = base * nb.service_scale.lo / vol_worst;
    const double rn_hi = base * nb.service_scale.hi / vol_worst;
    if (rn_lo > 0.0 && std::isfinite(rn_lo)) {
      // rho is monotone up in the sustained arrival and down in the own
      // service scale, so these endpoints are attained at box corners.
      record_node(nodes[i], i, sus_lo / rn_hi, sus_hi / rn_lo, box,
                  source.job_volume.is_finite(), cert);
    }
    sus_lo = std::min(sus_lo, rn_lo);
    sus_hi = std::min(sus_hi, rn_hi);
  }
  return cert;
}

IntervalCertificate certify_stability_dag(const netcalc::DagSpec& dag,
                                          const netcalc::SourceSpec& source,
                                          const netcalc::ModelPolicy& policy,
                                          const ParamBox& box) {
  dag.validate();
  validate_box(box, dag.nodes.size());
  IntervalCertificate cert;
  cert.stable_everywhere = true;

  const std::size_t n = dag.nodes.size();
  std::vector<double> vol_in(n, 0.0);
  std::vector<double> vol_out(n, 0.0);
  std::vector<double> thru_in_lo(n, 0.0);
  std::vector<double> thru_in_hi(n, 0.0);
  std::vector<double> thru_out_lo(n, 0.0);
  std::vector<double> thru_out_hi(n, 0.0);
  for (const DagEdge& e : dag.entries) {
    vol_in[e.to] += e.fraction;
    thru_in_lo[e.to] += e.fraction * box.source_rate.lo;
    thru_in_hi[e.to] += e.fraction * box.source_rate.hi;
  }
  for (std::size_t i : dag.topological_order()) {
    for (const DagEdge& e : dag.edges) {
      if (e.to == i) {
        vol_in[i] += e.fraction * vol_out[e.from];
        thru_in_lo[i] += e.fraction * thru_out_lo[e.from];
        thru_in_hi[i] += e.fraction * thru_out_hi[e.from];
      }
    }
    if (vol_in[i] <= 0.0) continue;
    vol_out[i] = vol_in[i] * dag.nodes[i].volume.max;
    const double base = pick_rate(dag.nodes[i], policy.service_basis);
    const NodeBox nb = node_box(box, i);
    const double rn_lo = base * nb.service_scale.lo / vol_in[i];
    const double rn_hi = base * nb.service_scale.hi / vol_in[i];
    if (rn_lo > 0.0 && std::isfinite(rn_lo)) {
      record_node(dag.nodes[i], i, thru_in_lo[i] / rn_hi,
                  thru_in_hi[i] / rn_lo, box,
                  source.job_volume.is_finite(), cert);
    }
    thru_out_lo[i] = std::min(thru_in_lo[i], rn_lo);
    thru_out_hi[i] = std::min(thru_in_hi[i], rn_hi);
  }
  return cert;
}

}  // namespace streamcalc::certify
