#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace streamcalc::serve {

namespace {

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Writes the whole buffer; false when the peer went away.
bool send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

Json error_reply(const std::string& message) {
  Json::Object obj;
  obj.emplace("ok", Json(false));
  obj.emplace("error", Json(message));
  return Json(std::move(obj));
}

void put_decision(Json::Object& obj, const Decision& d) {
  obj.emplace("ok", Json(d.ok));
  obj.emplace("seq", Json(static_cast<double>(d.seq)));
  obj.emplace("epoch", Json(static_cast<double>(d.epoch)));
  if (d.ok) {
    obj.emplace("delay_bound", Json(d.delay_bound.in_seconds()));
    obj.emplace("changed", Json(d.changed));
    // Only stochastic decisions carry the extra fields; deterministic
    // replies are byte-identical to the pre-epsilon protocol.
    if (d.epsilon > 0.0) {
      obj.emplace("epsilon", Json(d.epsilon));
      obj.emplace("bound_kind", Json(std::string(to_string(d.kind))));
    }
  } else {
    obj.emplace("error", Json(d.error));
  }
  if (!d.reason.empty()) obj.emplace("reason", Json(d.reason));
}

FlowSpec flow_from_request(const Json& req) {
  FlowSpec flow;
  // The one place raw wire numbers become unit-bearing values (SC908):
  // the protocol speaks bytes/second, bytes, and seconds.
  flow.rate = util::DataRate::bytes_per_sec(req.number_or("rate", 0.0));
  flow.burst = util::DataSize::bytes(req.number_or("burst", 0.0));
  flow.delay_target = util::Duration::seconds(req.number_or("target", 0.0));
  flow.entry = req.string_or("entry", "");
  // Absent (the common case) means 0: the deterministic admission path.
  flow.epsilon = req.number_or("epsilon", 0.0);
  return flow;
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      catalog_(std::make_shared<Catalog>(
          load_snapshot(1, config_.spec_paths))) {
  engine_ = std::make_unique<AdmissionEngine>(catalog_, config_.ctx);
}

Server::Server(ServerConfig config, std::shared_ptr<Catalog> catalog)
    : config_(std::move(config)), catalog_(std::move(catalog)) {
  util::require(catalog_ != nullptr, "Server requires a catalog");
  engine_ = std::make_unique<AdmissionEngine>(catalog_, config_.ctx);
}

Server::~Server() { stop(); }

std::string Server::endpoint() const {
  if (!bound_path_.empty()) return "unix:" + bound_path_;
  return "tcp:127.0.0.1:" + std::to_string(bound_port_);
}

void Server::start() {
  util::require(listen_fd_.load() < 0, "Server::start called twice");
  if (!config_.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    util::require(config_.socket_path.size() < sizeof(addr.sun_path),
                  "socket path too long: '" + config_.socket_path + "'");
    std::memcpy(addr.sun_path, config_.socket_path.c_str(),
                config_.socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    util::require(fd >= 0, errno_text("cannot create unix socket"));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string why =
          errno_text("cannot bind '" + config_.socket_path + "'");
      ::close(fd);
      throw util::PreconditionError(why);
    }
    bound_path_ = config_.socket_path;
    listen_fd_ = fd;
  } else {
    util::require(config_.port >= 0 && config_.port <= 65535,
                  "serve requires a unix socket path or a TCP port");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    util::require(fd >= 0, errno_text("cannot create TCP socket"));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string why = errno_text(
          "cannot bind 127.0.0.1:" + std::to_string(config_.port));
      ::close(fd);
      throw util::PreconditionError(why);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      bound_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
    listen_fd_ = fd;
  }
  if (::listen(listen_fd_.load(), 64) != 0) {
    const std::string why = errno_text("cannot listen on " + endpoint());
    ::close(listen_fd_.load());
    listen_fd_.store(-1);
    throw util::PreconditionError(why);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::run() {
  util::require(listen_fd_.load() >= 0 || stopped_.load(),
                "Server::run requires start()");
  while (!stop_requested_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop();
}

void Server::stop() {
  if (stopped_.exchange(true)) return;
  stop_requested_.store(true);
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    // shutdown() wakes the blocked accept(); close() alone can leave it
    // parked on some kernels.
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    util::MutexLock lock(conn_mutex_);
    for (const auto& conn : conns_) {
      // Wake blocked readers; the reader owns (and closes) the fd, so
      // only shut it down here. fd numbers cannot be recycled under us:
      // close happens under this same mutex.
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
    conns.swap(conns_);
  }
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  if (!bound_path_.empty()) {
    ::unlink(bound_path_.c_str());
    bound_path_.clear();
  }
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // stop() shut the listener down (or a transient accept failure on a
      // dying socket); either way the server is going away.
      return;
    }
    if (stop_requested_.load()) {
      ::close(fd);
      return;
    }
    connections_.fetch_add(1);
    util::MutexLock lock(conn_mutex_);
    const std::size_t slot = conns_.size();
    conns_.push_back(std::make_unique<Connection>());
    conns_[slot]->fd = fd;
    conns_[slot]->reader =
        std::thread([this, slot, fd] { serve_connection(slot, fd); });
  }
}

void Server::serve_connection(std::size_t slot, int fd) {
  FrameDecoder decoder(config_.max_frame);
  char buf[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    decoder.feed(buf, static_cast<std::size_t>(n));
    std::vector<std::string> batch;
    std::string frame;
    FrameDecoder::Status status;
    while ((status = decoder.next(frame)) == FrameDecoder::Status::kFrame) {
      batch.push_back(std::move(frame));
    }
    if (!batch.empty() && !process_batch(fd, batch)) break;
    if (status == FrameDecoder::Status::kOversized) {
      protocol_errors_.fetch_add(1);
      SC_OBS_COUNT("serve.request.protocol_error", 1);
      const std::string reply =
          error_reply("frame of " +
                      std::to_string(decoder.oversized_length()) +
                      " bytes exceeds the " +
                      std::to_string(config_.max_frame) + "-byte ceiling")
              .dump();
      (void)send_all(fd, encode_frame(reply, config_.max_frame));
      break;  // the stream cannot be resynced past a corrupt length
    }
    if (status == FrameDecoder::Status::kBadVersion) {
      protocol_errors_.fetch_add(1);
      SC_OBS_COUNT("serve.request.protocol_error", 1);
      const std::string reply =
          error_reply("unsupported protocol version " +
                      std::to_string(
                          static_cast<unsigned>(decoder.bad_version())) +
                      "; this server speaks version " +
                      std::to_string(
                          static_cast<unsigned>(kProtocolVersion)))
              .dump();
      (void)send_all(fd, encode_frame(reply, config_.max_frame));
      break;  // ditto: no resync past a corrupt header
    }
  }
  if (decoder.mid_frame()) {
    // Peer vanished inside a frame: note it and move on — a truncated
    // frame must never take the server down.
    protocol_errors_.fetch_add(1);
    SC_OBS_COUNT("serve.request.truncated", 1);
  }
  util::MutexLock lock(conn_mutex_);
  // stop() may have swapped conns_ out already; then it owns the join and
  // we only close the fd.
  if (slot < conns_.size() && conns_[slot]->fd == fd) {
    conns_[slot]->fd = -1;
  }
  ::close(fd);
}

bool Server::process_batch(int fd, const std::vector<std::string>& payloads) {
  batches_.fetch_add(1);
  SC_OBS_OBSERVE("serve.request.batch_size",
                 static_cast<double>(payloads.size()));
  std::vector<std::string> replies(payloads.size());
  std::vector<char> shutdowns(payloads.size(), 0);
  // Same pool the curve kernels use; a single-frame batch (or serial
  // mode) runs inline on this reader thread.
  util::ThreadPool::global().parallel_for(
      0, payloads.size(), 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          bool want_shutdown = false;
          replies[i] = handle_request(payloads[i], want_shutdown);
          shutdowns[i] = want_shutdown ? 1 : 0;
        }
      });
  std::string out;
  for (const std::string& reply : replies) {
    out += encode_frame(reply, config_.max_frame);
  }
  const bool sent = send_all(fd, out);
  for (const char w : shutdowns) {
    if (w != 0) request_stop();
  }
  return sent;
}

std::string Server::handle_request(const std::string& payload,
                                   bool& want_shutdown) {
  SC_OBS_SPAN("serve", "request");
  const auto started = std::chrono::steady_clock::now();
  requests_total_.fetch_add(1);
  SC_OBS_COUNT("serve.request.count", 1);

  Json reply;
  try {
    const JsonParseResult parsed = json_parse(payload);
    if (!parsed.ok()) {
      reply = error_reply("parse error at byte " +
                          std::to_string(parsed.offset) + ": " +
                          parsed.error);
    } else if (!parsed.value.is_object()) {
      reply = error_reply("request must be a JSON object");
    } else {
      const std::string op = parsed.value.string_or("op", "");
      if (op == "admit") {
        reply = handle_admit(parsed.value);
      } else if (op == "release") {
        reply = handle_release(parsed.value);
      } else if (op == "query") {
        reply = handle_query(parsed.value);
      } else if (op == "stats") {
        reply = handle_stats();
      } else if (op == "reload") {
        reply = handle_reload();
      } else if (op == "ping") {
        Json::Object obj;
        obj.emplace("ok", Json(true));
        obj.emplace("epoch",
                    Json(static_cast<double>(catalog_->epoch())));
        reply = Json(std::move(obj));
      } else if (op == "shutdown") {
        want_shutdown = true;
        Json::Object obj;
        obj.emplace("ok", Json(true));
        reply = Json(std::move(obj));
      } else if (op.empty()) {
        reply = error_reply("request requires an \"op\" field");
      } else {
        reply = error_reply("unknown op '" + op + "'");
      }
    }
  } catch (const std::exception& e) {
    // A request must never tear the daemon down; surface the failure to
    // the one client that caused it.
    reply = error_reply(e.what());
  }
  if (!reply.bool_or("ok", false)) {
    request_errors_.fetch_add(1);
    SC_OBS_COUNT("serve.request.error", 1);
  }
  const double us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - started)
          .count();
  latency_us_.observe(us);
  SC_OBS_OBSERVE("serve.request.latency_us", us);
  return reply.dump();
}

Json Server::handle_admit(const Json& req) {
  const Decision d = engine_->admit(
      req.string_or("tenant", ""), req.string_or("scenario", ""),
      req.string_or("id", ""), flow_from_request(req),
      req.bool_or("certify", false));
  if (d.admitted) {
    admit_accepted_.fetch_add(1);
    SC_OBS_COUNT("serve.admit.accepted.total", 1);
  } else {
    admit_rejected_.fetch_add(1);
    SC_OBS_COUNT("serve.admit.rejected.total", 1);
  }
  Json::Object obj;
  put_decision(obj, d);
  obj.emplace("admitted", Json(d.admitted));
  return Json(std::move(obj));
}

Json Server::handle_release(const Json& req) {
  const Decision d = engine_->release(req.string_or("tenant", ""),
                                      req.string_or("id", ""));
  Json::Object obj;
  put_decision(obj, d);
  return Json(std::move(obj));
}

Json Server::handle_query(const Json& req) {
  TenantSnapshot snap;
  const Decision d = engine_->query(req.string_or("tenant", ""), snap);
  Json::Object obj;
  put_decision(obj, d);
  if (d.ok) {
    obj.emplace("scenario", Json(snap.scenario));
    obj["delay_bound"] = Json(snap.delay_bound.in_seconds());
    Json::Array flows;
    flows.reserve(snap.flows.size());
    for (const auto& [id, flow] : snap.flows) {
      Json::Object f;
      f.emplace("id", Json(id));
      f.emplace("rate", Json(flow.rate.in_bytes_per_sec()));
      f.emplace("burst", Json(flow.burst.in_bytes()));
      f.emplace("target", Json(flow.delay_target.in_seconds()));
      if (!flow.entry.empty()) f.emplace("entry", Json(flow.entry));
      flows.emplace_back(std::move(f));
    }
    obj.emplace("flows", Json(std::move(flows)));
  }
  return Json(std::move(obj));
}

Json Server::handle_stats() {
  const auto snapshot = catalog_->snapshot();
  const obs::Histogram::Snapshot lat = latency_us_.snapshot();
  Json::Object obj;
  obj.emplace("ok", Json(true));
  obj.emplace("epoch", Json(static_cast<double>(snapshot->epoch())));
  obj.emplace("scenarios", Json(static_cast<double>(snapshot->size())));
  obj.emplace("tenants",
              Json(static_cast<double>(engine_->tenant_count())));
  obj.emplace("requests",
              Json(static_cast<double>(requests_total_.load())));
  obj.emplace("request_errors",
              Json(static_cast<double>(request_errors_.load())));
  obj.emplace("protocol_errors",
              Json(static_cast<double>(protocol_errors_.load())));
  obj.emplace("batches", Json(static_cast<double>(batches_.load())));
  obj.emplace("connections",
              Json(static_cast<double>(connections_.load())));
  obj.emplace("admit_accepted",
              Json(static_cast<double>(admit_accepted_.load())));
  obj.emplace("admit_rejected",
              Json(static_cast<double>(admit_rejected_.load())));
  Json::Object latency;
  latency.emplace("count", Json(static_cast<double>(lat.count)));
  if (lat.count > 0) {
    latency.emplace("mean",
                    Json(lat.sum / static_cast<double>(lat.count)));
    latency.emplace("max", Json(lat.max));
    latency.emplace("p50",
                    Json(obs::Histogram::estimate_quantile(lat, 0.50)));
    latency.emplace("p99",
                    Json(obs::Histogram::estimate_quantile(lat, 0.99)));
  }
  obj.emplace("latency_us", Json(std::move(latency)));
  return Json(std::move(obj));
}

Json Server::handle_reload() {
  if (config_.spec_paths.empty()) {
    return error_reply(
        "reload unavailable: the catalog was injected, not loaded from "
        "spec paths");
  }
  try {
    util::MutexLock lock(reload_mutex_);
    const std::uint64_t next_epoch = catalog_->epoch() + 1;
    // Parse + precompute the whole snapshot before publishing: a broken
    // spec rejects the reload and the old epoch keeps serving.
    catalog_->publish(load_snapshot(next_epoch, config_.spec_paths));
    SC_OBS_GAUGE("serve.catalog.epoch", static_cast<double>(next_epoch));
    Json::Object obj;
    obj.emplace("ok", Json(true));
    obj.emplace("epoch", Json(static_cast<double>(next_epoch)));
    obj.emplace("scenarios",
                Json(static_cast<double>(catalog_->snapshot()->size())));
    return Json(std::move(obj));
  } catch (const util::PreconditionError& e) {
    return error_reply(std::string("reload failed: ") + e.what());
  }
}

}  // namespace streamcalc::serve
