#include "serve/catalog.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace streamcalc::serve {

CatalogSnapshot::CatalogSnapshot(std::uint64_t epoch,
                                 std::vector<ScenarioModel> scenarios)
    : epoch_(epoch) {
  for (ScenarioModel& s : scenarios) {
    util::require(!s.name.empty(), "catalog scenario requires a name");
    const auto [it, inserted] = scenarios_.emplace(s.name, std::move(s));
    (void)it;
    util::require(inserted, "duplicate catalog scenario name");
  }
}

const ScenarioModel* CatalogSnapshot::find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<std::string> CatalogSnapshot::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, model] : scenarios_) out.push_back(name);
  return out;
}

std::shared_ptr<const CatalogSnapshot> make_snapshot(
    std::uint64_t epoch,
    const std::vector<std::pair<std::string, cli::Spec>>& specs) {
  std::vector<ScenarioModel> scenarios;
  scenarios.reserve(specs.size());
  for (const auto& [name, spec] : specs) {
    ScenarioModel m;
    m.name = name;
    m.spec = spec;
    m.is_dag = spec.is_dag();
    try {
      if (m.is_dag) {
        // Validate shape now so a broken spec fails the (re)load, not a
        // later admit; the per-tenant IncrementalDag is built on demand.
        m.spec.dag().validate();
      } else {
        m.chain_model = std::make_shared<const netcalc::PipelineModel>(
            m.spec.nodes, m.spec.source, m.spec.policy);
      }
    } catch (const util::PreconditionError& e) {
      throw util::PreconditionError("catalog scenario '" + name +
                                    "': " + e.what());
    }
    scenarios.push_back(std::move(m));
  }
  return std::make_shared<const CatalogSnapshot>(epoch,
                                                 std::move(scenarios));
}

namespace {

std::string stem_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return name;
}

}  // namespace

std::shared_ptr<const CatalogSnapshot> load_snapshot(
    std::uint64_t epoch, const std::vector<std::string>& spec_paths) {
  util::require(!spec_paths.empty(),
                "catalog requires at least one spec path");
  std::vector<std::pair<std::string, cli::Spec>> specs;
  specs.reserve(spec_paths.size());
  for (const std::string& path : spec_paths) {
    std::ifstream in(path);
    util::require(static_cast<bool>(in),
                  "cannot read catalog spec '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    try {
      specs.emplace_back(stem_of(path), cli::parse_spec(text.str()));
    } catch (const util::PreconditionError& e) {
      throw util::PreconditionError("catalog spec '" + path +
                                    "': " + e.what());
    }
  }
  return make_snapshot(epoch, specs);
}

Catalog::Catalog(std::shared_ptr<const CatalogSnapshot> initial) {
  util::require(initial != nullptr, "Catalog requires an initial snapshot");
  util::MutexLock lock(mutex_);
  current_ = std::move(initial);
}

std::shared_ptr<const CatalogSnapshot> Catalog::snapshot() const {
  util::MutexLock lock(mutex_);
  return current_;
}

std::uint64_t Catalog::epoch() const {
  util::MutexLock lock(mutex_);
  return current_->epoch();
}

void Catalog::publish(std::shared_ptr<const CatalogSnapshot> next) {
  util::require(next != nullptr, "Catalog::publish requires a snapshot");
  util::MutexLock lock(mutex_);
  util::require(next->epoch() > current_->epoch(),
                "Catalog::publish requires a strictly newer epoch");
  current_ = std::move(next);
}

}  // namespace streamcalc::serve
