// Length-prefixed frame codec for the admission-control wire protocol.
//
// A frame is a 1-byte protocol version, a 4-byte big-endian payload
// length, and that many payload bytes (UTF-8 JSON, see json.hpp). The
// length counts the payload only. The version byte lets the codec evolve
// without resyncing heuristics: a peer speaking a different framing
// (including the original unversioned one, whose first byte is the high
// length octet — 0x00 for any payload under 16 MiB) is detected on the
// first byte and the connection is closed. Frames larger than the
// configured ceiling are a protocol error: the decoder reports kOversized
// *before* buffering the payload, the server replies with a framed error
// and closes the connection (an attacker-controlled length must never
// drive allocation).
//
//   +----------+----------------+---------------------+
//   | ver: u8  | len: u32 (BE)  | payload[len] bytes  |
//   +----------+----------------+---------------------+
//
// The decoder is incremental: feed() arbitrary byte chunks as they arrive
// from the socket, next() pops complete frames in order. A truncated frame
// (connection closed mid-frame) simply never completes — the server logs
// and drops it, which tests/serve/protocol_test.cpp pins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace streamcalc::serve {

/// Default ceiling on a frame payload (1 MiB). Admission requests are a
/// few hundred bytes; the ceiling exists to bound memory per connection.
inline constexpr std::size_t kDefaultMaxFramePayload = std::size_t{1} << 20;

/// Wire protocol version carried in every frame header. Version 0x01
/// introduced the version byte itself together with the optional `epsilon`
/// admission field (absent = deterministic, the pre-versioning semantics).
inline constexpr unsigned char kProtocolVersion = 0x01;

/// Frame header width: the version byte plus the u32 big-endian payload
/// length.
inline constexpr std::size_t kFrameHeaderBytes = 5;

/// Serializes one frame (header + payload). Requires
/// payload.size() <= max_payload (throws PreconditionError otherwise —
/// encoding an oversized frame is a programming error; *receiving* one is
/// handled gracefully by the decoder).
std::string encode_frame(const std::string& payload,
                         std::size_t max_payload = kDefaultMaxFramePayload);

/// Incremental frame decoder (one per connection).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  enum class Status {
    kFrame,       ///< a complete frame was popped into `out`
    kNeedMore,    ///< no complete frame buffered yet
    kOversized,   ///< declared length exceeds the ceiling; decoder is dead
    kBadVersion,  ///< unknown version byte; decoder is dead
  };

  /// Appends raw bytes received from the transport.
  void feed(const char* data, std::size_t size);
  void feed(const std::string& bytes) { feed(bytes.data(), bytes.size()); }

  /// Pops the next complete frame payload. After kOversized or
  /// kBadVersion the decoder stays in the error state (the connection must
  /// be closed; resyncing inside a byte stream with a corrupt header is
  /// not possible).
  Status next(std::string& out);

  /// Declared length of the oversized frame (valid after kOversized).
  std::size_t oversized_length() const { return oversized_length_; }

  /// The unrecognized version byte (valid after kBadVersion).
  unsigned char bad_version() const { return bad_version_; }

  /// True when a partial frame (header or payload) is buffered — used to
  /// detect truncated frames at connection teardown.
  bool mid_frame() const { return !dead_ && !buffer_.empty(); }

 private:
  std::size_t max_payload_;
  std::string buffer_;
  std::size_t oversized_length_ = 0;
  unsigned char bad_version_ = 0;
  bool dead_ = false;
  bool version_error_ = false;
};

}  // namespace streamcalc::serve
