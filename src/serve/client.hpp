// Blocking client for the serve wire protocol — the counterpart the
// tests, the QPS bench, and the smoke scripts drive the daemon with.
//
// Deliberately simple: one socket, synchronous request/reply, framed by
// protocol.hpp. The raw byte entry points exist so the protocol tests can
// send garbage (unframed bytes, truncated frames, hostile lengths) and
// observe how the server reacts.
#pragma once

#include <string>

#include "serve/json.hpp"
#include "serve/protocol.hpp"

namespace streamcalc::serve {

class Client {
 public:
  /// Connects to a unix domain socket. Throws PreconditionError when the
  /// daemon is not there.
  static Client connect_unix(const std::string& path);
  /// Connects to TCP 127.0.0.1:port.
  static Client connect_tcp(int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Framed request/reply. Throws PreconditionError on transport errors
  /// (connection closed, oversized reply).
  Json request(const Json& request);

  /// Same, but the payload is sent verbatim — lets tests deliver invalid
  /// JSON inside a valid frame.
  std::string request_raw(const std::string& payload);

  /// Sends raw bytes with no framing at all (hostile-input tests).
  void send_bytes(const std::string& bytes);

  /// Blocks for the next complete reply frame.
  std::string recv_frame();

  void close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace streamcalc::serve
