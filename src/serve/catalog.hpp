// Scenario catalog for the admission-control daemon: named pipeline/DAG
// models loaded at startup, swapped wholesale on reload.
//
// A CatalogSnapshot is immutable once built. Chain scenarios precompute
// their end-to-end service curve at load time — the hot admission path is
// then one horizontal-deviation evaluation of (fresh aggregate arrival,
// cached beta), which is what makes thousands of admits per second
// feasible (DESIGN.md §12). The cached beta is *exactly* the curve a
// from-scratch PipelineModel would derive, because the service side of the
// model depends only on (nodes, source, policy), never on the queried
// arrival envelope; the differential admission oracle
// (tests/serve/admission_oracle_test.cpp) pins that equality over
// generated scenarios.
//
// Reloads are epoch/snapshot based, never stop-the-world: the server
// builds a complete new snapshot off to the side (parsing and curve
// precomputation included), then atomically publishes it. Requests hold a
// shared_ptr to whichever snapshot was current when they started, so
// in-flight analysis keeps consistent curves while new requests see the
// new epoch.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cli/spec.hpp"
#include "netcalc/pipeline.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace streamcalc::serve {

/// One named scenario, with the load-time precomputation the admission
/// hot path relies on.
struct ScenarioModel {
  std::string name;
  cli::Spec spec;
  bool is_dag = false;
  /// Chain scenarios only: the base model built from the spec's own
  /// source. Its service_curve() is the cached end-to-end beta; per-node
  /// curves feed the `query` verb.
  std::shared_ptr<const netcalc::PipelineModel> chain_model;
};

/// Immutable set of scenarios plus the epoch it was published under.
class CatalogSnapshot {
 public:
  CatalogSnapshot(std::uint64_t epoch,
                  std::vector<ScenarioModel> scenarios);

  std::uint64_t epoch() const { return epoch_; }
  /// nullptr when no scenario has that name.
  const ScenarioModel* find(const std::string& name) const;
  std::vector<std::string> names() const;
  std::size_t size() const { return scenarios_.size(); }

 private:
  std::uint64_t epoch_;
  std::map<std::string, ScenarioModel> scenarios_;
};

/// Builds a snapshot from already-parsed specs (tests inject generated
/// scenarios this way, no files involved). Validates each spec by
/// building its model; throws PreconditionError naming the scenario on
/// failure.
std::shared_ptr<const CatalogSnapshot> make_snapshot(
    std::uint64_t epoch,
    const std::vector<std::pair<std::string, cli::Spec>>& specs);

/// Parses every path into a (stem-named) scenario and builds a snapshot.
/// Throws PreconditionError on unreadable files, parse errors, or
/// duplicate names.
std::shared_ptr<const CatalogSnapshot> load_snapshot(
    std::uint64_t epoch, const std::vector<std::string>& spec_paths);

/// The mutable holder the server reads through: publish() swaps the
/// current snapshot atomically (epoch monotonically increasing);
/// snapshot() hands out the current one. Thread-safe.
class Catalog {
 public:
  explicit Catalog(std::shared_ptr<const CatalogSnapshot> initial);

  std::shared_ptr<const CatalogSnapshot> snapshot() const
      SC_EXCLUDES(mutex_);
  std::uint64_t epoch() const SC_EXCLUDES(mutex_);

  /// Publishes `next` as the current snapshot. Requires a strictly newer
  /// epoch (throws PreconditionError otherwise).
  void publish(std::shared_ptr<const CatalogSnapshot> next)
      SC_EXCLUDES(mutex_);

  /// Reloads from the paths the initial snapshot remembers is not stored
  /// here: the server owns its spec-path list and calls load_snapshot +
  /// publish itself, keeping the catalog a dumb swap point.

 private:
  mutable util::Mutex mutex_;
  std::shared_ptr<const CatalogSnapshot> current_ SC_GUARDED_BY(mutex_);
};

}  // namespace streamcalc::serve
