#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace streamcalc::serve {

namespace {

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  util::require(path.size() < sizeof(addr.sun_path),
                "socket path too long: '" + path + "'");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  util::require(fd >= 0, errno_text("cannot create unix socket"));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = errno_text("cannot connect to '" + path + "'");
    ::close(fd);
    throw util::PreconditionError(why);
  }
  return Client(fd);
}

Client Client::connect_tcp(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  util::require(fd >= 0, errno_text("cannot create TCP socket"));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = errno_text(
        "cannot connect to 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    throw util::PreconditionError(why);
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    decoder_ = std::move(other.decoder_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_bytes(const std::string& bytes) {
  util::require(fd_ >= 0, "client is not connected");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::PreconditionError(errno_text("send failed"));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string Client::recv_frame() {
  util::require(fd_ >= 0, "client is not connected");
  std::string frame;
  for (;;) {
    const FrameDecoder::Status status = decoder_.next(frame);
    if (status == FrameDecoder::Status::kFrame) return frame;
    util::require(status != FrameDecoder::Status::kOversized,
                  "oversized reply frame");
    util::require(status != FrameDecoder::Status::kBadVersion,
                  "reply frame carries an unsupported protocol version");
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      throw util::PreconditionError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::PreconditionError(errno_text("recv failed"));
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

std::string Client::request_raw(const std::string& payload) {
  send_bytes(encode_frame(payload));
  return recv_frame();
}

Json Client::request(const Json& request) {
  const std::string reply = request_raw(request.dump());
  JsonParseResult parsed = json_parse(reply);
  util::require(parsed.ok(), "malformed reply from server: " + parsed.error);
  return std::move(parsed.value);
}

}  // namespace streamcalc::serve
