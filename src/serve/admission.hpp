// Admission-control engine: per-tenant admitted-flow state plus the
// decision procedure the daemon answers queries with.
//
// Model. A tenant binds to one catalog scenario on its first admit. Its
// admitted flows are token buckets (rate, burst) each carrying a delay
// target D. The tenant's aggregate arrival envelope is the token bucket of
// the summed parameters, packetized by the scenario source's packet size
// (sums of leaky buckets are leaky buckets, so this is exact, not a
// relaxation). The admission rule is:
//
//   admit f  <=>  delay_bound(alpha_{S ∪ {f}}, beta) <= min_{g in S∪{f}} D_g
//
// i.e. the shared-FIFO end-to-end delay bound with the candidate included
// must still satisfy every admitted flow's target (each flow's delay is
// bounded by the aggregate's). For chain scenarios beta is the catalog's
// cached end-to-end service curve, so the hot path is a single
// horizontal-deviation evaluation; for DAG scenarios flows attach to a
// named entry node and the per-tenant netcalc::IncrementalDag recomputes
// only the cone downstream of that entry.
//
// Every decision is EXACTLY what a from-scratch analysis of the same
// tenant set produces (PipelineModel::with_arrival / a freshly built
// IncrementalDag): same curves through the same kernels, hence the same
// doubles. tests/serve/admission_oracle_test.cpp holds this differential
// property over hundreds of generated scenarios.
//
// Concurrency. The engine serializes operations per tenant (one Mutex per
// tenant) while different tenants proceed in parallel; every applied state
// change increments the tenant's sequence number, which replies carry so a
// concurrent history can be replayed serially and compared
// (tests/serve/concurrency_soak_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "netcalc/incremental.hpp"
#include "netcalc/report.hpp"
#include "serve/catalog.hpp"
#include "util/context.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/units.hpp"

namespace streamcalc::serve {

/// One requested/admitted flow. Quantities carry their units in the type
/// (SC908): the wire protocol unpacks raw numbers exactly once, in
/// server.cpp, and everything behind it is unit-safe.
struct FlowSpec {
  util::DataRate rate;         ///< sustained token-bucket rate
  util::DataSize burst;        ///< bucket depth
  util::Duration delay_target; ///< end-to-end delay target
  std::string entry;           ///< DAG entry node name; empty = first entry
  /// Violation probability the tenant accepts. 0 (the default) demands the
  /// sure worst-case bound — the pre-existing deterministic admission path,
  /// bit for bit. A value in (0, 1) admits against the theta-optimized
  /// Chernoff bound P(delay > bound) <= epsilon instead (chain scenarios
  /// only; all of a tenant's flows must share one epsilon, since the
  /// shared-FIFO rule bounds every flow by the aggregate's tail).
  double epsilon = 0.0;
};

/// Outcome of an admit/release/query operation.
struct Decision {
  bool ok = false;          ///< request was well-formed and evaluated
  bool admitted = false;    ///< admit only: candidate accepted
  util::Duration delay_bound;  ///< bound backing the decision (inf allowed)
  /// What kind of statement `delay_bound` is: a sure worst case, or a
  /// violation-probability bound at `epsilon`.
  netcalc::BoundKind kind = netcalc::BoundKind::kWorstCase;
  double epsilon = 0.0;     ///< violation probability (0 = deterministic)
  std::string error;        ///< when !ok: what was wrong
  std::string reason;       ///< when !admitted: which constraint failed
  std::uint64_t seq = 0;    ///< tenant sequence after this operation
  std::uint64_t epoch = 0;  ///< catalog epoch the decision was made under
  bool changed = false;     ///< state actually changed (seq advanced)
};

/// Snapshot of one tenant's state (query verb).
struct TenantSnapshot {
  std::string scenario;
  std::uint64_t seq = 0;
  std::uint64_t epoch = 0;
  double epsilon = 0.0;        ///< tenant's bound epsilon (0 = deterministic)
  util::Duration delay_bound;  ///< current aggregate bound (0 if no flows)
  std::vector<std::pair<std::string, FlowSpec>> flows;  ///< sorted by id
};

class AdmissionEngine {
 public:
  explicit AdmissionEngine(std::shared_ptr<Catalog> catalog,
                           util::Context ctx = util::Context::active());

  /// Admission check + commit. `certify_strict` additionally runs the
  /// proof-carrying certification post-flight on the bound (chain
  /// scenarios; an uncertified bound turns the reply into an error).
  Decision admit(const std::string& tenant, const std::string& scenario,
                 const std::string& flow_id, const FlowSpec& flow,
                 bool certify_strict = false);

  /// Removes a flow. Releasing an unknown flow is an error; releasing the
  /// last flow keeps the tenant bound to its scenario.
  Decision release(const std::string& tenant, const std::string& flow_id);

  /// Current state of a tenant. Error when the tenant is unknown.
  Decision query(const std::string& tenant, TenantSnapshot& out);

  /// Number of tenants with state.
  std::size_t tenant_count() const SC_EXCLUDES(mutex_);

  // --- oracle helpers (shared with the differential tests) ---------------

  /// The aggregate arrival envelope of a flow set under a scenario source:
  /// token bucket of the summed parameters, packetized by source.packet.
  /// This exact function is what both the engine and the from-scratch
  /// oracle evaluate, so the two sides cannot drift.
  static minplus::Curve aggregate_arrival(
      const std::vector<FlowSpec>& flows, const netcalc::SourceSpec& source);

  /// From-scratch chain decision: full PipelineModel::with_arrival over
  /// the flow set. The engine's cached-beta path must agree bit for bit.
  /// `epsilon` > 0 evaluates the stochastic admission rule instead.
  static Decision oracle_chain_decision(const ScenarioModel& scenario,
                                        const std::vector<FlowSpec>& flows,
                                        double epsilon = 0.0);

 private:
  struct Tenant {
    mutable util::Mutex mutex;
    std::string scenario SC_GUARDED_BY(mutex);
    std::map<std::string, FlowSpec> flows SC_GUARDED_BY(mutex);
    /// Bound with the scenario on first admit; every later admit must
    /// carry the same value (0 = deterministic).
    double epsilon SC_GUARDED_BY(mutex) = 0.0;
    std::uint64_t seq SC_GUARDED_BY(mutex) = 0;
    /// Epoch of the catalog snapshot `dag` (if any) was built against;
    /// a newer snapshot forces a rebuild.
    std::uint64_t built_epoch SC_GUARDED_BY(mutex) = 0;
    std::unique_ptr<netcalc::IncrementalDag> dag SC_GUARDED_BY(mutex);
  };

  std::shared_ptr<Tenant> tenant_for(const std::string& name)
      SC_EXCLUDES(mutex_);

  /// Chain decision via the cached end-to-end beta. `epsilon` > 0 admits
  /// against the Chernoff bound at that violation probability.
  static Decision chain_decision(const ScenarioModel& scenario,
                                 const std::vector<FlowSpec>& flows,
                                 double epsilon);

  /// DAG decision via the tenant's IncrementalDag; `tenant` must be
  /// locked. Rebuilds the incremental state when the epoch moved.
  Decision dag_decision(Tenant& tenant, const ScenarioModel& scenario,
                        std::uint64_t epoch,
                        const std::map<std::string, FlowSpec>& flows)
      SC_REQUIRES(tenant.mutex);

  std::shared_ptr<Catalog> catalog_;
  util::Context ctx_;
  mutable util::Mutex mutex_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_
      SC_GUARDED_BY(mutex_);
};

}  // namespace streamcalc::serve
