#include "serve/protocol.hpp"

#include "util/error.hpp"

namespace streamcalc::serve {

std::string encode_frame(const std::string& payload,
                         std::size_t max_payload) {
  util::require(payload.size() <= max_payload,
                "encode_frame: payload exceeds the frame ceiling");
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out += static_cast<char>(kProtocolVersion);
  out += static_cast<char>((len >> 24) & 0xFF);
  out += static_cast<char>((len >> 16) & 0xFF);
  out += static_cast<char>((len >> 8) & 0xFF);
  out += static_cast<char>(len & 0xFF);
  out += payload;
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  if (dead_) return;
  buffer_.append(data, size);
}

FrameDecoder::Status FrameDecoder::next(std::string& out) {
  if (dead_) {
    return version_error_ ? Status::kBadVersion : Status::kOversized;
  }
  if (buffer_.empty()) return Status::kNeedMore;
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[i]));
  };
  // Check the version before waiting for a full header: a peer speaking a
  // different protocol is rejected on its very first byte.
  if (static_cast<unsigned char>(buffer_[0]) != kProtocolVersion) {
    dead_ = true;
    version_error_ = true;
    bad_version_ = static_cast<unsigned char>(buffer_[0]);
    return Status::kBadVersion;
  }
  if (buffer_.size() < kFrameHeaderBytes) return Status::kNeedMore;
  const std::uint32_t len =
      (b(1) << 24) | (b(2) << 16) | (b(3) << 8) | b(4);
  if (len > max_payload_) {
    // Reject on the declared length alone: the payload is never buffered,
    // so a hostile 4 GiB header costs 5 bytes, not 4 GiB.
    dead_ = true;
    oversized_length_ = len;
    return Status::kOversized;
  }
  if (buffer_.size() < kFrameHeaderBytes + len) return Status::kNeedMore;
  out.assign(buffer_, kFrameHeaderBytes, len);
  buffer_.erase(0, kFrameHeaderBytes + len);
  return Status::kFrame;
}

}  // namespace streamcalc::serve
