// Minimal JSON value model for the admission-control wire protocol.
//
// The serve daemon speaks length-prefixed JSON frames (protocol.hpp), so
// it needs to *parse* JSON, which nothing else in the repository does (the
// CLI and benches only emit it). This is a deliberately small
// recursive-descent implementation covering exactly RFC 8259 minus the
// exotica the protocol never uses: numbers are IEEE doubles, strings are
// uninterpreted bytes with the standard escapes (\uXXXX escapes outside
// the BMP are rejected rather than paired), and object keys are kept in a
// sorted map so serialization is deterministic — tests and differential
// oracles can compare replies textually.
//
// Parse errors carry a byte offset and a human-readable reason; the server
// turns them into clean `{"ok": false, "error": ...}` replies instead of
// dropping the connection (tests/serve/protocol_test.cpp pins this).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace streamcalc::serve {

/// One JSON value. A tagged union over the seven RFC 8259 kinds (null,
/// true/false collapse into kBool). Copyable; small protocol messages make
/// deep copies acceptable.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() = default;  ///< null

  // Implicit by design: Json is a literal-building sum type, and the
  // builder idiom `Json::Object{{"key", 3}}` depends on these conversions.
  // NOLINTBEGIN(google-explicit-constructor): implicit JSON value literals
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double n) : kind_(Kind::kNumber), num_(n) {}
  Json(int n) : kind_(Kind::kNumber), num_(n) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Json(Array a) : kind_(Kind::kArray), arr_(std::move(a)) {}
  Json(Object o) : kind_(Kind::kObject), obj_(std::move(o)) {}
  // NOLINTEND(google-explicit-constructor)

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; each requires the matching kind (checked, throws
  /// util::PreconditionError otherwise).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Object& as_object();

  /// Object field lookup: nullptr when this is not an object or the key is
  /// absent. The pointer is into this value; do not outlive it.
  const Json* find(const std::string& key) const;

  /// Convenience typed field readers with defaults (object values only).
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;
  double number_or(const std::string& key, double fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;

  /// Compact deterministic serialization (sorted object keys, no spaces;
  /// non-finite numbers render as null, matching the CLI's JSON emitters).
  std::string dump() const;

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Result of parsing one JSON document.
struct JsonParseResult {
  Json value;
  std::string error;      ///< empty on success
  std::size_t offset = 0; ///< byte offset of the error
  bool ok() const { return error.empty(); }
};

/// Parses exactly one JSON document occupying the whole input (trailing
/// whitespace allowed, trailing garbage is an error). Never throws; all
/// failures are reported through JsonParseResult::error.
JsonParseResult json_parse(const std::string& text);

}  // namespace streamcalc::serve
