// The admission-control daemon (`streamcalc serve`, DESIGN.md §12).
//
// A Server binds one endpoint — a unix domain socket or TCP on
// 127.0.0.1 — and answers length-prefixed JSON frames (protocol.hpp):
//
//   {"op":"admit","tenant":T,"scenario":S,"id":F,"rate":R,"burst":B,
//    "target":D[,"entry":node][,"certify":true]}
//   {"op":"release","tenant":T,"id":F}
//   {"op":"query","tenant":T}
//   {"op":"stats"} | {"op":"reload"} | {"op":"ping"} | {"op":"shutdown"}
//
// Every reply is an object with at least {"ok":bool}; errors carry
// "error", rejected admits carry "reason". Malformed JSON inside a valid
// frame gets a clean {"ok":false} reply and the connection lives on; an
// oversized frame gets an error reply and the connection is closed (the
// length prefix can no longer be trusted).
//
// Threading. One accept thread plus one reader thread per connection.
// Each batch of frames that arrives together is dispatched through
// util::ThreadPool::global().parallel_for, so concurrent requests share
// the pool the curve kernels already use (and run inline in serial mode);
// replies are written back in frame order. Admission state lives in
// AdmissionEngine (per-tenant locking), the scenario catalog behind
// epoch/snapshot swaps (catalog.hpp) — a `reload` builds the whole new
// snapshot before publishing, never stopping admission.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/catalog.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "util/context.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace streamcalc::serve {

/// Endpoint + catalog configuration for one Server.
struct ServerConfig {
  std::string socket_path;  ///< unix socket path; empty = use `port`
  int port = -1;            ///< TCP port on 127.0.0.1 (0 = kernel-assigned)
  std::vector<std::string> spec_paths;  ///< catalog specs (reload re-reads)
  std::size_t max_frame = kDefaultMaxFramePayload;
  util::Context ctx;  ///< run configuration (certify mode, obs, threads)
};

class Server {
 public:
  /// Loads the catalog from config.spec_paths (epoch 1). Throws
  /// PreconditionError on unreadable/unparseable specs.
  explicit Server(ServerConfig config);

  /// Uses an injected catalog instead of reading spec files (tests). The
  /// `reload` verb re-reads config.spec_paths, so with an empty list it
  /// reports an error reply.
  Server(ServerConfig config, std::shared_ptr<Catalog> catalog);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts accepting. Throws PreconditionError when
  /// the endpoint cannot be bound (bad path, address in use, ...).
  void start();

  /// Blocks until request_stop() (or a shutdown request) fires, then
  /// tears everything down. start() must have been called.
  void run();

  /// Asynchronously asks run() to return. Async-signal-safe.
  void request_stop() { stop_requested_.store(true); }

  /// Synchronous teardown: stops accepting, shuts down live connections,
  /// joins every thread. Idempotent; ~Server calls it.
  void stop();

  /// Bound TCP port (after start(); meaningful for port-0 auto-assign).
  int bound_port() const { return bound_port_; }

  /// Human-readable bound endpoint, e.g. "unix:/tmp/x.sock".
  std::string endpoint() const;

  AdmissionEngine& engine() { return *engine_; }
  const std::shared_ptr<Catalog>& catalog() const { return catalog_; }

 private:
  struct Connection {
    int fd = -1;  ///< -1 once the reader closed it (guarded by conn mutex)
    std::thread reader;
  };

  void accept_loop();
  void serve_connection(std::size_t slot, int fd);
  /// Handles one batch of frame payloads and writes the framed replies in
  /// order. Returns false when the peer went away mid-write.
  bool process_batch(int fd, const std::vector<std::string>& payloads);
  /// One request end to end; never throws. `want_shutdown` is set when
  /// the verb asks the daemon to exit (after the reply is flushed).
  std::string handle_request(const std::string& payload,
                             bool& want_shutdown);

  Json handle_admit(const Json& req);
  Json handle_release(const Json& req);
  Json handle_query(const Json& req);
  Json handle_stats();
  Json handle_reload() SC_EXCLUDES(reload_mutex_);

  ServerConfig config_;
  std::shared_ptr<Catalog> catalog_;
  std::unique_ptr<AdmissionEngine> engine_;

  /// Atomic: the accept loop reads it concurrently with stop()'s reset.
  std::atomic<int> listen_fd_{-1};
  int bound_port_ = -1;
  std::string bound_path_;  ///< unix socket to unlink at teardown
  std::thread accept_thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopped_{false};

  mutable util::Mutex conn_mutex_;
  std::vector<std::unique_ptr<Connection>> conns_
      SC_GUARDED_BY(conn_mutex_);

  /// Serializes reloads so concurrent `reload` verbs get consecutive
  /// epochs instead of racing publish().
  util::Mutex reload_mutex_;

  // --- stats (exposed by the `stats` verb) -------------------------------
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> request_errors_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> admit_accepted_{0};
  std::atomic<std::uint64_t> admit_rejected_{0};
  std::atomic<std::uint64_t> connections_{0};
  obs::Histogram latency_us_;  ///< per-request handling latency
};

}  // namespace streamcalc::serve
