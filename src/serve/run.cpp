#include "serve/run.hpp"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <exception>

#include "serve/server.hpp"

namespace streamcalc::serve {

namespace {

/// The one server the signal handlers reach. request_stop() only stores
/// an atomic flag, so calling it from a handler is safe.
std::atomic<Server*> g_signal_target{nullptr};

void stop_on_signal(int /*signum*/) {
  Server* server = g_signal_target.load();
  if (server != nullptr) server->request_stop();
}

}  // namespace

int run_serve(const cli::Options& opts) {
  ServerConfig config;
  config.socket_path = opts.socket_path;
  config.port = opts.port;
  config.spec_paths = opts.paths;
  config.ctx = opts.ctx;

  try {
    Server server(config);
    server.start();
    std::fprintf(stderr, "streamcalc serve: listening on %s (%zu scenario%s, epoch %llu)\n",
                 server.endpoint().c_str(), server.catalog()->snapshot()->size(),
                 server.catalog()->snapshot()->size() == 1 ? "" : "s",
                 static_cast<unsigned long long>(server.catalog()->epoch()));

    g_signal_target.store(&server);
    struct sigaction action {};
    action.sa_handler = stop_on_signal;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);

    server.run();
    g_signal_target.store(nullptr);
    std::fprintf(stderr, "streamcalc serve: shut down cleanly\n");
    return 0;
  } catch (const std::exception& e) {
    g_signal_target.store(nullptr);
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace streamcalc::serve
