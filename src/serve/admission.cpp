#include "serve/admission.hpp"

#include <algorithm>
#include <utility>

#include "certify/postflight.hpp"
#include "netcalc/bounds.hpp"
#include "netcalc/packetizer.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace streamcalc::serve {

namespace {
using minplus::Curve;
using util::Duration;

/// Smallest delay target in a flow set (the binding constraint of the
/// shared-FIFO admission rule).
Duration min_target(const std::vector<FlowSpec>& flows) {
  Duration d = Duration::infinite();
  for (const FlowSpec& f : flows) d = std::min(d, f.delay_target);
  return d;
}

/// Applies the admission rule to an evaluated bound. Shared verbatim by
/// the cached and from-scratch paths so the comparison semantics cannot
/// diverge.
void decide(Decision& d, Duration delay, Duration target) {
  d.ok = true;
  d.delay_bound = delay;
  if (delay <= target) {
    d.admitted = true;
  } else {
    d.admitted = false;
    d.reason = "delay bound exceeds the tightest admitted target";
  }
}

}  // namespace

minplus::Curve AdmissionEngine::aggregate_arrival(
    const std::vector<FlowSpec>& flows, const netcalc::SourceSpec& source) {
  util::DataRate rate;
  util::DataSize burst;
  for (const FlowSpec& f : flows) {
    rate = rate + f.rate;
    burst += f.burst;
  }
  // Sum of token buckets == token bucket of the sums (exact, not a
  // relaxation); the scenario source's packetizer granularity applies to
  // the merged flow. Curves are dimensionless: units unpack exactly here,
  // at the minplus boundary.
  return netcalc::packetize_arrival(
      Curve::affine(rate.in_bytes_per_sec(), burst.in_bytes()),
      source.packet);
}

Decision AdmissionEngine::chain_decision(const ScenarioModel& scenario,
                                         const std::vector<FlowSpec>& flows,
                                         double epsilon) {
  Decision d;
  d.epsilon = epsilon;
  if (flows.empty()) {
    d.ok = true;
    d.admitted = true;
    d.delay_bound = Duration::seconds(0.0);
    return d;
  }
  const Curve alpha = aggregate_arrival(flows, scenario.spec.source);
  // The cached end-to-end beta: PipelineModel's service side depends only
  // on (nodes, source, policy), so the load-time curve is the one a fresh
  // build would produce and this single deviation evaluation IS the
  // from-scratch bound.
  const netcalc::DelayReport report =
      epsilon > 0.0
          ? netcalc::delay_bound(alpha,
                                 scenario.chain_model->service_curve(),
                                 epsilon)
          : netcalc::delay_bound(alpha,
                                 scenario.chain_model->service_curve());
  decide(d, report.value, min_target(flows));
  d.kind = report.kind;
  return d;
}

Decision AdmissionEngine::oracle_chain_decision(
    const ScenarioModel& scenario, const std::vector<FlowSpec>& flows,
    double epsilon) {
  Decision d;
  d.epsilon = epsilon;
  if (flows.empty()) {
    d.ok = true;
    d.admitted = true;
    d.delay_bound = Duration::seconds(0.0);
    return d;
  }
  const netcalc::PipelineModel model = netcalc::PipelineModel::with_arrival(
      scenario.spec.nodes, scenario.spec.source, scenario.spec.policy,
      aggregate_arrival(flows, scenario.spec.source));
  const netcalc::DelayReport report =
      epsilon > 0.0 ? model.delay_bound(epsilon) : model.delay_bound();
  decide(d, report.value, min_target(flows));
  d.kind = report.kind;
  return d;
}

namespace {

/// Resolves a flow's entry-node name to an entry index of the DAG spec
/// (empty name = the first entry). Returns false when no entry targets a
/// node with that name.
bool resolve_entry(const netcalc::DagSpec& dag, const std::string& name,
                   std::size_t& out) {
  if (name.empty()) {
    out = 0;
    return !dag.entries.empty();
  }
  for (std::size_t k = 0; k < dag.entries.size(); ++k) {
    if (dag.nodes[dag.entries[k].to].name == name) {
      out = k;
      return true;
    }
  }
  return false;
}

/// Shared DAG evaluation: installs the flow set's per-entry envelopes
/// (zero where no flow attaches — tenant traffic replaces the spec's
/// nominal source) and checks every flow's target against the max path
/// delay from its entry. Used identically by the engine's per-tenant
/// incremental instance and by the from-scratch oracle, so the decisions
/// are the same doubles.
Decision evaluate_dag(netcalc::IncrementalDag& dag, const cli::Spec& spec,
                      const std::vector<std::pair<std::string, FlowSpec>>&
                          flows) {
  Decision d;
  const netcalc::DagSpec& shape = dag.dag();
  std::vector<std::vector<FlowSpec>> per_entry(shape.entries.size());
  std::vector<std::size_t> flow_entry(flows.size(), 0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    std::size_t k = 0;
    if (!resolve_entry(shape, flows[i].second.entry, k)) {
      d.error = "unknown entry node '" + flows[i].second.entry +
                "' for flow '" + flows[i].first + "'";
      return d;
    }
    flow_entry[i] = k;
    per_entry[k].push_back(flows[i].second);
  }
  for (std::size_t k = 0; k < shape.entries.size(); ++k) {
    dag.set_entry_envelope(
        k, per_entry[k].empty()
               ? Curve::zero()
               : AdmissionEngine::aggregate_arrival(per_entry[k],
                                                    spec.source));
  }
  d.ok = true;
  d.admitted = true;
  Duration worst = Duration::seconds(0.0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Duration delay =
        dag.delay_bound_from(dag.entry_node(flow_entry[i]));
    worst = std::max(worst, delay);
    if (!(delay <= flows[i].second.delay_target)) {
      d.admitted = false;
      d.reason = "delay bound from entry of flow '" + flows[i].first +
                 "' exceeds its target";
    }
  }
  d.delay_bound = worst;
  return d;
}

}  // namespace

AdmissionEngine::AdmissionEngine(std::shared_ptr<Catalog> catalog,
                                 util::Context ctx)
    : catalog_(std::move(catalog)), ctx_(ctx) {
  util::require(catalog_ != nullptr, "AdmissionEngine requires a catalog");
}

std::shared_ptr<AdmissionEngine::Tenant> AdmissionEngine::tenant_for(
    const std::string& name) {
  util::MutexLock lock(mutex_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(name, std::make_shared<Tenant>()).first;
  }
  return it->second;
}

std::size_t AdmissionEngine::tenant_count() const {
  util::MutexLock lock(mutex_);
  return tenants_.size();
}

Decision AdmissionEngine::dag_decision(
    Tenant& tenant, const ScenarioModel& scenario, std::uint64_t epoch,
    const std::map<std::string, FlowSpec>& flows) {
  // Epoch moved (catalog reload): rebuild the incremental state against
  // the new snapshot's spec; otherwise keep it — set_entry_envelope is a
  // no-op for unchanged entries and dirties only the changed entry's
  // downstream cone.
  if (tenant.dag == nullptr || tenant.built_epoch != epoch) {
    tenant.dag = std::make_unique<netcalc::IncrementalDag>(
        scenario.spec.dag(), scenario.spec.source, scenario.spec.policy);
    tenant.built_epoch = epoch;
  }
  std::vector<std::pair<std::string, FlowSpec>> flow_list(flows.begin(),
                                                          flows.end());
  return evaluate_dag(*tenant.dag, scenario.spec, flow_list);
}

Decision AdmissionEngine::admit(const std::string& tenant_name,
                                const std::string& scenario_name,
                                const std::string& flow_id,
                                const FlowSpec& flow, bool certify_strict) {
  SC_OBS_SPAN("serve", "admit");
  const auto snapshot = catalog_->snapshot();
  Decision d;
  d.epoch = snapshot->epoch();
  if (flow_id.empty()) {
    d.error = "admit requires a flow id";
    return d;
  }
  if (!(flow.rate.in_bytes_per_sec() > 0.0) || !flow.rate.is_finite()) {
    d.error = "admit requires a positive finite rate";
    return d;
  }
  if (flow.burst.in_bytes() < 0.0 || !flow.burst.is_finite()) {
    d.error = "admit requires a non-negative finite burst";
    return d;
  }
  if (!(flow.delay_target.in_seconds() > 0.0)) {
    d.error = "admit requires a positive delay target";
    return d;
  }
  if (!(flow.epsilon >= 0.0) || flow.epsilon >= 1.0) {
    d.error = "epsilon must be in [0, 1)";
    return d;
  }

  const std::shared_ptr<Tenant> tenant = tenant_for(tenant_name);
  util::MutexLock lock(tenant->mutex);
  std::string bound_scenario = tenant->scenario;
  if (bound_scenario.empty()) {
    if (scenario_name.empty()) {
      d.error = "first admit for a tenant must name a scenario";
      d.seq = tenant->seq;
      return d;
    }
    bound_scenario = scenario_name;
  } else if (!scenario_name.empty() && scenario_name != bound_scenario) {
    d.error = "tenant is bound to scenario '" + bound_scenario + "'";
    d.seq = tenant->seq;
    return d;
  }
  const ScenarioModel* scenario = snapshot->find(bound_scenario);
  if (scenario == nullptr) {
    d.error = "unknown scenario '" + bound_scenario + "'";
    d.seq = tenant->seq;
    return d;
  }
  if (tenant->flows.count(flow_id) != 0) {
    d.error = "flow '" + flow_id + "' is already admitted";
    d.seq = tenant->seq;
    return d;
  }
  if (!flow.entry.empty() && !scenario->is_dag) {
    d.error = "entry nodes apply only to DAG scenarios";
    d.seq = tenant->seq;
    return d;
  }
  if (flow.epsilon > 0.0 && scenario->is_dag) {
    d.error = "epsilon applies to chain scenarios only";
    d.seq = tenant->seq;
    return d;
  }
  // The shared-FIFO rule bounds every flow by the tenant aggregate, so the
  // statement being admitted against must be one bound; a tenant's flows
  // therefore all share one epsilon, fixed by its first admit.
  if (!tenant->scenario.empty() && flow.epsilon != tenant->epsilon) {
    d.error = "tenant is bound to a different epsilon";
    d.seq = tenant->seq;
    return d;
  }

  // Per-query strict certification: requested explicitly or inherited
  // from the daemon's Context (STREAMCALC_CERTIFY=strict).
  const bool strict =
      certify_strict ||
      certify::certify_mode(ctx_) == certify::CertifyMode::kStrict;

  Decision result;
  if (scenario->is_dag) {
    std::map<std::string, FlowSpec> candidate = tenant->flows;
    candidate.emplace(flow_id, flow);
    result = dag_decision(*tenant, *scenario, snapshot->epoch(), candidate);
  } else {
    std::vector<FlowSpec> candidate;
    candidate.reserve(tenant->flows.size() + 1);
    for (const auto& [id, f] : tenant->flows) candidate.push_back(f);
    candidate.push_back(flow);
    result = chain_decision(*scenario, candidate, flow.epsilon);
    if (flow.epsilon > 0.0) SC_OBS_COUNT("serve.admit.stochastic", 1);
    if (result.ok && strict) {
      // Proof-carrying mode: re-derive and certify every bound of the
      // candidate model with the independent exact-rational checker. A
      // failed certification is an evaluation error, not a rejection —
      // the double bound cannot be trusted either way.
      const netcalc::PipelineModel model =
          netcalc::PipelineModel::with_arrival(
              scenario->spec.nodes, scenario->spec.source,
              scenario->spec.policy,
              aggregate_arrival(candidate, scenario->spec.source));
      const diagnostics::LintReport report =
          certify::certify_pipeline(model);
      if (!report.clean()) {
        result = Decision{};
        result.error = "bound failed strict certification";
      }
    }
  }
  result.epoch = snapshot->epoch();
  if (result.ok && result.admitted) {
    tenant->scenario = bound_scenario;
    tenant->epsilon = flow.epsilon;
    tenant->flows.emplace(flow_id, flow);
    ++tenant->seq;
    result.changed = true;
  } else if (scenario->is_dag && result.ok) {
    // Restore the committed flow set's envelopes after a rejected
    // candidate evaluation (cheap: only the candidate's entry cone was
    // touched, and only it is recomputed back).
    (void)dag_decision(*tenant, *scenario, snapshot->epoch(),
                       tenant->flows);
  }
  result.seq = tenant->seq;
  SC_OBS_COUNT(result.admitted ? "serve.admit.accepted"
                               : "serve.admit.rejected",
               1);
  return result;
}

Decision AdmissionEngine::release(const std::string& tenant_name,
                                  const std::string& flow_id) {
  SC_OBS_SPAN("serve", "release");
  const auto snapshot = catalog_->snapshot();
  Decision d;
  d.epoch = snapshot->epoch();

  const std::shared_ptr<Tenant> tenant = tenant_for(tenant_name);
  util::MutexLock lock(tenant->mutex);
  const auto it = tenant->flows.find(flow_id);
  if (it == tenant->flows.end()) {
    d.error = "flow '" + flow_id + "' is not admitted";
    d.seq = tenant->seq;
    return d;
  }
  tenant->flows.erase(it);
  ++tenant->seq;
  d.ok = true;
  d.changed = true;
  d.seq = tenant->seq;

  // Report the post-release bound (and, for DAGs, bring the incremental
  // envelopes back in line with the committed set).
  const ScenarioModel* scenario = snapshot->find(tenant->scenario);
  if (scenario != nullptr) {
    Decision current;
    if (scenario->is_dag) {
      current = dag_decision(*tenant, *scenario, snapshot->epoch(),
                             tenant->flows);
    } else {
      std::vector<FlowSpec> flows;
      flows.reserve(tenant->flows.size());
      for (const auto& [id, f] : tenant->flows) flows.push_back(f);
      current = chain_decision(*scenario, flows, tenant->epsilon);
    }
    if (current.ok) {
      d.delay_bound = current.delay_bound;
      d.kind = current.kind;
      d.epsilon = current.epsilon;
    }
  }
  return d;
}

Decision AdmissionEngine::query(const std::string& tenant_name,
                                TenantSnapshot& out) {
  SC_OBS_SPAN("serve", "query");
  const auto snapshot = catalog_->snapshot();
  Decision d;
  d.epoch = snapshot->epoch();

  std::shared_ptr<Tenant> tenant;
  {
    util::MutexLock lock(mutex_);
    const auto it = tenants_.find(tenant_name);
    if (it == tenants_.end()) {
      d.error = "unknown tenant '" + tenant_name + "'";
      return d;
    }
    tenant = it->second;
  }
  util::MutexLock lock(tenant->mutex);
  out.scenario = tenant->scenario;
  out.seq = tenant->seq;
  out.epoch = snapshot->epoch();
  out.epsilon = tenant->epsilon;
  out.flows.assign(tenant->flows.begin(), tenant->flows.end());
  out.delay_bound = Duration::seconds(0.0);
  const ScenarioModel* scenario = snapshot->find(tenant->scenario);
  if (scenario != nullptr && !tenant->flows.empty()) {
    Decision current;
    if (scenario->is_dag) {
      current = dag_decision(*tenant, *scenario, snapshot->epoch(),
                             tenant->flows);
    } else {
      std::vector<FlowSpec> flows;
      flows.reserve(tenant->flows.size());
      for (const auto& [id, f] : tenant->flows) flows.push_back(f);
      current = chain_decision(*scenario, flows, tenant->epsilon);
    }
    if (current.ok) out.delay_bound = current.delay_bound;
  }
  d.ok = true;
  d.seq = tenant->seq;
  return d;
}

}  // namespace streamcalc::serve
