#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace streamcalc::serve {

bool Json::as_bool() const {
  util::require(kind_ == Kind::kBool, "Json: not a bool");
  return bool_;
}

double Json::as_number() const {
  util::require(kind_ == Kind::kNumber, "Json: not a number");
  return num_;
}

const std::string& Json::as_string() const {
  util::require(kind_ == Kind::kString, "Json: not a string");
  return str_;
}

const Json::Array& Json::as_array() const {
  util::require(kind_ == Kind::kArray, "Json: not an array");
  return arr_;
}

const Json::Object& Json::as_object() const {
  util::require(kind_ == Kind::kObject, "Json: not an object");
  return obj_;
}

Json::Object& Json::as_object() {
  util::require(kind_ == Kind::kObject, "Json: not an object");
  return obj_;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

std::string Json::string_or(const std::string& key,
                            const std::string& fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_string()) ? v->str_ : fallback;
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_number()) ? v->num_ : fallback;
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_ : fallback;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double v, std::string& out) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Round-trippable without trailing-zero noise for integers (seq numbers,
  // counters) which dominate the protocol.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

void Json::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      dump_number(num_, out);
      break;
    case Kind::kString:
      dump_string(str_, out);
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        dump_string(k, out);
        out += ':';
        v.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

bool Json::operator==(const Json& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kNumber:
      // Bit-for-bit comparison through the double value; NaN never appears
      // (dump() renders non-finite as null and the parser rejects them).
      return num_ == other.num_;
    case Kind::kString: return str_ == other.str_;
    case Kind::kArray: return arr_ == other.arr_;
    case Kind::kObject: return obj_ == other.obj_;
  }
  return false;
}

namespace {

/// Recursive-descent parser state over the input text.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult result;
    skip_ws();
    if (!parse_value(result.value, result)) return result;
    skip_ws();
    if (pos_ != text_.size()) {
      fail(result, "trailing characters after JSON document");
    }
    return result;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void fail(JsonParseResult& r, const std::string& why) const {
    if (r.error.empty()) {
      r.error = why;
      r.offset = pos_;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool parse_value(Json& out, JsonParseResult& r) {
    if (depth_ > kMaxDepth) {
      fail(r, "nesting depth exceeds limit");
      return false;
    }
    if (pos_ >= text_.size()) {
      fail(r, "unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!literal("null")) { fail(r, "invalid literal"); return false; }
        out = Json();
        return true;
      case 't':
        if (!literal("true")) { fail(r, "invalid literal"); return false; }
        out = Json(true);
        return true;
      case 'f':
        if (!literal("false")) { fail(r, "invalid literal"); return false; }
        out = Json(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(s, r)) return false;
        out = Json(std::move(s));
        return true;
      }
      case '[': return parse_array(out, r);
      case '{': return parse_object(out, r);
      default: return parse_number(out, r);
    }
  }

  bool parse_string(std::string& out, JsonParseResult& r) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(r, "unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) {
        fail(r, "unterminated escape");
        return false;
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail(r, "truncated \\u escape");
            return false;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail(r, "invalid \\u escape digit");
              return false;
            }
          }
          pos_ += 4;
          if (cp >= 0xD800 && cp <= 0xDFFF) {
            fail(r, "surrogate \\u escapes are not supported");
            return false;
          }
          // UTF-8 encode the BMP code point.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail(r, "unknown escape character");
          return false;
      }
    }
    fail(r, "unterminated string");
    return false;
  }

  bool parse_number(Json& out, JsonParseResult& r) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&]() {
      std::size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_start = pos_;
    const std::size_t int_digits = digits();
    if (int_digits == 0) {
      pos_ = start;
      fail(r, "invalid value");
      return false;
    }
    if (int_digits > 1 && text_[int_start] == '0') {
      pos_ = start;
      fail(r, "leading zeros are not permitted");
      return false;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) {
        fail(r, "digits required after decimal point");
        return false;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) {
        fail(r, "digits required in exponent");
        return false;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    out = Json(std::strtod(token.c_str(), nullptr));
    return true;
  }

  bool parse_array(Json& out, JsonParseResult& r) {
    ++pos_;  // '['
    ++depth_;
    Json::Array items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      --depth_;
      out = Json(std::move(items));
      return true;
    }
    while (true) {
      Json item;
      skip_ws();
      if (!parse_value(item, r)) return false;
      items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail(r, "unterminated array");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        --depth_;
        out = Json(std::move(items));
        return true;
      }
      fail(r, "expected ',' or ']' in array");
      return false;
    }
  }

  bool parse_object(Json& out, JsonParseResult& r) {
    ++pos_;  // '{'
    ++depth_;
    Json::Object fields;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      out = Json(std::move(fields));
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail(r, "expected string key in object");
        return false;
      }
      std::string key;
      if (!parse_string(key, r)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail(r, "expected ':' after object key");
        return false;
      }
      ++pos_;
      skip_ws();
      Json value;
      if (!parse_value(value, r)) return false;
      fields[std::move(key)] = std::move(value);  // last duplicate key wins
      skip_ws();
      if (pos_ >= text_.size()) {
        fail(r, "unterminated object");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        --depth_;
        out = Json(std::move(fields));
        return true;
      }
      fail(r, "expected ',' or '}' in object");
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonParseResult json_parse(const std::string& text) {
  return Parser(text).run();
}

}  // namespace streamcalc::serve
