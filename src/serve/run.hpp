// CLI entry point for `streamcalc serve` — builds a Server from parsed
// Options, wires SIGINT/SIGTERM to a clean stop, and blocks until
// shutdown. Lives in the serve library (not sc_cli) because serve links
// the CLI spec parser, and sc_cli must not depend back on serve.
#pragma once

#include "cli/options.hpp"

namespace streamcalc::serve {

/// Runs the daemon until a shutdown request or signal. Returns the
/// process exit code: 0 on clean shutdown, 1 when the catalog cannot be
/// loaded or the endpoint cannot be bound.
int run_serve(const cli::Options& opts);

}  // namespace streamcalc::serve
