#include "util/context.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <thread>

#include <cstdio>

#include "obs/runtime.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace streamcalc::util {

namespace {

// Upper bound on an explicit thread count; values past this are resource
// exhaustion bugs (typoed exponents), not tuning.
constexpr std::uint64_t kMaxThreads = 4096;

unsigned parse_threads_env() {
  const auto raw = env_raw("STREAMCALC_THREADS");
  if (!raw) return 0;
  if (*raw == "serial") return 1;
  std::optional<std::uint64_t> parsed;
  try {
    parsed = env_uint("STREAMCALC_THREADS", kMaxThreads);
  } catch (const PreconditionError&) {
    throw PreconditionError(
        "STREAMCALC_THREADS=\"" + *raw +
        "\" is not a valid setting: expected a non-negative thread count "
        "(0 = hardware concurrency, max " +
        std::to_string(kMaxThreads) + ") or \"serial\"");
  }
  return static_cast<unsigned>(*parsed);
}

EnforceMode parse_mode_env(const std::string& name, EnforceMode fallback) {
  const auto raw = env_raw(name);
  if (!raw) return fallback;
  if (*raw == "off") return EnforceMode::kOff;
  if (*raw == "warn") return EnforceMode::kWarn;
  if (*raw == "strict") return EnforceMode::kStrict;
  throw PreconditionError(name + "=\"" + *raw +
                          "\" is not a valid setting: expected \"off\", "
                          "\"warn\", or \"strict\"");
}

// The installed-context slot, under the annotated util::Mutex so the
// thread-safety analysis covers every access (a raw std::mutex here was
// invisible to -Werror=thread-safety — srclint SC901). The slot is a
// heap-allocated pointer rather than a std::optional so it can be
// constant-initialized: a plain pointer has no static-destruction order
// hazard against late readers.
Mutex g_installed_mutex;
Context* g_installed SC_GUARDED_BY(g_installed_mutex) = nullptr;

}  // namespace

const char* to_string(EnforceMode m) {
  switch (m) {
    case EnforceMode::kOff:
      return "off";
    case EnforceMode::kWarn:
      return "warn";
    case EnforceMode::kStrict:
      return "strict";
  }
  return "?";
}

Context Context::from_env() {
  Context ctx;
  ctx.threads = parse_threads_env();
  const auto cache = env_uint("STREAMCALC_CURVE_CACHE", 1u << 24);
  if (cache) ctx.curve_cache = static_cast<std::size_t>(*cache);
  const auto fuzz = env_uint_in("STREAMCALC_FUZZ_CASES", 1, 100000000);
  if (fuzz) ctx.fuzz_cases = static_cast<int>(*fuzz);
  ctx.lint = parse_mode_env("STREAMCALC_LINT", EnforceMode::kWarn);
  ctx.certify = parse_mode_env("STREAMCALC_CERTIFY", EnforceMode::kOff);
  // Same strict grammar as the obs runtime bootstrap (util/env.hpp).
  ctx.obs = env_bool("STREAMCALC_OBS").value_or(true);
  return ctx;
}

Context Context::active() {
  {
    const MutexLock lock(g_installed_mutex);
    if (g_installed != nullptr) return *g_installed;
  }
  return from_env();
}

void Context::install(const Context& ctx) {
  {
    const MutexLock lock(g_installed_mutex);
    if (g_installed == nullptr) {
      g_installed = new Context(ctx);
    } else {
      *g_installed = ctx;
    }
  }
  obs::set_enabled(ctx.obs);
}

void Context::uninstall() {
  const MutexLock lock(g_installed_mutex);
  delete g_installed;
  g_installed = nullptr;
}

unsigned Context::resolved_threads() const {
  if (threads != 0) return threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned Context::pool_workers() const {
  const unsigned resolved = resolved_threads();
  return resolved <= 1 ? 0u : resolved;
}

void warn_deprecated_once(const std::string& what) {
  static Mutex mutex;
  static std::set<std::string>* warned = new std::set<std::string>();
  const MutexLock lock(mutex);
  if (!warned->insert(what).second) return;
  std::fprintf(stderr, "streamcalc: deprecated: %s\n", what.c_str());
}

}  // namespace streamcalc::util
