// streamcalc::Context — the unified runtime-configuration facade.
//
// One struct owns every knob that used to be a scattered STREAMCALC_* env
// read inside five different libraries: thread count, curve-op cache
// capacity, fuzz budget, lint/certify enforcement modes, and the
// observability (trace/metrics/stats) settings. Programs build it once —
// from the environment via Context::from_env(), then CLI flags override
// individual fields — install it with Context::install(), and pass it
// explicitly to the subsystem entry points (ThreadPool, CurveOpCache,
// ReplicationRunner, diagnostics::preflight, certify::postflight).
//
// Library code that has no Context parameter reads Context::active():
//   * after install(), the installed context (one source of truth);
//   * before install(), a context built fresh from the environment on
//     each call — so test fixtures that setenv/unsetenv keep working.
//
// The legacy per-variable readers (util::configured_thread_count,
// diagnostics::lint_mode_from_env, certify::certify_mode_from_env) are
// deprecated shims over Context::active() that warn once per process; see
// DESIGN.md §10 for the migration table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace streamcalc::util {

/// Enforcement level shared by the lint pre-flight and certify
/// post-flight: kOff = skip, kWarn = report to stderr, kStrict = throw on
/// findings.
enum class EnforceMode : std::uint8_t { kOff, kWarn, kStrict };

const char* to_string(EnforceMode m);

struct Context {
  // --- execution ---------------------------------------------------------
  /// Worker threads: 0 = hardware concurrency, 1 = serial (everything
  /// inline), N = that many. Mirrors STREAMCALC_THREADS ("serial" == 1).
  unsigned threads = 0;

  // --- caching -----------------------------------------------------------
  /// CurveOpCache capacity in entries (0 disables memoization). Mirrors
  /// STREAMCALC_CURVE_CACHE.
  std::size_t curve_cache = 4096;

  // --- verification ------------------------------------------------------
  /// Per-property fuzz budget (STREAMCALC_FUZZ_CASES).
  int fuzz_cases = 500;
  /// nclint pre-flight mode (STREAMCALC_LINT; default warn).
  EnforceMode lint = EnforceMode::kWarn;
  /// Bound-certification post-flight mode (STREAMCALC_CERTIFY; default off).
  EnforceMode certify = EnforceMode::kOff;

  // --- observability -----------------------------------------------------
  /// Master runtime switch for spans/metrics (STREAMCALC_OBS; default on).
  /// Instrumentation can additionally be compiled out entirely with the
  /// STREAMCALC_OBS=OFF CMake option.
  bool obs = true;
  /// Print the metrics-registry JSON block after the run (`--stats`).
  bool stats = false;
  /// When non-empty, record spans and write a chrome://tracing JSON file
  /// here at the end of the run (`--trace <file>`).
  std::string trace_path;

  /// Builds a Context from the STREAMCALC_* environment variables,
  /// throwing PreconditionError (naming the variable and the accepted
  /// forms) on any malformed value.
  static Context from_env();

  /// The process-wide context: the installed one, else built fresh from
  /// the environment (see file comment).
  static Context active();

  /// Installs `ctx` as the process-wide context and applies its obs
  /// switch to the instrumentation runtime. Call once, early (before the
  /// first use of the global thread pool / curve cache, which size
  /// themselves from the active context at first use).
  static void install(const Context& ctx);

  /// Removes an installed context (tests); active() reverts to tracking
  /// the environment.
  static void uninstall();

  /// `threads` with the hardware-concurrency substitution applied
  /// (always >= 1).
  unsigned resolved_threads() const;

  /// Worker count for a ThreadPool honouring this context: 0 (serial,
  /// everything inline) when resolved_threads() <= 1.
  unsigned pool_workers() const;
};

/// Prints "streamcalc: deprecated: <what>" to stderr once per distinct
/// message per process. Used by the legacy env-reader shims.
void warn_deprecated_once(const std::string& what);

}  // namespace streamcalc::util
