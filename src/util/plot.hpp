// ASCII and CSV emitters for the paper's figures.
//
// The benchmark harnesses regenerate each figure twice: once as CSV series
// (for external plotting) and once as an ASCII chart so the figure's shape —
// which curve bounds which, where the stairstep sits — is visible directly
// in terminal output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace streamcalc::util {

/// One named series of (x, y) points.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  /// Stairstep series are drawn with sample-and-hold semantics (the DES
  /// cumulative-output traces); smooth series are linearly interpolated.
  bool stairstep = false;
};

/// A figure: several series over a shared x range.
class Figure {
 public:
  Figure(std::string title, std::string x_label, std::string y_label);

  void add_series(Series s);

  /// Renders all series as CSV: header row `x,<name>,<name>,...` then one
  /// row per distinct x, with linear interpolation (or hold, for stairstep
  /// series) to align series on the union of x values.
  std::string to_csv(std::size_t max_rows = 200) const;

  /// Renders an ASCII chart of the given size. Each series gets a distinct
  /// glyph; a legend is appended.
  std::string to_ascii(std::size_t width = 78, std::size_t height = 24) const;

  const std::string& title() const { return title_; }
  const std::vector<Series>& series() const { return series_; }

 private:
  double interpolate(const Series& s, double x) const;

  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

}  // namespace streamcalc::util
