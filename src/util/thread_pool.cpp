#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace streamcalc::util {

namespace {

std::atomic<bool> g_force_serial{false};
thread_local bool t_on_worker = false;

}  // namespace

unsigned configured_thread_count() {
  warn_deprecated_once(
      "util::configured_thread_count() reads the environment directly; "
      "build a streamcalc::Context (Context::from_env()) and use "
      "resolved_threads() instead");
  return Context::active().resolved_threads();
}

ThreadPool::ThreadPool(const Context& ctx) : ThreadPool(ctx.pool_workers()) {}

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this](std::stop_token stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  // Join before member destruction: workers_ is declared first, so the
  // implicit jthread join would run *after* mutex_ and the condvars are
  // destroyed — while late workers may still be signalling them. Workers
  // drain the queue before returning so no submitted task (whose state
  // may live on a submitter's stack) is lost.
  for (std::jthread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop(std::stop_token /*stop*/) {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (serial()) {
    task();
    return;
  }
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
    SC_OBS_GAUGE("pool.queue_depth", queue_.size());
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || active_ != 0) idle_.wait(mutex_);
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t count = end - begin;
  const std::size_t chunks = (count + grain - 1) / grain;
  SC_OBS_SPAN("pool", "parallel_for");
  SC_OBS_COUNT("pool.parallel_for.calls", 1);
  SC_OBS_COUNT("pool.chunks", chunks);
  // Chunk boundaries are fully determined by (begin, end, grain); running
  // inline therefore executes the exact same chunks in index order, which
  // is what makes serial mode the bit-identical reference for parallel
  // runs (callers write per-chunk results to per-index slots).
  if (chunks < 2 || serial() || force_serial() || on_worker_thread()) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * grain;
      SC_OBS_SPAN("pool", "chunk");
      fn(lo, std::min(end, lo + grain));
    }
    return;
  }

  struct State {
    Mutex m;
    CondVar done_cv;
    std::size_t next SC_GUARDED_BY(m) = 0;  ///< next chunk index to claim
    std::size_t pending SC_GUARDED_BY(m) = 0;  ///< chunks not yet finished
    std::size_t live_tasks SC_GUARDED_BY(m) =
        0;  ///< queued runner tasks not yet returned
    std::exception_ptr error SC_GUARDED_BY(m);
  } state;
  {
    MutexLock lock(state.m);
    state.pending = chunks;
  }

  const auto run_chunks = [&]() {
    for (;;) {
      std::size_t c;
      {
        MutexLock lock(state.m);
        if (state.next >= chunks) return;
        c = state.next++;
      }
      const std::size_t lo = begin + c * grain;
      try {
        SC_OBS_SPAN("pool", "chunk");
        fn(lo, std::min(end, lo + grain));
      } catch (...) {
        MutexLock lock(state.m);
        if (!state.error) state.error = std::current_exception();
      }
      {
        MutexLock lock(state.m);
        if (--state.pending == 0) state.done_cv.notify_all();
      }
    }
  };

  const std::size_t helpers =
      std::min<std::size_t>(workers_.size(), chunks - 1);
  {
    MutexLock lock(state.m);
    state.live_tasks = helpers;
  }
  for (std::size_t i = 0; i < helpers; ++i) {
    submit([&state, run_chunks] {
      run_chunks();
      MutexLock lock(state.m);
      if (--state.live_tasks == 0) state.done_cv.notify_all();
    });
  }
  run_chunks();
  MutexLock lock(state.m);
  while (state.pending != 0 || state.live_tasks != 0) {
    state.done_cv.wait(state.m);
  }
  if (state.error) std::rethrow_exception(state.error);
}

ThreadPool& ThreadPool::global() {
  // Lazily constructed from the active Context; a resolved count of 1
  // ("serial") means no workers at all, so the pool degenerates to inline
  // execution. A malformed STREAMCALC_* variable throws out of the
  // initializer — failing the run loudly is the point (see util/env.hpp).
  static ThreadPool pool(Context::active().pool_workers());
  return pool;
}

void ThreadPool::set_force_serial(bool on) { g_force_serial.store(on); }

bool ThreadPool::force_serial() { return g_force_serial.load(); }

bool ThreadPool::on_worker_thread() { return t_on_worker; }

}  // namespace streamcalc::util
