#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace streamcalc::util {

namespace {

std::atomic<bool> g_force_serial{false};
thread_local bool t_on_worker = false;

unsigned hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

unsigned configured_thread_count() {
  const char* env = std::getenv("STREAMCALC_THREADS");
  if (env == nullptr || *env == '\0') return hardware_threads();
  const std::string value(env);
  if (value == "serial") return 1;
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || parsed < 0) {
    return hardware_threads();
  }
  if (parsed == 0) return hardware_threads();
  return static_cast<unsigned>(parsed);
}

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this](std::stop_token stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  // std::jthread joins on destruction; workers drain the queue first so no
  // submitted task (whose state may live on a submitter's stack) is lost.
}

void ThreadPool::worker_loop(std::stop_token /*stop*/) {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (serial()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t count = end - begin;
  const std::size_t chunks = (count + grain - 1) / grain;
  // Chunk boundaries are fully determined by (begin, end, grain); running
  // inline therefore executes the exact same chunks in index order, which
  // is what makes serial mode the bit-identical reference for parallel
  // runs (callers write per-chunk results to per-index slots).
  if (chunks < 2 || serial() || force_serial() || on_worker_thread()) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * grain;
      fn(lo, std::min(end, lo + grain));
    }
    return;
  }

  struct State {
    std::mutex m;
    std::condition_variable done_cv;
    std::size_t next = 0;       ///< next chunk index to claim
    std::size_t pending;        ///< chunks not yet finished
    std::size_t live_tasks = 0; ///< queued runner tasks not yet returned
    std::exception_ptr error;
  } state;
  state.pending = chunks;

  const auto run_chunks = [&]() {
    for (;;) {
      std::size_t c;
      {
        std::lock_guard<std::mutex> lock(state.m);
        if (state.next >= chunks) return;
        c = state.next++;
      }
      const std::size_t lo = begin + c * grain;
      try {
        fn(lo, std::min(end, lo + grain));
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.m);
        if (!state.error) state.error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(state.m);
        if (--state.pending == 0) state.done_cv.notify_all();
      }
    }
  };

  const std::size_t helpers =
      std::min<std::size_t>(workers_.size(), chunks - 1);
  {
    std::lock_guard<std::mutex> lock(state.m);
    state.live_tasks = helpers;
  }
  for (std::size_t i = 0; i < helpers; ++i) {
    submit([&state, run_chunks] {
      run_chunks();
      std::lock_guard<std::mutex> lock(state.m);
      if (--state.live_tasks == 0) state.done_cv.notify_all();
    });
  }
  run_chunks();
  std::unique_lock<std::mutex> lock(state.m);
  state.done_cv.wait(lock, [&state] {
    return state.pending == 0 && state.live_tasks == 0;
  });
  if (state.error) std::rethrow_exception(state.error);
}

ThreadPool& ThreadPool::global() {
  // Lazily constructed; a configured count of 1 (or "serial") means no
  // workers at all, so the pool degenerates to inline execution.
  static ThreadPool pool(configured_thread_count() <= 1
                             ? 0u
                             : configured_thread_count());
  return pool;
}

void ThreadPool::set_force_serial(bool on) { g_force_serial.store(on); }

bool ThreadPool::force_serial() { return g_force_serial.load(); }

bool ThreadPool::on_worker_thread() { return t_on_worker; }

}  // namespace streamcalc::util
