// Minimal ASCII table renderer used by the benchmark harnesses to print the
// paper's tables in an aligned, diff-friendly form.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace streamcalc::util {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// A simple text table: set headers, append rows, render.
///
/// Rendering style matches the paper's tables:
///
///   | Source                       | Value     |
///   |------------------------------|-----------|
///   | Network calculus upper bound | 704 MiB/s |
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<Align> alignments = {});

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator row.
  void add_separator();

  std::string render() const;
  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> headers_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace streamcalc::util
