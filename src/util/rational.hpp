// Exact arbitrary-precision rational arithmetic for the certificate
// checker (src/certify).
//
// The fast network-calculus kernels compute on doubles; the proof-carrying
// verification layer re-evaluates every emitted bound on exact rationals so
// a rounding bug in the kernels cannot certify itself. Every finite double
// is a dyadic rational (m * 2^e with |m| < 2^53), so conversion from the
// curve breakpoints is *exact* — Rational::from_double introduces no error
// whatsoever. Sums, differences, and products of dyadic rationals stay
// dyadic; the pseudo-inverse steps of the delay-bound check divide by
// segment slopes, which is where general rationals become necessary.
//
// The implementation is deliberately minimal: sign-magnitude big integers
// over 32-bit limbs with schoolbook multiplication. Checker expressions are
// a handful of operations deep over 53-bit mantissas, so performance is a
// non-issue; simplicity and obvious correctness are the point (this class
// is part of the verification trust base, see DESIGN.md §9).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace streamcalc::util {

/// Arbitrary-precision signed integer (sign + 32-bit little-endian limbs).
/// Supports exactly the operations the rational layer needs.
class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor): numeric
                           // literals in checker expressions read naturally.

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }

  BigInt operator-() const;
  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;

  /// Shift the magnitude left by `bits` (multiply by 2^bits).
  BigInt shifted_left(unsigned bits) const;

  /// Three-way comparison: -1, 0, +1.
  int compare(const BigInt& o) const;
  bool operator==(const BigInt& o) const { return compare(o) == 0; }
  bool operator<(const BigInt& o) const { return compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return compare(o) <= 0; }

  /// True when the magnitude is divisible by two (zero counts as even).
  bool is_even() const;
  /// In-place magnitude shift right by one bit (divide by 2, toward zero).
  void halve();

  /// Closest double (round to nearest); may overflow to +-inf for huge
  /// magnitudes. Used only for diagnostics and final rounding, never for
  /// exact decisions.
  double to_double() const;

  /// Decimal rendering for failure messages.
  std::string to_string() const;

 private:
  static int compare_magnitude(const BigInt& a, const BigInt& b);
  static BigInt add_magnitude(const BigInt& a, const BigInt& b);
  /// Requires |a| >= |b|.
  static BigInt sub_magnitude(const BigInt& a, const BigInt& b);
  void trim();

  bool negative_ = false;
  std::vector<std::uint32_t> limbs_;  ///< little-endian, no leading zeros
};

/// An exact rational number num/den, den > 0, reduced by the common power
/// of two (a full reduction for dyadic values; see normalize()).
class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  // NOLINTNEXTLINE(google-explicit-constructor): numeric promotion, like BigInt
  Rational(std::int64_t v) : num_(v), den_(1) {}
  Rational(BigInt num, BigInt den);

  /// Exact value of a finite double (every finite double is dyadic).
  /// Throws PreconditionError for NaN or infinity — callers must branch on
  /// finiteness first.
  static Rational from_double(double v);

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  bool is_negative() const { return num_.is_negative(); }

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Requires o != 0.
  Rational operator/(const Rational& o) const;

  int compare(const Rational& o) const;
  bool operator==(const Rational& o) const { return compare(o) == 0; }
  bool operator!=(const Rational& o) const { return compare(o) != 0; }
  bool operator<(const Rational& o) const { return compare(o) < 0; }
  bool operator<=(const Rational& o) const { return compare(o) <= 0; }
  bool operator>(const Rational& o) const { return compare(o) > 0; }
  bool operator>=(const Rational& o) const { return compare(o) >= 0; }

  static Rational min(const Rational& a, const Rational& b);
  static Rational max(const Rational& a, const Rational& b);

  /// Nearest double (two correctly-rounded conversions and one division;
  /// approximate). For display and as the starting point of round_up.
  double approx() const;

  /// The smallest double d with Rational::from_double(d) >= *this — i.e.
  /// the exact value rounded toward +infinity onto the double grid. This
  /// is how a certified bound is reported: the emitted double never
  /// undercuts the exact supremum it certifies.
  double round_up_double() const;

  std::string to_string() const;

 private:
  void normalize();

  BigInt num_;
  BigInt den_;  ///< always positive
};

}  // namespace streamcalc::util
