// Human-readable formatting of quantities (auto-scaled units), matching the
// presentation style of the paper's tables ("350 MiB/s", "46.9 ms", "3 KiB").
#pragma once

#include <string>

#include "util/units.hpp"

namespace streamcalc::util {

/// Formats a double with `digits` significant digits, trimming trailing
/// zeros ("46.9", "350", "0.00123").
std::string format_significant(double value, int digits = 3);

/// "350 MiB/s", "10 GiB/s", "512 B/s" — picks the largest binary unit that
/// keeps the mantissa >= 1.
std::string format_rate(DataRate rate, int digits = 3);

/// "20.6 MiB", "3 KiB", "128 B".
std::string format_size(DataSize size, int digits = 3);

/// "46.9 ms", "38 us", "1.2 s".
std::string format_duration(Duration d, int digits = 3);

}  // namespace streamcalc::util
