#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace streamcalc::util {

Table::Table(std::vector<std::string> headers, std::vector<Align> alignments)
    : headers_(std::move(headers)), alignments_(std::move(alignments)) {
  require(!headers_.empty(), "Table requires at least one column");
  if (alignments_.empty()) {
    alignments_.assign(headers_.size(), Align::kLeft);
  }
  require(alignments_.size() == headers_.size(),
          "Table alignment count must match header count");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "Table row arity must match header arity");
  rows_.push_back(Row{std::move(cells), /*separator=*/false});
}

void Table::add_separator() { rows_.push_back(Row{{}, /*separator=*/true}); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto emit_cells = [&](std::ostringstream& os,
                        const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& text = cells[c];
      const std::size_t pad = widths[c] - text.size();
      os << ' ';
      if (alignments_[c] == Align::kRight) os << std::string(pad, ' ');
      os << text;
      if (alignments_[c] == Align::kLeft) os << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };
  auto emit_separator = [&](std::ostringstream& os) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '|';
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_cells(os, headers_);
  emit_separator(os);
  for (const Row& row : rows_) {
    if (row.separator) {
      emit_separator(os);
    } else {
      emit_cells(os, row.cells);
    }
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.render();
}

}  // namespace streamcalc::util
