#include "util/plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace streamcalc::util {

Figure::Figure(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

void Figure::add_series(Series s) {
  require(s.x.size() == s.y.size(), "Series x/y size mismatch");
  require(!s.x.empty(), "Series must be non-empty");
  require(std::is_sorted(s.x.begin(), s.x.end()),
          "Series x values must be non-decreasing");
  series_.push_back(std::move(s));
}

double Figure::interpolate(const Series& s, double x) const {
  if (x <= s.x.front()) return s.y.front();
  if (x >= s.x.back()) return s.y.back();
  const auto it = std::upper_bound(s.x.begin(), s.x.end(), x);
  const auto i = static_cast<std::size_t>(it - s.x.begin());
  // `it` points at the first x strictly greater than `x`, so i >= 1.
  if (s.stairstep) return s.y[i - 1];
  const double x0 = s.x[i - 1], x1 = s.x[i];
  const double y0 = s.y[i - 1], y1 = s.y[i];
  if (x1 == x0) return y1;
  return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
}

std::string Figure::to_csv(std::size_t max_rows) const {
  require(!series_.empty(), "Figure has no series");
  std::set<double> xs;
  for (const Series& s : series_) xs.insert(s.x.begin(), s.x.end());
  std::vector<double> grid(xs.begin(), xs.end());
  if (grid.size() > max_rows && max_rows >= 2) {
    // Resample onto a uniform grid to keep output bounded.
    std::vector<double> coarse;
    coarse.reserve(max_rows);
    const double lo = grid.front(), hi = grid.back();
    for (std::size_t i = 0; i < max_rows; ++i) {
      coarse.push_back(lo + (hi - lo) * static_cast<double>(i) /
                                static_cast<double>(max_rows - 1));
    }
    grid = std::move(coarse);
  }

  std::ostringstream os;
  os << x_label_;
  for (const Series& s : series_) os << ',' << s.name;
  os << '\n';
  for (double x : grid) {
    os << format_significant(x, 6);
    for (const Series& s : series_) {
      os << ',' << format_significant(interpolate(s, x), 6);
    }
    os << '\n';
  }
  return os.str();
}

std::string Figure::to_ascii(std::size_t width, std::size_t height) const {
  require(!series_.empty(), "Figure has no series");
  require(width >= 16 && height >= 4, "Figure dimensions too small");

  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = std::numeric_limits<double>::infinity(), ymax = -ymin;
  for (const Series& s : series_) {
    xmin = std::min(xmin, s.x.front());
    xmax = std::max(xmax, s.x.back());
    for (double y : s.y) {
      if (!std::isfinite(y)) continue;
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
  }
  if (!std::isfinite(ymin) || ymin == ymax) {
    ymin -= 1.0;
    ymax += 1.0;
  }
  if (xmin == xmax) xmax = xmin + 1.0;

  static constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};
  std::vector<std::string> canvas(height, std::string(width, ' '));

  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof kGlyphs];
    for (std::size_t col = 0; col < width; ++col) {
      const double x =
          xmin + (xmax - xmin) * static_cast<double>(col) /
                     static_cast<double>(width - 1);
      const double y = interpolate(series_[si], x);
      if (!std::isfinite(y)) continue;
      const double frac = (y - ymin) / (ymax - ymin);
      if (frac < 0.0 || frac > 1.0) continue;
      const auto row = static_cast<std::size_t>(std::lround(
          (1.0 - frac) * static_cast<double>(height - 1)));
      canvas[row][col] = glyph;
    }
  }

  std::ostringstream os;
  os << title_ << "\n";
  os << format_significant(ymax, 4) << " " << y_label_ << "\n";
  for (const std::string& line : canvas) os << '|' << line << "\n";
  os << '+' << std::string(width, '-') << "> " << x_label_ << "\n";
  os << format_significant(xmin, 4) << " .. " << format_significant(xmax, 4)
     << "   (y min: " << format_significant(ymin, 4) << ")\n";
  os << "legend:";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    os << "  [" << kGlyphs[si % sizeof kGlyphs] << "] " << series_[si].name;
  }
  os << '\n';
  return os.str();
}

}  // namespace streamcalc::util
