// Annotated synchronization primitives: thin wrappers over the standard
// library types that carry Clang thread-safety capabilities, so lock
// discipline is checked at compile time (see util/thread_annotations.hpp
// and DESIGN.md §8).
//
// std::mutex itself is not annotated as a capability in libstdc++/libc++,
// which makes GUARDED_BY(std_mutex_member) useless — the analysis can only
// track acquisitions of types marked SC_CAPABILITY. These wrappers add the
// attributes and nothing else: no extra state, no behavior change, and they
// compile to the exact same code.
//
//   Mutex      — SC_CAPABILITY wrapper over std::mutex.
//   MutexLock  — SC_SCOPED_CAPABILITY lock_guard equivalent.
//   CondVar    — condition variable usable with Mutex. Built on
//                std::condition_variable_any, whose wait() takes any
//                BasicLockable; wait(Mutex&) is annotated SC_REQUIRES so
//                waiting without the lock is a compile error.
//
// CondVar deliberately has no predicate overload: a predicate lambda would
// read guarded state from a context the analysis cannot see into. Callers
// write the standard `while (!pred()) cv.wait(mutex_);` loop inside a
// method annotated SC_REQUIRES(mutex_), which the analysis checks fully.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace streamcalc::util {

/// Annotated exclusive mutex. Same cost and semantics as std::mutex.
class SC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SC_ACQUIRE() { m_.lock(); }
  void unlock() SC_RELEASE() { m_.unlock(); }
  bool try_lock() SC_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The underlying std::mutex, for interop with std:: wait machinery.
  /// Bypasses the analysis — keep uses confined to this header.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// RAII scoped lock over Mutex (lock_guard equivalent, annotated).
class SC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SC_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SC_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable for use with Mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mutex`, blocks, and reacquires before returning.
  /// Spurious wakeups are possible; call in a `while (!pred())` loop.
  void wait(Mutex& mutex) SC_REQUIRES(mutex) SC_NO_THREAD_SAFETY_ANALYSIS {
    // condition_variable_any::wait unlocks/relocks through the BasicLockable
    // interface; the net effect is "held on entry, held on exit", which is
    // exactly what SC_REQUIRES promises callers. The analysis cannot see
    // through the std:: internals, hence the local opt-out.
    cv_.wait(mutex);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace streamcalc::util
