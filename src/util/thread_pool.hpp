// Fixed-size thread pool with a deterministic parallel_for primitive.
//
// Design goals, in order:
//
//   1. *Determinism.* Callers split work into chunks whose boundaries depend
//      only on the input size and grain — never on the number of threads or
//      on scheduling. Each chunk writes to its own output slot; the caller
//      merges slots in index order. Any algorithm written this way produces
//      bit-identical results with 1 thread, N threads, or in serial mode.
//   2. *Safety under nesting.* Library code (min-plus kernels) and user code
//      (replication runners) may both use the pool; a parallel_for issued
//      from inside a pool worker runs inline on that worker instead of
//      deadlocking on the queue.
//   3. *Small surface.* A fixed set of std::jthread workers, a mutex-guarded
//      task queue, parallel_for + submit. No work stealing, no futures-heavy
//      API — the kernels need fork/join over index ranges, nothing more.
//
// All shared state is guarded by an annotated util::Mutex and checked by
// Clang's thread-safety analysis (-Werror=thread-safety in CI); see
// util/thread_annotations.hpp and DESIGN.md §8.
//
// The global() instance is lazily initialized from the STREAMCALC_THREADS
// environment variable: unset or "0" = hardware concurrency, "1" or
// "serial" = serial mode (no workers; everything runs inline — useful for
// reproducibility debugging and as the reference side of determinism
// tests). Any other non-numeric value is rejected with an error (see
// util/env.hpp). set_force_serial() lets tests flip the same global pool
// between parallel and inline execution at runtime.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/context.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace streamcalc::util {

class ThreadPool {
 public:
  /// A pool with `threads` workers; 0 = serial mode (no worker threads,
  /// all work runs inline on the calling thread).
  explicit ThreadPool(unsigned threads);

  /// A pool honouring `ctx.threads` (the preferred constructor: pass the
  /// Context you built at startup instead of re-reading the environment).
  explicit ThreadPool(const Context& ctx);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 in serial mode).
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// True when no workers exist and every call runs inline.
  bool serial() const { return workers_.empty(); }

  /// Runs fn(lo, hi) over [begin, end) split into chunks of at least
  /// `grain` indices. Chunk boundaries depend only on (begin, end, grain),
  /// not on thread count; the calling thread participates. Blocks until
  /// every chunk completes; the first exception thrown by any chunk is
  /// rethrown on the caller (remaining chunks still run to completion).
  ///
  /// Runs entirely inline when: the pool is serial, force-serial is set,
  /// the range has fewer than 2 chunks, or the caller is itself a pool
  /// worker (nested parallelism runs inline rather than deadlocking).
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn)
      SC_EXCLUDES(mutex_);

  /// Enqueues a task for a worker (runs inline in serial mode). Fire and
  /// forget; use parallel_for for fork/join work.
  void submit(std::function<void()> task) SC_EXCLUDES(mutex_);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle() SC_EXCLUDES(mutex_);

  /// Process-wide pool, lazily created on first use and sized from the
  /// active Context (Context::install() one early, or the size falls back
  /// to the STREAMCALC_THREADS environment variable; see file comment).
  static ThreadPool& global();

  /// When true, parallel_for on every pool runs inline on the caller.
  /// Intended for tests and reproducibility debugging; thread-safe.
  static void set_force_serial(bool on);
  static bool force_serial();

  /// True while the current thread is executing inside a pool worker.
  static bool on_worker_thread();

 private:
  void worker_loop(std::stop_token stop) SC_EXCLUDES(mutex_);

  std::vector<std::jthread> workers_;
  mutable Mutex mutex_;
  std::deque<std::function<void()>> queue_ SC_GUARDED_BY(mutex_);
  CondVar work_available_;
  CondVar idle_;
  std::size_t active_ SC_GUARDED_BY(mutex_) =
      0;  ///< tasks currently executing on workers
  bool stopping_ SC_GUARDED_BY(mutex_) = false;
};

/// Number of threads the global pool was (or would be) configured with:
/// the active Context's resolved thread count (STREAMCALC_THREADS,
/// defaulting to hardware concurrency). Throws PreconditionError on a
/// malformed value (anything other than a non-negative integer or the
/// word "serial").
///
/// Deprecated shim (warns once): read Context::active().resolved_threads()
/// — or better, build a Context once and pass it around — instead.
unsigned configured_thread_count();

}  // namespace streamcalc::util
