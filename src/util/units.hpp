// Strongly-typed physical quantities used throughout the library.
//
// Network calculus mixes data volumes, times, and rates freely; confusing a
// MiB with a MiB/s (or a millisecond with a microsecond) produces bounds that
// are wrong by orders of magnitude yet look plausible. These wrapper types
// make such mistakes type errors.
//
// Internal canonical units: bytes, seconds, bytes-per-second. All quantities
// are doubles: network calculus curves are continuous fluid models, so
// fractional bytes are meaningful (e.g. volumes normalized to pipeline
// input, Section 4.2 of the paper).
#pragma once

#include <cmath>
#include <compare>
#include <limits>

namespace streamcalc::util {

class Duration;
class DataRate;

/// A data volume in bytes (fluid: fractional values are allowed).
class DataSize {
 public:
  constexpr DataSize() = default;
  constexpr static DataSize bytes(double b) { return DataSize{b}; }
  constexpr static DataSize kib(double k) { return DataSize{k * 1024.0}; }
  constexpr static DataSize mib(double m) {
    return DataSize{m * 1024.0 * 1024.0};
  }
  constexpr static DataSize gib(double g) {
    return DataSize{g * 1024.0 * 1024.0 * 1024.0};
  }
  constexpr static DataSize infinite() {
    return DataSize{std::numeric_limits<double>::infinity()};
  }

  constexpr double in_bytes() const { return bytes_; }
  constexpr double in_kib() const { return bytes_ / 1024.0; }
  constexpr double in_mib() const { return bytes_ / (1024.0 * 1024.0); }
  constexpr double in_gib() const {
    return bytes_ / (1024.0 * 1024.0 * 1024.0);
  }
  constexpr bool is_finite() const { return std::isfinite(bytes_); }

  constexpr DataSize operator+(DataSize o) const {
    return DataSize{bytes_ + o.bytes_};
  }
  constexpr DataSize operator-(DataSize o) const {
    return DataSize{bytes_ - o.bytes_};
  }
  constexpr DataSize operator*(double s) const { return DataSize{bytes_ * s}; }
  constexpr DataSize operator/(double s) const { return DataSize{bytes_ / s}; }
  constexpr double operator/(DataSize o) const { return bytes_ / o.bytes_; }
  constexpr DataSize& operator+=(DataSize o) {
    bytes_ += o.bytes_;
    return *this;
  }
  constexpr DataSize& operator-=(DataSize o) {
    bytes_ -= o.bytes_;
    return *this;
  }
  constexpr auto operator<=>(const DataSize&) const = default;

  /// Time to transfer this volume at the given rate.
  constexpr Duration operator/(DataRate r) const;

 private:
  constexpr explicit DataSize(double b) : bytes_(b) {}
  double bytes_ = 0.0;
};

/// A time span in seconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr static Duration seconds(double s) { return Duration{s}; }
  constexpr static Duration millis(double ms) { return Duration{ms * 1e-3}; }
  constexpr static Duration micros(double us) { return Duration{us * 1e-6}; }
  constexpr static Duration nanos(double ns) { return Duration{ns * 1e-9}; }
  constexpr static Duration infinite() {
    return Duration{std::numeric_limits<double>::infinity()};
  }

  constexpr double in_seconds() const { return secs_; }
  constexpr double in_millis() const { return secs_ * 1e3; }
  constexpr double in_micros() const { return secs_ * 1e6; }
  constexpr double in_nanos() const { return secs_ * 1e9; }
  constexpr bool is_finite() const { return std::isfinite(secs_); }

  constexpr Duration operator+(Duration o) const {
    return Duration{secs_ + o.secs_};
  }
  constexpr Duration operator-(Duration o) const {
    return Duration{secs_ - o.secs_};
  }
  constexpr Duration operator*(double s) const { return Duration{secs_ * s}; }
  constexpr Duration operator/(double s) const { return Duration{secs_ / s}; }
  constexpr double operator/(Duration o) const { return secs_ / o.secs_; }
  constexpr Duration& operator+=(Duration o) {
    secs_ += o.secs_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    secs_ -= o.secs_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(double s) : secs_(s) {}
  double secs_ = 0.0;
};

/// A data rate in bytes per second.
class DataRate {
 public:
  constexpr DataRate() = default;
  constexpr static DataRate bytes_per_sec(double b) { return DataRate{b}; }
  constexpr static DataRate kib_per_sec(double k) {
    return DataRate{k * 1024.0};
  }
  constexpr static DataRate mib_per_sec(double m) {
    return DataRate{m * 1024.0 * 1024.0};
  }
  constexpr static DataRate gib_per_sec(double g) {
    return DataRate{g * 1024.0 * 1024.0 * 1024.0};
  }
  constexpr static DataRate infinite() {
    return DataRate{std::numeric_limits<double>::infinity()};
  }

  constexpr double in_bytes_per_sec() const { return bps_; }
  constexpr double in_mib_per_sec() const { return bps_ / (1024.0 * 1024.0); }
  constexpr double in_gib_per_sec() const {
    return bps_ / (1024.0 * 1024.0 * 1024.0);
  }
  constexpr bool is_finite() const { return std::isfinite(bps_); }

  /// Data moved in the given time at this rate.
  constexpr DataSize operator*(Duration t) const {
    return DataSize::bytes(bps_ * t.in_seconds());
  }
  constexpr DataRate operator*(double s) const { return DataRate{bps_ * s}; }
  constexpr DataRate operator/(double s) const { return DataRate{bps_ / s}; }
  constexpr double operator/(DataRate o) const { return bps_ / o.bps_; }
  constexpr DataRate operator+(DataRate o) const {
    return DataRate{bps_ + o.bps_};
  }
  constexpr DataRate operator-(DataRate o) const {
    return DataRate{bps_ - o.bps_};
  }
  constexpr auto operator<=>(const DataRate&) const = default;

 private:
  constexpr explicit DataRate(double b) : bps_(b) {}
  double bps_ = 0.0;
};

constexpr Duration DataSize::operator/(DataRate r) const {
  return Duration::seconds(bytes_ / r.in_bytes_per_sec());
}

constexpr DataSize operator*(double s, DataSize d) { return d * s; }
constexpr Duration operator*(double s, Duration d) { return d * s; }
constexpr DataRate operator*(double s, DataRate r) { return r * s; }
constexpr DataSize operator*(Duration t, DataRate r) { return r * t; }

/// Rate obtained by moving `d` in time `t`.
constexpr DataRate operator/(DataSize d, Duration t) {
  return DataRate::bytes_per_sec(d.in_bytes() / t.in_seconds());
}

namespace literals {
constexpr DataSize operator""_B(long double v) {
  return DataSize::bytes(static_cast<double>(v));
}
constexpr DataSize operator""_B(unsigned long long v) {
  return DataSize::bytes(static_cast<double>(v));
}
constexpr DataSize operator""_KiB(long double v) {
  return DataSize::kib(static_cast<double>(v));
}
constexpr DataSize operator""_KiB(unsigned long long v) {
  return DataSize::kib(static_cast<double>(v));
}
constexpr DataSize operator""_MiB(long double v) {
  return DataSize::mib(static_cast<double>(v));
}
constexpr DataSize operator""_MiB(unsigned long long v) {
  return DataSize::mib(static_cast<double>(v));
}
constexpr DataSize operator""_GiB(long double v) {
  return DataSize::gib(static_cast<double>(v));
}
constexpr DataSize operator""_GiB(unsigned long long v) {
  return DataSize::gib(static_cast<double>(v));
}
constexpr Duration operator""_s(long double v) {
  return Duration::seconds(static_cast<double>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds(static_cast<double>(v));
}
constexpr Duration operator""_ms(long double v) {
  return Duration::millis(static_cast<double>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::millis(static_cast<double>(v));
}
constexpr Duration operator""_us(long double v) {
  return Duration::micros(static_cast<double>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::micros(static_cast<double>(v));
}
constexpr DataRate operator""_MiBps(long double v) {
  return DataRate::mib_per_sec(static_cast<double>(v));
}
constexpr DataRate operator""_MiBps(unsigned long long v) {
  return DataRate::mib_per_sec(static_cast<double>(v));
}
constexpr DataRate operator""_GiBps(long double v) {
  return DataRate::gib_per_sec(static_cast<double>(v));
}
constexpr DataRate operator""_GiBps(unsigned long long v) {
  return DataRate::gib_per_sec(static_cast<double>(v));
}
}  // namespace literals

}  // namespace streamcalc::util
