// Strict environment-variable parsing.
//
// The tuning knobs (STREAMCALC_THREADS, STREAMCALC_CURVE_CACHE,
// STREAMCALC_FUZZ_CASES, STREAMCALC_LINT) used to fall back to defaults on
// garbage input — `STREAMCALC_THREADS=fast` silently meant "hardware
// concurrency", which is exactly the wrong behavior for a reproducibility
// knob. These helpers reject malformed values with an error that names the
// variable and the accepted forms, so a typo fails loudly at startup
// instead of silently changing what the run measures.
//
// Header-only on purpose: obs sits *below* util in the link graph (the
// thread pool is instrumented), and obs/runtime.cpp needs the same strict
// STREAMCALC_OBS parse as Context::from_env(). Like util/sync.hpp, this
// header is usable by include path alone, with no dependency on sc_util.
// It is also the one place the project may call ::getenv — srclint's
// SC902/SC903 rules (DESIGN.md §13) enforce that every other environment
// read goes through these helpers or the Context facade.
#pragma once

#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

#include "util/error.hpp"

namespace streamcalc::util {

/// Raw value of `name`, or nullopt when unset or set to the empty string
/// (both conventionally mean "use the default").
inline std::optional<std::string> env_raw(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

/// Parses `name` as a non-negative decimal integer <= `max`. Returns
/// nullopt when unset/empty. Throws PreconditionError naming the variable
/// on any other input: non-numeric text, trailing junk ("8x"), signs,
/// whitespace, or out-of-range values.
inline std::optional<std::uint64_t> env_uint(const std::string& name,
                                             std::uint64_t max = UINT64_MAX) {
  const auto raw = env_raw(name);
  if (!raw) return std::nullopt;
  const std::string& text = *raw;
  // from_chars accepts only an optional minus sign plus digits — no
  // leading whitespace, no "+", no hex — which is exactly the strictness
  // we want. Reject the minus sign up front for a clearer message.
  std::uint64_t parsed = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto result = std::from_chars(first, last, parsed, 10);
  if (result.ec != std::errc{} || result.ptr != last ||
      !std::isdigit(static_cast<unsigned char>(text.front()))) {
    throw PreconditionError(
        name + "=\"" + text +
        "\" is not a valid setting: expected a non-negative integer");
  }
  if (parsed > max) {
    throw PreconditionError(name + "=" + text + " is out of range (max " +
                            std::to_string(max) + ")");
  }
  return parsed;
}

/// Like env_uint but with a lower bound: values below `min` are rejected
/// with the same variable-naming error. Used by knobs where 0 is not a
/// meaningful setting (e.g. STREAMCALC_FUZZ_CASES).
inline std::optional<std::uint64_t> env_uint_in(const std::string& name,
                                                std::uint64_t min,
                                                std::uint64_t max =
                                                    UINT64_MAX) {
  const auto parsed = env_uint(name, max);
  if (parsed && *parsed < min) {
    throw PreconditionError(name + "=" + std::to_string(*parsed) +
                            " is out of range (min " + std::to_string(min) +
                            ")");
  }
  return parsed;
}

/// Parses `name` as a boolean switch: "on"/"1"/"true" and
/// "off"/"0"/"false" only. Returns nullopt when unset/empty; throws
/// PreconditionError naming the variable on anything else. This is the
/// grammar of STREAMCALC_OBS, shared by Context::from_env() and the obs
/// runtime bootstrap so the two can never drift apart again.
inline std::optional<bool> env_bool(const std::string& name) {
  const auto raw = env_raw(name);
  if (!raw) return std::nullopt;
  if (*raw == "on" || *raw == "1" || *raw == "true") return true;
  if (*raw == "off" || *raw == "0" || *raw == "false") return false;
  throw PreconditionError(name + "=\"" + *raw +
                          "\" is not a valid setting: expected \"on\", "
                          "\"off\", \"0\", \"1\", \"true\", or \"false\"");
}

}  // namespace streamcalc::util
