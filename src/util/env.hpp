// Strict environment-variable parsing.
//
// The tuning knobs (STREAMCALC_THREADS, STREAMCALC_CURVE_CACHE,
// STREAMCALC_FUZZ_CASES, STREAMCALC_LINT) used to fall back to defaults on
// garbage input — `STREAMCALC_THREADS=fast` silently meant "hardware
// concurrency", which is exactly the wrong behavior for a reproducibility
// knob. These helpers reject malformed values with an error that names the
// variable and the accepted forms, so a typo fails loudly at startup
// instead of silently changing what the run measures.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace streamcalc::util {

/// Raw value of `name`, or nullopt when unset or set to the empty string
/// (both conventionally mean "use the default").
std::optional<std::string> env_raw(const std::string& name);

/// Parses `name` as a non-negative decimal integer <= `max`. Returns
/// nullopt when unset/empty. Throws PreconditionError naming the variable
/// on any other input: non-numeric text, trailing junk ("8x"), signs,
/// whitespace, or out-of-range values.
std::optional<std::uint64_t> env_uint(const std::string& name,
                                      std::uint64_t max = UINT64_MAX);

/// Like env_uint but with a lower bound: values below `min` are rejected
/// with the same variable-naming error. Used by knobs where 0 is not a
/// meaningful setting (e.g. STREAMCALC_FUZZ_CASES).
std::optional<std::uint64_t> env_uint_in(const std::string& name,
                                         std::uint64_t min,
                                         std::uint64_t max = UINT64_MAX);

}  // namespace streamcalc::util
