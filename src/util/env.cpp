#include "util/env.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "util/error.hpp"

namespace streamcalc::util {

std::optional<std::string> env_raw(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

std::optional<std::uint64_t> env_uint(const std::string& name,
                                      std::uint64_t max) {
  const auto raw = env_raw(name);
  if (!raw) return std::nullopt;
  const std::string& text = *raw;
  // from_chars accepts only an optional minus sign plus digits — no
  // leading whitespace, no "+", no hex — which is exactly the strictness
  // we want. Reject the minus sign up front for a clearer message.
  std::uint64_t parsed = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto result = std::from_chars(first, last, parsed, 10);
  if (result.ec != std::errc{} || result.ptr != last ||
      !std::isdigit(static_cast<unsigned char>(text.front()))) {
    throw PreconditionError(
        name + "=\"" + text +
        "\" is not a valid setting: expected a non-negative integer");
  }
  if (parsed > max) {
    throw PreconditionError(name + "=" + text + " is out of range (max " +
                            std::to_string(max) + ")");
  }
  return parsed;
}

std::optional<std::uint64_t> env_uint_in(const std::string& name,
                                         std::uint64_t min,
                                         std::uint64_t max) {
  const auto parsed = env_uint(name, max);
  if (parsed && *parsed < min) {
    throw PreconditionError(name + "=" + std::to_string(*parsed) +
                            " is out of range (min " + std::to_string(min) +
                            ")");
  }
  return parsed;
}

}  // namespace streamcalc::util
