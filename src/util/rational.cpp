#include "util/rational.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace streamcalc::util {

// --- BigInt ----------------------------------------------------------------

BigInt::BigInt(std::int64_t v) {
  negative_ = v < 0;
  // Negate via uint64 so INT64_MIN does not overflow.
  std::uint64_t mag =
      negative_ ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
  while (mag != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(mag & 0xffffffffu));
    mag >>= 32;
  }
  if (limbs_.empty()) negative_ = false;
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::compare_magnitude(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::add_magnitude(const BigInt& a, const BigInt& b) {
  BigInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigInt BigInt::sub_magnitude(const BigInt& a, const BigInt& b) {
  SC_ASSERT(compare_magnitude(a, b) >= 0);
  BigInt out;
  out.limbs_.reserve(a.limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= static_cast<std::int64_t>(b.limbs_[i]);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(1) << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<std::uint32_t>(diff));
  }
  out.trim();
  return out;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::operator+(const BigInt& o) const {
  if (negative_ == o.negative_) {
    BigInt out = add_magnitude(*this, o);
    out.negative_ = negative_;
    out.trim();
    return out;
  }
  const int cmp = compare_magnitude(*this, o);
  if (cmp == 0) return BigInt{};
  BigInt out = cmp > 0 ? sub_magnitude(*this, o) : sub_magnitude(o, *this);
  out.negative_ = cmp > 0 ? negative_ : o.negative_;
  out.trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

BigInt BigInt::operator*(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return BigInt{};
  BigInt out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(limbs_[i]) * o.limbs_[j] +
                          out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + o.limbs_.size();
    while (carry != 0) {
      const std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  out.negative_ = negative_ != o.negative_;
  out.trim();
  return out;
}

BigInt BigInt::shifted_left(unsigned bits) const {
  if (is_zero() || bits == 0) return *this;
  BigInt out;
  const unsigned whole = bits / 32;
  const unsigned rem = bits % 32;
  out.limbs_.assign(whole, 0);
  std::uint32_t carry = 0;
  for (const std::uint32_t limb : limbs_) {
    const std::uint64_t cur = (static_cast<std::uint64_t>(limb) << rem) | carry;
    out.limbs_.push_back(static_cast<std::uint32_t>(cur & 0xffffffffu));
    carry = static_cast<std::uint32_t>(cur >> 32);
  }
  if (carry != 0) out.limbs_.push_back(carry);
  out.negative_ = negative_;
  return out;
}

int BigInt::compare(const BigInt& o) const {
  if (negative_ != o.negative_) return negative_ ? -1 : 1;
  const int mag = compare_magnitude(*this, o);
  return negative_ ? -mag : mag;
}

bool BigInt::is_even() const {
  return limbs_.empty() || (limbs_[0] & 1u) == 0;
}

void BigInt::halve() {
  std::uint32_t carry = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    const std::uint32_t next_carry = limbs_[i] & 1u;
    limbs_[i] = (limbs_[i] >> 1) | (carry << 31);
    carry = next_carry;
  }
  trim();
}

double BigInt::to_double() const {
  double out = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    out = out * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -out : out;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  std::vector<std::uint32_t> work(limbs_);
  std::string digits;
  while (!work.empty()) {
    // Divide the magnitude by 1e9, collecting the remainder.
    std::uint64_t rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | work[i];
      work[i] = static_cast<std::uint32_t>(cur / 1000000000u);
      rem = cur % 1000000000u;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

// --- Rational --------------------------------------------------------------

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  util::require(!den_.is_zero(), "Rational denominator must be non-zero");
  normalize();
}

void Rational::normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = 1;
    return;
  }
  // Reduce by the common power of two only. Checker values start as dyadic
  // rationals (exact doubles, denominator a power of two), where this is a
  // full reduction; the few general rationals produced by pseudo-inverse
  // divisions live through expressions of small bounded depth, so skipping
  // the full gcd never lets the limb counts grow meaningfully.
  while (num_.is_even() && den_.is_even()) {
    num_.halve();
    den_.halve();
  }
}

Rational Rational::from_double(double v) {
  util::require(std::isfinite(v),
                "Rational::from_double requires a finite value");
  if (v == 0.0) return Rational{};
  int exp = 0;
  // frexp: v = mant * 2^exp with |mant| in [0.5, 1). Scale the mantissa to
  // an odd-width integer: mant * 2^53 is integral for every finite double.
  const double mant = std::frexp(v, &exp);
  const auto scaled = static_cast<std::int64_t>(std::ldexp(mant, 53));
  exp -= 53;
  BigInt num(scaled);
  BigInt den(1);
  if (exp >= 0) {
    num = num.shifted_left(static_cast<unsigned>(exp));
  } else {
    den = den.shifted_left(static_cast<unsigned>(-exp));
  }
  return Rational(std::move(num), std::move(den));
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational Rational::operator+(const Rational& o) const {
  return Rational(num_ * o.den_ + o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return Rational(num_ * o.den_ - o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return Rational(num_ * o.num_, den_ * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  util::require(!o.is_zero(), "Rational division by zero");
  return Rational(num_ * o.den_, den_ * o.num_);
}

int Rational::compare(const Rational& o) const {
  // Denominators are positive, so cross-multiplication preserves order.
  return (num_ * o.den_).compare(o.num_ * den_);
}

Rational Rational::min(const Rational& a, const Rational& b) {
  return a <= b ? a : b;
}

Rational Rational::max(const Rational& a, const Rational& b) {
  return a >= b ? a : b;
}

double Rational::approx() const {
  // Good enough as a seed for round_up_double and for messages; the
  // magnitudes involved (mantissas times small products) stay well inside
  // double range for certificate workloads.
  return num_.to_double() / den_.to_double();
}

double Rational::round_up_double() const {
  double d = approx();
  if (!std::isfinite(d)) return d;
  // Correct the nearest-guess onto the smallest double >= *this. The seed
  // is within a few ulps, so both loops terminate almost immediately.
  while (Rational::from_double(d) < *this) {
    d = std::nextafter(d, std::numeric_limits<double>::infinity());
  }
  while (true) {
    const double lower =
        std::nextafter(d, -std::numeric_limits<double>::infinity());
    if (!std::isfinite(lower) || Rational::from_double(lower) < *this) break;
    d = lower;
  }
  return d;
}

std::string Rational::to_string() const {
  if (den_.compare(1) == 0) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

}  // namespace streamcalc::util
