#include "util/format.hpp"

#include <cmath>
#include <cstdio>

namespace streamcalc::util {

std::string format_significant(double value, int digits) {
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  if (std::isnan(value)) return "nan";
  if (value == 0.0) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, value);
  return buf;
}

namespace {

struct Scaled {
  double value;
  const char* unit;
};

Scaled scale_binary(double bytes) {
  constexpr double kKi = 1024.0;
  const double mag = std::fabs(bytes);
  if (mag >= kKi * kKi * kKi) return {bytes / (kKi * kKi * kKi), "GiB"};
  if (mag >= kKi * kKi) return {bytes / (kKi * kKi), "MiB"};
  if (mag >= kKi) return {bytes / kKi, "KiB"};
  return {bytes, "B"};
}

}  // namespace

std::string format_rate(DataRate rate, int digits) {
  if (!rate.is_finite()) return "inf";
  const auto [v, u] = scale_binary(rate.in_bytes_per_sec());
  return format_significant(v, digits) + " " + u + "/s";
}

std::string format_size(DataSize size, int digits) {
  if (!size.is_finite()) return "inf";
  const auto [v, u] = scale_binary(size.in_bytes());
  return format_significant(v, digits) + " " + u;
}

std::string format_duration(Duration d, int digits) {
  if (!d.is_finite()) return "inf";
  const double s = d.in_seconds();
  const double mag = std::fabs(s);
  if (mag >= 1.0 || mag == 0.0) return format_significant(s, digits) + " s";
  if (mag >= 1e-3) return format_significant(s * 1e3, digits) + " ms";
  if (mag >= 1e-6) return format_significant(s * 1e6, digits) + " us";
  return format_significant(s * 1e9, digits) + " ns";
}

}  // namespace streamcalc::util
