// Error handling for the streamcalc library.
//
// The library throws `streamcalc::util::Error` (a std::runtime_error) for
// violated preconditions on public API entry points, and uses SC_ASSERT for
// internal invariants that indicate a library bug rather than a caller bug.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace streamcalc::util {

/// Base exception for all streamcalc errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Thrown when a model is queried in a configuration where the requested
/// bound does not exist (e.g. backlog bound with arrival rate > service rate).
class UnboundedError : public Error {
 public:
  explicit UnboundedError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr,
                                     const std::source_location loc) {
  throw Error(std::string("internal invariant violated: ") + expr + " at " +
              loc.file_name() + ":" + std::to_string(loc.line()));
}
}  // namespace detail

/// Checks a caller-facing precondition; throws PreconditionError on failure.
inline void require(bool cond, const std::string& message) {
  if (!cond) throw PreconditionError(message);
}

/// Literal-message overload: avoids materializing a std::string on the
/// success path (require() sits in per-segment loops of the curve engine).
inline void require(bool cond, const char* message) {
  if (!cond) throw PreconditionError(message);
}

}  // namespace streamcalc::util

/// Internal invariant check. Unlike assert(), always on: model code is not
/// hot enough for these to matter, and silent corruption of bounds is worse
/// than the cost of the branch.
#define SC_ASSERT(expr)                                       \
  do {                                                        \
    if (!(expr))                                              \
      ::streamcalc::util::detail::assert_fail(                \
          #expr, ::std::source_location::current());          \
  } while (false)
