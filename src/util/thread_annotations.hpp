// Clang thread-safety analysis attributes, wrapped so the rest of the code
// can annotate lock discipline without caring about the compiler.
//
// Under Clang the SC_* macros expand to the __attribute__((...)) spellings
// consumed by -Wthread-safety (promoted to an error in the CI job that
// builds with -Werror=thread-safety); under GCC and MSVC they expand to
// nothing, so annotated headers stay warning-free everywhere.
//
// The standard library's std::mutex is *not* a Clang "capability", so these
// attributes are only useful on our own synchronization types — see
// util/sync.hpp for the annotated Mutex / MutexLock / CondVar wrappers that
// every concurrent component in the library uses. Conventions are written
// up in DESIGN.md §8.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef SC_THREAD_ANNOTATION
#define SC_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define SC_CAPABILITY(name) SC_THREAD_ANNOTATION(capability(name))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define SC_SCOPED_CAPABILITY SC_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define SC_GUARDED_BY(x) SC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define SC_PT_GUARDED_BY(x) SC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and exit).
#define SC_REQUIRES(...) \
  SC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities; caller must not hold them.
#define SC_ACQUIRE(...) SC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities; caller must hold them.
#define SC_RELEASE(...) SC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define SC_TRY_ACQUIRE(result, ...) \
  SC_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function must be called *without* the listed capabilities held
/// (deadlock prevention: public methods that lock internally).
#define SC_EXCLUDES(...) SC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Return value is a reference to a capability-guarded object.
#define SC_RETURN_CAPABILITY(x) SC_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis (rare; justify at each use).
#define SC_NO_THREAD_SAFETY_ANALYSIS \
  SC_THREAD_ANNOTATION(no_thread_safety_analysis)
