// Deterministic random number generation for the simulators.
//
// We use xoshiro256** seeded via splitmix64 rather than std::mt19937 because
// (a) its state is 4 words, making independent per-node streams cheap, and
// (b) its output sequence is specified exactly, so simulation results are
// reproducible across standard libraries — std::uniform_real_distribution is
// not guaranteed to produce identical sequences everywhere, so we implement
// the uniform transforms ourselves.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "util/error.hpp"

namespace streamcalc::util {

/// splitmix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), a fast, high-quality 64-bit PRNG.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1): 53 high bits scaled by 2^-53.
  constexpr double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) {
    require(lo <= hi, "uniform(lo, hi) requires lo <= hi");
    return lo + (hi - lo) * uniform01();
  }

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean) {
    require(mean > 0.0, "exponential(mean) requires mean > 0");
    // 1 - uniform01() is in (0, 1], so the log is finite.
    return -mean * std::log(1.0 - uniform01());
  }

  /// Creates an independent stream for substream `index`: re-seeds from a
  /// hash of this generator's next output and the index. Used to give each
  /// simulated node its own stream so adding a node does not perturb the
  /// sequences seen by the others.
  Xoshiro256 split(std::uint64_t index) {
    return Xoshiro256((*this)() ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace streamcalc::util
