// Counted resource (SimPy's Resource): at most `capacity` concurrent
// holders; acquire() suspends when exhausted, release() admits the oldest
// waiter. Used to model servers that can execute a limited number of jobs
// at once.
#pragma once

#include <coroutine>
#include <deque>

#include "des/simulation.hpp"
#include "util/error.hpp"

namespace streamcalc::des {

/// Counting semaphore over simulated time. Not copyable.
class Resource {
 public:
  Resource(Simulation& sim, std::size_t capacity)
      : sim_(&sim), available_(capacity), capacity_(capacity) {
    util::require(capacity >= 1, "Resource capacity must be >= 1");
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  std::size_t capacity() const { return capacity_; }
  std::size_t available() const { return available_; }
  std::size_t waiting() const { return waiters_.size(); }

  struct [[nodiscard]] AcquireAwaiter {
    Resource* res;
    bool await_ready() const {
      if (res->available_ == 0) return false;
      --res->available_;
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) const {
      res->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  /// Awaitable: completes once a unit is held. Pair with release().
  AcquireAwaiter acquire() { return AcquireAwaiter{this}; }

  /// Returns a unit; hands it directly to the oldest waiter if any.
  void release() {
    util::require(available_ < capacity_ || !waiters_.empty(),
                  "release() without a matching acquire()");
    if (!waiters_.empty()) {
      std::coroutine_handle<> h = waiters_.front();
      waiters_.pop_front();
      sim_->schedule_now(h);  // the unit passes straight to the waiter
      return;
    }
    ++available_;
  }

 private:
  Simulation* sim_;
  std::size_t available_;
  std::size_t capacity_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace streamcalc::des
