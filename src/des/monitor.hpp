// Statistics collectors for simulations: a step-function recorder for
// time-weighted quantities (queue depths, system backlog) and a tally for
// per-sample quantities (latencies). These produce the observations the
// paper compares against the network-calculus bounds (max backlog, longest
// and shortest delay).
#pragma once

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace streamcalc::des {

/// Records a piecewise-constant signal over simulated time (sample-and-hold
/// between record() calls).
class TimeWeighted {
 public:
  /// Sets the signal's value from time `t` onward. Times must be
  /// non-decreasing.
  void record(double t, double value) {
    util::require(samples_.empty() || t >= samples_.back().first,
                  "TimeWeighted::record times must be non-decreasing");
    samples_.emplace_back(t, value);
  }

  bool empty() const { return samples_.empty(); }

  double maximum() const {
    double best = -std::numeric_limits<double>::infinity();
    for (const auto& [t, v] : samples_) best = std::max(best, v);
    return best;
  }

  double minimum() const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& [t, v] : samples_) best = std::min(best, v);
    return best;
  }

  /// Time average of the held signal over [start, end], where `start` is
  /// the first recorded time. Requires at least one sample and end >= start.
  double time_average(double end) const {
    util::require(!samples_.empty(), "TimeWeighted::time_average on empty");
    const double start = samples_.front().first;
    util::require(end >= start, "time_average end before first sample");
    if (end == start) return samples_.front().second;
    double integral = 0.0;
    for (std::size_t i = 0; i < samples_.size(); ++i) {
      const double t0 = samples_[i].first;
      if (t0 >= end) break;
      const double t1 =
          (i + 1 < samples_.size()) ? std::min(samples_[i + 1].first, end)
                                    : end;
      integral += samples_[i].second * (t1 - t0);
    }
    return integral / (end - start);
  }

  const std::vector<std::pair<double, double>>& samples() const {
    return samples_;
  }

 private:
  std::vector<std::pair<double, double>> samples_;
};

/// Accumulates independent observations (e.g. per-job end-to-end delays).
class Tally {
 public:
  void add(double v) {
    ++count_;
    sum_ += v;
    sum_sq_ += v * v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  std::size_t count() const { return count_; }
  double mean() const {
    util::require(count_ > 0, "Tally::mean on empty tally");
    return sum_ / static_cast<double>(count_);
  }
  double minimum() const {
    util::require(count_ > 0, "Tally::minimum on empty tally");
    return min_;
  }
  double maximum() const {
    util::require(count_ > 0, "Tally::maximum on empty tally");
    return max_;
  }
  /// Population variance.
  double variance() const {
    util::require(count_ > 0, "Tally::variance on empty tally");
    const double m = mean();
    return sum_sq_ / static_cast<double>(count_) - m * m;
  }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace streamcalc::des
